// Real-time streaming analytics over a hybrid table (§2.1's full
// architecture): inserts land in a row-oriented mutable region, a merge
// compresses them into encoded immutable segments, and queries always see
// both regions — fresh rows included, no waiting for compression.
#include <cinttypes>
#include <cstdio>

#include "common/cycle_timer.h"
#include "common/random.h"
#include "storage/hybrid_table.h"
#include "vector/toolbox.h"

using namespace bipie;  // NOLINT

namespace {

void RunQuery(const HybridTable& table, const char* when) {
  QuerySpec query;
  query.group_by = {"sensor"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Avg("value"),
                      AggregateSpec::Max("value")};
  query.filters.emplace_back("value", CompareOp::kGt, int64_t{100});
  const uint64_t start = ReadCycleCounter();
  auto result = ExecuteQueryHybrid(table, query);
  const uint64_t cycles = ReadCycleCounter() - start;
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s (mutable=%zu rows, immutable=%zu rows, %.1f cycles/row):\n",
              when, table.mutable_rows(), table.immutable().num_rows(),
              static_cast<double>(cycles) /
                  static_cast<double>(table.num_rows() + 1));
  for (size_t r = 0; r < result.value().rows.size(); ++r) {
    const ResultRow& row = result.value().rows[r];
    std::printf("  %-8s readings>100: %-8" PRIu64 " avg=%-8.1f max=%" PRId64
                "\n",
                row.group[0].string_value.c_str(), row.count,
                result.value().Avg(r, 1), row.sums[2]);
  }
}

}  // namespace

int main() {
  std::printf("bipie streaming ingest demo (%s)\n\n",
              ToolboxIsaDescription());
  HybridTable table({{"sensor", ColumnType::kString},
                     {"ts", ColumnType::kInt64},
                     {"value", ColumnType::kInt64}},
                    /*segment_rows=*/1 << 17);
  table.set_merge_threshold(1 << 20);  // manual merges for the demo

  const char* sensors[4] = {"temp", "rpm", "amps", "psi"};
  Rng rng(8128);
  int64_t ts = 0;

  // Phase 1: a burst of streamed readings; query them before any merge.
  for (int i = 0; i < 50000; ++i) {
    table.Insert({0, ++ts, rng.NextInRange(0, 500)},
                 {sensors[rng.NextBounded(4)], "", ""});
  }
  RunQuery(table, "after first burst, pre-merge");

  // Phase 2: the background task compresses the region into segments.
  table.Merge();
  std::printf("\n[merge] mutable region compressed into %zu encoded "
              "segment(s)\n\n",
              table.immutable().num_segments());
  RunQuery(table, "post-merge");

  // Phase 3: streaming continues; queries straddle both regions.
  for (int i = 0; i < 20000; ++i) {
    table.Insert({0, ++ts, rng.NextInRange(0, 500)},
                 {sensors[rng.NextBounded(4)], "", ""});
  }
  std::printf("\n");
  RunQuery(table, "straddling immutable + fresh rows");
  return 0;
}
