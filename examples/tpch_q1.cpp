// TPC-H Query 1 end to end (the paper's §6.3 scenario).
//
// Generates a lineitem table (row count from argv[1], default 1M), runs Q1
// through the BIPie scan and both baselines, prints the result table and
// the cycles/row for each engine.
//
// Usage: tpch_q1 [num_rows]
#include <cstdio>
#include <cstdlib>

#include "baseline/hash_agg.h"
#include "baseline/scalar_engine.h"
#include "common/cycle_timer.h"
#include "tpch/q1.h"
#include "vector/toolbox.h"

using namespace bipie;  // NOLINT

namespace {

template <typename Fn>
double TimeCyclesPerRow(size_t rows, Fn&& fn) {
  const uint64_t start = ReadCycleCounter();
  fn();
  return static_cast<double>(ReadCycleCounter() - start) /
         static_cast<double>(rows);
}

}  // namespace

int main(int argc, char** argv) {
  LineitemOptions options;
  options.num_rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : (size_t{1} << 20);
  std::printf("TPC-H Q1 on bipie (%s), lineitem rows: %zu\n",
              ToolboxIsaDescription(), options.num_rows);
  Table lineitem = MakeLineitemTable(options);

  BIPieScan scan(lineitem, MakeQ1Query(lineitem));
  QueryResult q1;
  const double bipie_cycles = TimeCyclesPerRow(lineitem.num_rows(), [&] {
    auto r = scan.Execute();
    if (!r.ok()) {
      std::fprintf(stderr, "Q1 failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    q1 = std::move(r).ValueOrDie();
  });

  std::printf("\n%s\n", FormatQ1Result(q1).c_str());
  std::printf("strategies: special-group batches=%zu, gather=%zu, "
              "multi-aggregate segments=%zu\n",
              scan.stats().selection.special_group,
              scan.stats().selection.gather,
              scan.stats().aggregation_segments[static_cast<int>(
                  AggregationStrategy::kMultiAggregate)]);

  const QuerySpec query = MakeQ1Query(lineitem);
  const double hash_cycles = TimeCyclesPerRow(lineitem.num_rows(), [&] {
    auto r = ExecuteQueryHashAgg(lineitem, query);
    if (!r.ok()) std::exit(1);
  });
  const double naive_cycles = TimeCyclesPerRow(lineitem.num_rows(), [&] {
    auto r = ExecuteQueryNaive(lineitem, query);
    if (!r.ok()) std::exit(1);
  });

  std::printf("\ncycles/row: bipie=%.1f  hash-agg=%.1f  naive=%.1f  "
              "(paper: BIPie 8.6, fastest published engine 28.8)\n",
              bipie_cycles, hash_cycles, naive_cycles);
  return 0;
}
