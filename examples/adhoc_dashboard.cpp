// Ad-hoc analytics scenario: the paper's motivating workload (§1) — a
// dashboard firing analytical queries with changing, ad-hoc filters against
// an operational events table. No pre-built index helps; every query is a
// filtered scan-and-aggregate, which is exactly what BIPie specializes.
//
// The example also demonstrates deleted rows (the operational side keeps
// retracting events) and segment elimination on a time predicate.
#include <cinttypes>
#include <cstdio>

#include "common/random.h"
#include "core/scan.h"
#include "storage/table.h"

using namespace bipie;  // NOLINT

namespace {

void RunAndPrint(const Table& events, const char* title, QuerySpec query) {
  BIPieScan scan(events, query);
  auto result = scan.Execute();
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", title,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s\n", title);
  for (size_t r = 0; r < result.value().rows.size(); ++r) {
    const ResultRow& row = result.value().rows[r];
    std::printf("  %-10s count=%-8" PRIu64,
                row.group.empty() ? "(all)" : row.group[0].string_value.c_str(),
                row.count);
    for (size_t a = 0; a < row.sums.size(); ++a) {
      if (query.aggregates[a].kind == AggregateSpec::Kind::kCount) continue;
      std::printf(" agg%zu=%" PRId64, a, row.sums[a]);
    }
    std::printf("\n");
  }
  std::printf("  [segments scanned=%zu eliminated=%zu | selection "
              "gather=%zu compact=%zu special=%zu full=%zu]\n\n",
              scan.stats().segments_scanned,
              scan.stats().segments_eliminated,
              scan.stats().selection.gather, scan.stats().selection.compact,
              scan.stats().selection.special_group,
              scan.stats().selection.unfiltered);
}

}  // namespace

int main() {
  // An events table: region (few values), event day, latency, bytes.
  Table events({{"region", ColumnType::kString},
                {"day", ColumnType::kInt64},
                {"latency_us", ColumnType::kInt64},
                {"bytes", ColumnType::kInt64}});
  TableAppender app(&events, /*segment_rows=*/65536);
  const char* regions[4] = {"us-east", "us-west", "eu", "apac"};
  Rng rng(7);
  const size_t kRows = 500000;
  for (size_t i = 0; i < kRows; ++i) {
    // Days arrive roughly in order, so per-segment day ranges are tight and
    // metadata can eliminate segments for recent-window queries.
    const int64_t day = static_cast<int64_t>(i * 365 / kRows) +
                        static_cast<int64_t>(rng.NextBounded(3));
    app.AppendRow({0, day, rng.NextInRange(50, 50000),
                   rng.NextInRange(100, 1 << 20)},
                  {regions[rng.NextBounded(4)], "", "", ""});
  }
  app.Flush();

  // The operational side retracts a sprinkling of events.
  for (int d = 0; d < 5000; ++d) {
    const size_t seg = rng.NextBounded(events.num_segments());
    events.mutable_segment(seg).DeleteRow(
        rng.NextBounded(events.segment(seg).num_rows()));
  }
  std::printf("events table: %zu rows, %zu segments, 5k retracted\n\n",
              events.num_rows(), events.num_segments());

  // Dashboard query 1: traffic by region, last 30 days (high elimination).
  {
    QuerySpec q;
    q.group_by = {"region"};
    q.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("bytes")};
    q.filters.emplace_back("day", CompareOp::kGe, int64_t{335});
    RunAndPrint(events, "bytes by region, day >= 335 (recent window):", q);
  }

  // Dashboard query 2: slow requests anywhere (selective filter -> gather).
  {
    QuerySpec q;
    q.group_by = {"region"};
    q.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("latency_us"),
                    AggregateSpec::Avg("latency_us")};
    q.filters.emplace_back("latency_us", CompareOp::kGt, int64_t{45000});
    RunAndPrint(events, "tail latency by region (latency > 45ms):", q);
  }

  // Dashboard query 3: broad filter (special-group territory), two sums.
  {
    QuerySpec q;
    q.group_by = {"region"};
    q.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("bytes"),
                    AggregateSpec::Sum("latency_us")};
    q.filters.emplace_back("latency_us", CompareOp::kLt, int64_t{49000});
    RunAndPrint(events, "volume + latency by region (broad filter):", q);
  }

  // Dashboard query 4: global totals, no grouping.
  {
    QuerySpec q;
    q.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("bytes")};
    RunAndPrint(events, "global totals:", q);
  }
  return 0;
}
