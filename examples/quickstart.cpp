// Quickstart: build a columnstore table, run a filtered group-by
// aggregation through the BIPie scan, and inspect what the engine did.
//
//   SELECT city, count(*), sum(amount)
//   FROM orders WHERE amount < 7500 GROUP BY city;
#include <cinttypes>
#include <cstdio>

#include "baseline/scalar_engine.h"
#include "core/scan.h"
#include "common/random.h"
#include "storage/table.h"
#include "vector/toolbox.h"

using namespace bipie;  // NOLINT

int main() {
  std::printf("bipie quickstart (vector toolbox: %s)\n\n",
              ToolboxIsaDescription());

  // 1. Declare a schema. Encodings are chosen automatically during
  //    compression unless pinned.
  Table orders({{"city", ColumnType::kString},
                {"amount", ColumnType::kInt64},
                {"items", ColumnType::kInt64}});

  // 2. Load rows. The appender encodes a segment every `segment_rows`
  //    rows (1M by default; smaller here so the demo has several).
  TableAppender appender(&orders, /*segment_rows=*/100000);
  const char* cities[5] = {"Houston", "Seattle", "Boston", "Denver",
                           "Chicago"};
  Rng rng(2018);
  for (int i = 0; i < 400000; ++i) {
    appender.AppendRow(
        {0, rng.NextInRange(100, 9999), rng.NextInRange(1, 40)},
        {cities[rng.NextBounded(5)], "", ""});
  }
  appender.Flush();
  std::printf("loaded %zu rows into %zu segments\n", orders.num_rows(),
              orders.num_segments());

  // 3. Describe the query.
  QuerySpec query;
  query.group_by = {"city"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount"),
                      AggregateSpec::Avg("items")};
  query.filters.emplace_back("amount", CompareOp::kLt, int64_t{7500});

  // 4. Execute. The scan picks selection and aggregation strategies at
  //    run time, per batch and per segment.
  BIPieScan scan(orders, query);
  auto result = scan.Execute();
  if (!result.ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-10s %10s %14s %10s\n", "city", "count(*)", "sum(amount)",
              "avg(items)");
  for (size_t r = 0; r < result.value().rows.size(); ++r) {
    const ResultRow& row = result.value().rows[r];
    std::printf("%-10s %10" PRIu64 " %14" PRId64 " %10.2f\n",
                row.group[0].string_value.c_str(), row.count, row.sums[1],
                result.value().Avg(r, 2));
  }

  // 5. Peek at the engine's choices.
  const ScanStats& stats = scan.stats();
  std::printf("\nengine report: %zu batches | selection: gather=%zu "
              "compact=%zu special-group=%zu unfiltered=%zu\n",
              stats.batches, stats.selection.gather, stats.selection.compact,
              stats.selection.special_group, stats.selection.unfiltered);

  // 6. Verify against the naive reference engine.
  auto reference = ExecuteQueryNaive(orders, query);
  const bool match =
      reference.ok() &&
      reference.value().rows.size() == result.value().rows.size();
  std::printf("naive reference engine agrees: %s\n", match ? "yes" : "NO");
  return match ? 0 : 1;
}
