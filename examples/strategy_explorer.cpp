// Strategy explorer: force every (selection x aggregation) combination on
// the same query and compare — a miniature, runnable version of the
// paper's §6.2 evaluation, and a demonstration of the override API.
//
// Usage: strategy_explorer [rows] [selectivity_percent]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cycle_timer.h"
#include "common/random.h"
#include "core/scan.h"
#include "storage/table.h"
#include "vector/toolbox.h"

using namespace bipie;  // NOLINT

int main(int argc, char** argv) {
  const size_t rows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (size_t{1} << 20);
  const int sel_pct = argc > 2 ? std::atoi(argv[2]) : 50;

  std::printf("strategy explorer: %zu rows, ~%d%% selectivity (%s)\n\n",
              rows, sel_pct, ToolboxIsaDescription());

  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"a", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"b", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"c", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"f", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, size_t{1} << 20);
  Rng rng(99);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({static_cast<int64_t>(rng.NextBounded(12)),
                   rng.NextInRange(0, (1 << 14) - 1),
                   rng.NextInRange(0, (1 << 14) - 1),
                   rng.NextInRange(0, (1 << 20) - 1),
                   rng.NextInRange(0, 99)});
  }
  app.Flush();

  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("a"),
                      AggregateSpec::Sum("b"), AggregateSpec::Sum("c")};
  query.filters.emplace_back("f", CompareOp::kLt,
                             static_cast<int64_t>(sel_pct));

  // Reference: adaptive run.
  BIPieScan adaptive(table, query);
  auto reference = adaptive.Execute();
  if (!reference.ok()) {
    std::fprintf(stderr, "%s\n", reference.status().ToString().c_str());
    return 1;
  }
  std::printf("adaptive engine picked: selection gather=%zu compact=%zu "
              "special=%zu | aggregation: ",
              adaptive.stats().selection.gather,
              adaptive.stats().selection.compact,
              adaptive.stats().selection.special_group);
  for (int a = 0; a < 5; ++a) {
    if (adaptive.stats().aggregation_segments[a] > 0) {
      std::printf("%s ",
                  AggregationStrategyName(static_cast<AggregationStrategy>(a)));
    }
  }
  std::printf("\n\n%-18s", "cycles/row");
  for (auto sel : {SelectionStrategy::kGather, SelectionStrategy::kCompact,
                   SelectionStrategy::kSpecialGroup}) {
    std::printf(" %14s", SelectionStrategyName(sel));
  }
  std::printf("\n");

  for (auto agg :
       {AggregationStrategy::kScalar, AggregationStrategy::kInRegister,
        AggregationStrategy::kSortBased,
        AggregationStrategy::kMultiAggregate}) {
    std::printf("%-18s", AggregationStrategyName(agg));
    for (auto sel : {SelectionStrategy::kGather, SelectionStrategy::kCompact,
                     SelectionStrategy::kSpecialGroup}) {
      ScanOptions options;
      options.overrides.selection = sel;
      options.overrides.aggregation = agg;
      BIPieScan scan(table, query, options);
      const uint64_t start = ReadCycleCounter();
      auto result = scan.Execute();
      const uint64_t cycles = ReadCycleCounter() - start;
      if (!result.ok()) {
        std::printf(" %14s", "n/a");
        continue;
      }
      // Correctness cross-check against the adaptive run.
      bool ok = result.value().rows.size() == reference.value().rows.size();
      for (size_t r = 0; ok && r < result.value().rows.size(); ++r) {
        ok = result.value().rows[r].sums == reference.value().rows[r].sums;
      }
      if (!ok) {
        std::printf(" %14s", "MISMATCH");
        continue;
      }
      std::printf(" %14.2f",
                  static_cast<double>(cycles) / static_cast<double>(rows));
    }
    std::printf("\n");
  }
  std::printf("\nEvery cell computed identical results; 'n/a' marks "
              "infeasible combinations.\n");
  return 0;
}
