// An interactive SQL shell over a bipie columnstore table.
//
// Demonstrates the SQL frontend, table persistence, and the adaptive scan
// in one loop:
//   sql_shell                 -- starts with a built-in demo sales table
//   sql_shell <file.bipie>    -- loads a saved table instead
//
// Commands:
//   SELECT ... FROM t ...     -- any query in the supported shape
//   \save <path>              -- persist the current table
//   \stats                    -- row/segment/encoding overview
//   \quit
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/cycle_timer.h"
#include "common/random.h"
#include "core/scan.h"
#include "sql/parser.h"
#include "storage/table_io.h"
#include "vector/toolbox.h"

using namespace bipie;  // NOLINT

namespace {

Table MakeDemoTable() {
  Table table({{"region", ColumnType::kString},
               {"product", ColumnType::kString},
               {"amount", ColumnType::kInt64},
               {"qty", ColumnType::kInt64},
               {"discount", ColumnType::kInt64}});
  TableAppender app(&table, 1 << 18);
  const char* regions[4] = {"north", "south", "east", "west"};
  const char* products[5] = {"pie", "tart", "cake", "flan", "crumble"};
  Rng rng(314159);
  for (int i = 0; i < 1000000; ++i) {
    app.AppendRow({0, 0, rng.NextInRange(100, 99999),
                   rng.NextInRange(1, 20), rng.NextInRange(0, 15)},
                  {regions[rng.NextBounded(4)], products[rng.NextBounded(5)],
                   "", "", ""});
  }
  app.Flush();
  return table;
}

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kBitPacked:
      return "bit-packed";
    case Encoding::kDictionary:
      return "dictionary";
    case Encoding::kRle:
      return "rle";
    case Encoding::kDelta:
      return "delta";
  }
  return "?";
}

void PrintStats(const Table& table) {
  std::printf("rows=%zu segments=%zu columns=%zu\n", table.num_rows(),
              table.num_segments(), table.num_columns());
  if (table.num_segments() == 0) return;
  const Segment& seg = table.segment(0);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const EncodedColumn& col = seg.column(c);
    std::printf("  %-12s %-10s %2d bits  %8zu encoded bytes (segment 0)\n",
                table.schema()[c].name.c_str(), EncodingName(col.encoding()),
                col.bit_width(), col.encoded_bytes());
  }
}

void PrintResult(const QuerySpec& query, const QueryResult& result) {
  for (const ResultRow& row : result.rows) {
    std::string line;
    for (const GroupValue& g : row.group) {
      line += (g.is_string ? g.string_value : std::to_string(g.int_value)) +
              " | ";
    }
    for (size_t a = 0; a < row.sums.size(); ++a) {
      if (query.aggregates[a].kind == AggregateSpec::Kind::kAvg) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f",
                      row.count == 0
                          ? 0.0
                          : static_cast<double>(row.sums[a]) /
                                static_cast<double>(row.count));
        line += buf;
      } else {
        line += std::to_string(row.sums[a]);
      }
      line += "  ";
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("(%zu rows)\n", result.rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  Table table = [&] {
    if (argc > 1) {
      auto loaded = LoadTable(argv[1]);
      if (loaded.ok()) {
        std::printf("loaded %s\n", argv[1]);
        return std::move(loaded).ValueOrDie();
      }
      std::fprintf(stderr, "%s — using demo table\n",
                   loaded.status().ToString().c_str());
    }
    return MakeDemoTable();
  }();

  std::printf("bipie sql shell (%s). \\stats for schema, \\quit to exit.\n",
              ToolboxIsaDescription());
  PrintStats(table);

  std::string line;
  while (std::printf("bipie> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\stats") {
      PrintStats(table);
      continue;
    }
    if (line.rfind("\\save ", 0) == 0) {
      const std::string path = line.substr(6);
      const Status st = SaveTable(table, path);
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      continue;
    }
    auto parsed = ParseQuery(line, table);
    if (!parsed.ok()) {
      std::printf("parse error: %s\n", parsed.status().ToString().c_str());
      continue;
    }
    BIPieScan scan(table, parsed.value().spec);
    const uint64_t start = ReadCycleCounter();
    auto result = scan.Execute();
    const uint64_t cycles = ReadCycleCounter() - start;
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(parsed.value().spec, result.value());
    std::printf("[%.1f cycles/row | selection g=%zu c=%zu s=%zu u=%zu]\n",
                static_cast<double>(cycles) /
                    static_cast<double>(table.num_rows()),
                scan.stats().selection.gather, scan.stats().selection.compact,
                scan.stats().selection.special_group,
                scan.stats().selection.unfiltered);
  }
  return 0;
}
