// Reproduces Figure 7: comparison of selection strategies.
//
// For bit widths 4 / 7 / 14 / 21 and a selectivity sweep, measures
// selection-with-unpack via gather and via physical compaction (unpack all
// + compact), reporting both and the best. Paper shape: gather wins at low
// selectivity, compaction above a crossover that moves right as the bit
// width grows (~2% at 4 bits, ~38% at 21 bits).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/strategy.h"
#include "vector/compact.h"
#include "vector/gather_select.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader(
      "Figure 7: selection with unpack — gather vs compaction, cycles/row",
      "BIPie SIGMOD'18 Figure 7 (crossover ~2% at 4 bits ... ~38% at 21 "
      "bits)");
  const size_t n = BenchRows();
  const double selectivities[] = {0.01, 0.02, 0.05, 0.10, 0.20,
                                  0.30, 0.38, 0.50, 0.70, 0.90};

  for (int w : {4, 7, 14, 21}) {
    auto packed = MakePackedColumn(n, w, 200 + w);
    const int word = SmallestWordBytes(w);
    std::printf("bit width %d (model crossover at %.0f%% selectivity)\n", w,
                GatherCrossoverSelectivity(w) * 100);
    std::printf("  %12s %10s %10s %8s\n", "selectivity", "gather",
                "compact", "winner");
    AlignedBuffer unpacked(n * word);
    AlignedBuffer out(n * word + 64);
    AlignedBuffer idx_buf((n + 8) * sizeof(uint32_t));
    int crossover_reported = 0;
    for (double sel : selectivities) {
      auto sel_bytes = MakeSelection(n, sel, static_cast<uint64_t>(sel * 1e4));
      const double gather = MeasureCyclesPerRow(n, [&] {
        const size_t m = CompactToIndexVector(sel_bytes.data(), n,
                                              idx_buf.data_as<uint32_t>());
        GatherSelect(packed.data(), w, idx_buf.data_as<uint32_t>(), m,
                     out.data(), word);
        Consume(out.data(), m * word);
      });
      const double compact = MeasureCyclesPerRow(n, [&] {
        BitUnpack(packed.data(), 0, n, w, unpacked.data());
        const size_t m = CompactValues(sel_bytes.data(), unpacked.data(), n,
                                       word, out.data());
        Consume(out.data(), m * word);
      });
      const bool gather_wins = gather < compact;
      if (!gather_wins && crossover_reported == 0) crossover_reported = 1;
      std::printf("  %11.0f%% %10.2f %10.2f %8s\n", sel * 100, gather,
                  compact, gather_wins ? "gather" : "compact");
    }
    std::printf("\n");
  }
  return 0;
}
