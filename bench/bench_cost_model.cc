// Cost model A/B benchmark (DESIGN.md §17): heuristic-vs-model admission
// on whole scans, plus predicted-vs-measured cycles/row for the shapes the
// model scores.
//
// Two questions, one cell each:
//
//  * Where the model's pick DIVERGES from the hand-tuned heuristics (the
//    filtered mixed shape: heuristics keep multi-aggregate, the model
//    prices selection folding and picks sort-based), is the model's plan
//    actually faster? This is the acceptance A/B for cost_model=on.
//  * Where both agree (run-shaped scan, byteslice-filtered scan), how far
//    are the builtin profile's predicted cycles/row from the measured
//    whole-scan numbers? The gap is the model error EXPERIMENTS.md tracks.
//
// Cells are single-threaded over identical tables; the only difference
// between /heuristic and /model rows is overrides.cost_model.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/scan.h"
#include "obs/plan_explain.h"

using namespace bipie;         // NOLINT
using namespace bipie::bench;  // NOLINT

namespace {

// Scaled-up clone of the golden mixed shape: dictionary string group,
// narrow + wide packed sums, 25%-selective filter.
Table MakeMixedTable(size_t rows) {
  Table table({
      {"g", ColumnType::kString},
      {"narrow", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"wide", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"filter_col", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, /*segment_rows=*/size_t{1} << 16);
  Rng rng(6001);
  const char* groups[4] = {"east", "west", "north", "south"};
  for (size_t i = 0; i < rows; ++i) {
    std::vector<int64_t> ints(4, 0);
    std::vector<std::string> strings(4);
    strings[0] = groups[rng.NextBounded(4)];
    ints[1] = rng.NextInRange(0, 127);
    ints[2] = rng.NextInRange(0, (1 << 20) - 1);
    ints[3] = rng.NextInRange(0, 999);
    app.AppendRow(ints, strings);
  }
  app.Flush();
  return table;
}

QuerySpec MakeMixedQuery() {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("narrow"),
                      AggregateSpec::Sum("wide")};
  query.filters.emplace_back("filter_col", CompareOp::kLt, int64_t{250});
  return query;
}

// Sorted 6-group table with packed sums: the run pipeline's home turf.
Table MakeRunTable(size_t rows) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kAuto},
               {"qty", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"price", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, /*segment_rows=*/size_t{1} << 16);
  Rng rng(6002);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({static_cast<int64_t>(i * 6 / rows),
                   rng.NextInRange(1, 50), rng.NextInRange(1000, 100000)});
  }
  app.Flush();
  return table;
}

QuerySpec MakeRunQuery() {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("qty"),
                      AggregateSpec::Sum("price")};
  return query;
}

// 22-bit byteslice filter column at ~6% selectivity.
Table MakeByteSliceTable(size_t rows) {
  Table table({
      {"g", ColumnType::kInt64, EncodingChoice::kDictionary},
      {"sliced", ColumnType::kInt64, EncodingChoice::kByteSliced},
      {"amount", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, /*segment_rows=*/size_t{1} << 16);
  Rng rng(6003);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({rng.NextInRange(0, 5),
                   rng.NextInRange(0, (int64_t{1} << 22) - 1),
                   rng.NextInRange(0, 499)});
  }
  app.Flush();
  return table;
}

QuerySpec MakeByteSliceQuery() {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};
  query.filters.emplace_back("sliced", CompareOp::kLt, int64_t{1} << 18);
  return query;
}

struct Cell {
  std::string chosen;       // aggregation strategy of segment 0
  double predicted = -1.0;  // model cycles/row for that strategy (-1: off)
  double measured = 0.0;    // whole-scan cycles/row
};

Cell RunCell(const std::string& label, const Table& table,
             const QuerySpec& query, CostModelMode mode) {
  ScanOptions options;
  options.num_threads = 1;
  options.overrides.cost_model = mode;
  Cell cell;
  {
    BIPieScan scan(table, query, options);
    auto explain = scan.Explain();
    if (explain.ok() && !explain.value().segments.empty()) {
      const PlanDecision& d = explain.value().segments[0].decision;
      cell.chosen = AggregationStrategyName(d.aggregation);
      const double cpr =
          d.model_total_cpr[static_cast<int>(d.aggregation)];
      if (d.cost_model_mode != CostModelMode::kOff && cpr >= 0.0) {
        cell.predicted = cpr;
      }
    }
  }
  cell.measured = MeasureCyclesPerRow(table.num_rows(), label, [&] {
    auto result = ExecuteQuery(table, query, options);
    if (result.ok()) {
      Consume(result.value().rows.data(),
              result.value().rows.size() * sizeof(result.value().rows[0]));
    }
  });
  if (cell.predicted >= 0.0) {
    BenchJsonReport::Get().Add(
        label + "/predicted",
        {{"predicted_cycles_per_row", cell.predicted}});
  }
  return cell;
}

void RunShape(const char* shape, const Table& table, const QuerySpec& query) {
  const CostModelMode modes[3] = {CostModelMode::kOff, CostModelMode::kOn,
                                  CostModelMode::kAdaptive};
  const char* mode_names[3] = {"heuristic", "model", "adaptive"};
  std::printf("%s (%zu rows)\n", shape, table.num_rows());
  for (int m = 0; m < 3; ++m) {
    const Cell cell = RunCell(std::string(shape) + "/" + mode_names[m],
                              table, query, modes[m]);
    std::printf("  %-10s %-16s measured %7.3f cycles/row", mode_names[m],
                cell.chosen.c_str(), cell.measured);
    if (cell.predicted >= 0.0) {
      std::printf("  (model predicted %.3f)", cell.predicted);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintBenchHeader("Cost model",
                   "DESIGN.md 17: heuristic vs model admission A/B, "
                   "predicted vs measured cycles/row");
  const size_t rows = BenchRows();
  RunShape("mixed_filtered", MakeMixedTable(rows), MakeMixedQuery());
  RunShape("run_sorted", MakeRunTable(rows), MakeRunQuery());
  RunShape("byteslice_selective", MakeByteSliceTable(rows),
           MakeByteSliceQuery());
  return 0;
}
