// Byteslice early-pruning scan vs bit-packed decode-then-compare
// (DESIGN.md §16): the tentpole claim is that for selective predicates on
// wide values the plane kernels touch ~1/np of the data and beat the
// decode-then-compare fallback. Sweep is selectivity x bit width, both
// paths evaluating the identical `v < literal` predicate batch-at-a-time
// (4096 rows, the scan's batch size) over identical value streams.
//
//   byteslice   ByteSliceCompare over np byte planes, early exit armed
//   bitpacked   BitUnpackToWord (the smallest word) + CompareUnsignedWords
//
// Expected shape: at <=10% selectivity and >=17-bit widths the byteslice
// path wins by >=1.5x (plane 0 decides almost every lane); at ~100%
// selectivity on equality-heavy data the pruning cannot fire and the two
// paths converge — which is exactly why strategy.cc gates admission on the
// estimated selectivity.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "encoding/byteslice.h"
#include "expr/predicate.h"
#include "vector/byteslice_scan.h"

using namespace bipie;         // NOLINT
using namespace bipie::bench;  // NOLINT

namespace {

constexpr size_t kBatch = 4096;

struct Cell {
  double byteslice_cycles = 0;
  double bitpacked_cycles = 0;
};

Cell MeasureCell(size_t n, int w, double selectivity) {
  // Uniform values over the full width: `v < lit` at the quantile hits the
  // target selectivity exactly in expectation.
  std::vector<uint64_t> values(n);
  Rng rng(1000 + static_cast<uint64_t>(w * 100 + selectivity * 10));
  const uint64_t mask = LowBitsMask(w);
  for (auto& v : values) v = rng.Next() & mask;
  const uint64_t lit =
      static_cast<uint64_t>(selectivity * static_cast<double>(mask));

  AlignedBuffer planes(ByteSliceBytes(n, w));
  ByteSlicePack(values.data(), n, w, planes.data());
  AlignedBuffer packed(BitPackedBytes(n, w) + 8);
  BitPack(values.data(), n, w, packed.data());

  const int np = ByteSlicePlanes(w);
  const int word = SmallestWordBytes(w);
  const uint64_t shifted = ByteSliceShift(lit, w);
  AlignedBuffer sel(kBatch);
  AlignedBuffer scratch(kBatch * static_cast<size_t>(word));

  char label[64];
  Cell cell;
  std::snprintf(label, sizeof(label), "w%d/sel%02d/byteslice", w,
                static_cast<int>(selectivity * 100));
  cell.byteslice_cycles = MeasureCyclesPerRow(n, label, [&] {
    for (size_t start = 0; start < n; start += kBatch) {
      const size_t m = std::min(kBatch, n - start);
      ByteSliceCompare(planes.data(), n, np, start, m, CompareOp::kLt,
                       shifted, 0, sel.data());
      Consume(sel.data(), m);
    }
  });
  std::snprintf(label, sizeof(label), "w%d/sel%02d/bitpacked", w,
                static_cast<int>(selectivity * 100));
  cell.bitpacked_cycles = MeasureCyclesPerRow(n, label, [&] {
    for (size_t start = 0; start < n; start += kBatch) {
      const size_t m = std::min(kBatch, n - start);
      BitUnpackToWord(packed.data(), start, m, w, scratch.data(), word);
      internal::CompareUnsignedWords(scratch.data(), m, word, CompareOp::kLt,
                                     lit, sel.data());
      Consume(sel.data(), m);
    }
  });
  return cell;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Byteslice early-pruning scan vs bit-packed decode-then-compare",
      "byte-planar predicate kernels, selectivity x width sweep "
      "(DESIGN.md §16)");
  BenchJsonReport::Get().SetName("byteslice");

  const size_t n = BenchRows();
  const int widths[] = {8, 12, 17, 25, 33};
  const double selectivities[] = {0.01, 0.05, 0.10, 0.50, 0.90};

  std::printf("%-6s %-6s %14s %14s %10s\n", "width", "sel", "byteslice c/r",
              "bitpacked c/r", "speedup");
  double min_selective_speedup = 1e30;
  for (const int w : widths) {
    for (const double s : selectivities) {
      const Cell cell = MeasureCell(n, w, s);
      const double speedup = cell.byteslice_cycles > 0
                                 ? cell.bitpacked_cycles / cell.byteslice_cycles
                                 : 0.0;
      std::printf("%-6d %-6.2f %14.3f %14.3f %9.2fx\n", w, s,
                  cell.byteslice_cycles, cell.bitpacked_cycles, speedup);
      if (w >= 17 && s <= 0.10 && speedup < min_selective_speedup) {
        min_selective_speedup = speedup;
      }
    }
  }
  std::printf(
      "\nmin speedup over decode-then-compare at sel<=0.10, w>=17: %.2fx "
      "(acceptance floor 1.5x)\n",
      min_selective_speedup);
  BenchJsonReport::Get().Add(
      "summary", {{"min_selective_speedup", min_selective_speedup}});
  return 0;
}
