// Reproduces Table 2: Sort-Based SUM aggregation, cycles/row/aggregate.
//
// 23-bit packed aggregate columns, no filters; {4, 8, 16} groups x
// {1, 2, 4} sums. Paper values: 3.13..1.74 (4 groups), 3.59..1.89 (8),
// 3.61..1.92 (16) — per-aggregate cost falls as the fixed sorting cost
// amortizes over more sums.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "storage/types.h"
#include "vector/agg_sort.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader(
      "Table 2: sort-based SUM, cycles/row/sum (23-bit inputs, no filter)",
      "BIPie SIGMOD'18 Table 2 (paper: 3.13/2.21/1.74 | 3.59/2.49/1.89 | "
      "3.61/2.48/1.92)");
  const size_t n = BenchRows();
  constexpr int kBits = 23;
  const int sum_counts[] = {1, 2, 4};

  std::printf("%10s", "");
  for (int sums : sum_counts) std::printf(" %8d sum%s", sums,
                                          sums > 1 ? "s" : " ");
  std::printf("\n");

  std::vector<AlignedBuffer> columns;
  for (int c = 0; c < 4; ++c) {
    columns.push_back(MakePackedColumn(n, kBits, 60 + c));
  }

  double first = 0, last = 0;
  for (int groups : {4, 8, 16}) {
    auto group_ids = MakeGroups(n, groups, groups * 7);
    std::printf("%2d groups ", groups);
    for (int sums : sum_counts) {
      std::vector<uint64_t> acc(static_cast<size_t>(groups), 0);
      SortedBatch batch;
      // Process batch-at-a-time as the engine does: sort each 4096-row
      // window once, then gather-sum each aggregate column.
      const double cycles = MeasureCyclesPerRow(n, [&] {
        for (size_t start = 0; start < n; start += kBatchRows) {
          const size_t m = std::min(kBatchRows, n - start);
          batch.Sort(group_ids.data() + start, nullptr, m, groups);
          for (int c = 0; c < sums; ++c) {
            // Rebase the packed stream to the window (23 bits * 4096 rows
            // is byte aligned).
            const uint8_t* packed =
                columns[c].data() + start * kBits / 8;
            SortedGatherSum(packed, kBits, batch, acc.data());
          }
        }
        Consume(acc.data(), acc.size() * 8);
      });
      const double per_sum = cycles / sums;
      std::printf(" %12.2f", per_sum);
      if (groups == 4 && sums == 1) first = per_sum;
      if (groups == 4 && sums == 4) last = per_sum;
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape check: 4 sums amortize sorting vs 1 sum (paper ~1.8x): "
      "%.2fx\n",
      first / last);
  return 0;
}
