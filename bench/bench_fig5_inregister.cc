// Reproduces Figure 5: performance of in-register aggregation.
//
// Cycles/row versus number of groups (2..32) for COUNT(*), SUM of 1-byte,
// 2-byte and 4-byte values, with scalar COUNT(*) as the reference. Paper
// shape: cost grows linearly with groups (one compare-add per group per
// vector); narrower values are faster (more SIMD lanes); scalar count is a
// flat line the SIMD variants undercut until the group count grows large.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "vector/agg_inregister.h"
#include "vector/agg_scalar.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader(
      "Figure 5: in-register aggregation cycles/row vs group count",
      "BIPie SIGMOD'18 Figure 5 (shape: linear in groups; narrower inputs "
      "faster)");
  const size_t n = BenchRows();
  auto v8 = MakeDecodedValues(n, 8, 1, 21);
  auto v16 = MakeDecodedValues(n, 14, 2, 22);
  auto v32 = MakeDecodedValues(n, 28, 4, 23);

  std::printf("%7s %9s %9s %10s %10s %13s\n", "groups", "count", "sum 1B",
              "sum 2B", "sum 4B", "scalar count");
  double count2 = 0, count32 = 0;
  for (int groups : {2, 4, 6, 8, 12, 16, 20, 24, 28, 32}) {
    auto ids = MakeGroups(n, groups, groups * 3 + 1);
    std::vector<uint64_t> acc(static_cast<size_t>(groups), 0);
    auto measure = [&](auto fn) {
      return MeasureCyclesPerRow(n, [&] {
        std::fill(acc.begin(), acc.end(), 0);
        fn();
        Consume(acc.data(), acc.size() * 8);
      });
    };
    const double count = measure(
        [&] { InRegisterCount(ids.data(), n, groups, acc.data()); });
    const double sum8 = measure([&] {
      InRegisterSum8(ids.data(), v8.data(), n, groups, acc.data());
    });
    const double sum16 = measure([&] {
      InRegisterSum16(ids.data(), v16.data_as<uint16_t>(), n, groups,
                      acc.data());
    });
    const double sum32 = measure([&] {
      InRegisterSum32(ids.data(), v32.data_as<uint32_t>(), n, groups,
                      (1u << 28) - 1, acc.data());
    });
    const double scalar = measure([&] {
      ScalarCountMultiArray(ids.data(), n, groups, acc.data());
    });
    std::printf("%7d %9.2f %9.2f %10.2f %10.2f %13.2f\n", groups, count,
                sum8, sum16, sum32, scalar);
    if (groups == 2) count2 = count;
    if (groups == 32) count32 = count;
  }
  std::printf(
      "\nshape check: count cost grows with groups (32 vs 2 groups): "
      "%.1fx\n",
      count32 / count2);
  return 0;
}
