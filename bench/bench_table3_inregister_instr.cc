// Reproduces Table 3: in-register aggregation — instructions per group per
// 32 input values, plus measured cycles as corroboration.
//
// Paper values (instructions / 32 values / group): COUNT(*) 1.5, SUM 1-byte
// 3, SUM 2-byte 7, SUM 4-byte 12. Our inner loops issue 2 / 4 / 8 / 12 —
// the same ordering and growth; the small deltas come from
// instruction-selection differences (the paper's COUNT folds the compare
// constant, our SUM16 splits the group-id widen).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "vector/agg_inregister.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader(
      "Table 3: in-register aggregation, instructions per group per 32 "
      "values",
      "BIPie SIGMOD'18 Table 3 (paper: 1.5 / 3 / 7 / 12)");
  const size_t n = BenchRows();
  constexpr int kGroups = 8;
  auto groups = MakeGroups(n, kGroups, 5);
  auto v8 = MakeDecodedValues(n, 8, 1, 11);
  auto v16 = MakeDecodedValues(n, 14, 2, 12);
  auto v32 = MakeDecodedValues(n, 28, 4, 13);
  std::vector<uint64_t> acc(kGroups, 0);

  const auto instr = GetInRegisterInstructionCounts();
  struct Row {
    const char* variant;
    const char* input;
    const char* counter;
    double paper_instr;
    double our_instr;
    double cycles;
  } rows[4];

  rows[0] = {"COUNT(*)", "-", "8 bits", 1.5, instr.count_star,
             MeasureCyclesPerRow(n, [&] {
               std::fill(acc.begin(), acc.end(), 0);
               InRegisterCount(groups.data(), n, kGroups, acc.data());
               Consume(acc.data(), acc.size() * 8);
             })};
  rows[1] = {"SUM(x)", "1 byte", "16 bits", 3.0, instr.sum8,
             MeasureCyclesPerRow(n, [&] {
               std::fill(acc.begin(), acc.end(), 0);
               InRegisterSum8(groups.data(), v8.data(), n, kGroups,
                              acc.data());
               Consume(acc.data(), acc.size() * 8);
             })};
  rows[2] = {"SUM(x)", "2 bytes", "32 bits", 7.0, instr.sum16,
             MeasureCyclesPerRow(n, [&] {
               std::fill(acc.begin(), acc.end(), 0);
               InRegisterSum16(groups.data(), v16.data_as<uint16_t>(), n,
                               kGroups, acc.data());
               Consume(acc.data(), acc.size() * 8);
             })};
  rows[3] = {"SUM(x)", "4 bytes", "32 bits", 12.0, instr.sum32,
             MeasureCyclesPerRow(n, [&] {
               std::fill(acc.begin(), acc.end(), 0);
               InRegisterSum32(groups.data(), v32.data_as<uint32_t>(), n,
                               kGroups, (1u << 28) - 1, acc.data());
               Consume(acc.data(), acc.size() * 8);
             })};

  std::printf("%-10s %-9s %-13s %-12s %-11s %s\n", "Variant", "Input",
              "size/counter", "paper instr", "our instr",
              "measured cycles/row (8 groups)");
  for (const Row& r : rows) {
    std::printf("%-10s %-9s %-13s %-12.1f %-11.1f %.2f\n", r.variant,
                r.input, r.counter, r.paper_instr, r.our_instr, r.cycles);
  }
  std::printf(
      "\nshape check: cost strictly grows with input width: %s\n",
      (rows[0].cycles < rows[3].cycles && rows[1].cycles <= rows[2].cycles)
          ? "yes"
          : "NO");
  return 0;
}
