// Concurrent-query throughput: shared morsel pool vs per-query threads.
//
// N client threads each run a closed loop of TPC-H Q1- and Q6-shaped scans
// against one shared lineitem table, under two execution models:
//   * pool  — ScanOptions::num_threads = 0: every query submits morsels to
//     the process-wide work-stealing scheduler (src/exec);
//   * spawn — the legacy model: every query spawns its own max(2, hw)
//     threads for the duration of the scan.
// Reported per (model, clients) cell: aggregate queries/sec and p50/p99
// per-query wall latency. The pool should win once clients oversubscribe
// the machine (>= 4 concurrent queries), because spawn pays thread
// creation per query and floods the OS scheduler with clients x threads
// runnable threads, while the pool multiplexes every query onto one
// hardware-sized worker set. With a single client the pool must stay
// within a few percent of spawn (morsel splitting is the only overhead).
//
// Environment knobs (plus the usual BIPIE_BENCH_ROWS / BIPIE_BENCH_REPEATS):
//   BIPIE_BENCH_CLIENTS  comma-free max client count, default 8
//
// Sustained-load server mode (--duration-sec N): instead of the closed-loop
// cells above, starts the real query service (src/server) on a loopback
// ephemeral port with a small admission slot count, and drives it open-loop
// through the client library: two priority bands (high / low), each with a
// fixed arrival schedule that does not wait for completions. Latency is
// measured from the *scheduled* arrival, so a backlogged server is charged
// for the queue it built (no coordinated omission). Reported per band: QPS,
// p50/p99 latency, server-side admission queue wait, rejections; plus the
// process-tracker high-water mark. Under saturation the high band's p99
// must undercut the low band's — that is the whole point of the
// priority-aware admission queue.
//
//   bench_concurrent_queries --duration-sec 10 [--arrival-qps R]
//       [--clients-per-band N] [--max-concurrent K] [--queue-limit Q]
//       [--aging-ms MS] [--chaos] [--chaos-seed S] [--fault-prob P]
//
// --arrival-qps 0 (default) auto-calibrates: it measures one uncontended
// query's wire latency and targets ~2x the slot capacity, i.e. guaranteed
// saturation without unbounded backlog.
//
// Chaos mode (--chaos, with --duration-sec): the same sustained two-band
// load, but with every socket and allocation failpoint armed at seeded
// probabilities (server short/torn reads, connection resets, send failures,
// accept faults, delayed poll wakeups; client connect/recv/send faults;
// allocation failures) while clients run with timeouts + retry/backoff.
// Individual query errors are expected and tolerated; what must hold are
// the failure invariants (DESIGN.md §15):
//   * no crash, no hang: every request ends in a terminal reply or a clean
//     disconnect within its timeout;
//   * the server stays live: a clean client can Ping it after the storm;
//   * nothing leaks: admission queues drain to zero, the process tracker
//     returns to its pre-storm baseline after Shutdown, and the process fd
//     count is back to where it started.
// Exit code is 0 only if all invariants hold. Requires a build with
// BIPIE_ENABLE_FAILPOINTS (debug/asan/tsan presets); refuses to run otherwise.
#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/failpoint.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "exec/query_context.h"
#include "exec/query_settings.h"
#include "exec/scheduler.h"
#include "server/client.h"
#include "server/server.h"
#include "tpch/q1.h"
#include "tpch/q6.h"

using namespace bipie;         // NOLINT
using namespace bipie::bench;  // NOLINT

namespace {

struct CellResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  // Process-root tracker high-water mark across the cell, and how many
  // queries the per-query limit (if any) turned away structurally.
  size_t peak_tracked_bytes = 0;
  size_t resource_exhausted = 0;
};

double PercentileMs(std::vector<double>& latencies_ms, double p) {
  if (latencies_ms.empty()) return 0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies_ms.size() - 1) + 0.5);
  return latencies_ms[idx];
}

// Runs `clients` closed-loop client threads, each issuing `iters` queries
// alternating Q1 and Q6, and gathers per-query latencies. A non-zero
// `memory_limit` gives every query its own governed QueryContext; queries
// the limit turns away (kResourceExhausted) are counted, not timed.
CellResult RunCell(const Table& lineitem, size_t clients, int iters,
                   size_t num_threads, uint64_t memory_limit = 0) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<size_t> exhausted(clients, 0);
  MemoryTracker::Process().ResetPeak();
  const auto bench_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      latencies[c].reserve(iters);
      for (int i = 0; i < iters; ++i) {
        QueryContext context;
        ScanOptions options;
        options.num_threads = num_threads;
        if (memory_limit > 0) {
          BIPIE_DCHECK(context.settings()
                           .SetUInt64("memory_limit_bytes", memory_limit)
                           .ok());
          context.ApplySettings();
          options.context = &context;
        }
        const auto start = std::chrono::steady_clock::now();
        auto r = (c + i) % 2 == 0 ? RunQ1(lineitem, options)
                                  : RunQ6(lineitem, options);
        const auto stop = std::chrono::steady_clock::now();
        if (!r.ok() &&
            r.status().code() == StatusCode::kResourceExhausted) {
          ++exhausted[c];
          continue;
        }
        BIPIE_DCHECK(r.ok());
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(stop - start).count());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double total_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  CellResult result;
  result.qps =
      total_secs > 0 ? static_cast<double>(all.size()) / total_secs : 0;
  result.p50_ms = PercentileMs(all, 0.50);
  result.p99_ms = PercentileMs(all, 0.99);
  result.peak_tracked_bytes = MemoryTracker::Process().peak();
  for (size_t n : exhausted) result.resource_exhausted += n;
  return result;
}

// --- sustained-load server mode ---------------------------------------------

// Q1- and Q6-shaped SQL against the generated lineitem schema (decimals are
// fixed-point: quantity is units*100, discount is hundredths).
constexpr const char* kQ1Sql =
    "SELECT l_returnflag, l_linestatus, count(*), sum(l_quantity), "
    "sum(l_extendedprice) FROM lineitem WHERE l_shipdate <= 2436 "
    "GROUP BY l_returnflag, l_linestatus";
constexpr const char* kQ6Sql =
    "SELECT sum(l_extendedprice * l_discount) FROM lineitem "
    "WHERE l_shipdate BETWEEN 1096 AND 1460 AND l_discount BETWEEN 5 AND 7 "
    "AND l_quantity < 2400";

struct LoadFlags {
  double duration_sec = 10;
  double arrival_qps = 0;  // total across both bands; 0 = auto-calibrate
  size_t clients_per_band = 4;
  size_t max_concurrent = 2;  // admission slots; small so the queue engages
  size_t queue_limit = 64;
  uint64_t aging_ms = 500;
  bool chaos = false;        // arm failpoints, assert failure invariants
  uint64_t chaos_seed = 42;  // seeds every failpoint's coin flips
  double fault_prob = 0;     // > 0 overrides every class's probability
};

struct BandStats {
  std::vector<double> latency_ms;     // completion minus *scheduled* arrival
  std::vector<double> queue_wait_ms;  // server-side time in admission queue
  size_t completed = 0;
  size_t rejected = 0;     // admission queue full (kResourceExhausted)
  size_t unavailable = 0;  // shed / transport failures after retries
  size_t errors = 0;
};

// Live fds of this process (/proc/self/fd entries, excluding the iterating
// dirfd itself). The chaos run brackets the server's lifetime with this to
// prove no socket or pipe leaks.
size_t CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count > 0 ? count - 1 : 0;  // minus the opendir fd
}

// Diagnostic for a failed fd invariant: what each open descriptor points
// at (socket inode, pipe, file path), so a CI log identifies the leak.
void DumpOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    char link[64];
    std::snprintf(link, sizeof(link), "/proc/self/fd/%s", entry->d_name);
    char target[256];
    ssize_t n = ::readlink(link, target, sizeof(target) - 1);
    target[n > 0 ? n : 0] = '\0';
    std::fprintf(stderr, "  fd %s -> %s\n", entry->d_name, target);
  }
  ::closedir(dir);
}

// One open-loop client: issues queries on a fixed schedule (offset + n *
// interval from t0), alternating Q1 and Q6 shapes. One query is in flight
// per connection, so a worker that falls behind schedule sends immediately
// on completion — and the latency, measured from the scheduled arrival,
// absorbs the slip. clients_per_band workers approximate a true open loop.
BandStats RunOpenLoopWorker(uint16_t port, const std::string& priority,
                            double worker_qps, double offset_sec,
                            std::chrono::steady_clock::time_point t0,
                            double duration_sec,
                            const server::ClientOptions& client_options) {
  BandStats stats;
  server::Client client(client_options);
  // Under chaos the first connect can be the one the fault injector kills:
  // keep trying briefly rather than silently running a worker-less band.
  Status setup;
  for (int attempt = 0; attempt < 50; ++attempt) {
    setup = client.Connect("127.0.0.1", port);
    if (setup.ok()) setup = client.Set("priority", priority);
    if (setup.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!setup.ok()) {
    ++stats.errors;
    return stats;
  }
  const double interval_sec = 1.0 / worker_qps;
  for (size_t n = 0;; ++n) {
    const double at = offset_sec + static_cast<double>(n) * interval_sec;
    if (at >= duration_sec) break;
    const auto scheduled =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(at));
    std::this_thread::sleep_until(scheduled);  // no-op when already late
    QueryResult result;
    server::QueryStatsWire wire_stats;
    const Status status =
        client.Query(n % 2 == 0 ? kQ1Sql : kQ6Sql, &result, &wire_stats);
    const auto done = std::chrono::steady_clock::now();
    if (status.ok()) {
      ++stats.completed;
      stats.latency_ms.push_back(
          std::chrono::duration<double, std::milli>(done - scheduled).count());
      stats.queue_wait_ms.push_back(
          static_cast<double>(wire_stats.queue_wait_ns) / 1e6);
    } else if (status.code() == StatusCode::kResourceExhausted) {
      ++stats.rejected;
    } else if (status.code() == StatusCode::kUnavailable) {
      // Shed rejection or a transport failure the retry policy gave up on:
      // the structured "not now" answer, distinct from a broken query.
      ++stats.unavailable;
    } else {
      ++stats.errors;
    }
  }
  return stats;
}

void MergeBand(BandStats* into, BandStats&& from) {
  into->latency_ms.insert(into->latency_ms.end(), from.latency_ms.begin(),
                          from.latency_ms.end());
  into->queue_wait_ms.insert(into->queue_wait_ms.end(),
                             from.queue_wait_ms.begin(),
                             from.queue_wait_ms.end());
  into->completed += from.completed;
  into->rejected += from.rejected;
  into->unavailable += from.unavailable;
  into->errors += from.errors;
}

// Arms every socket and allocation failpoint at a seeded probability. The
// torn-IO classes (short reads/writes) run hotter than the hard-failure
// classes (resets, send/recv errors) — tearing must be survivable at high
// rates, hard failures cost a reconnect each. A fault_prob > 0 flattens
// everything to that rate.
void ArmChaosFailpoints(uint64_t seed, double fault_prob) {
  struct FaultClass {
    const char* name;
    double probability;
  };
  const FaultClass classes[] = {
      {"server/read_short", 0.05},   {"server/send_partial", 0.05},
      {"server/read_reset", 0.01},   {"server/send_fail", 0.01},
      {"server/accept_fail", 0.02},  {"server/poll_delay", 0.02},
      {"client/read_short", 0.05},   {"client/connect_fail", 0.02},
      {"client/recv_fail", 0.01},    {"client/send_fail", 0.01},
      {"aligned_buffer/alloc_fail", 0.01},
      {"scan/morsel_scratch_alloc", 0.01},
  };
  uint64_t salt = 0;
  for (const FaultClass& fc : classes) {
    const double p = fault_prob > 0 ? fault_prob : fc.probability;
    Failpoints::FailWithProbability(fc.name, p, seed + salt++);
    std::printf("  chaos: %-32s p=%.3f\n", fc.name, p);
  }
}

int RunSustainedLoad(const LoadFlags& flags) {
#if !defined(BIPIE_ENABLE_FAILPOINTS)
  if (flags.chaos) {
    std::fprintf(stderr,
                 "--chaos needs a build with BIPIE_ENABLE_FAILPOINTS "
                 "(debug/asan/tsan presets); this binary has the sites compiled "
                 "out\n");
    return 2;
  }
#endif
  PrintBenchHeader(
      "Concurrent queries: shared morsel pool vs per-query threads",
      flags.chaos
          ? "beyond the paper; sustained load with socket/alloc fault "
            "injection against the query service (src/server)"
          : "beyond the paper; open-loop load against the query service "
            "(src/server) with priority-aware admission");

  LineitemOptions options;
  options.num_rows = BenchRows();
  options.segment_rows = std::max<size_t>(
      kBatchRows, std::min<size_t>(kDefaultSegmentRows, options.num_rows / 8));
  std::printf("generating lineitem (%zu rows, %zu-row segments)...\n",
              options.num_rows, options.segment_rows);
  Table lineitem = MakeLineitemTable(options);

  // Failure-invariant brackets: fds before the server exists, tracker
  // baseline after warmup (below). Both must be restored at the end.
  const size_t fds_before = CountOpenFds();

  server::ServerOptions server_options;
  server_options.port = 0;  // ephemeral loopback
  server_options.admission.max_concurrent_queries = flags.max_concurrent;
  server_options.admission.max_queued_queries = flags.queue_limit;
  server_options.admission.aging_ms = flags.aging_ms;
  if (flags.chaos) {
    // Tight enough that the storm actually exercises the deadlines and the
    // shed policy, loose enough that healthy requests never trip them.
    server_options.write_stall_timeout_ms = 5000;
    server_options.frame_read_timeout_ms = 5000;
    server_options.shed_queue_wait_ms = 2000;
  }
  server::Server server(server_options);
  server.AddTable("lineitem", &lineitem);
  {
    const Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  // Warm the pool and the table, and calibrate: the median of a few
  // uncontended wire round-trips bounds the per-slot service rate. Several
  // rounds of both query shapes also pre-size every pool worker's
  // thread-local scratch, so the tracker baseline taken after this is what
  // the chaos invariant compares against.
  double probe_ms = 0;
  {
    server::Client probe;
    BIPIE_DCHECK(probe.Connect("127.0.0.1", server.port()).ok());
    std::vector<double> samples;
    for (int i = 0; i < 8; ++i) {
      QueryResult result;
      const auto start = std::chrono::steady_clock::now();
      BIPIE_DCHECK(probe.Query(i % 2 == 0 ? kQ1Sql : kQ6Sql, &result).ok());
      samples.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
    std::sort(samples.begin(), samples.end());
    probe_ms = std::max(samples[samples.size() / 2], 0.01);
  }
  const size_t tracked_baseline = MemoryTracker::Process().used();
  const double capacity_qps =
      static_cast<double>(flags.max_concurrent) * 1000.0 / probe_ms;
  const double arrival_qps = flags.arrival_qps > 0
                                 ? flags.arrival_qps
                                 : std::max(2.0, 2.0 * capacity_qps);

  std::printf(
      "server on 127.0.0.1:%u | slots: %zu | queue/band: %zu | aging: %zu ms\n"
      "probe latency: %.2f ms -> capacity ~%.1f qps | arrival: %.1f qps "
      "(2 bands) | duration: %.0f s | clients/band: %zu\n\n",
      server.port(), flags.max_concurrent, flags.queue_limit,
      static_cast<size_t>(flags.aging_ms), probe_ms, capacity_qps, arrival_qps,
      flags.duration_sec, flags.clients_per_band);

  server::ClientOptions client_options;
  if (flags.chaos) {
    std::printf("chaos: seed %zu, arming failpoints:\n",
                static_cast<size_t>(flags.chaos_seed));
    ArmChaosFailpoints(flags.chaos_seed, flags.fault_prob);
    std::printf("\n");
    // Bounded everything + retries: a fault-ridden run must end on its
    // own, never hang a worker.
    client_options.connect_timeout_ms = 2000;
    client_options.send_timeout_ms = 10000;
    client_options.recv_timeout_ms = 10000;
    client_options.max_retries = 4;
    client_options.backoff_initial_ms = 20;
    client_options.backoff_max_ms = 500;
    client_options.retry_budget = 100000;
  }

  MemoryTracker::Process().ResetPeak();
  const double band_qps = arrival_qps / 2.0;
  const double worker_qps =
      band_qps / static_cast<double>(flags.clients_per_band);
  const auto t0 = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(50);  // workers start aligned
  const std::string bands[2] = {"high", "low"};
  std::vector<BandStats> per_worker(2 * flags.clients_per_band);
  std::vector<std::thread> workers;
  workers.reserve(per_worker.size());
  for (size_t b = 0; b < 2; ++b) {
    for (size_t k = 0; k < flags.clients_per_band; ++k) {
      const size_t slot = b * flags.clients_per_band + k;
      // Stagger workers across one interval so band arrivals are uniform.
      const double offset =
          static_cast<double>(k) /
          (worker_qps * static_cast<double>(flags.clients_per_band));
      workers.emplace_back([&, b, slot, offset] {
        server::ClientOptions worker_options = client_options;
        worker_options.jitter_seed = flags.chaos_seed + slot;
        per_worker[slot] = RunOpenLoopWorker(server.port(), bands[b],
                                             worker_qps, offset, t0,
                                             flags.duration_sec,
                                             worker_options);
      });
    }
  }
  for (std::thread& w : workers) w.join();

  // Chaos invariants, part 1 — while the server is still up:
  //   the storm is over (failpoints off), so a clean client must connect
  //   and get a Pong, and the admission queues must drain to zero.
  size_t invariant_failures = 0;
  if (flags.chaos) {
    Failpoints::DeactivateAll();
    {
      server::Client alive;
      Status st = alive.Connect("127.0.0.1", server.port());
      if (st.ok()) st = alive.Ping(0xb1b1e);
      if (!st.ok()) {
        std::fprintf(stderr, "INVARIANT: server not live after chaos: %s\n",
                     st.ToString().c_str());
        ++invariant_failures;
      }
    }
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((server.admission().running() > 0 ||
            server.admission().queued() > 0) &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (server.admission().running() > 0 || server.admission().queued() > 0) {
      std::fprintf(stderr,
                   "INVARIANT: admission not drained after chaos: "
                   "%zu running, %zu queued\n",
                   server.admission().running(), server.admission().queued());
      ++invariant_failures;
    }
  }

  server.Shutdown();
  const size_t peak_tracked_bytes = MemoryTracker::Process().peak();

  // Chaos invariants, part 2 — after Shutdown: no leaked memory charges
  // (process tracker back to the post-warmup baseline) and no leaked fds.
  if (flags.chaos) {
    const size_t tracked_after = MemoryTracker::Process().used();
    if (tracked_after > tracked_baseline) {
      std::fprintf(stderr,
                   "INVARIANT: tracked memory leaked through chaos: "
                   "baseline %zu, after shutdown %zu\n",
                   tracked_baseline, tracked_after);
      ++invariant_failures;
    }
    const size_t fds_after = CountOpenFds();
    if (fds_after != fds_before) {
      std::fprintf(stderr,
                   "INVARIANT: fd count changed across the chaos run: "
                   "%zu before, %zu after\n",
                   fds_before, fds_after);
      DumpOpenFds();
      ++invariant_failures;
    }
  }

  BenchJsonReport& report = BenchJsonReport::Get();
  report.SetConfig("server_duration_sec", std::to_string(flags.duration_sec));
  report.SetConfig("server_arrival_qps", std::to_string(arrival_qps));
  report.SetConfig("server_slots", std::to_string(flags.max_concurrent));
  report.SetConfig("server_clients_per_band",
                   std::to_string(flags.clients_per_band));

  std::printf("%8s %10s %10s %10s %12s %10s %8s %8s %8s\n", "band", "QPS",
              "p50 [ms]", "p99 [ms]", "qwait p99", "peak [B]", "rejected",
              "unavail", "errors");
  double p99[2] = {0, 0};
  size_t total_errors = 0;
  size_t total_completed = 0;
  for (size_t b = 0; b < 2; ++b) {
    BandStats band;
    for (size_t k = 0; k < flags.clients_per_band; ++k) {
      MergeBand(&band, std::move(per_worker[b * flags.clients_per_band + k]));
    }
    const double qps =
        static_cast<double>(band.completed) / flags.duration_sec;
    const double p50_ms = PercentileMs(band.latency_ms, 0.50);
    const double p99_ms = PercentileMs(band.latency_ms, 0.99);
    const double qwait_p99_ms = PercentileMs(band.queue_wait_ms, 0.99);
    p99[b] = p99_ms;
    total_errors += band.errors;
    total_completed += band.completed;
    std::printf("%8s %10.1f %10.2f %10.2f %12.2f %10zu %8zu %8zu %8zu\n",
                bands[b].c_str(), qps, p50_ms, p99_ms, qwait_p99_ms,
                peak_tracked_bytes, band.rejected, band.unavailable,
                band.errors);
    // New labels, absent from older baselines: the perf-smoke A/B gate's
    // label intersection skips the server cells automatically.
    report.Add("server_" + bands[b],
               {{"qps", qps},
                {"p50_ms", p50_ms},
                {"p99_ms", p99_ms},
                {"queue_wait_p99_ms", qwait_p99_ms},
                {"peak_tracked_bytes",
                 static_cast<double>(peak_tracked_bytes)},
                {"rejected", static_cast<double>(band.rejected)},
                {"unavailable", static_cast<double>(band.unavailable)},
                {"errors", static_cast<double>(band.errors)}});
  }

  std::printf("\nshape check: high-band p99 %.2f ms vs low-band p99 %.2f ms "
              "(%s under saturation)\n",
              p99[0], p99[1],
              p99[0] < p99[1] ? "high undercuts low, as admission promises"
                              : "NO priority separation — investigate");

  if (flags.chaos) {
    // Under chaos, individual failures are the point; the run passes on
    // its invariants plus basic liveness (some queries did complete —
    // every request got a terminal answer by construction, because every
    // worker returned).
    if (total_completed == 0) {
      std::fprintf(stderr, "chaos run completed zero queries\n");
      ++invariant_failures;
    }
    std::printf("\nchaos verdict: %zu completed, %zu errors tolerated, "
                "%zu invariant failures -> %s\n",
                total_completed, total_errors, invariant_failures,
                invariant_failures == 0 ? "PASS" : "FAIL");
    return invariant_failures == 0 ? 0 : 1;
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "sustained-load run saw %zu query errors\n",
                 total_errors);
    return 1;
  }
  return 0;
}

// --- closed-loop in-process cells (the original perf-smoke A/B path) --------

int RunClosedLoopCells() {
  PrintBenchHeader(
      "Concurrent queries: shared morsel pool vs per-query threads",
      "beyond the paper; morsel-driven execution (Leis et al.) applied to "
      "the BIPie scan");

  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t spawn_threads = std::max<size_t>(2, hw);
  size_t max_clients = 8;
  if (const char* env = std::getenv("BIPIE_BENCH_CLIENTS")) {
    max_clients = std::max<size_t>(1, std::strtoull(env, nullptr, 10));
  }
  const int iters = std::max(2, BenchRepeats());

  LineitemOptions options;
  options.num_rows = BenchRows();
  // Several segments even at smoke sizes, so the pool has morsels to steal.
  options.segment_rows = std::max<size_t>(
      kBatchRows, std::min<size_t>(kDefaultSegmentRows, options.num_rows / 8));
  std::printf("generating lineitem (%zu rows, %zu-row segments)...\n",
              options.num_rows, options.segment_rows);
  Table lineitem = MakeLineitemTable(options);

  // Warm the pool (lazy start) and fault in the table before timing.
  { auto warm = RunQ1(lineitem, {.num_threads = 0}); BIPIE_DCHECK(warm.ok()); }

  std::printf("pool workers: %zu | spawn threads/query: %zu | "
              "iters/client: %d\n\n",
              Scheduler::Global().num_workers(), spawn_threads, iters);
  std::printf("%8s %8s %12s %12s %12s\n", "clients", "model", "QPS",
              "p50 [ms]", "p99 [ms]");

  BenchJsonReport& report = BenchJsonReport::Get();
  report.SetConfig("pool_workers",
                   std::to_string(Scheduler::Global().num_workers()));
  report.SetConfig("spawn_threads_per_query", std::to_string(spawn_threads));
  report.SetConfig("iters_per_client", std::to_string(iters));

  double pool_qps_at_max = 0, spawn_qps_at_max = 0;
  double pool_qps_single = 0, spawn_qps_single = 0;
  for (size_t clients = 1; clients <= max_clients; clients *= 2) {
    for (const bool pool : {true, false}) {
      const size_t num_threads = pool ? 0 : spawn_threads;
      const CellResult cell = RunCell(lineitem, clients, iters, num_threads);
      const char* model = pool ? "pool" : "spawn";
      std::printf("%8zu %8s %12.1f %12.2f %12.2f\n", clients, model, cell.qps,
                  cell.p50_ms, cell.p99_ms);
      report.Add(std::string(model) + "_clients_" + std::to_string(clients),
                 {{"qps", cell.qps},
                  {"p50_ms", cell.p50_ms},
                  {"p99_ms", cell.p99_ms},
                  {"clients", static_cast<double>(clients)},
                  {"peak_tracked_bytes",
                   static_cast<double>(cell.peak_tracked_bytes)}});
      if (clients == 1) (pool ? pool_qps_single : spawn_qps_single) = cell.qps;
      if (clients == max_clients) {
        (pool ? pool_qps_at_max : spawn_qps_at_max) = cell.qps;
      }
    }
  }

  // Memory-governed cells: the pool model again, with every query holding a
  // per-query hard limit. At the default (generous) limit this measures the
  // tracker's overhead and high-water mark under concurrency; pointing
  // BIPIE_BENCH_MEMORY_LIMIT at a small value instead measures structured
  // rejection throughput. New labels — absent from older baselines — are
  // skipped by the A/B gate's label intersection.
  uint64_t memory_limit = uint64_t{256} << 20;
  if (const char* env = std::getenv("BIPIE_BENCH_MEMORY_LIMIT")) {
    uint64_t parsed = 0;
    if (ParseUInt64Strict(env, &parsed) && parsed > 0) memory_limit = parsed;
  }
  report.SetConfig("memory_limit_bytes", std::to_string(memory_limit));
  std::printf("\nper-query memory limit %zu bytes (pool model):\n",
              static_cast<size_t>(memory_limit));
  std::printf("%8s %8s %12s %12s %12s %12s %10s\n", "clients", "model", "QPS",
              "p50 [ms]", "p99 [ms]", "peak [B]", "rejected");
  for (size_t clients = 1; clients <= max_clients; clients *= 2) {
    const CellResult cell =
        RunCell(lineitem, clients, iters, /*num_threads=*/0, memory_limit);
    std::printf("%8zu %8s %12.1f %12.2f %12.2f %12zu %10zu\n", clients,
                "pool", cell.qps, cell.p50_ms, cell.p99_ms,
                cell.peak_tracked_bytes, cell.resource_exhausted);
    report.Add("pool_limited_clients_" + std::to_string(clients),
               {{"qps", cell.qps},
                {"p50_ms", cell.p50_ms},
                {"p99_ms", cell.p99_ms},
                {"clients", static_cast<double>(clients)},
                {"peak_tracked_bytes",
                 static_cast<double>(cell.peak_tracked_bytes)},
                {"resource_exhausted",
                 static_cast<double>(cell.resource_exhausted)}});
  }

  std::printf("\nshape check: pool vs spawn at %zu clients: %.2fx "
              "(single client: %.2fx)\n",
              max_clients, pool_qps_at_max / spawn_qps_at_max,
              pool_qps_single / spawn_qps_single);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Any flag selects the sustained-load server mode; no flags runs the
  // closed-loop in-process cells (the perf-smoke A/B path, whose labels the
  // baseline comparison keys on).
  if (argc > 1) {
    LoadFlags flags;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s needs a value\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--duration-sec") {
        flags.duration_sec = std::strtod(next(), nullptr);
      } else if (arg == "--arrival-qps") {
        flags.arrival_qps = std::strtod(next(), nullptr);
      } else if (arg == "--clients-per-band") {
        flags.clients_per_band =
            std::max<size_t>(1, std::strtoull(next(), nullptr, 10));
      } else if (arg == "--max-concurrent") {
        flags.max_concurrent =
            std::max<size_t>(1, std::strtoull(next(), nullptr, 10));
      } else if (arg == "--queue-limit") {
        flags.queue_limit = std::strtoull(next(), nullptr, 10);
      } else if (arg == "--aging-ms") {
        flags.aging_ms = std::strtoull(next(), nullptr, 10);
      } else if (arg == "--chaos") {
        flags.chaos = true;
      } else if (arg == "--chaos-seed") {
        flags.chaos_seed = std::strtoull(next(), nullptr, 10);
      } else if (arg == "--fault-prob") {
        flags.fault_prob = std::strtod(next(), nullptr);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        return 2;
      }
    }
    if (flags.duration_sec <= 0) {
      std::fprintf(stderr, "--duration-sec must be positive\n");
      return 2;
    }
    return RunSustainedLoad(flags);
  }
  return RunClosedLoopCells();
}
