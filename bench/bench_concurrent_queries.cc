// Concurrent-query throughput: shared morsel pool vs per-query threads.
//
// N client threads each run a closed loop of TPC-H Q1- and Q6-shaped scans
// against one shared lineitem table, under two execution models:
//   * pool  — ScanOptions::num_threads = 0: every query submits morsels to
//     the process-wide work-stealing scheduler (src/exec);
//   * spawn — the legacy model: every query spawns its own max(2, hw)
//     threads for the duration of the scan.
// Reported per (model, clients) cell: aggregate queries/sec and p50/p99
// per-query wall latency. The pool should win once clients oversubscribe
// the machine (>= 4 concurrent queries), because spawn pays thread
// creation per query and floods the OS scheduler with clients x threads
// runnable threads, while the pool multiplexes every query onto one
// hardware-sized worker set. With a single client the pool must stay
// within a few percent of spawn (morsel splitting is the only overhead).
//
// Environment knobs (plus the usual BIPIE_BENCH_ROWS / BIPIE_BENCH_REPEATS):
//   BIPIE_BENCH_CLIENTS  comma-free max client count, default 8
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "exec/query_context.h"
#include "exec/query_settings.h"
#include "exec/scheduler.h"
#include "tpch/q1.h"
#include "tpch/q6.h"

using namespace bipie;         // NOLINT
using namespace bipie::bench;  // NOLINT

namespace {

struct CellResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  // Process-root tracker high-water mark across the cell, and how many
  // queries the per-query limit (if any) turned away structurally.
  size_t peak_tracked_bytes = 0;
  size_t resource_exhausted = 0;
};

double PercentileMs(std::vector<double>& latencies_ms, double p) {
  if (latencies_ms.empty()) return 0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies_ms.size() - 1) + 0.5);
  return latencies_ms[idx];
}

// Runs `clients` closed-loop client threads, each issuing `iters` queries
// alternating Q1 and Q6, and gathers per-query latencies. A non-zero
// `memory_limit` gives every query its own governed QueryContext; queries
// the limit turns away (kResourceExhausted) are counted, not timed.
CellResult RunCell(const Table& lineitem, size_t clients, int iters,
                   size_t num_threads, uint64_t memory_limit = 0) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<size_t> exhausted(clients, 0);
  MemoryTracker::Process().ResetPeak();
  const auto bench_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      latencies[c].reserve(iters);
      for (int i = 0; i < iters; ++i) {
        QueryContext context;
        ScanOptions options;
        options.num_threads = num_threads;
        if (memory_limit > 0) {
          BIPIE_DCHECK(context.settings()
                           .SetUInt64("memory_limit_bytes", memory_limit)
                           .ok());
          context.ApplySettings();
          options.context = &context;
        }
        const auto start = std::chrono::steady_clock::now();
        auto r = (c + i) % 2 == 0 ? RunQ1(lineitem, options)
                                  : RunQ6(lineitem, options);
        const auto stop = std::chrono::steady_clock::now();
        if (!r.ok() &&
            r.status().code() == StatusCode::kResourceExhausted) {
          ++exhausted[c];
          continue;
        }
        BIPIE_DCHECK(r.ok());
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(stop - start).count());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double total_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  CellResult result;
  result.qps =
      total_secs > 0 ? static_cast<double>(all.size()) / total_secs : 0;
  result.p50_ms = PercentileMs(all, 0.50);
  result.p99_ms = PercentileMs(all, 0.99);
  result.peak_tracked_bytes = MemoryTracker::Process().peak();
  for (size_t n : exhausted) result.resource_exhausted += n;
  return result;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Concurrent queries: shared morsel pool vs per-query threads",
      "beyond the paper; morsel-driven execution (Leis et al.) applied to "
      "the BIPie scan");

  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t spawn_threads = std::max<size_t>(2, hw);
  size_t max_clients = 8;
  if (const char* env = std::getenv("BIPIE_BENCH_CLIENTS")) {
    max_clients = std::max<size_t>(1, std::strtoull(env, nullptr, 10));
  }
  const int iters = std::max(2, BenchRepeats());

  LineitemOptions options;
  options.num_rows = BenchRows();
  // Several segments even at smoke sizes, so the pool has morsels to steal.
  options.segment_rows = std::max<size_t>(
      kBatchRows, std::min<size_t>(kDefaultSegmentRows, options.num_rows / 8));
  std::printf("generating lineitem (%zu rows, %zu-row segments)...\n",
              options.num_rows, options.segment_rows);
  Table lineitem = MakeLineitemTable(options);

  // Warm the pool (lazy start) and fault in the table before timing.
  { auto warm = RunQ1(lineitem, {.num_threads = 0}); BIPIE_DCHECK(warm.ok()); }

  std::printf("pool workers: %zu | spawn threads/query: %zu | "
              "iters/client: %d\n\n",
              Scheduler::Global().num_workers(), spawn_threads, iters);
  std::printf("%8s %8s %12s %12s %12s\n", "clients", "model", "QPS",
              "p50 [ms]", "p99 [ms]");

  BenchJsonReport& report = BenchJsonReport::Get();
  report.SetConfig("pool_workers",
                   std::to_string(Scheduler::Global().num_workers()));
  report.SetConfig("spawn_threads_per_query", std::to_string(spawn_threads));
  report.SetConfig("iters_per_client", std::to_string(iters));

  double pool_qps_at_max = 0, spawn_qps_at_max = 0;
  double pool_qps_single = 0, spawn_qps_single = 0;
  for (size_t clients = 1; clients <= max_clients; clients *= 2) {
    for (const bool pool : {true, false}) {
      const size_t num_threads = pool ? 0 : spawn_threads;
      const CellResult cell = RunCell(lineitem, clients, iters, num_threads);
      const char* model = pool ? "pool" : "spawn";
      std::printf("%8zu %8s %12.1f %12.2f %12.2f\n", clients, model, cell.qps,
                  cell.p50_ms, cell.p99_ms);
      report.Add(std::string(model) + "_clients_" + std::to_string(clients),
                 {{"qps", cell.qps},
                  {"p50_ms", cell.p50_ms},
                  {"p99_ms", cell.p99_ms},
                  {"clients", static_cast<double>(clients)},
                  {"peak_tracked_bytes",
                   static_cast<double>(cell.peak_tracked_bytes)}});
      if (clients == 1) (pool ? pool_qps_single : spawn_qps_single) = cell.qps;
      if (clients == max_clients) {
        (pool ? pool_qps_at_max : spawn_qps_at_max) = cell.qps;
      }
    }
  }

  // Memory-governed cells: the pool model again, with every query holding a
  // per-query hard limit. At the default (generous) limit this measures the
  // tracker's overhead and high-water mark under concurrency; pointing
  // BIPIE_BENCH_MEMORY_LIMIT at a small value instead measures structured
  // rejection throughput. New labels — absent from older baselines — are
  // skipped by the A/B gate's label intersection.
  uint64_t memory_limit = uint64_t{256} << 20;
  if (const char* env = std::getenv("BIPIE_BENCH_MEMORY_LIMIT")) {
    uint64_t parsed = 0;
    if (ParseUInt64Strict(env, &parsed) && parsed > 0) memory_limit = parsed;
  }
  report.SetConfig("memory_limit_bytes", std::to_string(memory_limit));
  std::printf("\nper-query memory limit %zu bytes (pool model):\n",
              static_cast<size_t>(memory_limit));
  std::printf("%8s %8s %12s %12s %12s %12s %10s\n", "clients", "model", "QPS",
              "p50 [ms]", "p99 [ms]", "peak [B]", "rejected");
  for (size_t clients = 1; clients <= max_clients; clients *= 2) {
    const CellResult cell =
        RunCell(lineitem, clients, iters, /*num_threads=*/0, memory_limit);
    std::printf("%8zu %8s %12.1f %12.2f %12.2f %12zu %10zu\n", clients,
                "pool", cell.qps, cell.p50_ms, cell.p99_ms,
                cell.peak_tracked_bytes, cell.resource_exhausted);
    report.Add("pool_limited_clients_" + std::to_string(clients),
               {{"qps", cell.qps},
                {"p50_ms", cell.p50_ms},
                {"p99_ms", cell.p99_ms},
                {"clients", static_cast<double>(clients)},
                {"peak_tracked_bytes",
                 static_cast<double>(cell.peak_tracked_bytes)},
                {"resource_exhausted",
                 static_cast<double>(cell.resource_exhausted)}});
  }

  std::printf("\nshape check: pool vs spawn at %zu clients: %.2fx "
              "(single client: %.2fx)\n",
              max_clients, pool_qps_at_max / spawn_qps_at_max,
              pool_qps_single / spawn_qps_single);
  return 0;
}
