// Google-benchmark microbenchmarks for the Vector Toolbox kernels.
//
// These complement the paper-table binaries with standard google-benchmark
// output (items_per_second = rows/s), useful for regression tracking of
// individual kernels.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "vector/toolbox.h"

namespace bipie {
namespace {

constexpr size_t kRows = size_t{1} << 20;

void BM_BitUnpack(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  auto packed = bench::MakePackedColumn(kRows, w, w);
  const int word = SmallestWordBytes(w);
  AlignedBuffer out(kRows * word);
  for (auto _ : state) {
    BitUnpack(packed.data(), 0, kRows, w, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_BitUnpack)->Arg(4)->Arg(7)->Arg(14)->Arg(21)->Arg(28)->Arg(40);

void BM_CompactToIndexVector(benchmark::State& state) {
  const double sel = static_cast<double>(state.range(0)) / 100.0;
  auto bytes = bench::MakeSelection(kRows, sel, 7);
  AlignedBuffer out((kRows + 8) * sizeof(uint32_t));
  for (auto _ : state) {
    const size_t m =
        CompactToIndexVector(bytes.data(), kRows, out.data_as<uint32_t>());
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_CompactToIndexVector)->Arg(2)->Arg(50)->Arg(98);

void BM_GatherSelect(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  auto packed = bench::MakePackedColumn(kRows, w, w);
  auto sel = bench::MakeSelection(kRows, 0.5, 9);
  AlignedBuffer idx((kRows + 8) * sizeof(uint32_t));
  const size_t m = CompactToIndexVector(sel.data(), kRows,
                                        idx.data_as<uint32_t>());
  const int word = SmallestWordBytes(w);
  AlignedBuffer out(m * word);
  for (auto _ : state) {
    GatherSelect(packed.data(), w, idx.data_as<uint32_t>(), m, out.data(),
                 word);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_GatherSelect)->Arg(5)->Arg(10)->Arg(20);

void BM_ApplySpecialGroup(benchmark::State& state) {
  auto groups = bench::MakeGroups(kRows, 6, 3);
  auto sel = bench::MakeSelection(kRows, 0.98, 4);
  AlignedBuffer out(kRows);
  for (auto _ : state) {
    ApplySpecialGroup(groups.data(), sel.data(), kRows, 6, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_ApplySpecialGroup);

void BM_InRegisterCount(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  auto ids = bench::MakeGroups(kRows, groups, groups);
  std::vector<uint64_t> counts(static_cast<size_t>(groups));
  for (auto _ : state) {
    std::fill(counts.begin(), counts.end(), 0);
    InRegisterCount(ids.data(), kRows, groups, counts.data());
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_InRegisterCount)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_InRegisterSum8(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  auto ids = bench::MakeGroups(kRows, groups, groups);
  auto values = bench::MakeDecodedValues(kRows, 8, 1, 5);
  std::vector<uint64_t> sums(static_cast<size_t>(groups));
  for (auto _ : state) {
    std::fill(sums.begin(), sums.end(), 0);
    InRegisterSum8(ids.data(), values.data(), kRows, groups, sums.data());
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_InRegisterSum8)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_SortedBatchSort(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  auto ids = bench::MakeGroups(kRows, groups, groups);
  SortedBatch batch;
  for (auto _ : state) {
    for (size_t start = 0; start < kRows; start += 4096) {
      batch.Sort(ids.data() + start, nullptr, 4096, groups);
    }
    benchmark::DoNotOptimize(batch.indices());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_SortedBatchSort)->Arg(4)->Arg(16)->Arg(64);

void BM_MultiAggregate4Sums(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  auto ids = bench::MakeGroups(kRows, groups, groups);
  std::vector<AlignedBuffer> arrays;
  arrays.push_back(bench::MakeDecodedValues(kRows, 40, 8, 1));
  arrays.push_back(bench::MakeDecodedValues(kRows, 40, 8, 2));
  arrays.push_back(bench::MakeDecodedValues(kRows, 15, 4, 3));
  arrays.push_back(bench::MakeDecodedValues(kRows, 15, 4, 4));
  std::vector<const void*> ptrs;
  for (auto& a : arrays) ptrs.push_back(a.data());
  MultiAggregator agg;
  BIPIE_DCHECK(agg.Configure({{8}, {8}, {4}, {4}}, groups).ok());
  std::vector<int64_t> sums(static_cast<size_t>(groups) * 4);
  for (auto _ : state) {
    agg.Process(ids.data(), ptrs.data(), kRows);
    agg.Flush(sums.data());
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_MultiAggregate4Sums)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace bipie

BENCHMARK_MAIN();
