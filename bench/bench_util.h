// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary reproduces one table or figure of the paper and
// prints it in the paper's own unit: elapsed CPU cycles per input row (per
// computed sum where the paper divides). Measurements run the kernel
// `repeats` times over an input large enough to exceed the last-level
// cache and report the median.
//
// Besides the human-readable tables, every bench binary writes a
// machine-readable BENCH_<name>.json next to the working directory (or
// into BIPIE_BENCH_JSON_DIR) with cycles/row, rows/sec and the run
// configuration, so CI can archive results and plots can be regenerated
// without scraping stdout.
//
// Environment knobs:
//   BIPIE_BENCH_ROWS      input rows per measurement (default 1 << 22)
//   BIPIE_BENCH_REPEATS   repetitions per cell, median taken (default 5)
//   BIPIE_BENCH_JSON_DIR  output directory for BENCH_<name>.json (default .)
#ifndef BIPIE_BENCH_BENCH_UTIL_H_
#define BIPIE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/cycle_timer.h"
#include "common/random.h"
#include "encoding/bitpack.h"
#include "vector/toolbox.h"

namespace bipie::bench {

inline size_t BenchRows() {
  if (const char* env = std::getenv("BIPIE_BENCH_ROWS")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return size_t{1} << 22;
}

inline int BenchRepeats() {
  if (const char* env = std::getenv("BIPIE_BENCH_REPEATS")) {
    return std::atoi(env);
  }
  return 5;
}

// --- machine-readable results ------------------------------------------------

// Accumulates one JSON document per bench binary and writes it as
// BENCH_<name>.json when the process exits. The name is derived from the
// PrintBenchHeader title; measurements recorded before the header (there
// are none in-tree) fall under the binary's default name "bench".
class BenchJsonReport {
 public:
  using Fields = std::vector<std::pair<std::string, double>>;

  static BenchJsonReport& Get() {
    static BenchJsonReport report;
    return report;
  }

  void SetName(const std::string& slug) {
    if (!slug.empty()) name_ = slug;
  }
  void SetConfig(const std::string& key, const std::string& json_value) {
    // Last writer wins so re-printed headers don't duplicate keys.
    for (auto& kv : config_) {
      if (kv.first == key) {
        kv.second = json_value;
        return;
      }
    }
    config_.emplace_back(key, json_value);
  }
  void Add(const std::string& label, Fields fields) {
    std::string l = label;
    if (l.empty()) l = "measurement_" + std::to_string(entries_.size());
    entries_.emplace_back(std::move(l), std::move(fields));
  }

  ~BenchJsonReport() {
    if (entries_.empty()) return;
    std::string dir = ".";
    if (const char* env = std::getenv("BIPIE_BENCH_JSON_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"config\": {",
                 Escaped(name_).c_str());
    for (size_t i = 0; i < config_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                   Escaped(config_[i].first).c_str(), config_[i].second.c_str());
    }
    std::fprintf(f, "},\n  \"results\": [\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "    {\"label\": \"%s\"", Escaped(entries_[i].first).c_str());
      for (const auto& [key, value] : entries_[i].second) {
        std::fprintf(f, ", \"%s\": %.6g", Escaped(key).c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 == entries_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  // "text" -> "\"text\"" with JSON escaping, for SetConfig string values.
  static std::string Quoted(const std::string& s) {
    return "\"" + Escaped(s) + "\"";
  }

 private:
  BenchJsonReport() = default;

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out.push_back(c);
    }
    return out;
  }

  std::string name_ = "bench";
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, Fields>> entries_;
};

// "Table 5: TPC-H Query 1, clocks/row" -> "table_5_tpc_h_query_1_clocks_row".
inline std::string BenchSlug(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

// Runs fn `repeats` times; returns median cycles / rows. One untimed
// warm-up run absorbs first-touch page faults, cold caches and frequency
// ramp-up so the median reflects steady state. Each measurement is also
// recorded (median cycles/row and rows/sec) into the bench's JSON report
// under `label`, or an auto-generated label when empty.
inline double MeasureCyclesPerRow(size_t rows,
                                  const std::function<void()>& fn,
                                  int repeats = BenchRepeats(),
                                  const std::string& label = "") {
  fn();
  std::vector<double> cycle_samples;
  std::vector<double> ns_samples;
  cycle_samples.reserve(repeats);
  ns_samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    const auto wall_start = std::chrono::steady_clock::now();
    const uint64_t start = ReadCycleCounter();
    fn();
    const uint64_t stop = ReadCycleCounter();
    const auto wall_stop = std::chrono::steady_clock::now();
    cycle_samples.push_back(static_cast<double>(stop - start) /
                            static_cast<double>(rows));
    ns_samples.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(wall_stop -
                                                             wall_start)
            .count()));
  }
  std::sort(cycle_samples.begin(), cycle_samples.end());
  std::sort(ns_samples.begin(), ns_samples.end());
  const double median_cycles = cycle_samples[cycle_samples.size() / 2];
  const double median_ns = ns_samples[ns_samples.size() / 2];
  const double rows_per_sec =
      median_ns > 0.0 ? static_cast<double>(rows) * 1e9 / median_ns : 0.0;
  BenchJsonReport::Get().Add(
      label, {{"cycles_per_row", median_cycles},
              {"rows_per_sec", rows_per_sec},
              {"rows", static_cast<double>(rows)}});
  return median_cycles;
}

// Labeled convenience overload: same measurement, default repeats.
inline double MeasureCyclesPerRow(size_t rows, const std::string& label,
                                  const std::function<void()>& fn) {
  return MeasureCyclesPerRow(rows, fn, BenchRepeats(), label);
}

// A consumed result sink that defeats dead-code elimination.
inline void Consume(const void* p, size_t bytes) {
  static volatile uint64_t sink = 0;
  uint64_t h = 0;
  const auto* b = static_cast<const uint8_t*>(p);
  for (size_t i = 0; i < bytes; i += 64) h += b[i];
  sink += h;
}

// --- workload builders -------------------------------------------------------

// Bit-packed stream of n random values of the given width (padded).
inline AlignedBuffer MakePackedColumn(size_t n, int bit_width,
                                      uint64_t seed) {
  std::vector<uint64_t> values(n);
  Rng rng(seed);
  const uint64_t mask = LowBitsMask(bit_width);
  for (auto& v : values) v = rng.Next() & mask;
  AlignedBuffer buf(BitPackedBytes(n, bit_width) + 8);
  BitPack(values.data(), n, bit_width, buf.data());
  return buf;
}

// Byte group ids uniform in [0, num_groups).
inline AlignedBuffer MakeGroups(size_t n, int num_groups, uint64_t seed) {
  AlignedBuffer buf(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    buf.data()[i] = static_cast<uint8_t>(rng.NextBounded(num_groups));
  }
  return buf;
}

// Selection byte vector at the given selectivity.
inline AlignedBuffer MakeSelection(size_t n, double selectivity,
                                   uint64_t seed) {
  AlignedBuffer buf(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    buf.data()[i] = rng.NextBernoulli(selectivity) ? 0xFF : 0x00;
  }
  return buf;
}

// Decoded unsigned values below 2^bits at the given word width.
inline AlignedBuffer MakeDecodedValues(size_t n, int bits, int word_bytes,
                                       uint64_t seed) {
  AlignedBuffer buf(n * word_bytes);
  Rng rng(seed);
  const uint64_t mask = LowBitsMask(bits);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = rng.Next() & mask;
    std::memcpy(buf.data() + i * word_bytes, &v, word_bytes);
  }
  return buf;
}

// --- reporting ---------------------------------------------------------------

inline void PrintBenchHeader(const std::string& title,
                             const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("isa: %s | rows per cell: %zu | repeats (median): %d\n\n",
              ToolboxIsaDescription(), BenchRows(), BenchRepeats());
  BenchJsonReport& report = BenchJsonReport::Get();
  report.SetName(BenchSlug(title));
  report.SetConfig("title", BenchJsonReport::Quoted(title));
  report.SetConfig("paper_ref", BenchJsonReport::Quoted(paper_ref));
  report.SetConfig("isa", BenchJsonReport::Quoted(ToolboxIsaDescription()));
  report.SetConfig("rows", std::to_string(BenchRows()));
  report.SetConfig("repeats", std::to_string(BenchRepeats()));
}

}  // namespace bipie::bench

#endif  // BIPIE_BENCH_BENCH_UTIL_H_
