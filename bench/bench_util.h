// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary reproduces one table or figure of the paper and
// prints it in the paper's own unit: elapsed CPU cycles per input row (per
// computed sum where the paper divides). Measurements run the kernel
// `repeats` times over an input large enough to exceed the last-level
// cache and report the median.
//
// Environment knobs:
//   BIPIE_BENCH_ROWS     input rows per measurement (default 1 << 22)
//   BIPIE_BENCH_REPEATS  repetitions per cell, median taken (default 5)
#ifndef BIPIE_BENCH_BENCH_UTIL_H_
#define BIPIE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/cycle_timer.h"
#include "common/random.h"
#include "encoding/bitpack.h"
#include "vector/toolbox.h"

namespace bipie::bench {

inline size_t BenchRows() {
  if (const char* env = std::getenv("BIPIE_BENCH_ROWS")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return size_t{1} << 22;
}

inline int BenchRepeats() {
  if (const char* env = std::getenv("BIPIE_BENCH_REPEATS")) {
    return std::atoi(env);
  }
  return 5;
}

// Runs fn `repeats` times; returns median cycles / rows. One untimed
// warm-up run absorbs first-touch page faults, cold caches and frequency
// ramp-up so the median reflects steady state.
inline double MeasureCyclesPerRow(size_t rows,
                                  const std::function<void()>& fn,
                                  int repeats = BenchRepeats()) {
  fn();
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    const uint64_t start = ReadCycleCounter();
    fn();
    const uint64_t stop = ReadCycleCounter();
    samples.push_back(static_cast<double>(stop - start) /
                      static_cast<double>(rows));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// A consumed result sink that defeats dead-code elimination.
inline void Consume(const void* p, size_t bytes) {
  static volatile uint64_t sink = 0;
  uint64_t h = 0;
  const auto* b = static_cast<const uint8_t*>(p);
  for (size_t i = 0; i < bytes; i += 64) h += b[i];
  sink += h;
}

// --- workload builders -------------------------------------------------------

// Bit-packed stream of n random values of the given width (padded).
inline AlignedBuffer MakePackedColumn(size_t n, int bit_width,
                                      uint64_t seed) {
  std::vector<uint64_t> values(n);
  Rng rng(seed);
  const uint64_t mask = LowBitsMask(bit_width);
  for (auto& v : values) v = rng.Next() & mask;
  AlignedBuffer buf(BitPackedBytes(n, bit_width) + 8);
  BitPack(values.data(), n, bit_width, buf.data());
  return buf;
}

// Byte group ids uniform in [0, num_groups).
inline AlignedBuffer MakeGroups(size_t n, int num_groups, uint64_t seed) {
  AlignedBuffer buf(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    buf.data()[i] = static_cast<uint8_t>(rng.NextBounded(num_groups));
  }
  return buf;
}

// Selection byte vector at the given selectivity.
inline AlignedBuffer MakeSelection(size_t n, double selectivity,
                                   uint64_t seed) {
  AlignedBuffer buf(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    buf.data()[i] = rng.NextBernoulli(selectivity) ? 0xFF : 0x00;
  }
  return buf;
}

// Decoded unsigned values below 2^bits at the given word width.
inline AlignedBuffer MakeDecodedValues(size_t n, int bits, int word_bytes,
                                       uint64_t seed) {
  AlignedBuffer buf(n * word_bytes);
  Rng rng(seed);
  const uint64_t mask = LowBitsMask(bits);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = rng.Next() & mask;
    std::memcpy(buf.data() + i * word_bytes, &v, word_bytes);
  }
  return buf;
}

// --- reporting ---------------------------------------------------------------

inline void PrintBenchHeader(const std::string& title,
                             const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("isa: %s | rows per cell: %zu | repeats (median): %d\n\n",
              ToolboxIsaDescription(), BenchRows(), BenchRepeats());
}

}  // namespace bipie::bench

#endif  // BIPIE_BENCH_BENCH_UTIL_H_
