// Reproduces Figure 3: comparison of scalar SUM implementations.
//
// 32 groups, 1..5 sums; cycles per row *per aggregate*. Paper shape:
// row-at-a-time (row-major accumulators) beats column-at-a-time, and
// unrolling the inner per-column loop helps further; per-aggregate cost
// falls as sums are added.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "vector/agg_scalar.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader(
      "Figure 3: scalar SUM variants, 32 groups, cycles/row/aggregate",
      "BIPie SIGMOD'18 Figure 3 (paper: row-at-a-time < column-at-a-time; "
      "unrolled fastest)");
  const size_t n = BenchRows();
  constexpr int kGroups = 32;
  auto groups = MakeGroups(n, kGroups, 3);

  std::printf("%6s %18s %16s %16s\n", "sums", "column-at-a-time",
              "row-at-a-time", "row-unrolled");
  double col1 = 0, row5 = 0;
  for (int sums = 1; sums <= 5; ++sums) {
    std::vector<AlignedBuffer> cols;
    std::vector<const int64_t*> ptrs;
    for (int c = 0; c < sums; ++c) {
      cols.push_back(MakeDecodedValues(n, 20, 8, 40 + c));
      ptrs.push_back(cols.back().data_as<int64_t>());
    }
    std::vector<int64_t> acc(static_cast<size_t>(kGroups) * sums, 0);
    auto run = [&](auto fn) {
      return MeasureCyclesPerRow(n, [&] {
               std::fill(acc.begin(), acc.end(), 0);
               fn();
               Consume(acc.data(), acc.size() * 8);
             }) /
             sums;
    };
    const double col = run([&] {
      ScalarSumColumnAtATime(groups.data(), ptrs.data(), sums, n, acc.data());
    });
    const double row = run([&] {
      ScalarSumRowAtATime(groups.data(), ptrs.data(), sums, n, acc.data());
    });
    const double unrolled = run([&] {
      ScalarSumRowAtATimeUnrolled(groups.data(), ptrs.data(), sums, n,
                                  acc.data());
    });
    std::printf("%6d %18.2f %16.2f %16.2f\n", sums, col, row, unrolled);
    if (sums == 1) col1 = col;
    if (sums == 5) row5 = unrolled;
  }
  std::printf(
      "\nshape check: 5-sum unrolled row-at-a-time vs 1-sum column: %.2fx "
      "cheaper per aggregate\n",
      col1 / row5);
  return 0;
}
