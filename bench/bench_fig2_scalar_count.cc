// Reproduces Figure 2: CPU cycles per row for scalar COUNT aggregation.
//
// Paper shape: the single-array variant is notably slower for very few
// groups (~2.9 cycles/row at 2 groups vs ~1.65 at 6+) because adjacent rows
// update the same accumulator address; the multi-array variant flattens
// that penalty.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "vector/agg_scalar.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader(
      "Figure 2: scalar COUNT cycles/row vs number of groups",
      "BIPie SIGMOD'18 Figure 2 (paper: single-array ~2.9 at 2 groups, "
      "~1.65 at 6+; multi-array flat)");
  const size_t n = BenchRows();
  std::printf("%8s %14s %14s\n", "groups", "single-array", "multi-array");

  double single_two_groups = 0, single_many_groups = 0;
  for (int groups : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
    auto group_ids = MakeGroups(n, groups, groups);
    std::vector<uint64_t> counts(static_cast<size_t>(groups), 0);
    const std::string suffix = "_groups_" + std::to_string(groups);
    const double single = MeasureCyclesPerRow(n, "single_array" + suffix, [&] {
      std::fill(counts.begin(), counts.end(), 0);
      ScalarCountSingleArray(group_ids.data(), n, counts.data());
      Consume(counts.data(), counts.size() * 8);
    });
    const double multi = MeasureCyclesPerRow(n, "multi_array" + suffix, [&] {
      std::fill(counts.begin(), counts.end(), 0);
      ScalarCountMultiArray(group_ids.data(), n, groups, counts.data());
      Consume(counts.data(), counts.size() * 8);
    });
    std::printf("%8d %14.2f %14.2f\n", groups, single, multi);
    if (groups == 2) single_two_groups = single;
    if (groups == 8) single_many_groups = single;
  }
  std::printf(
      "\nshape check: single-array penalized at 2 groups vs 8 groups "
      "(paper ~1.75x): %.2fx\n",
      single_two_groups / single_many_groups);
  return 0;
}
