// Reproduces Table 1: Gather Selection Performance.
//
// Paper values (i7-6700): 1.08 / 1.33 / 1.63 cycles per row for input bit
// widths 5 / 10 / 20 at 50% selectivity.
#include <cstdio>

#include "bench/bench_util.h"
#include "vector/compact.h"
#include "vector/gather_select.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader("Table 1: gather selection cycles/row vs bit width",
                   "BIPie SIGMOD'18 Table 1 (paper: 1.08 / 1.33 / 1.63 at "
                   "widths 5 / 10 / 20)");
  const size_t n = BenchRows();
  auto sel = MakeSelection(n, 0.5, 1);
  AlignedBuffer idx_buf((n + 8) * sizeof(uint32_t));
  const size_t count =
      CompactToIndexVector(sel.data(), n, idx_buf.data_as<uint32_t>());

  std::printf("%-28s", "CPU cycles per row");
  const int widths[] = {5, 10, 20};
  double results[3];
  for (int i = 0; i < 3; ++i) {
    const int w = widths[i];
    auto packed = MakePackedColumn(n, w, 100 + w);
    const int word = SmallestWordBytes(w);
    AlignedBuffer out(count * word);
    // Cycles are normalized per *input* row (as in the paper), and the
    // cost of producing the index vector is excluded — Table 1 measures
    // the gather step itself.
    results[i] =
        MeasureCyclesPerRow(n, "gather_width_" + std::to_string(w), [&] {
          GatherSelect(packed.data(), w, idx_buf.data_as<uint32_t>(), count,
                       out.data(), word);
          Consume(out.data(), out.size());
        });
    std::printf(" %8.2f", results[i]);
  }
  std::printf("\n%-28s", "Bit width of input column");
  for (int w : widths) std::printf(" %8d", w);
  // Our per-value gathers make widths 5 and 10 nearly identical (same
  // gather count; only the store width differs), so the check compares the
  // ends of the range.
  std::printf("\n\nshape check: 20-bit costs more than 5-bit: %s\n",
              results[2] > results[0] ? "yes" : "NO");
  return 0;
}
