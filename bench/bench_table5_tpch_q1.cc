// Reproduces Table 5: TPC-H Query 1 performance comparison.
//
// Runs Q1 end to end (filter evaluation included) through:
//   * bipie (BIPie reproduction: special-group selection, in-register
//     count, multi-aggregate sums),
//   * the row-at-a-time hash-aggregation baseline (classical engine proxy),
//   * the naive decode-everything engine,
// and prints cycles/row next to the published engine results the paper
// normalizes against. Published rows are quoted constants from Table 5 —
// the paper itself compares against publications, not local runs.
//
// Paper result: MemSQL/BIPie at 8.6 clocks/row, 2x faster than the best
// handwritten implementation and 3.3x faster than the fastest engine
// (Hyper at 28.8).
#include <cstdio>
#include <vector>

#include "baseline/hash_agg.h"
#include "baseline/scalar_engine.h"
#include "bench/bench_util.h"
#include "tpch/q1.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader("Table 5: TPC-H Query 1, clocks/row across engines",
                   "BIPie SIGMOD'18 Table 5 (paper: MemSQL/BIPie 8.6, "
                   "Hyper 28.8, CWI/Handwritten 17.3)");
  LineitemOptions options;
  options.num_rows = BenchRows();
  std::printf("generating lineitem (%zu rows)...\n", options.num_rows);
  Table lineitem = MakeLineitemTable(options);
  const size_t rows = lineitem.num_rows();
  const QuerySpec query = MakeQ1Query(lineitem);

  // Correctness gate before timing.
  auto reference = ExecuteQueryNaive(lineitem, query);
  BIPIE_DCHECK(reference.ok());

  const int repeats = BenchRepeats();
  QueryResult bipie_result;
  const double bipie_cycles = MeasureCyclesPerRow(
      rows,
      [&] {
        auto r = RunQ1(lineitem);
        BIPIE_DCHECK(r.ok());
        bipie_result = std::move(r).ValueOrDie();
      },
      repeats, "bipie");
  BIPIE_DCHECK(bipie_result.rows.size() == reference.value().rows.size());
  for (size_t r = 0; r < bipie_result.rows.size(); ++r) {
    BIPIE_DCHECK(bipie_result.rows[r].sums == reference.value().rows[r].sums);
  }

  const double hash_cycles = MeasureCyclesPerRow(
      rows,
      [&] {
        auto r = ExecuteQueryHashAgg(lineitem, query);
        BIPIE_DCHECK(r.ok());
        Consume(&r.value().rows[0], sizeof(ResultRow));
      },
      std::min(repeats, 3), "hash_agg_baseline");
  const double naive_cycles = MeasureCyclesPerRow(
      rows,
      [&] {
        auto r = ExecuteQueryNaive(lineitem, query);
        BIPIE_DCHECK(r.ok());
        Consume(&r.value().rows[0], sizeof(ResultRow));
      },
      1, "naive_baseline");

  const double hz = TscHz();
  std::printf("\nQ1 result (this run):\n%s\n",
              FormatQ1Result(bipie_result).c_str());

  std::printf("%-28s %10s %12s %s\n", "Engine", "clocks/row", "time [s]",
              "source");
  struct Published {
    const char* engine;
    double clocks_per_row;
  };
  const Published published[] = {
      {"EXASol 5.0", 336.0},        {"Vectorwise 3", 100.5},
      {"SQL Server 2014", 114.8},   {"SQL Server 2016", 46.5},
      {"Hyper", 28.8},              {"Voodoo", 38.9},
      {"CWI/Handwritten", 17.3},    {"Hyper/Datablocks", 47.0},
      {"MemSQL/BIPie (paper)", 8.6},
  };
  for (const Published& p : published) {
    std::printf("%-28s %10.1f %12s %s\n", p.engine, p.clocks_per_row, "-",
                "published (quoted from the paper)");
  }
  auto print_ours = [&](const char* name, double cycles) {
    std::printf("%-28s %10.1f %12.3f %s\n", name, cycles,
                cycles * static_cast<double>(rows) / hz, "measured here");
  };
  print_ours("bipie (this repo)", bipie_cycles);
  print_ours("hash-agg baseline", hash_cycles);
  print_ours("naive decode-all baseline", naive_cycles);

  std::printf(
      "\nshape check: bipie vs row-at-a-time hash baseline: %.1fx faster "
      "(paper's BIPie-vs-engines margin: 3.3x..39x)\n",
      hash_cycles / bipie_cycles);
  return 0;
}
