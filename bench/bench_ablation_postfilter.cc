// Ablation: special-group vs compaction across selectivity and per-row
// post-filter cost.
//
// §6.2: "The result of the experiment between compact and special group
// selection depends on the cost of post-filter processing of a row. As
// this cost grows, the compaction becomes a better choice." Special-group
// pushes rejected rows through the whole aggregation pipeline and discards
// them at the end; compaction pays per-column passes once so every later
// stage touches only surviving rows. Which side wins therefore depends on
// (a) how many rows the filter rejects and (b) how much work each
// surviving-row stage performs. This bench sweeps both axes.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/aggregate_processor.h"
#include "storage/table.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

namespace {

Table MakeTable(size_t n, uint64_t seed) {
  Schema schema;
  schema.push_back({"g", ColumnType::kInt64, EncodingChoice::kDictionary});
  for (int c = 0; c < 4; ++c) {
    schema.push_back({"a" + std::to_string(c), ColumnType::kInt64,
                      EncodingChoice::kBitPacked});
  }
  Table table(std::move(schema));
  TableAppender app(&table, n);
  Rng rng(seed);
  std::vector<int64_t> row(5);
  for (size_t i = 0; i < n; ++i) {
    row[0] = static_cast<int64_t>(rng.NextBounded(12));
    for (int c = 0; c < 4; ++c) {
      row[1 + c] = static_cast<int64_t>(rng.NextBounded(1 << 14));
    }
    app.AppendRow(row);
  }
  app.Flush();
  return table;
}

double MeasureCombo(const Table& table, const QuerySpec& query,
                    SelectionStrategy sel, const AlignedBuffer& sel_bytes) {
  const Segment& segment = table.segment(0);
  StrategyOverrides overrides;
  overrides.selection = sel;
  overrides.aggregation = AggregationStrategy::kMultiAggregate;
  AggregateProcessor processor;
  const Status st = processor.Bind(table, segment, query, overrides);
  BIPIE_DCHECK(st.ok());
  const size_t n = segment.num_rows();
  const uint8_t* sel_ptr = sel_bytes.data();
  return MeasureCyclesPerRow(n, [&] {
    for (size_t start = 0; start < n; start += kBatchRows) {
      const size_t m = std::min(kBatchRows, n - start);
      Status ps = processor.ProcessBatch(start, m, sel_ptr + start);
      BIPIE_DCHECK(ps.ok());
    }
  });
}

QuerySpec MakeWorkload(const Table& table, int num_exprs) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates.push_back(AggregateSpec::Count());
  query.aggregates.push_back(AggregateSpec::Sum("a0"));
  for (int e = 0; e < num_exprs; ++e) {
    ExprPtr expr = Expr::Mul(
        Expr::Column(table.FindColumn("a" + std::to_string(1 + e))),
        Expr::Sub(Expr::Constant(100), Expr::Column(table.FindColumn("a0"))));
    query.aggregates.push_back(AggregateSpec::SumExpr(expr));
  }
  query.filters.emplace_back("a0", CompareOp::kGe, int64_t{0});
  return query;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Ablation: special-group vs compaction over selectivity x per-row "
      "cost",
      "BIPie SIGMOD'18 §6.2 (winner depends on post-filter work; cells show "
      "special/compact cycles/row)");
  const size_t n = std::min<size_t>(BenchRows(), size_t{1} << 21);
  Table table = MakeTable(n, 99);

  const double selectivities[] = {0.5, 0.9, 0.98};
  std::printf("%-28s", "workload \\ selectivity");
  for (double s : selectivities) std::printf(" %14.0f%%", s * 100);
  std::printf("\n");
  for (int exprs : {0, 1, 3}) {
    const QuerySpec query = MakeWorkload(table, exprs);
    std::printf("1 raw sum + %d expr sums     ", exprs);
    for (double s : selectivities) {
      auto sel_bytes =
          MakeSelection(n, s, static_cast<uint64_t>(s * 1000) + exprs);
      const double special = MeasureCombo(
          table, query, SelectionStrategy::kSpecialGroup, sel_bytes);
      const double compact =
          MeasureCombo(table, query, SelectionStrategy::kCompact, sel_bytes);
      char cell[48];
      std::snprintf(cell, sizeof(cell), "%.1f/%.1f %s", special, compact,
                    special <= compact ? "S" : "C");
      std::printf(" %15s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: 'S' = special-group wins, 'C' = compaction wins.\n"
      "The Section 6.2 trade-off in action: compaction owns the 50%% "
      "column (dropping half the rows\n"
      "pays for its passes many times over), special-group owns the 98%% "
      "column (almost nothing is\n"
      "wasted, and it skips the per-column compaction passes entirely). "
      "Between them the winner is\n"
      "decided by how much post-filter work each surviving row carries — "
      "exactly the cost balance\n"
      "the paper describes, and why the engine decides per batch from "
      "measured selectivity.\n");
  return 0;
}
