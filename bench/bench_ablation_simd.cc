// Ablation: how much of BIPie's speed comes from SIMD?
//
// Every Vector Toolbox kernel runs twice — once on the AVX2 tier and once
// forced onto the portable scalar tier — over identical inputs. This
// isolates pillar (ii) of the paper ("vector processing with SIMD") from
// pillars (i) and (iii) (encoded-domain processing, specialization), which
// both tiers share.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/cpu.h"
#include "vector/toolbox.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

namespace {

struct Ablation {
  const char* name;
  double scalar_cycles;
  double avx2_cycles;
  double avx512_cycles;  // NaN-ish 0 when the machine lacks AVX-512
};

template <typename Fn>
Ablation RunBoth(const char* name, size_t rows, Fn&& fn) {
  Ablation result{name, 0, 0, 0};
  SetIsaTierForTesting(IsaTier::kScalar);
  result.scalar_cycles = MeasureCyclesPerRow(rows, fn);
  SetIsaTierForTesting(IsaTier::kAvx2);
  result.avx2_cycles = MeasureCyclesPerRow(rows, fn);
  if (DetectIsaTier() >= IsaTier::kAvx512) {
    SetIsaTierForTesting(IsaTier::kAvx512);
    result.avx512_cycles = MeasureCyclesPerRow(rows, fn);
  }
  return result;
}

}  // namespace

int main() {
  PrintBenchHeader("Ablation: scalar tier vs AVX2 tier, cycles/row",
                   "isolates the paper's SIMD pillar (§3) per kernel");
  if (DetectIsaTier() < IsaTier::kAvx2) {
    std::printf("AVX2 not available on this machine; ablation skipped.\n");
    return 0;
  }
  const size_t n = BenchRows();
  std::vector<Ablation> rows;

  {
    auto packed = MakePackedColumn(n, 14, 1);
    AlignedBuffer out(n * 2);
    rows.push_back(RunBoth("bit unpack (14b -> u16)", n, [&] {
      BitUnpack(packed.data(), 0, n, 14, out.data());
      Consume(out.data(), out.size());
    }));
  }
  {
    auto sel = MakeSelection(n, 0.5, 2);
    AlignedBuffer out((n + 8) * 4);
    rows.push_back(RunBoth("compact to index vector (50%)", n, [&] {
      const size_t m =
          CompactToIndexVector(sel.data(), n, out.data_as<uint32_t>());
      Consume(out.data(), m * 4);
    }));
  }
  {
    auto packed = MakePackedColumn(n, 14, 3);
    auto sel = MakeSelection(n, 0.2, 4);
    AlignedBuffer idx((n + 8) * 4);
    const size_t m =
        CompactToIndexVector(sel.data(), n, idx.data_as<uint32_t>());
    AlignedBuffer out(m * 2 + 64);
    rows.push_back(RunBoth("gather selection (14b, 20%)", n, [&] {
      GatherSelect(packed.data(), 14, idx.data_as<uint32_t>(), m, out.data(),
                   2);
      Consume(out.data(), m * 2);
    }));
  }
  {
    auto groups = MakeGroups(n, 6, 5);
    auto sel = MakeSelection(n, 0.98, 6);
    AlignedBuffer out(n);
    rows.push_back(RunBoth("special group assignment", n, [&] {
      ApplySpecialGroup(groups.data(), sel.data(), n, 6, out.data());
      Consume(out.data(), n);
    }));
  }
  {
    auto groups = MakeGroups(n, 8, 7);
    std::vector<uint64_t> counts(8);
    rows.push_back(RunBoth("grouped count (8 groups)", n, [&] {
      std::fill(counts.begin(), counts.end(), 0);
      InRegisterCount(groups.data(), n, 8, counts.data());
      Consume(counts.data(), 64);
    }));
  }
  {
    auto groups = MakeGroups(n, 8, 8);
    auto values = MakeDecodedValues(n, 8, 1, 9);
    std::vector<uint64_t> sums(8);
    rows.push_back(RunBoth("grouped sum of bytes (8 groups)", n, [&] {
      std::fill(sums.begin(), sums.end(), 0);
      InRegisterSum8(groups.data(), values.data(), n, 8, sums.data());
      Consume(sums.data(), 64);
    }));
  }
  {
    auto groups = MakeGroups(n, 32, 10);
    std::vector<AlignedBuffer> arrays;
    arrays.push_back(MakeDecodedValues(n, 40, 8, 11));
    arrays.push_back(MakeDecodedValues(n, 40, 8, 12));
    arrays.push_back(MakeDecodedValues(n, 15, 4, 13));
    arrays.push_back(MakeDecodedValues(n, 15, 4, 14));
    std::vector<const void*> ptrs;
    for (auto& a : arrays) ptrs.push_back(a.data());
    MultiAggregator agg;
    BIPIE_DCHECK(agg.Configure({{8}, {8}, {4}, {4}}, 32).ok());
    std::vector<int64_t> sums(32 * 4);
    rows.push_back(RunBoth("multi-aggregate 4 sums (32 groups)", n, [&] {
      agg.Process(groups.data(), ptrs.data(), n);
      agg.Flush(sums.data());
      Consume(sums.data(), sums.size() * 8);
    }));
  }
  SetIsaTierForTesting(DetectIsaTier());

  const bool have512 = DetectIsaTier() >= IsaTier::kAvx512;
  std::printf("%-36s %10s %10s %10s %9s\n", "kernel", "scalar", "avx2",
              have512 ? "avx512" : "-", "best");
  for (const Ablation& a : rows) {
    const double best =
        have512 && a.avx512_cycles > 0
            ? (a.avx512_cycles < a.avx2_cycles ? a.avx512_cycles
                                               : a.avx2_cycles)
            : a.avx2_cycles;
    if (have512) {
      std::printf("%-36s %10.2f %10.2f %10.2f %8.1fx\n", a.name,
                  a.scalar_cycles, a.avx2_cycles, a.avx512_cycles,
                  a.scalar_cycles / best);
    } else {
      std::printf("%-36s %10.2f %10.2f %10s %8.1fx\n", a.name,
                  a.scalar_cycles, a.avx2_cycles, "-",
                  a.scalar_cycles / best);
    }
  }
  return 0;
}
