// Reproduces Figures 8, 9 and 10: best (selection x aggregation) strategy
// across selectivity and number of aggregates.
//
// Three configurations, as in the paper:
//   Figure 8:  8 groups,  7-bit encoded aggregate columns
//   Figure 9: 12 groups, 14-bit
//   Figure 10: 32 groups, 28-bit
//
// For every cell (1..5 sums x 10%..100% selectivity) all nine combinations
// of {sort-based, in-register, multi-aggregate} x {gather, compact,
// special-group} are measured through the real Aggregate Processor (the
// filter result is precomputed, matching §2.3's assumption), and the
// winner with its cycles/row/sum is printed.
//
// Paper shape: in-register dominates Figure 8; multi-aggregate takes over
// as widths/groups grow (Figures 9-10); gather pairs with low selectivity,
// special-group with high; costs per sum fall as sums are added.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/aggregate_processor.h"
#include "storage/table.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

namespace {

// Rows default lower than the kernel benches: the matrix measures 9 combos
// x 50 cells x 3 configs.
size_t MatrixRows() {
  if (const char* env = std::getenv("BIPIE_BENCH_ROWS")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return size_t{1} << 21;
}

Table MakeConfigTable(size_t n, int num_groups, int bits, uint64_t seed) {
  Schema schema;
  schema.push_back({"g", ColumnType::kInt64, EncodingChoice::kDictionary});
  for (int c = 0; c < 5; ++c) {
    schema.push_back({"a" + std::to_string(c), ColumnType::kInt64,
                      EncodingChoice::kBitPacked});
  }
  Table table(std::move(schema));
  TableAppender app(&table, n);
  Rng rng(seed);
  std::vector<int64_t> row(6);
  const int64_t vmax = static_cast<int64_t>(LowBitsMask(bits));
  for (size_t i = 0; i < n; ++i) {
    row[0] = static_cast<int64_t>(rng.NextBounded(num_groups));
    for (int c = 0; c < 5; ++c) {
      row[1 + c] = static_cast<int64_t>(rng.NextBounded(vmax + 1));
    }
    app.AppendRow(row);
  }
  app.Flush();
  return table;
}

const char* ComboAbbrev(AggregationStrategy a, SelectionStrategy s) {
  static char buf[16];
  const char* an = a == AggregationStrategy::kSortBased      ? "Sort"
                   : a == AggregationStrategy::kInRegister   ? "Reg"
                                                             : "Multi";
  const char* sn = s == SelectionStrategy::kGather   ? "G"
                   : s == SelectionStrategy::kCompact ? "C"
                                                      : "S";
  std::snprintf(buf, sizeof(buf), "%s+%s", an, sn);
  return buf;
}

void RunConfig(const char* figure, int num_groups, int bits) {
  const size_t n = MatrixRows();
  std::printf("--- %s: %d groups, %d-bit encoding ---\n", figure, num_groups,
              bits);
  Table table = MakeConfigTable(n, num_groups, bits, 1000 + bits);
  const Segment& segment = table.segment(0);

  const AggregationStrategy aggs[] = {AggregationStrategy::kSortBased,
                                      AggregationStrategy::kInRegister,
                                      AggregationStrategy::kMultiAggregate};
  const SelectionStrategy sels[] = {SelectionStrategy::kGather,
                                    SelectionStrategy::kCompact,
                                    SelectionStrategy::kSpecialGroup};

  std::printf("%5s |", "#agg");
  for (int pct = 10; pct <= 100; pct += 10) std::printf("  %9d%%", pct);
  std::printf("\n");

  for (int sums = 1; sums <= 5; ++sums) {
    QuerySpec query;
    query.group_by = {"g"};
    query.aggregates.push_back(AggregateSpec::Count());
    for (int c = 0; c < sums; ++c) {
      query.aggregates.push_back(AggregateSpec::Sum("a" + std::to_string(c)));
    }
    // The processor requires a declared filter for special-group selection;
    // the selection bytes themselves are precomputed below.
    query.filters.emplace_back("a0", CompareOp::kGe, int64_t{0});

    std::printf("%4dx |", sums);
    for (int pct = 10; pct <= 100; pct += 10) {
      auto sel = MakeSelection(n, pct / 100.0, 77 * pct);
      const uint8_t* sel_ptr = sel.data();
      double best = 1e30;
      std::string best_name = "n/a";
      for (AggregationStrategy a : aggs) {
        for (SelectionStrategy s : sels) {
          StrategyOverrides overrides;
          overrides.aggregation = a;
          overrides.selection = s;
          AggregateProcessor processor;
          if (!processor.Bind(table, segment, query, overrides).ok()) {
            continue;  // infeasible combo (e.g. 33 in-register groups)
          }
          const double cycles = MeasureCyclesPerRow(
              n,
              [&] {
                for (size_t start = 0; start < n; start += kBatchRows) {
                  const size_t m = std::min(kBatchRows, n - start);
                  Status st =
                      processor.ProcessBatch(start, m, sel_ptr + start);
                  BIPIE_DCHECK(st.ok());
                }
              },
              3);
          const double per_sum = cycles / sums;
          if (per_sum < best) {
            best = per_sum;
            best_name = ComboAbbrev(a, s);
          }
        }
      }
      std::printf(" %7s:%3.1f", best_name.c_str(), best);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Figures 8/9/10: best strategy combination per (sums x selectivity)",
      "BIPie SIGMOD'18 Figures 8, 9, 10 (cells show winner : "
      "cycles/row/sum)");
  RunConfig("Figure 8", 8, 7);
  RunConfig("Figure 9", 12, 14);
  RunConfig("Figure 10", 32, 28);
  return 0;
}
