// Reproduces Table 4: sample performance of Multi-Aggregate SUM.
//
// 32 groups; rows are (number of sums, input byte sizes) combinations from
// the paper, reported as cycles/row/sum. Paper values: 8-2 -> 1.37,
// 8-4-1 -> 1.43, 8-8-4-2 -> 0.91, 8-4-4-2-2 -> 0.77, 4-4-2-2-2 -> 0.75 —
// more sums per register means higher efficiency per sum.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "vector/agg_multi.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader(
      "Table 4: multi-aggregate SUM, 32 groups, cycles/row/sum",
      "BIPie SIGMOD'18 Table 4 (paper: 1.37 / 1.43 / 0.91 / 0.77 / 0.75)");
  const size_t n = BenchRows();
  constexpr int kGroups = 32;
  auto groups = MakeGroups(n, kGroups, 9);

  struct Config {
    std::vector<int> input_bytes;  // paper's raw input sizes
    double paper;
  };
  const Config configs[] = {
      {{8, 2}, 1.37},          {{8, 4, 1}, 1.43},    {{8, 8, 4, 2}, 0.91},
      {{8, 4, 4, 2, 2}, 0.77}, {{4, 4, 2, 2, 2}, 0.75}};

  std::printf("%6s %-14s %10s %12s\n", "#sums", "sizes (bytes)", "paper",
              "measured");
  double first = 0, last = 0;
  for (const Config& config : configs) {
    // Expansion rule (§5.4): 1-2 byte inputs -> 32-bit slots fed as u32
    // arrays; 4-8 byte inputs -> 64-bit slots fed as i64 arrays.
    std::vector<MultiAggregator::ColumnDesc> descs;
    std::vector<AlignedBuffer> arrays;
    std::vector<const void*> ptrs;
    int seed = 70;
    for (int raw : config.input_bytes) {
      const bool narrow = raw <= 2;
      descs.push_back({narrow ? 4 : 8});
      arrays.push_back(MakeDecodedValues(
          n, raw == 1 ? 8 : raw == 2 ? 15 : raw == 4 ? 28 : 40,
          narrow ? 4 : 8, seed++));
    }
    for (auto& a : arrays) ptrs.push_back(a.data());

    MultiAggregator agg;
    const Status st = agg.Configure(descs, kGroups);
    BIPIE_DCHECK(st.ok());
    std::vector<int64_t> sums(
        static_cast<size_t>(kGroups) * descs.size(), 0);
    const double cycles = MeasureCyclesPerRow(n, [&] {
      agg.Process(groups.data(), ptrs.data(), n);
      agg.Flush(sums.data());
      Consume(sums.data(), sums.size() * 8);
    });
    const double per_sum = cycles / static_cast<double>(descs.size());

    std::string sizes;
    for (size_t i = 0; i < config.input_bytes.size(); ++i) {
      if (i > 0) sizes += "-";
      sizes += std::to_string(config.input_bytes[i]);
    }
    std::printf("%6zu %-14s %10.2f %12.2f\n", config.input_bytes.size(),
                sizes.c_str(), config.paper, per_sum);
    if (config.input_bytes.size() == 2) first = per_sum;
    if (config.input_bytes.size() == 5) last = per_sum;
  }
  std::printf(
      "\nshape check: 5 sums cheaper per sum than 2 sums (paper ~1.8x): "
      "%.2fx\n",
      first / last);
  return 0;
}
