// Run-level execution benchmark (DESIGN.md §11): grouped SUM over a
// Q1-shaped lineitem table, fully sorted by the group column (so the group
// column auto-encodes as RLE and the scan admits the kRunBased path)
// versus the same rows shuffled (dictionary groups, row-level path).
//
// Four cells, all single-threaded over identical row multisets:
//   sorted/run_level    adaptive plan  -> run-span pipeline
//   sorted/row_level    forced multi-aggregate -> the row-level comparator
//   shuffled/adaptive   adaptive plan  -> must NOT regress vs forced
//   shuffled/row_level  forced multi-aggregate
//
// Expected shape: run-level beats row-level by >10x on sorted data (span
// metadata arithmetic + contiguous horizontal sums replace per-row group
// mapping), and the adaptive plan on shuffled data stays within noise of
// the forced row-level plan (admission never fires without runs).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/scan.h"

using namespace bipie;         // NOLINT
using namespace bipie::bench;  // NOLINT

namespace {

// Q1-shaped rows: a small-cardinality group column plus three aggregate
// columns at lineitem-like widths (quantity ~6 bits, price ~17 bits,
// discount ~4 bits). String columns always dictionary-encode, so the group
// column is the integer surrogate of returnflag/linestatus.
struct Rows {
  std::vector<int64_t> g;
  std::vector<int64_t> qty;
  std::vector<int64_t> price;
  std::vector<int64_t> disc;
};

Rows MakeRows(size_t n, uint64_t seed) {
  Rows rows;
  rows.g.resize(n);
  rows.qty.resize(n);
  rows.price.resize(n);
  rows.disc.resize(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    // Sorted order: 6 groups in contiguous blocks (lineitem clustered by
    // returnflag, linestatus).
    rows.g[i] = static_cast<int64_t>(i * 6 / n);
    rows.qty[i] = rng.NextInRange(1, 50);
    rows.price[i] = rng.NextInRange(1000, 100000);
    rows.disc[i] = rng.NextInRange(0, 10);
  }
  return rows;
}

Table MakeTable(const Rows& rows, bool shuffled, uint64_t seed) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kAuto},
               {"qty", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"price", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"disc", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  const size_t n = rows.g.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  if (shuffled) {
    Rng rng(seed);
    for (size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
  }
  TableAppender app(&table);
  for (size_t i = 0; i < n; ++i) {
    const size_t r = order[i];
    app.AppendRow({rows.g[r], rows.qty[r], rows.price[r], rows.disc[r]});
  }
  app.Flush();
  return table;
}

QuerySpec MakeQuery() {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("qty"),
                      AggregateSpec::Sum("price"), AggregateSpec::Sum("disc")};
  return query;
}

double MeasurePlan(const Table& table, const std::string& label,
                   bool force_row_level, const char** strategy_out) {
  QuerySpec query = MakeQuery();
  ScanOptions options;
  if (force_row_level) {
    options.overrides.aggregation = AggregationStrategy::kMultiAggregate;
  }
  AggregationStrategy used = AggregationStrategy::kScalar;
  const double cycles = MeasureCyclesPerRow(table.num_rows(), label, [&] {
    BIPieScan scan(table, query, options);
    auto result = scan.Execute();
    if (!result.ok()) {
      std::fprintf(stderr, "scan failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    for (int a = 0; a < kNumAggregationStrategies; ++a) {
      if (scan.stats().aggregation_segments[a] > 0) {
        used = static_cast<AggregationStrategy>(a);
      }
    }
    Consume(result.value().rows.data(),
            result.value().rows.size() * sizeof(ResultRow));
  });
  *strategy_out = AggregationStrategyName(used);
  return cycles;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Run-level aggregation: sorted (RLE) vs shuffled lineitem",
      "run-level execution over RLE-clustered segments (DESIGN.md §11)");
  BenchJsonReport::Get().SetName("run_agg");

  const size_t n = BenchRows();
  const Rows rows = MakeRows(n, 42);
  const Table sorted = MakeTable(rows, /*shuffled=*/false, 7);
  const Table shuffled = MakeTable(rows, /*shuffled=*/true, 7);

  const char* strategy = nullptr;
  std::printf("%-20s %12s %12s\n", "cell", "cycles/row", "strategy");
  const double sorted_run =
      MeasurePlan(sorted, "sorted/run_level", /*force_row_level=*/false,
                  &strategy);
  std::printf("%-20s %12.3f %12s\n", "sorted/run_level", sorted_run, strategy);
  const double sorted_row =
      MeasurePlan(sorted, "sorted/row_level", /*force_row_level=*/true,
                  &strategy);
  std::printf("%-20s %12.3f %12s\n", "sorted/row_level", sorted_row, strategy);
  const double shuffled_adaptive =
      MeasurePlan(shuffled, "shuffled/adaptive", /*force_row_level=*/false,
                  &strategy);
  std::printf("%-20s %12.3f %12s\n", "shuffled/adaptive", shuffled_adaptive,
              strategy);
  const double shuffled_row =
      MeasurePlan(shuffled, "shuffled/row_level", /*force_row_level=*/true,
                  &strategy);
  std::printf("%-20s %12.3f %12s\n", "shuffled/row_level", shuffled_row,
              strategy);

  const double speedup = sorted_run > 0 ? sorted_row / sorted_run : 0.0;
  const double shuffle_ratio =
      shuffled_row > 0 ? shuffled_adaptive / shuffled_row : 0.0;
  std::printf("\nsorted speedup (row-level / run-level): %.2fx\n", speedup);
  std::printf("shuffled adaptive / row-level: %.3f (1.0 = no regression)\n",
              shuffle_ratio);
  BenchJsonReport::Get().Add("summary", {{"sorted_speedup", speedup},
                                         {"shuffled_ratio", shuffle_ratio}});
  return 0;
}
