// Extension benchmark (not a paper table): TPC-H Query 6.
//
// Q6 is the low-selectivity mirror of Q1: a ~2%-selective conjunctive
// range filter and a single expression sum, no group-by. It showcases the
// other end of the selection spectrum — gather selection and segment
// elimination instead of special-group processing.
#include <cstdio>

#include "baseline/hash_agg.h"
#include "baseline/scalar_engine.h"
#include "bench/bench_util.h"
#include "tpch/q6.h"

using namespace bipie;        // NOLINT
using namespace bipie::bench;  // NOLINT

int main() {
  PrintBenchHeader("Extension: TPC-H Query 6, clocks/row across engines",
                   "not in the paper; exercises gather selection at ~2% "
                   "selectivity");
  LineitemOptions options;
  options.num_rows = BenchRows();
  std::printf("generating lineitem (%zu rows)...\n", options.num_rows);
  Table lineitem = MakeLineitemTable(options);
  const size_t rows = lineitem.num_rows();
  const QuerySpec query = MakeQ6Query(lineitem);

  auto reference = ExecuteQueryNaive(lineitem, query);
  BIPIE_DCHECK(reference.ok());

  QueryResult q6;
  ScanStats stats;
  const double bipie_cycles = MeasureCyclesPerRow(rows, "bipie", [&] {
    BIPieScan scan(lineitem, query);
    auto r = scan.Execute();
    BIPIE_DCHECK(r.ok());
    q6 = std::move(r).ValueOrDie();
    stats = scan.stats();
  });
  BIPIE_DCHECK(q6.rows[0].sums == reference.value().rows[0].sums);

  const double hash_cycles = MeasureCyclesPerRow(
      rows,
      [&] {
        auto r = ExecuteQueryHashAgg(lineitem, query);
        BIPIE_DCHECK(r.ok());
      },
      3, "hash_agg_baseline");
  const double naive_cycles = MeasureCyclesPerRow(
      rows,
      [&] {
        auto r = ExecuteQueryNaive(lineitem, query);
        BIPIE_DCHECK(r.ok());
      },
      1, "naive_baseline");

  std::printf("revenue = %.2f over %llu qualifying rows (%.2f%% selectivity)\n",
              Q6RevenueDollars(q6),
              static_cast<unsigned long long>(q6.rows[0].count),
              100.0 * static_cast<double>(stats.rows_selected) /
                  static_cast<double>(stats.rows_scanned));
  std::printf("selection batches: gather=%zu compact=%zu special=%zu\n\n",
              stats.selection.gather, stats.selection.compact,
              stats.selection.special_group);
  std::printf("%-28s %10s\n", "Engine", "clocks/row");
  std::printf("%-28s %10.1f\n", "bipie (this repo)", bipie_cycles);
  std::printf("%-28s %10.1f\n", "hash-agg baseline", hash_cycles);
  std::printf("%-28s %10.1f\n", "naive decode-all baseline", naive_cycles);
  std::printf("\nshape check: bipie vs hash baseline: %.1fx faster\n",
              hash_cycles / bipie_cycles);
  return 0;
}
