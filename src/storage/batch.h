// Batch-at-a-time cursor over a segment (§2.1).
//
// Query processing follows the MonetDB/X100 batch model: a moving window of
// up to kBatchRows rows; one batch is processed entirely before moving on,
// and previous batches are never revisited.
#ifndef BIPIE_STORAGE_BATCH_H_
#define BIPIE_STORAGE_BATCH_H_

#include <cstddef>
#include <cstdint>

#include "storage/segment.h"
#include "storage/types.h"

namespace bipie {

// A view of one window of rows of a segment. Cheap to copy.
struct BatchView {
  const Segment* segment = nullptr;
  size_t start = 0;     // first row of the window within the segment
  size_t num_rows = 0;  // window length, <= kBatchRows

  // Per-row liveness bytes for this window (0xFF alive / 0x00 deleted), or
  // nullptr when the segment has no deleted rows.
  const uint8_t* alive_bytes() const {
    const uint8_t* base = segment->alive_bytes();
    return base == nullptr ? nullptr : base + start;
  }
};

class BatchCursor {
 public:
  explicit BatchCursor(const Segment& segment, size_t batch_rows = kBatchRows)
      : segment_(&segment), batch_rows_(batch_rows) {}

  // Produces the next window; returns false at end of segment.
  bool Next(BatchView* view) {
    if (pos_ >= segment_->num_rows()) return false;
    view->segment = segment_;
    view->start = pos_;
    const size_t remaining = segment_->num_rows() - pos_;
    view->num_rows = remaining < batch_rows_ ? remaining : batch_rows_;
    pos_ += view->num_rows;
    return true;
  }

  void Reset() { pos_ = 0; }

 private:
  const Segment* segment_;
  size_t batch_rows_;
  size_t pos_ = 0;
};

}  // namespace bipie

#endif  // BIPIE_STORAGE_BATCH_H_
