// Batch-at-a-time cursor over a segment (§2.1).
//
// Query processing follows the MonetDB/X100 batch model: a moving window of
// up to kBatchRows rows; one batch is processed entirely before moving on,
// and previous batches are never revisited.
#ifndef BIPIE_STORAGE_BATCH_H_
#define BIPIE_STORAGE_BATCH_H_

#include <cstddef>
#include <cstdint>

#include "storage/segment.h"
#include "storage/types.h"

namespace bipie {

// A view of one window of rows of a segment. Cheap to copy.
struct BatchView {
  const Segment* segment = nullptr;
  size_t start = 0;     // first row of the window within the segment
  size_t num_rows = 0;  // window length, <= kBatchRows

  // Per-row liveness bytes for this window (0xFF alive / 0x00 deleted), or
  // nullptr when the segment has no deleted rows.
  const uint8_t* alive_bytes() const {
    const uint8_t* base = segment->alive_bytes();
    return base == nullptr ? nullptr : base + start;
  }
};

class BatchCursor {
 public:
  explicit BatchCursor(const Segment& segment, size_t batch_rows = kBatchRows)
      : BatchCursor(segment, batch_rows, 0, segment.num_rows()) {}

  // Cursor over the row range [start, start + num_rows) only — the shape a
  // morsel of a segment scans. `start` should be a multiple of `batch_rows`
  // so window boundaries match a whole-segment walk (AggregateProcessor
  // requires batch-aligned window starts). The range is clamped to the
  // segment.
  BatchCursor(const Segment& segment, size_t batch_rows, size_t start,
              size_t num_rows)
      : segment_(&segment), batch_rows_(batch_rows), start_(start) {
    const size_t total = segment.num_rows();
    start_ = start_ < total ? start_ : total;
    const size_t available = total - start_;
    end_ = start_ + (num_rows < available ? num_rows : available);
    pos_ = start_;
  }

  // Produces the next window; returns false at end of range.
  bool Next(BatchView* view) {
    if (pos_ >= end_) return false;
    view->segment = segment_;
    view->start = pos_;
    const size_t remaining = end_ - pos_;
    view->num_rows = remaining < batch_rows_ ? remaining : batch_rows_;
    pos_ += view->num_rows;
    return true;
  }

  void Reset() { pos_ = start_; }

 private:
  const Segment* segment_;
  size_t batch_rows_;
  size_t start_ = 0;
  size_t end_ = 0;
  size_t pos_ = 0;
};

}  // namespace bipie

#endif  // BIPIE_STORAGE_BATCH_H_
