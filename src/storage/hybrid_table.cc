#include "storage/hybrid_table.h"

#include <algorithm>
#include <map>

namespace bipie {

HybridTable::HybridTable(Schema schema, size_t segment_rows)
    : schema_(schema),
      immutable_(std::move(schema)),
      segment_rows_(segment_rows),
      merge_threshold_(segment_rows) {}

void HybridTable::Insert(const std::vector<int64_t>& ints,
                         const std::vector<std::string>& strings) {
  BIPIE_DCHECK(ints.size() == schema_.size());
  pending_ints_.push_back(ints);
  pending_strings_.push_back(strings.empty()
                                 ? std::vector<std::string>(schema_.size())
                                 : strings);
  if (pending_ints_.size() >= merge_threshold_) Merge();
}

void HybridTable::Merge() {
  if (pending_ints_.empty()) return;
  TableAppender appender(&immutable_, segment_rows_);
  for (size_t i = 0; i < pending_ints_.size(); ++i) {
    appender.AppendRow(pending_ints_[i], pending_strings_[i]);
  }
  appender.Flush();
  pending_ints_.clear();
  pending_strings_.clear();
}

namespace {

// Row-at-a-time evaluation over the mutable region. The region is small by
// construction (bounded by the merge threshold), so simplicity wins over
// vectorization here — exactly the paper's split: BIPie optimizes the
// immutable region, the rowstore handles fresh rows.
Status ScanMutableRegion(const HybridTable& table, const Schema& schema,
                         const QuerySpec& query,
                         const std::vector<std::vector<int64_t>>& ints,
                         const std::vector<std::vector<std::string>>& strings,
                         std::map<std::vector<GroupValue>, ResultRow>* merged);

void MergeRow(const QuerySpec& query, const std::vector<GroupValue>& key,
              uint64_t count, const std::vector<int64_t>& values,
              std::map<std::vector<GroupValue>, ResultRow>* merged) {
  ResultRow& row = (*merged)[key];
  const bool fresh = row.sums.empty();
  if (fresh) {
    row.group = key;
    row.sums.assign(query.aggregates.size(), 0);
  }
  row.count += count;
  for (size_t a = 0; a < query.aggregates.size(); ++a) {
    switch (query.aggregates[a].kind) {
      case AggregateSpec::Kind::kMin:
        row.sums[a] = fresh ? values[a] : std::min(row.sums[a], values[a]);
        break;
      case AggregateSpec::Kind::kMax:
        row.sums[a] = fresh ? values[a] : std::max(row.sums[a], values[a]);
        break;
      default:
        row.sums[a] += values[a];
        break;
    }
  }
}

Status ScanMutableRegion(
    const HybridTable& table, const Schema& schema, const QuerySpec& query,
    const std::vector<std::vector<int64_t>>& ints,
    const std::vector<std::vector<std::string>>& strings,
    std::map<std::vector<GroupValue>, ResultRow>* merged) {
  (void)table;
  // Resolve columns once.
  auto find_column = [&](const std::string& name) {
    for (size_t c = 0; c < schema.size(); ++c) {
      if (schema[c].name == name) return static_cast<int>(c);
    }
    return -1;
  };
  std::vector<int> group_cols;
  for (const std::string& name : query.group_by) {
    const int idx = find_column(name);
    if (idx < 0) return Status::InvalidArgument("unknown column: " + name);
    group_cols.push_back(idx);
  }
  std::vector<int> filter_cols;
  for (const ColumnPredicate& pred : query.filters) {
    const int idx = find_column(pred.column_name());
    if (idx < 0) {
      return Status::InvalidArgument("unknown column: " + pred.column_name());
    }
    filter_cols.push_back(idx);
  }
  std::vector<int> agg_cols(query.aggregates.size(), -1);
  for (size_t a = 0; a < query.aggregates.size(); ++a) {
    const AggregateSpec& spec = query.aggregates[a];
    if (spec.kind == AggregateSpec::Kind::kSum ||
        spec.kind == AggregateSpec::Kind::kAvg ||
        spec.kind == AggregateSpec::Kind::kMin ||
        spec.kind == AggregateSpec::Kind::kMax) {
      agg_cols[a] = find_column(spec.column);
      if (agg_cols[a] < 0) {
        return Status::InvalidArgument("unknown column: " + spec.column);
      }
    }
  }

  std::vector<const int64_t*> row_ptrs(schema.size());
  for (size_t i = 0; i < ints.size(); ++i) {
    const std::vector<int64_t>& row_ints = ints[i];
    const std::vector<std::string>& row_strings = strings[i];

    bool pass = true;
    for (size_t f = 0; f < query.filters.size(); ++f) {
      const ColumnPredicate& pred = query.filters[f];
      const int c = filter_cols[f];
      if (schema[c].type == ColumnType::kString) {
        // String predicates in the rowstore compare values directly.
        const int cmp = row_strings[c].compare(pred.string_literal());
        bool hit;
        switch (pred.op()) {
          case CompareOp::kEq: hit = cmp == 0; break;
          case CompareOp::kNe: hit = cmp != 0; break;
          case CompareOp::kLt: hit = cmp < 0; break;
          case CompareOp::kLe: hit = cmp <= 0; break;
          case CompareOp::kGt: hit = cmp > 0; break;
          case CompareOp::kGe: hit = cmp >= 0; break;
          default:
            return Status::NotSupported(
                "BETWEEN on string columns is not supported");
        }
        pass = hit;
      } else {
        pass = CompareInt64(row_ints[c], pred.op(), pred.literal(),
                            pred.literal2());
      }
      if (!pass) break;
    }
    if (!pass) continue;

    std::vector<GroupValue> key;
    for (int gc : group_cols) {
      GroupValue v;
      if (schema[gc].type == ColumnType::kString) {
        v.is_string = true;
        v.string_value = row_strings[gc];
      } else {
        v.int_value = row_ints[gc];
      }
      key.push_back(std::move(v));
    }

    std::vector<int64_t> values(query.aggregates.size(), 0);
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const AggregateSpec& spec = query.aggregates[a];
      switch (spec.kind) {
        case AggregateSpec::Kind::kCount:
          values[a] = 1;
          break;
        case AggregateSpec::Kind::kSum:
        case AggregateSpec::Kind::kAvg:
        case AggregateSpec::Kind::kMin:
        case AggregateSpec::Kind::kMax:
          values[a] = row_ints[agg_cols[a]];
          break;
        case AggregateSpec::Kind::kSumExpr: {
          for (size_t c = 0; c < schema.size(); ++c) {
            row_ptrs[c] = &row_ints[c];
          }
          int64_t out = 0;
          spec.expr->Evaluate(row_ptrs.data(), 1, &out);
          values[a] = out;
          break;
        }
      }
    }
    MergeRow(query, key, 1, values, merged);
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> ExecuteQueryHybrid(const HybridTable& table,
                                       const QuerySpec& query,
                                       ScanOptions options) {
  // Immutable region through the BIPie scan.
  Result<QueryResult> immutable_result =
      ExecuteQuery(table.immutable(), query, std::move(options));
  if (!immutable_result.ok()) return immutable_result.status();

  std::map<std::vector<GroupValue>, ResultRow> merged;
  for (const ResultRow& row : immutable_result.value().rows) {
    MergeRow(query, row.group, row.count, row.sums, &merged);
  }
  // kCount slots were materialized as counts in the immutable result; the
  // MergeRow addition above double-counts them only if we add count again,
  // so rebuild them at the end instead.
  BIPIE_RETURN_NOT_OK(ScanMutableRegion(table, table.schema(), query,
                                        table.pending_ints_,
                                        table.pending_strings_, &merged));

  QueryResult result;
  result.group_column_names = query.group_by;
  result.rows.reserve(merged.size());
  for (auto& [key, row] : merged) {
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      if (query.aggregates[a].kind == AggregateSpec::Kind::kCount) {
        row.sums[a] = static_cast<int64_t>(row.count);
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace bipie
