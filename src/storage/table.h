// A columnstore table: a schema plus a list of immutable segments.
//
// This models the immutable region of the MemSQL columnstore index that
// BIPie scans (§2.1). The mutable rowstore region and the background merger
// are out of scope per the paper; TableAppender plays the role of the
// compression step that turns incoming rows into encoded segments.
#ifndef BIPIE_STORAGE_TABLE_H_
#define BIPIE_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_builder.h"
#include "storage/segment.h"
#include "storage/types.h"

namespace bipie {

class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  BIPIE_DISALLOW_COPY_AND_ASSIGN(Table);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return schema_.size(); }

  // Index of the column named `name`, or -1.
  int FindColumn(const std::string& name) const;

  size_t num_segments() const { return segments_.size(); }
  const Segment& segment(size_t i) const { return *segments_[i]; }
  Segment& mutable_segment(size_t i) { return *segments_[i]; }

  size_t num_rows() const {
    size_t total = 0;
    for (const auto& s : segments_) total += s->num_rows();
    return total;
  }

  void AddSegment(Segment segment) {
    segments_.push_back(std::make_unique<Segment>(std::move(segment)));
  }

  // Deep validation of every segment against the schema: column counts and
  // types match, and each segment passes Segment::Validate(). LoadTable
  // runs this over every loaded table (the untrusted-data boundary); it is
  // also callable standalone on hand-built tables.
  Status Validate() const;

  // Re-homes every buffer's memory charge to `to`. A table is typically
  // shared process state: LoadTable charges the load against the calling
  // query's tracker (so per-query limits bound the load's peak), then moves
  // the finished table's footprint to the process root here.
  void MoveMemoryChargesTo(MemoryTracker& to) {
    for (const auto& s : segments_) s->MoveMemoryChargesTo(to);
  }

 private:
  Schema schema_;
  std::vector<std::unique_ptr<Segment>> segments_;
};

// Streams rows (or columnar chunks) into a table, cutting a new encoded
// segment every `segment_rows` rows.
class TableAppender {
 public:
  TableAppender(Table* table, size_t segment_rows = kDefaultSegmentRows);

  // Row-wise append; values must match the schema arity and types. String
  // cells are passed through `strings`, aligned by schema position (entries
  // for int columns are ignored).
  void AppendRow(const std::vector<int64_t>& ints,
                 const std::vector<std::string>& strings = {});

  // Columnar bulk append of `n` rows for an all-int64 schema.
  void AppendInt64Chunk(const std::vector<const int64_t*>& columns, size_t n);

  size_t pending_rows() const { return pending_rows_; }

  // Encodes any buffered rows into a final (possibly short) segment.
  void Flush();

 private:
  void CutSegment();

  Table* table_;
  size_t segment_rows_;
  size_t pending_rows_ = 0;
  std::vector<ColumnBuilder> builders_;
};

}  // namespace bipie

#endif  // BIPIE_STORAGE_TABLE_H_
