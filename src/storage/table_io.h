// Columnstore persistence: save/load a table's encoded form.
//
// A real columnstore's immutable region lives on disk (§2.1: "disk-backed,
// column-oriented store"); this module provides that surface as a single
// self-describing file. Columns are written in their *encoded*
// representation — bit-packed streams, dictionaries, runs — so loading does
// no re-encoding, and a benchmark dataset generated once (e.g. TPC-H
// lineitem) can be reloaded instantly.
//
// The file is an untrusted-data boundary: the scan kernels trust bit
// widths, dictionary sizes and min/max metadata absolutely, so everything
// crossing this boundary is (a) bounded against the physical file size
// before any allocation, (b) checksum-verified (format v2), and (c) run
// through the deep decode validation pass (Table::Validate) before the
// caller ever sees it. A corrupt, truncated or adversarial file yields a
// structured Status — kDataLoss for untrustworthy bytes — never a crash.
//
// Format v2 (little-endian), magic "BIPIETB2":
//   magic, then a sequence of framed blocks, each
//     u64 payload_length | u32 crc32c(payload) | payload
//   Block 0 (header): u32 num_columns, per column (string name, u8 type,
//     u8 encoding_choice), u32 num_segments.
//   Per segment: one segment block (u64 num_rows, u8 has_alive, alive
//     mask), then one block per column with the column's encoding,
//     metadata, packed stream and auxiliary structures.
//
// Format v1, magic "BIPIETB1": the same logical content with no framing
// and no checksums. v1 files still load (the "unverified legacy format"
// path — deep validation is their only line of defence) unless
// LoadOptions::strict demands a verifiable format. Unknown future versions
// fail with kNotSupported.
#ifndef BIPIE_STORAGE_TABLE_IO_H_
#define BIPIE_STORAGE_TABLE_IO_H_

#include <string>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "storage/table.h"

namespace bipie {

struct SaveOptions {
  // 2 (default) writes the checksummed BIPIETB2 format; 1 writes the legacy
  // unchecksummed BIPIETB1 layout (back-compat tests, downgrade escape).
  int format_version = 2;
};

struct LoadOptions {
  // Verify the CRC32C of every v2 block before decoding it. Skipping makes
  // loading a trusted file cost the same as v1 (the frame fields are a few
  // bytes per block); deep validation below still runs.
  bool verify_checksums = true;
  // Run Table::Validate() on the decoded table — the deep pass that makes
  // the kernels' trusted invariants actually hold. Only disable for files
  // produced and kept inside the same process.
  bool validate = true;
  // Refuse formats that cannot be checksum-verified (v1 legacy files load
  // as kNotSupported instead of silently skipping verification).
  bool strict = false;
  // Memory governance for the load (nullable). The tracker is bound for
  // the whole load, so read-buffer allocations count against its limits
  // and an overcommitting load fails with kResourceExhausted instead of
  // OOMing. On success the finished table's buffers are re-homed to the
  // process root — a loaded table is shared state that outlives the
  // loading query (DESIGN.md §13).
  MemoryTracker* memory_tracker = nullptr;
};

Status SaveTable(const Table& table, const std::string& path,
                 const SaveOptions& options = {});

Result<Table> LoadTable(const std::string& path,
                        const LoadOptions& options = {});

}  // namespace bipie

#endif  // BIPIE_STORAGE_TABLE_IO_H_
