// Columnstore persistence: save/load a table's encoded form.
//
// A real columnstore's immutable region lives on disk (§2.1: "disk-backed,
// column-oriented store"); this module provides that surface as a single
// self-describing file. Columns are written in their *encoded*
// representation — bit-packed streams, dictionaries, runs — so loading does
// no re-encoding, and a benchmark dataset generated once (e.g. TPC-H
// lineitem) can be reloaded instantly.
//
// Format (little-endian):
//   magic "BIPIETB1", schema, then per segment the alive mask and each
//   column's encoding, metadata, packed stream and auxiliary structures.
#ifndef BIPIE_STORAGE_TABLE_IO_H_
#define BIPIE_STORAGE_TABLE_IO_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace bipie {

Status SaveTable(const Table& table, const std::string& path);

Result<Table> LoadTable(const std::string& path);

}  // namespace bipie

#endif  // BIPIE_STORAGE_TABLE_IO_H_
