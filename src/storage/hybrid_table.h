// The full §2.1 storage architecture: a mutable, row-oriented,
// uncompressed region in front of the immutable encoded columnstore.
//
// "The mutable region represents a small fraction of rows, recently added
// or modified. It is compressed into the immutable region by a background
// task." Here the merge is an explicit (or threshold-triggered) call —
// deterministic where MemSQL's is asynchronous, which keeps tests exact.
//
// Queries against a HybridTable run BIPie over the immutable segments and
// a row-at-a-time evaluator over the (small) mutable region, merging the
// two partial results by group value — the real-time-analytics contract
// that freshly inserted rows are visible immediately, before any merge.
#ifndef BIPIE_STORAGE_HYBRID_TABLE_H_
#define BIPIE_STORAGE_HYBRID_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "core/scan.h"
#include "storage/table.h"

namespace bipie {

class HybridTable {
 public:
  explicit HybridTable(Schema schema,
                       size_t segment_rows = kDefaultSegmentRows);

  HybridTable(HybridTable&&) = default;
  BIPIE_DISALLOW_COPY_AND_ASSIGN(HybridTable);

  const Schema& schema() const { return schema_; }
  const Table& immutable() const { return immutable_; }
  Table& mutable_immutable() { return immutable_; }

  // Inserts one row into the mutable region. Triggers a merge when the
  // region reaches merge_threshold().
  void Insert(const std::vector<int64_t>& ints,
              const std::vector<std::string>& strings = {});

  size_t mutable_rows() const { return pending_ints_.size(); }
  size_t num_rows() const {
    return immutable_.num_rows() + mutable_rows();
  }

  // Compresses the mutable region into encoded immutable segments (the
  // "background task", run in the foreground).
  void Merge();

  size_t merge_threshold() const { return merge_threshold_; }
  void set_merge_threshold(size_t rows) { merge_threshold_ = rows; }

 private:
  friend Result<QueryResult> ExecuteQueryHybrid(const HybridTable&,
                                                const QuerySpec&,
                                                ScanOptions);

  Schema schema_;
  Table immutable_;
  size_t segment_rows_;
  size_t merge_threshold_;
  // Row-oriented mutable region (column-of-rows for ints, plus strings).
  std::vector<std::vector<int64_t>> pending_ints_;
  std::vector<std::vector<std::string>> pending_strings_;
};

// Executes the BIPie workload shape over immutable + mutable regions.
Result<QueryResult> ExecuteQueryHybrid(const HybridTable& table,
                                       const QuerySpec& query,
                                       ScanOptions options = {});

}  // namespace bipie

#endif  // BIPIE_STORAGE_HYBRID_TABLE_H_
