#include "storage/table.h"

#include <algorithm>

namespace bipie {

int Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Table::Validate() const {
  for (size_t s = 0; s < segments_.size(); ++s) {
    const Segment& segment = *segments_[s];
    if (segment.num_columns() != schema_.size()) {
      return Status::DataLoss("segment " + std::to_string(s) +
                              " column count disagrees with schema");
    }
    for (size_t c = 0; c < schema_.size(); ++c) {
      if (segment.column(c).type() != schema_[c].type) {
        return Status::DataLoss("segment " + std::to_string(s) + " column " +
                                std::to_string(c) +
                                " type disagrees with schema");
      }
    }
    const Status st = segment.Validate();
    if (!st.ok()) {
      return Status::DataLoss("segment " + std::to_string(s) + ": " +
                              st.message());
    }
  }
  return Status::OK();
}

TableAppender::TableAppender(Table* table, size_t segment_rows)
    : table_(table), segment_rows_(segment_rows) {
  BIPIE_DCHECK(segment_rows_ > 0);
  for (const ColumnSpec& spec : table_->schema()) {
    builders_.emplace_back(spec);
  }
}

void TableAppender::AppendRow(const std::vector<int64_t>& ints,
                              const std::vector<std::string>& strings) {
  const Schema& schema = table_->schema();
  BIPIE_DCHECK(ints.size() == schema.size());
  for (size_t c = 0; c < schema.size(); ++c) {
    if (schema[c].type == ColumnType::kString) {
      BIPIE_DCHECK(c < strings.size());
      builders_[c].AppendString(strings[c]);
    } else {
      builders_[c].AppendInt64(ints[c]);
    }
  }
  if (++pending_rows_ == segment_rows_) CutSegment();
}

void TableAppender::AppendInt64Chunk(
    const std::vector<const int64_t*>& columns, size_t n) {
  BIPIE_DCHECK(columns.size() == table_->num_columns());
  size_t offset = 0;
  while (n > 0) {
    const size_t room = segment_rows_ - pending_rows_;
    const size_t take = std::min(room, n);
    for (size_t c = 0; c < columns.size(); ++c) {
      builders_[c].AppendInt64Bulk(columns[c] + offset, take);
    }
    pending_rows_ += take;
    offset += take;
    n -= take;
    if (pending_rows_ == segment_rows_) CutSegment();
  }
}

void TableAppender::Flush() {
  if (pending_rows_ > 0) CutSegment();
}

void TableAppender::CutSegment() {
  std::vector<EncodedColumn> columns;
  columns.reserve(builders_.size());
  for (ColumnBuilder& b : builders_) columns.push_back(b.Finish());
  table_->AddSegment(Segment(pending_rows_, std::move(columns)));
  pending_rows_ = 0;
}

}  // namespace bipie
