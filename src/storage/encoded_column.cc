#include "storage/encoded_column.h"

#include "common/bits.h"
#include "encoding/bitpack.h"

namespace bipie {

uint64_t EncodedColumn::id_bound() const {
  switch (encoding_) {
    case Encoding::kDictionary:
      return type_ == ColumnType::kString ? str_dict_->size()
                                          : int_dict_->size();
    case Encoding::kBitPacked:
      // Offsets span [0, max - base]; metadata gives the exact bound.
      return static_cast<uint64_t>(meta_.max) -
             static_cast<uint64_t>(base_) + 1;
    case Encoding::kRle:
    case Encoding::kDelta:
      return 0;  // not id-addressable
  }
  return 0;
}

void EncodedColumn::UnpackIds(size_t start, size_t n, void* out,
                              int word_bytes) const {
  BIPIE_DCHECK(encoding_ == Encoding::kBitPacked ||
               encoding_ == Encoding::kDictionary);
  BIPIE_DCHECK(start + n <= meta_.num_rows);
  BitUnpackToWord(packed_.data(), start, n, bit_width_, out, word_bytes);
}

void EncodedColumn::DecodeInt64(size_t start, size_t n, int64_t* out) const {
  BIPIE_DCHECK(start + n <= meta_.num_rows);
  switch (encoding_) {
    case Encoding::kBitPacked: {
      BitUnpackToWord(packed_.data(), start, n, bit_width_, out, 8);
      if (base_ != 0) {
        for (size_t i = 0; i < n; ++i) {
          out[i] = static_cast<int64_t>(static_cast<uint64_t>(out[i]) +
                                        static_cast<uint64_t>(base_));
        }
      }
      return;
    }
    case Encoding::kDictionary: {
      BitUnpackToWord(packed_.data(), start, n, bit_width_, out, 8);
      if (type_ == ColumnType::kInt64) {
        for (size_t i = 0; i < n; ++i) {
          out[i] = int_dict_->value(static_cast<uint32_t>(out[i]));
        }
      }
      // String columns keep dictionary ids as the logical int64 values.
      return;
    }
    case Encoding::kRle: {
      RleDecodeRange(runs_, start, n, reinterpret_cast<uint64_t*>(out));
      return;
    }
    case Encoding::kDelta: {
      if (n == 0) return;
      // Roll forward from the checkpoint at or before `start`. The delta
      // for row i lives at packed index i - 1, so rows
      // (block_row, start + n) consume packed indices [block_row, ...).
      const size_t block = start / kDeltaCheckpointRows;
      const size_t block_row = block * kDeltaCheckpointRows;
      int64_t value = checkpoints_[block];
      const size_t total = start + n;
      const size_t num_deltas =
          total > block_row + 1 ? total - block_row - 1 : 0;
      std::vector<uint64_t> offsets(num_deltas);
      if (num_deltas > 0) {
        BitUnpackToWord(packed_.data(), block_row, num_deltas, bit_width_,
                        offsets.data(), 8);
      }
      if (block_row >= start) out[block_row - start] = value;
      for (size_t k = 0; k < num_deltas; ++k) {
        const size_t row = block_row + 1 + k;
        value += delta_min_ + static_cast<int64_t>(offsets[k]);
        if (row >= start) out[row - start] = value;
      }
      return;
    }
  }
}

size_t EncodedColumn::encoded_bytes() const {
  switch (encoding_) {
    case Encoding::kBitPacked:
      return packed_.size();
    case Encoding::kDictionary: {
      size_t dict_bytes = 0;
      if (int_dict_ != nullptr) dict_bytes = int_dict_->size() * 8;
      if (str_dict_ != nullptr) {
        for (const auto& s : str_dict_->values()) dict_bytes += s.size() + 4;
      }
      return packed_.size() + dict_bytes;
    }
    case Encoding::kRle:
      return runs_.size() * sizeof(RleRun);
    case Encoding::kDelta:
      return packed_.size() + checkpoints_.size() * sizeof(int64_t);
  }
  return 0;
}

}  // namespace bipie
