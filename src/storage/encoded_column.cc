#include "storage/encoded_column.h"

#include <algorithm>
#include <string>

#include "common/bits.h"
#include "encoding/bitpack.h"
#include "encoding/byteslice.h"

namespace bipie {

namespace {

template <typename Word>
uint64_t MaxWord(const Word* values, size_t n) {
  Word max_value = 0;
  for (size_t i = 0; i < n; ++i) max_value = std::max(max_value, values[i]);
  return max_value;
}

// Largest packed value in [0, n) of the stream, via the vectorized unpack at
// the smallest word width (this is the hot part of deep validation; a scalar
// walk would make loading large tables noticeably slower).
uint64_t MaxPackedValue(const AlignedBuffer& packed, size_t n, int bit_width) {
  const int word = SmallestWordBytes(bit_width);
  AlignedBuffer scratch(kBatchRows * static_cast<size_t>(word));
  uint64_t max_value = 0;
  for (size_t start = 0; start < n; start += kBatchRows) {
    const size_t chunk = std::min(kBatchRows, n - start);
    BitUnpack(packed.data(), start, chunk, bit_width, scratch.data());
    uint64_t chunk_max = 0;
    switch (word) {
      case 1:
        chunk_max = MaxWord(scratch.data_as<uint8_t>(), chunk);
        break;
      case 2:
        chunk_max = MaxWord(scratch.data_as<uint16_t>(), chunk);
        break;
      case 4:
        chunk_max = MaxWord(scratch.data_as<uint32_t>(), chunk);
        break;
      default:
        chunk_max = MaxWord(scratch.data_as<uint64_t>(), chunk);
        break;
    }
    max_value = std::max(max_value, chunk_max);
  }
  return max_value;
}

}  // namespace

uint64_t EncodedColumn::id_bound() const {
  switch (encoding_) {
    case Encoding::kDictionary:
      return type_ == ColumnType::kString ? str_dict_->size()
                                          : int_dict_->size();
    case Encoding::kBitPacked:
    case Encoding::kByteSliced:
      // Offsets span [0, max - base]; metadata gives the exact bound.
      return static_cast<uint64_t>(meta_.max) -
             static_cast<uint64_t>(base_) + 1;
    case Encoding::kRle:
    case Encoding::kDelta:
      return 0;  // not id-addressable
  }
  return 0;
}

void EncodedColumn::UnpackIds(size_t start, size_t n, void* out,
                              int word_bytes) const {
  BIPIE_DCHECK(encoding_ == Encoding::kBitPacked ||
               encoding_ == Encoding::kDictionary ||
               encoding_ == Encoding::kByteSliced);
  BIPIE_DCHECK(start + n <= meta_.num_rows);
  if (encoding_ == Encoding::kByteSliced) {
    ByteSliceAssemble(packed_.data(), meta_.num_rows, bit_width_, start, n,
                      out, word_bytes);
    return;
  }
  BitUnpackToWord(packed_.data(), start, n, bit_width_, out, word_bytes);
}

void EncodedColumn::DecodeInt64(size_t start, size_t n, int64_t* out) const {
  BIPIE_DCHECK(start + n <= meta_.num_rows);
  switch (encoding_) {
    case Encoding::kBitPacked:
    case Encoding::kByteSliced: {
      if (encoding_ == Encoding::kByteSliced) {
        ByteSliceAssemble(packed_.data(), meta_.num_rows, bit_width_, start,
                          n, out, 8);
      } else {
        BitUnpackToWord(packed_.data(), start, n, bit_width_, out, 8);
      }
      if (base_ != 0) {
        for (size_t i = 0; i < n; ++i) {
          out[i] = static_cast<int64_t>(static_cast<uint64_t>(out[i]) +
                                        static_cast<uint64_t>(base_));
        }
      }
      return;
    }
    case Encoding::kDictionary: {
      BitUnpackToWord(packed_.data(), start, n, bit_width_, out, 8);
      if (type_ == ColumnType::kInt64) {
        for (size_t i = 0; i < n; ++i) {
          out[i] = int_dict_->value(static_cast<uint32_t>(out[i]));
        }
      }
      // String columns keep dictionary ids as the logical int64 values.
      return;
    }
    case Encoding::kRle: {
      RleDecodeRange(runs_, start, n, reinterpret_cast<uint64_t*>(out));
      return;
    }
    case Encoding::kDelta: {
      if (n == 0) return;
      // Roll forward from the checkpoint at or before `start`. The delta
      // for row i lives at packed index i - 1, so rows
      // (block_row, start + n) consume packed indices [block_row, ...).
      const size_t block = start / kDeltaCheckpointRows;
      const size_t block_row = block * kDeltaCheckpointRows;
      int64_t value = checkpoints_[block];
      const size_t total = start + n;
      const size_t num_deltas =
          total > block_row + 1 ? total - block_row - 1 : 0;
      std::vector<uint64_t> offsets(num_deltas);
      if (num_deltas > 0) {
        BitUnpackToWord(packed_.data(), block_row, num_deltas, bit_width_,
                        offsets.data(), 8);
      }
      if (block_row >= start) out[block_row - start] = value;
      for (size_t k = 0; k < num_deltas; ++k) {
        const size_t row = block_row + 1 + k;
        value += delta_min_ + static_cast<int64_t>(offsets[k]);
        if (row >= start) out[row - start] = value;
      }
      return;
    }
  }
}

Status EncodedColumn::Validate() const {
  // Enum discriminants first: nothing below means anything if these were
  // corrupted, and an out-of-range enum value is UB waiting to happen.
  const int type_raw = static_cast<int>(type_);
  if (type_raw < 0 || type_raw > static_cast<int>(ColumnType::kString)) {
    return Status::DataLoss("column type discriminant out of range: " +
                            std::to_string(type_raw));
  }
  const int enc_raw = static_cast<int>(encoding_);
  if (enc_raw < 0 || enc_raw > static_cast<int>(Encoding::kByteSliced)) {
    return Status::DataLoss("column encoding discriminant out of range: " +
                            std::to_string(enc_raw));
  }
  if (meta_.min > meta_.max) {
    return Status::DataLoss("column metadata min > max");
  }
  if (type_ == ColumnType::kString && encoding_ != Encoding::kDictionary) {
    return Status::DataLoss("string column must be dictionary encoded");
  }
  const size_t n = meta_.num_rows;
  if (n == 0) return Status::OK();  // nothing will ever be decoded

  switch (encoding_) {
    case Encoding::kBitPacked: {
      if (bit_width_ < 1 || bit_width_ > 64) {
        return Status::DataLoss("bit width out of [1, 64]: " +
                                std::to_string(bit_width_));
      }
      if (base_ != meta_.min) {
        // The builder always uses min as the frame-of-reference base;
        // id_bound() and the overflow proofs assume it.
        return Status::DataLoss("frame-of-reference base != metadata min");
      }
      if (packed_.size() < BitPackedBytes(n, bit_width_)) {
        return Status::DataLoss("bit-packed stream shorter than row count");
      }
      // Every offset must stay within the metadata spread: offsets above it
      // would decode outside [min, max], breaking segment elimination and
      // the id_bound() the aggregation kernels size their arrays with.
      const uint64_t spread = static_cast<uint64_t>(meta_.max) -
                              static_cast<uint64_t>(base_);
      const uint64_t max_offset = MaxPackedValue(packed_, n, bit_width_);
      if (max_offset > spread) {
        return Status::DataLoss("bit-packed offset exceeds metadata spread");
      }
      return Status::OK();
    }
    case Encoding::kDictionary: {
      if (bit_width_ < 1 || bit_width_ > 32) {
        return Status::DataLoss("dictionary id width out of [1, 32]: " +
                                std::to_string(bit_width_));
      }
      size_t dict_size = 0;
      if (type_ == ColumnType::kString) {
        if (str_dict_ == nullptr) {
          return Status::DataLoss("string column missing its dictionary");
        }
        dict_size = str_dict_->size();
        if (meta_.min < 0 ||
            meta_.max >= static_cast<int64_t>(dict_size)) {
          return Status::DataLoss("string metadata outside dictionary ids");
        }
      } else {
        if (int_dict_ == nullptr) {
          return Status::DataLoss("dictionary column missing its dictionary");
        }
        dict_size = int_dict_->size();
        for (int64_t v : int_dict_->values()) {
          if (v < meta_.min || v > meta_.max) {
            return Status::DataLoss(
                "dictionary value outside metadata [min, max]");
          }
        }
      }
      if (dict_size == 0) {
        return Status::DataLoss("empty dictionary for non-empty column");
      }
      if (packed_.size() < BitPackedBytes(n, bit_width_)) {
        return Status::DataLoss("dictionary id stream shorter than row count");
      }
      // Codes index the dictionary and the aggregation arrays sized by
      // id_bound(); a single out-of-range code is an out-of-bounds access.
      const uint64_t max_code = MaxPackedValue(packed_, n, bit_width_);
      if (max_code >= dict_size) {
        return Status::DataLoss("dictionary code >= dictionary size");
      }
      return Status::OK();
    }
    case Encoding::kRle: {
      uint64_t total = 0;
      for (const RleRun& run : runs_) {
        if (run.count == 0) {
          return Status::DataLoss("zero-length RLE run");
        }
        total += run.count;  // uint64 accumulation cannot wrap here: run
                             // count fits 32 bits and the run vector was
                             // bounded by the file size on load
        const int64_t v = static_cast<int64_t>(run.value);
        if (v < meta_.min || v > meta_.max) {
          return Status::DataLoss("RLE run value outside metadata [min, max]");
        }
      }
      if (total != n) {
        return Status::DataLoss("RLE run counts sum to " +
                                std::to_string(total) + ", expected " +
                                std::to_string(n));
      }
      return Status::OK();
    }
    case Encoding::kByteSliced: {
      if (bit_width_ < 1 || bit_width_ > 64) {
        return Status::DataLoss("bit width out of [1, 64]: " +
                                std::to_string(bit_width_));
      }
      if (base_ != meta_.min) {
        return Status::DataLoss("frame-of-reference base != metadata min");
      }
      if (packed_.size() < ByteSliceBytes(n, bit_width_)) {
        return Status::DataLoss("byte planes shorter than row count");
      }
      // The pad bits of the last plane are an invariant of the layout: the
      // comparison kernels compare shifted values for equality, so a
      // mutated non-zero pad bit would silently change predicate answers.
      const int np = ByteSlicePlanes(bit_width_);
      const int pad = ByteSlicePadBits(bit_width_);
      if (pad > 0) {
        const uint8_t* last_plane =
            packed_.data() + static_cast<size_t>(np - 1) * n;
        const uint8_t pad_mask = static_cast<uint8_t>(LowBitsMask(pad));
        for (size_t i = 0; i < n; ++i) {
          if ((last_plane[i] & pad_mask) != 0) {
            return Status::DataLoss("byte-sliced pad bits are not zero");
          }
        }
      }
      // Assembled offsets must stay within the metadata spread, same as the
      // bit-packed tier (id_bound() and segment elimination rely on it).
      const uint64_t spread = static_cast<uint64_t>(meta_.max) -
                              static_cast<uint64_t>(base_);
      AlignedBuffer scratch(kBatchRows * 8);
      uint64_t* words = scratch.data_as<uint64_t>();
      for (size_t start = 0; start < n; start += kBatchRows) {
        const size_t chunk = std::min(kBatchRows, n - start);
        ByteSliceAssemble(packed_.data(), n, bit_width_, start, chunk, words,
                          8);
        for (size_t k = 0; k < chunk; ++k) {
          if (words[k] > spread) {
            return Status::DataLoss(
                "byte-sliced offset exceeds metadata spread");
          }
        }
      }
      return Status::OK();
    }
    case Encoding::kDelta: {
      if (bit_width_ < 1 || bit_width_ > 64) {
        return Status::DataLoss("bit width out of [1, 64]: " +
                                std::to_string(bit_width_));
      }
      const size_t expected_checkpoints = (n - 1) / kDeltaCheckpointRows + 1;
      if (checkpoints_.size() != expected_checkpoints) {
        return Status::DataLoss("delta checkpoint count mismatch");
      }
      if (packed_.size() < BitPackedBytes(n - 1, bit_width_)) {
        return Status::DataLoss("delta stream shorter than row count");
      }
      // Roll the whole stream forward once, checking three things the
      // windowed decoder (DecodeInt64) will later rely on: no signed
      // overflow in any delta addition, every value inside the metadata
      // bounds, and each stored checkpoint equal to the rolled value at its
      // row (so a decode starting mid-stream agrees with one from row 0).
      int64_t value = checkpoints_[0];
      if (value < meta_.min || value > meta_.max) {
        return Status::DataLoss("delta checkpoint outside metadata bounds");
      }
      AlignedBuffer scratch(kBatchRows * 8);
      uint64_t* offsets = scratch.data_as<uint64_t>();
      const size_t num_deltas = n - 1;
      for (size_t start = 0; start < num_deltas; start += kBatchRows) {
        const size_t chunk = std::min(kBatchRows, num_deltas - start);
        BitUnpackToWord(packed_.data(), start, chunk, bit_width_, offsets, 8);
        for (size_t k = 0; k < chunk; ++k) {
          const size_t row = start + k + 1;
          int64_t delta = 0;
          if (__builtin_add_overflow(delta_min_,
                                     static_cast<int64_t>(offsets[k]),
                                     &delta) ||
              __builtin_add_overflow(value, delta, &value)) {
            return Status::DataLoss("delta decode overflows int64 at row " +
                                    std::to_string(row));
          }
          if (value < meta_.min || value > meta_.max) {
            return Status::DataLoss("delta value outside metadata bounds");
          }
          if (row % kDeltaCheckpointRows == 0 &&
              checkpoints_[row / kDeltaCheckpointRows] != value) {
            return Status::DataLoss("delta checkpoint disagrees with stream");
          }
        }
      }
      return Status::OK();
    }
  }
  return Status::DataLoss("unreachable encoding");
}

size_t EncodedColumn::encoded_bytes() const {
  switch (encoding_) {
    case Encoding::kBitPacked:
    case Encoding::kByteSliced:
      return packed_.size();
    case Encoding::kDictionary: {
      size_t dict_bytes = 0;
      if (int_dict_ != nullptr) dict_bytes = int_dict_->size() * 8;
      if (str_dict_ != nullptr) {
        for (const auto& s : str_dict_->values()) dict_bytes += s.size() + 4;
      }
      return packed_.size() + dict_bytes;
    }
    case Encoding::kRle:
      return runs_.size() * sizeof(RleRun);
    case Encoding::kDelta:
      return packed_.size() + checkpoints_.size() * sizeof(int64_t);
  }
  return 0;
}

}  // namespace bipie
