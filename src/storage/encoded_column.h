// An immutable, encoded column of one segment.
//
// All three MemSQL encodings from §2.1 are supported. Integer columns use
// frame-of-reference bit packing (base + packed unsigned offsets), optionally
// behind a dictionary; string columns are always dictionary encoded. Every
// column carries min/max metadata used for segment elimination and overflow
// proofs (§2.1). kByteSliced (DESIGN.md §16) stores the same
// frame-of-reference offsets as ceil(bit_width/8) byte planes inside
// packed_ (plane-major, stride = num_rows, MSB plane first) so predicates
// can evaluate plane-at-a-time with early exit.
#ifndef BIPIE_STORAGE_ENCODED_COLUMN_H_
#define BIPIE_STORAGE_ENCODED_COLUMN_H_

#include <memory>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "encoding/dictionary.h"
#include "encoding/rle.h"
#include "storage/types.h"

namespace bipie {

struct ColumnMeta {
  int64_t min = 0;  // logical minimum value (dictionary columns: over values)
  int64_t max = 0;
  size_t num_rows = 0;
};

class EncodedColumn {
 public:
  EncodedColumn() = default;
  EncodedColumn(EncodedColumn&&) = default;
  EncodedColumn& operator=(EncodedColumn&&) = default;
  BIPIE_DISALLOW_COPY_AND_ASSIGN(EncodedColumn);

  ColumnType type() const { return type_; }
  Encoding encoding() const { return encoding_; }
  const ColumnMeta& meta() const { return meta_; }
  size_t num_rows() const { return meta_.num_rows; }

  // --- Encoded-domain access (kBitPacked / kDictionary) ------------------

  // Width of each packed id/offset in bits.
  int bit_width() const { return bit_width_; }
  // Frame-of-reference base added to every unpacked offset (kBitPacked).
  int64_t base() const { return base_; }
  // The raw packed stream. Padded per AlignedBuffer rules.
  const uint8_t* packed_data() const { return packed_.data(); }

  // Exclusive upper bound on packed ids/offsets, from metadata. For a
  // dictionary column this is the dictionary size — the group-count bound
  // the Aggregate Processor uses (§3).
  uint64_t id_bound() const;

  // Unpacks packed ids/offsets [start, start+n) into `out` at `word_bytes`
  // per element (>= smallest word for bit_width). kRle columns are not
  // id-addressable; callers must check encoding() first.
  void UnpackIds(size_t start, size_t n, void* out, int word_bytes) const;

  // --- Logical-domain access (any encoding) -------------------------------

  // Decodes logical int64 values for rows [start, start+n). For string
  // columns this yields dictionary ids widened to int64.
  void DecodeInt64(size_t start, size_t n, int64_t* out) const;

  // Dictionaries (null when not dictionary encoded / not that type).
  const IntDictionary* int_dictionary() const { return int_dict_.get(); }
  const StringDictionary* string_dictionary() const { return str_dict_.get(); }

  const std::vector<RleRun>& runs() const { return runs_; }

  // Encoded size in bytes (compression diagnostics).
  size_t encoded_bytes() const;

  // Deep decode validation: verifies every invariant the kernels trust
  // before touching this column — enum discriminants in range, bit_width in
  // [1, 64], packed_ sized for num_rows values plus AlignedBuffer padding,
  // every dictionary code < dictionary size, dictionary values within the
  // [min, max] metadata (which drives segment elimination and overflow
  // proofs), RLE run counts summing to num_rows without overflow, and the
  // delta stream rolling forward to exactly the stored checkpoints with no
  // signed overflow. O(num_rows) for the code/offset scans (vectorized
  // unpack); every failure is a structured kDataLoss Status, never a crash.
  //
  // A column that passes Validate() can be decoded by any kernel with no
  // out-of-bounds access and no undefined behaviour, whatever the source of
  // its bytes.
  Status Validate() const;

  // Re-homes the packed stream's memory charge to `to` (see
  // Segment::MoveMemoryChargesTo).
  void MoveMemoryChargesTo(MemoryTracker& to) { packed_.MoveChargeTo(to); }

  // kDelta internals (diagnostics / serialization).
  int64_t delta_min() const { return delta_min_; }
  const std::vector<int64_t>& delta_checkpoints() const {
    return checkpoints_;
  }

 private:
  friend class ColumnBuilder;
  friend struct ColumnSerde;  // storage/table_io.cc

  ColumnType type_ = ColumnType::kInt64;
  Encoding encoding_ = Encoding::kBitPacked;
  ColumnMeta meta_;

  int64_t base_ = 0;
  int bit_width_ = 1;
  AlignedBuffer packed_;

  std::shared_ptr<IntDictionary> int_dict_;
  std::shared_ptr<StringDictionary> str_dict_;
  std::vector<RleRun> runs_;

  // kDelta: packed_ holds (delta - delta_min_) for rows 1..n-1 at
  // bit_width_ bits; checkpoints_[k] is the absolute value at row
  // k * kDeltaCheckpointRows, so windowed decode never replays the whole
  // stream.
  int64_t delta_min_ = 0;
  std::vector<int64_t> checkpoints_;
};

// Delta checkpoint spacing. Aligned with kBatchRows so batch windows start
// exactly at a checkpoint.
inline constexpr size_t kDeltaCheckpointRows = 4096;

}  // namespace bipie

#endif  // BIPIE_STORAGE_ENCODED_COLUMN_H_
