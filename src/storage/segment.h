// A segment: the unit of the columnstore immutable region (§2.1).
//
// Rows are grouped into segments of ~1M records; each column within a
// segment is encoded and stored separately, all preserving row order.
// Rows can be marked deleted but never updated in place. Segment metadata
// (per-column min/max) supports segment elimination and overflow proofs.
#ifndef BIPIE_STORAGE_SEGMENT_H_
#define BIPIE_STORAGE_SEGMENT_H_

#include <vector>

#include "common/aligned_buffer.h"
#include "storage/encoded_column.h"

namespace bipie {

class Segment {
 public:
  Segment(size_t num_rows, std::vector<EncodedColumn> columns)
      : num_rows_(num_rows), columns_(std::move(columns)) {
    for (const auto& c : columns_) {
      BIPIE_DCHECK(c.num_rows() == num_rows_);
    }
  }

  Segment(Segment&&) = default;
  Segment& operator=(Segment&&) = default;
  BIPIE_DISALLOW_COPY_AND_ASSIGN(Segment);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const EncodedColumn& column(size_t i) const {
    BIPIE_DCHECK(i < columns_.size());
    return columns_[i];
  }

  // Marks a row deleted. Deleted rows are excluded from every scan by
  // zeroing their position in the selection byte vector (§4).
  void DeleteRow(size_t row);
  size_t num_deleted() const { return num_deleted_; }
  bool has_deleted_rows() const { return num_deleted_ > 0; }

  // Byte-per-row liveness mask (0xFF alive, 0x00 deleted); null when no row
  // was ever deleted, letting scans skip the merge entirely.
  const uint8_t* alive_bytes() const {
    return has_deleted_rows() ? alive_.data() : nullptr;
  }

  // Re-homes every column buffer's (and the liveness mask's) memory charge
  // to `to`. LoadTable uses this to hand a finished table's buffers to the
  // process tracker: the loading query paid for the load, but the table
  // outlives it.
  void MoveMemoryChargesTo(MemoryTracker& to) {
    for (EncodedColumn& c : columns_) c.MoveMemoryChargesTo(to);
    alive_.MoveChargeTo(to);
  }

  // Deep validation: every column passes EncodedColumn::Validate() and has
  // this segment's row count; the liveness mask, when present, is canonical
  // (0x00/0xFF bytes, zero count matching num_deleted()). kDataLoss on any
  // violation.
  Status Validate() const;

  // True when the column's metadata proves no row can satisfy
  // `value in [lo, hi]`, so the whole segment can be skipped.
  bool CanEliminate(size_t column_index, int64_t lo, int64_t hi) const {
    const ColumnMeta& m = columns_[column_index].meta();
    return m.max < lo || m.min > hi;
  }

 private:
  size_t num_rows_;
  std::vector<EncodedColumn> columns_;
  AlignedBuffer alive_;  // lazily allocated on first delete
  size_t num_deleted_ = 0;
};

}  // namespace bipie

#endif  // BIPIE_STORAGE_SEGMENT_H_
