// Logical column types and schema declarations for the bipie columnstore.
//
// The engine's logical value domain is int64 (decimals are fixed-point
// scaled integers, dates are day numbers) plus dictionary-encoded strings,
// matching the §2.2 simplifications without restricting the storage layer.
#ifndef BIPIE_STORAGE_TYPES_H_
#define BIPIE_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bipie {

enum class ColumnType {
  kInt64,
  kString,
};

enum class Encoding {
  kBitPacked,   // frame-of-reference base + bit-packed offsets
  kDictionary,  // dictionary + bit-packed ids
  kRle,         // (value, count) runs
  kDelta,       // first value + bit-packed successive differences
  kByteSliced,  // frame-of-reference base + padded byte planes, MSB first
};

// Lets tests and benchmarks pin an encoding; kAuto picks by size/usefulness.
enum class EncodingChoice {
  kAuto,
  kBitPacked,
  kDictionary,
  kRle,
  kDelta,
  kByteSliced,
};

struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  EncodingChoice encoding = EncodingChoice::kAuto;
};

using Schema = std::vector<ColumnSpec>;

// Number of rows processed per batch by every scan operator (§2.1: "a moving
// window of a fixed number of rows (up to 4096 rows in MemSQL)").
inline constexpr size_t kBatchRows = 4096;

// Default segment capacity ("a segment contains approximately one million
// records"). Tables may be built with smaller segments for tests.
inline constexpr size_t kDefaultSegmentRows = size_t{1} << 20;

}  // namespace bipie

#endif  // BIPIE_STORAGE_TYPES_H_
