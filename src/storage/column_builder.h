// Builds one encoded column of one segment from raw values.
//
// Mirrors MemSQL's background compression step: "encodings are chosen during
// compression of rows based on two factors: size of the resulting compressed
// data, and usefulness of the encoding for query execution" (§2.1). The
// builder estimates the encoded size of each candidate and applies a
// usefulness tie-break that prefers dictionary (it doubles as a perfect
// group hash) and bit packing over RLE at similar sizes.
#ifndef BIPIE_STORAGE_COLUMN_BUILDER_H_
#define BIPIE_STORAGE_COLUMN_BUILDER_H_

#include <string>
#include <vector>

#include "storage/encoded_column.h"
#include "storage/types.h"

namespace bipie {

class ColumnBuilder {
 public:
  explicit ColumnBuilder(ColumnSpec spec);

  void AppendInt64(int64_t value);
  void AppendString(const std::string& value);

  void AppendInt64Bulk(const int64_t* values, size_t n);

  size_t num_rows() const {
    return spec_.type == ColumnType::kString ? str_values_.size()
                                             : int_values_.size();
  }

  // Encodes the accumulated values and resets the builder for the next
  // segment.
  EncodedColumn Finish();

 private:
  EncodedColumn FinishInt();
  EncodedColumn FinishString();

  ColumnSpec spec_;
  std::vector<int64_t> int_values_;
  std::vector<std::string> str_values_;
};

}  // namespace bipie

#endif  // BIPIE_STORAGE_COLUMN_BUILDER_H_
