// Builds one encoded column of one segment from raw values.
//
// Mirrors MemSQL's background compression step: "encodings are chosen during
// compression of rows based on two factors: size of the resulting compressed
// data, and usefulness of the encoding for query execution" (§2.1). The
// builder estimates the encoded size of each candidate and applies a
// usefulness tie-break that prefers dictionary (it doubles as a perfect
// group hash) and bit packing over RLE at similar sizes.
#ifndef BIPIE_STORAGE_COLUMN_BUILDER_H_
#define BIPIE_STORAGE_COLUMN_BUILDER_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "storage/encoded_column.h"
#include "storage/types.h"

namespace bipie {

// One scored encoding candidate from ColumnBuilder::Advise(): predicted
// roofline scan cost (cost/cost_model.h) plus the size the builder's own
// estimators compute for the accumulated values.
struct EncodingCandidate {
  Encoding encoding = Encoding::kBitPacked;
  bool feasible = false;
  int bit_width = 0;         // packed offset / id / delta width
  size_t encoded_bytes = 0;  // estimated, same formulas Finish() uses
  double scan_cycles_per_row = -1.0;  // -1 when infeasible
};

// The advisor's verdict for one column of one segment. `chosen` minimizes
// predicted scan cycles/row among feasible candidates (ties break toward
// the smaller encoded size, then the lower Encoding enum value — fully
// deterministic under a fixed profile). `builder_pick` is what Finish()
// would choose under EncodingChoice::kAuto, for comparison.
struct EncodingAdvice {
  size_t num_rows = 0;
  int64_t min = 0;
  int64_t max = 0;
  size_t distinct = 0;  // capped at the dictionary feasibility bound + 1
  size_t run_count = 0;
  bool sorted = false;
  Encoding chosen = Encoding::kBitPacked;
  Encoding builder_pick = Encoding::kBitPacked;
  // All candidates in Encoding enum order (not ranked; rank by cost).
  std::vector<EncodingCandidate> candidates;
};

class ColumnBuilder {
 public:
  explicit ColumnBuilder(ColumnSpec spec);

  void AppendInt64(int64_t value);
  void AppendString(const std::string& value);

  void AppendInt64Bulk(const int64_t* values, size_t n);

  size_t num_rows() const {
    return spec_.type == ColumnType::kString ? str_values_.size()
                                             : int_values_.size();
  }

  // Encodes the accumulated values and resets the builder for the next
  // segment.
  EncodedColumn Finish();

  // Scores every encoding candidate for the accumulated values under
  // `model` without encoding or resetting anything. String columns return
  // the trivial dictionary-only advice (the only string encoding).
  EncodingAdvice Advise(const cost::CostModel& model) const;

 private:
  EncodedColumn FinishInt();
  EncodedColumn FinishString();

  ColumnSpec spec_;
  std::vector<int64_t> int_values_;
  std::vector<std::string> str_values_;
};

}  // namespace bipie

#endif  // BIPIE_STORAGE_COLUMN_BUILDER_H_
