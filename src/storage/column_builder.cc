#include "storage/column_builder.h"

#include <algorithm>
#include <unordered_set>

#include "common/bits.h"
#include "encoding/bitpack.h"
#include "encoding/byteslice.h"

namespace bipie {

namespace {

// Above this distinct-value count a dictionary stops paying for itself for
// int columns (ids approach the raw offset width and the dictionary itself
// costs memory).
constexpr size_t kMaxIntDictionarySize = 1u << 16;

}  // namespace

ColumnBuilder::ColumnBuilder(ColumnSpec spec) : spec_(std::move(spec)) {}

void ColumnBuilder::AppendInt64(int64_t value) {
  BIPIE_DCHECK(spec_.type == ColumnType::kInt64);
  int_values_.push_back(value);
}

void ColumnBuilder::AppendString(const std::string& value) {
  BIPIE_DCHECK(spec_.type == ColumnType::kString);
  str_values_.push_back(value);
}

void ColumnBuilder::AppendInt64Bulk(const int64_t* values, size_t n) {
  BIPIE_DCHECK(spec_.type == ColumnType::kInt64);
  int_values_.insert(int_values_.end(), values, values + n);
}

EncodedColumn ColumnBuilder::Finish() {
  EncodedColumn out = spec_.type == ColumnType::kString ? FinishString()
                                                        : FinishInt();
  int_values_.clear();
  str_values_.clear();
  return out;
}

EncodedColumn ColumnBuilder::FinishInt() {
  const size_t n = int_values_.size();
  EncodedColumn col;
  col.type_ = ColumnType::kInt64;
  col.meta_.num_rows = n;
  if (n == 0) {
    col.encoding_ = Encoding::kBitPacked;
    col.packed_.Resize(8);
    return col;
  }
  const auto [min_it, max_it] =
      std::minmax_element(int_values_.begin(), int_values_.end());
  col.meta_.min = *min_it;
  col.meta_.max = *max_it;

  // Candidate sizes.
  const uint64_t spread = static_cast<uint64_t>(col.meta_.max) -
                          static_cast<uint64_t>(col.meta_.min);
  const int for_bits = BitsRequired(spread);
  const size_t for_bytes = BitPackedBytes(n, for_bits);

  size_t run_count = 1;
  for (size_t i = 1; i < n; ++i) {
    run_count += int_values_[i] != int_values_[i - 1];
  }
  const size_t rle_bytes = run_count * sizeof(RleRun);

  // Delta candidate: bit width of the successive-difference spread.
  int64_t dmin = 0, dmax = 0;
  if (n > 1) {
    dmin = dmax = int_values_[1] - int_values_[0];
    for (size_t i = 2; i < n; ++i) {
      const int64_t d = int_values_[i] - int_values_[i - 1];
      dmin = std::min(dmin, d);
      dmax = std::max(dmax, d);
    }
  }
  const int delta_bits = BitsRequired(static_cast<uint64_t>(dmax) -
                                      static_cast<uint64_t>(dmin));
  const size_t delta_bytes =
      BitPackedBytes(n > 0 ? n - 1 : 0, delta_bits) +
      (n / kDeltaCheckpointRows + 1) * sizeof(int64_t);

  std::unordered_set<int64_t> distinct;
  for (int64_t v : int_values_) {
    distinct.insert(v);
    if (distinct.size() > kMaxIntDictionarySize) break;
  }
  const bool dict_feasible = distinct.size() <= kMaxIntDictionarySize;
  const int dict_bits =
      dict_feasible ? BitsRequired(distinct.size() - 1) : 64;
  const size_t dict_bytes = dict_feasible
                                ? BitPackedBytes(n, dict_bits) +
                                      distinct.size() * sizeof(int64_t)
                                : static_cast<size_t>(-1);

  Encoding pick;
  switch (spec_.encoding) {
    case EncodingChoice::kBitPacked:
      pick = Encoding::kBitPacked;
      break;
    case EncodingChoice::kDictionary:
      BIPIE_DCHECK(dict_feasible);
      pick = Encoding::kDictionary;
      break;
    case EncodingChoice::kRle:
      pick = Encoding::kRle;
      break;
    case EncodingChoice::kDelta:
      pick = Encoding::kDelta;
      break;
    case EncodingChoice::kByteSliced:
      pick = Encoding::kByteSliced;
      break;
    case EncodingChoice::kAuto:
    default:
      // Usefulness tie-break: RLE must win by 2x to be chosen (it is the
      // least useful for vectorized processing); dictionary must beat plain
      // bit packing outright (ids narrower than offsets).
      if (rle_bytes * 2 < std::min(for_bytes, dict_bytes)) {
        pick = Encoding::kRle;
      } else if (delta_bytes * 2 < std::min(for_bytes, dict_bytes)) {
        // Delta must win big: it decodes sequentially and is the least
        // useful representation for vectorized processing.
        pick = Encoding::kDelta;
      } else if (dict_feasible && dict_bytes < for_bytes) {
        pick = Encoding::kDictionary;
      } else {
        pick = Encoding::kBitPacked;
      }
      break;
  }

  switch (pick) {
    case Encoding::kBitPacked: {
      col.encoding_ = Encoding::kBitPacked;
      col.base_ = col.meta_.min;
      col.bit_width_ = for_bits;
      std::vector<uint64_t> offsets(n);
      for (size_t i = 0; i < n; ++i) {
        offsets[i] = static_cast<uint64_t>(int_values_[i]) -
                     static_cast<uint64_t>(col.base_);
      }
      col.packed_.Resize(BitPackedBytes(n, for_bits) + 8);
      BitPack(offsets.data(), n, for_bits, col.packed_.data());
      break;
    }
    case Encoding::kDictionary: {
      col.encoding_ = Encoding::kDictionary;
      auto dict = std::make_shared<IntDictionary>();
      std::vector<uint64_t> ids(n);
      for (size_t i = 0; i < n; ++i) ids[i] = dict->GetOrInsert(int_values_[i]);
      col.bit_width_ = BitsRequired(dict->size() - 1);
      col.int_dict_ = std::move(dict);
      col.packed_.Resize(BitPackedBytes(n, col.bit_width_) + 8);
      BitPack(ids.data(), n, col.bit_width_, col.packed_.data());
      break;
    }
    case Encoding::kByteSliced: {
      // Same frame-of-reference offsets as kBitPacked, split into padded
      // byte planes (auto never picks this: it trades size — whole bytes
      // per value — for early-exit predicate evaluation, a call the
      // strategy layer makes per workload, not the builder per column).
      col.encoding_ = Encoding::kByteSliced;
      col.base_ = col.meta_.min;
      col.bit_width_ = for_bits;
      std::vector<uint64_t> offsets(n);
      for (size_t i = 0; i < n; ++i) {
        offsets[i] = static_cast<uint64_t>(int_values_[i]) -
                     static_cast<uint64_t>(col.base_);
      }
      col.packed_.Resize(ByteSliceBytes(n, for_bits));
      ByteSlicePack(offsets.data(), n, for_bits, col.packed_.data());
      break;
    }
    case Encoding::kRle: {
      col.encoding_ = Encoding::kRle;
      col.runs_ = RleEncode(
          reinterpret_cast<const uint64_t*>(int_values_.data()), n);
      break;
    }
    case Encoding::kDelta: {
      col.encoding_ = Encoding::kDelta;
      col.delta_min_ = dmin;
      col.bit_width_ = delta_bits;
      std::vector<uint64_t> offsets(n > 0 ? n - 1 : 0);
      for (size_t i = 1; i < n; ++i) {
        offsets[i - 1] =
            static_cast<uint64_t>(int_values_[i] - int_values_[i - 1]) -
            static_cast<uint64_t>(dmin);
      }
      col.packed_.Resize(BitPackedBytes(offsets.size(), delta_bits) + 8);
      if (!offsets.empty()) {
        BitPack(offsets.data(), offsets.size(), delta_bits,
                col.packed_.data());
      }
      for (size_t row = 0; row < n; row += kDeltaCheckpointRows) {
        col.checkpoints_.push_back(int_values_[row]);
      }
      break;
    }
  }
  return col;
}

EncodedColumn ColumnBuilder::FinishString() {
  const size_t n = str_values_.size();
  EncodedColumn col;
  col.type_ = ColumnType::kString;
  col.encoding_ = Encoding::kDictionary;
  col.meta_.num_rows = n;
  auto dict = std::make_shared<StringDictionary>();
  std::vector<uint64_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = dict->GetOrInsert(str_values_[i]);
  col.bit_width_ = n == 0 ? 1 : BitsRequired(dict->size() - 1);
  // Metadata for a string column tracks the id range.
  col.meta_.min = 0;
  col.meta_.max = n == 0 ? 0 : static_cast<int64_t>(dict->size()) - 1;
  col.str_dict_ = std::move(dict);
  col.packed_.Resize(BitPackedBytes(n, col.bit_width_) + 8);
  if (n > 0) BitPack(ids.data(), n, col.bit_width_, col.packed_.data());
  return col;
}

}  // namespace bipie
