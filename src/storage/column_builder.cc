#include "storage/column_builder.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>

#include "common/bits.h"
#include "encoding/bitpack.h"
#include "encoding/byteslice.h"

namespace bipie {

namespace {

// Above this distinct-value count a dictionary stops paying for itself for
// int columns (ids approach the raw offset width and the dictionary itself
// costs memory).
constexpr size_t kMaxIntDictionarySize = 1u << 16;

// Candidate statistics shared by Finish() and Advise(): one pass computes
// every per-encoding size estimate the kAuto tie-break and the advisor
// score from.
struct IntStats {
  size_t n = 0;
  int64_t min = 0;
  int64_t max = 0;
  bool sorted = true;
  int for_bits = 1;
  size_t for_bytes = 0;
  size_t run_count = 1;
  size_t rle_bytes = 0;
  int64_t dmin = 0;
  int64_t dmax = 0;
  int delta_bits = 1;
  size_t delta_bytes = 0;
  bool dict_feasible = false;
  size_t distinct = 0;
  int dict_bits = 64;
  size_t dict_bytes = static_cast<size_t>(-1);
};

IntStats ComputeIntStats(const std::vector<int64_t>& values) {
  IntStats st;
  st.n = values.size();
  if (st.n == 0) return st;
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  st.min = *min_it;
  st.max = *max_it;
  const uint64_t spread =
      static_cast<uint64_t>(st.max) - static_cast<uint64_t>(st.min);
  st.for_bits = BitsRequired(spread);
  st.for_bytes = BitPackedBytes(st.n, st.for_bits);

  st.run_count = 1;
  for (size_t i = 1; i < st.n; ++i) {
    st.run_count += values[i] != values[i - 1];
    st.sorted = st.sorted && values[i] >= values[i - 1];
  }
  st.rle_bytes = st.run_count * sizeof(RleRun);

  if (st.n > 1) {
    st.dmin = st.dmax = values[1] - values[0];
    for (size_t i = 2; i < st.n; ++i) {
      const int64_t d = values[i] - values[i - 1];
      st.dmin = std::min(st.dmin, d);
      st.dmax = std::max(st.dmax, d);
    }
  }
  st.delta_bits = BitsRequired(static_cast<uint64_t>(st.dmax) -
                               static_cast<uint64_t>(st.dmin));
  st.delta_bytes = BitPackedBytes(st.n > 0 ? st.n - 1 : 0, st.delta_bits) +
                   (st.n / kDeltaCheckpointRows + 1) * sizeof(int64_t);

  std::unordered_set<int64_t> distinct;
  for (int64_t v : values) {
    distinct.insert(v);
    if (distinct.size() > kMaxIntDictionarySize) break;
  }
  st.distinct = distinct.size();
  st.dict_feasible = st.distinct <= kMaxIntDictionarySize;
  st.dict_bits = st.dict_feasible ? BitsRequired(st.distinct - 1) : 64;
  st.dict_bytes = st.dict_feasible ? BitPackedBytes(st.n, st.dict_bits) +
                                         st.distinct * sizeof(int64_t)
                                   : static_cast<size_t>(-1);
  return st;
}

// The EncodingChoice::kAuto tie-break, on precomputed stats.
Encoding AutoPick(const IntStats& st) {
  // Usefulness tie-break: RLE must win by 2x to be chosen (it is the
  // least useful for vectorized processing); dictionary must beat plain
  // bit packing outright (ids narrower than offsets).
  if (st.rle_bytes * 2 < std::min(st.for_bytes, st.dict_bytes)) {
    return Encoding::kRle;
  }
  if (st.delta_bytes * 2 < std::min(st.for_bytes, st.dict_bytes)) {
    // Delta must win big: it decodes sequentially and is the least
    // useful representation for vectorized processing.
    return Encoding::kDelta;
  }
  if (st.dict_feasible && st.dict_bytes < st.for_bytes) {
    return Encoding::kDictionary;
  }
  return Encoding::kBitPacked;
}

}  // namespace

ColumnBuilder::ColumnBuilder(ColumnSpec spec) : spec_(std::move(spec)) {}

void ColumnBuilder::AppendInt64(int64_t value) {
  BIPIE_DCHECK(spec_.type == ColumnType::kInt64);
  int_values_.push_back(value);
}

void ColumnBuilder::AppendString(const std::string& value) {
  BIPIE_DCHECK(spec_.type == ColumnType::kString);
  str_values_.push_back(value);
}

void ColumnBuilder::AppendInt64Bulk(const int64_t* values, size_t n) {
  BIPIE_DCHECK(spec_.type == ColumnType::kInt64);
  int_values_.insert(int_values_.end(), values, values + n);
}

EncodedColumn ColumnBuilder::Finish() {
  EncodedColumn out = spec_.type == ColumnType::kString ? FinishString()
                                                        : FinishInt();
  int_values_.clear();
  str_values_.clear();
  return out;
}

EncodedColumn ColumnBuilder::FinishInt() {
  const size_t n = int_values_.size();
  EncodedColumn col;
  col.type_ = ColumnType::kInt64;
  col.meta_.num_rows = n;
  if (n == 0) {
    col.encoding_ = Encoding::kBitPacked;
    col.packed_.Resize(8);
    return col;
  }
  const IntStats st = ComputeIntStats(int_values_);
  col.meta_.min = st.min;
  col.meta_.max = st.max;
  const int for_bits = st.for_bits;
  const int delta_bits = st.delta_bits;
  const int64_t dmin = st.dmin;

  Encoding pick;
  switch (spec_.encoding) {
    case EncodingChoice::kBitPacked:
      pick = Encoding::kBitPacked;
      break;
    case EncodingChoice::kDictionary:
      BIPIE_DCHECK(st.dict_feasible);
      pick = Encoding::kDictionary;
      break;
    case EncodingChoice::kRle:
      pick = Encoding::kRle;
      break;
    case EncodingChoice::kDelta:
      pick = Encoding::kDelta;
      break;
    case EncodingChoice::kByteSliced:
      pick = Encoding::kByteSliced;
      break;
    case EncodingChoice::kAuto:
    default:
      pick = AutoPick(st);
      break;
  }

  switch (pick) {
    case Encoding::kBitPacked: {
      col.encoding_ = Encoding::kBitPacked;
      col.base_ = col.meta_.min;
      col.bit_width_ = for_bits;
      std::vector<uint64_t> offsets(n);
      for (size_t i = 0; i < n; ++i) {
        offsets[i] = static_cast<uint64_t>(int_values_[i]) -
                     static_cast<uint64_t>(col.base_);
      }
      col.packed_.Resize(BitPackedBytes(n, for_bits) + 8);
      BitPack(offsets.data(), n, for_bits, col.packed_.data());
      break;
    }
    case Encoding::kDictionary: {
      col.encoding_ = Encoding::kDictionary;
      auto dict = std::make_shared<IntDictionary>();
      std::vector<uint64_t> ids(n);
      for (size_t i = 0; i < n; ++i) ids[i] = dict->GetOrInsert(int_values_[i]);
      col.bit_width_ = BitsRequired(dict->size() - 1);
      col.int_dict_ = std::move(dict);
      col.packed_.Resize(BitPackedBytes(n, col.bit_width_) + 8);
      BitPack(ids.data(), n, col.bit_width_, col.packed_.data());
      break;
    }
    case Encoding::kByteSliced: {
      // Same frame-of-reference offsets as kBitPacked, split into padded
      // byte planes (auto never picks this: it trades size — whole bytes
      // per value — for early-exit predicate evaluation, a call the
      // strategy layer makes per workload, not the builder per column).
      col.encoding_ = Encoding::kByteSliced;
      col.base_ = col.meta_.min;
      col.bit_width_ = for_bits;
      std::vector<uint64_t> offsets(n);
      for (size_t i = 0; i < n; ++i) {
        offsets[i] = static_cast<uint64_t>(int_values_[i]) -
                     static_cast<uint64_t>(col.base_);
      }
      col.packed_.Resize(ByteSliceBytes(n, for_bits));
      ByteSlicePack(offsets.data(), n, for_bits, col.packed_.data());
      break;
    }
    case Encoding::kRle: {
      col.encoding_ = Encoding::kRle;
      col.runs_ = RleEncode(
          reinterpret_cast<const uint64_t*>(int_values_.data()), n);
      break;
    }
    case Encoding::kDelta: {
      col.encoding_ = Encoding::kDelta;
      col.delta_min_ = dmin;
      col.bit_width_ = delta_bits;
      std::vector<uint64_t> offsets(n > 0 ? n - 1 : 0);
      for (size_t i = 1; i < n; ++i) {
        offsets[i - 1] =
            static_cast<uint64_t>(int_values_[i] - int_values_[i - 1]) -
            static_cast<uint64_t>(dmin);
      }
      col.packed_.Resize(BitPackedBytes(offsets.size(), delta_bits) + 8);
      if (!offsets.empty()) {
        BitPack(offsets.data(), offsets.size(), delta_bits,
                col.packed_.data());
      }
      for (size_t row = 0; row < n; row += kDeltaCheckpointRows) {
        col.checkpoints_.push_back(int_values_[row]);
      }
      break;
    }
  }
  return col;
}

EncodingAdvice ColumnBuilder::Advise(const cost::CostModel& model) const {
  EncodingAdvice advice;
  if (spec_.type == ColumnType::kString) {
    // Strings only encode as dictionary; the advice is the scan cost of the
    // id stream (width set by the distinct count, bounded by n).
    const size_t n = str_values_.size();
    std::unordered_set<std::string_view> distinct;
    for (const std::string& s : str_values_) distinct.insert(s);
    advice.num_rows = n;
    advice.distinct = distinct.size();
    advice.run_count = n > 0 ? 1 : 0;
    for (size_t i = 1; i < n; ++i) {
      advice.run_count += str_values_[i] != str_values_[i - 1];
    }
    const int bits =
        n == 0 ? 1 : BitsRequired(distinct.empty() ? 0 : distinct.size() - 1);
    EncodingCandidate cand;
    cand.encoding = Encoding::kDictionary;
    cand.feasible = true;
    cand.bit_width = bits;
    cand.encoded_bytes = BitPackedBytes(n, bits);
    cand.scan_cycles_per_row = model.ScanCyclesPerRow(
        Encoding::kDictionary, bits, n, 1, cand.encoded_bytes);
    advice.chosen = Encoding::kDictionary;
    advice.builder_pick = Encoding::kDictionary;
    advice.candidates.push_back(cand);
    return advice;
  }

  const IntStats st = ComputeIntStats(int_values_);
  advice.num_rows = st.n;
  advice.min = st.min;
  advice.max = st.max;
  advice.distinct = st.distinct;
  advice.run_count = st.n == 0 ? 0 : st.run_count;
  advice.sorted = st.n > 0 && st.sorted;
  advice.builder_pick = st.n == 0 ? Encoding::kBitPacked : AutoPick(st);

  auto add = [&](Encoding enc, bool feasible, int bits, size_t bytes,
                 size_t runs) {
    EncodingCandidate cand;
    cand.encoding = enc;
    cand.feasible = feasible;
    cand.bit_width = bits;
    cand.encoded_bytes = bytes;
    if (feasible && st.n > 0) {
      cand.scan_cycles_per_row =
          model.ScanCyclesPerRow(enc, bits, st.n, runs, bytes);
    }
    advice.candidates.push_back(cand);
  };
  add(Encoding::kBitPacked, true, st.for_bits, st.for_bytes, 1);
  add(Encoding::kDictionary, st.dict_feasible, st.dict_bits, st.dict_bytes, 1);
  add(Encoding::kRle, true, 64, st.rle_bytes, st.run_count);
  add(Encoding::kDelta, true, st.delta_bits, st.delta_bytes, 1);
  add(Encoding::kByteSliced, true, st.for_bits,
      ByteSliceBytes(st.n, st.for_bits), 1);

  // Cheapest predicted scan; ties break toward the smaller encoded size,
  // then the lower enum value (candidates are in enum order).
  const EncodingCandidate* best = nullptr;
  for (const EncodingCandidate& cand : advice.candidates) {
    if (!cand.feasible || cand.scan_cycles_per_row < 0.0) continue;
    if (best == nullptr || cand.scan_cycles_per_row < best->scan_cycles_per_row ||
        (cand.scan_cycles_per_row == best->scan_cycles_per_row &&
         cand.encoded_bytes < best->encoded_bytes)) {
      best = &cand;
    }
  }
  advice.chosen = best != nullptr ? best->encoding : Encoding::kBitPacked;
  return advice;
}

EncodedColumn ColumnBuilder::FinishString() {
  const size_t n = str_values_.size();
  EncodedColumn col;
  col.type_ = ColumnType::kString;
  col.encoding_ = Encoding::kDictionary;
  col.meta_.num_rows = n;
  auto dict = std::make_shared<StringDictionary>();
  std::vector<uint64_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = dict->GetOrInsert(str_values_[i]);
  col.bit_width_ = n == 0 ? 1 : BitsRequired(dict->size() - 1);
  // Metadata for a string column tracks the id range.
  col.meta_.min = 0;
  col.meta_.max = n == 0 ? 0 : static_cast<int64_t>(dict->size()) - 1;
  col.str_dict_ = std::move(dict);
  col.packed_.Resize(BitPackedBytes(n, col.bit_width_) + 8);
  if (n > 0) BitPack(ids.data(), n, col.bit_width_, col.packed_.data());
  return col;
}

}  // namespace bipie
