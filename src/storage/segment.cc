#include "storage/segment.h"

#include <cstring>
#include <string>

namespace bipie {

Status Segment::Validate() const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].num_rows() != num_rows_) {
      return Status::DataLoss("column " + std::to_string(c) +
                              " row count disagrees with segment");
    }
    const Status st = columns_[c].Validate();
    if (!st.ok()) {
      return Status::DataLoss("column " + std::to_string(c) + ": " +
                              st.message());
    }
  }
  if (alive_.size() != 0) {
    if (alive_.size() != num_rows_) {
      return Status::DataLoss("liveness mask length disagrees with segment");
    }
    size_t dead = 0;
    for (size_t row = 0; row < num_rows_; ++row) {
      const uint8_t b = alive_.data()[row];
      if (b == 0x00) {
        ++dead;
      } else if (b != 0xFF) {
        // Scans AND this mask straight into selection byte vectors, which
        // must stay canonical 0x00/0xFF.
        return Status::DataLoss("non-canonical liveness byte");
      }
    }
    if (dead != num_deleted_) {
      return Status::DataLoss("deleted-row count disagrees with mask");
    }
  } else if (num_deleted_ != 0) {
    return Status::DataLoss("deleted rows recorded without a liveness mask");
  }
  return Status::OK();
}

void Segment::DeleteRow(size_t row) {
  BIPIE_DCHECK(row < num_rows_);
  if (alive_.size() == 0) {
    alive_.Resize(num_rows_);
    std::memset(alive_.data(), 0xFF, num_rows_);
  }
  if (alive_.data()[row] != 0) {
    alive_.data()[row] = 0;
    ++num_deleted_;
  }
}

}  // namespace bipie
