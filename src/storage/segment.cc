#include "storage/segment.h"

#include <cstring>

namespace bipie {

void Segment::DeleteRow(size_t row) {
  BIPIE_DCHECK(row < num_rows_);
  if (alive_.size() == 0) {
    alive_.Resize(num_rows_);
    std::memset(alive_.data(), 0xFF, num_rows_);
  }
  if (alive_.data()[row] != 0) {
    alive_.data()[row] = 0;
    ++num_deleted_;
  }
}

}  // namespace bipie
