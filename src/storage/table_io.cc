#include "storage/table_io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace bipie {

namespace {

constexpr char kMagic[8] = {'B', 'I', 'P', 'I', 'E', 'T', 'B', '1'};

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  void Bytes(const void* data, size_t n) {
    // n == 0 short-circuits: empty payloads (e.g. zero-length strings) may
    // legally pass a null pointer, which fwrite must not receive.
    ok_ = ok_ && (n == 0 || std::fwrite(data, 1, n, f_) == n);
  }
  void U8(uint8_t v) { Bytes(&v, 1); }
  void U32(uint32_t v) { Bytes(&v, 4); }
  void U64(uint64_t v) { Bytes(&v, 8); }
  void I64(int64_t v) { Bytes(&v, 8); }
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}

  bool Bytes(void* data, size_t n) {
    ok_ = ok_ && (n == 0 || std::fread(data, 1, n, f_) == n);
    return ok_;
  }
  bool U8(uint8_t* v) { return Bytes(v, 1); }
  bool U32(uint32_t* v) { return Bytes(v, 4); }
  bool U64(uint64_t* v) { return Bytes(v, 8); }
  bool I64(int64_t* v) { return Bytes(v, 8); }
  bool String(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (len > (1u << 28)) {  // sanity bound against corrupt files
      ok_ = false;
      return false;
    }
    s->resize(len);
    return Bytes(s->data(), len);
  }

  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

// Grants table_io access to EncodedColumn's encoded representation.
struct ColumnSerde {
  static void Write(Writer* w, const EncodedColumn& col) {
    w->U8(static_cast<uint8_t>(col.type_));
    w->U8(static_cast<uint8_t>(col.encoding_));
    w->I64(col.meta_.min);
    w->I64(col.meta_.max);
    w->U64(col.meta_.num_rows);
    w->I64(col.base_);
    w->U8(static_cast<uint8_t>(col.bit_width_));
    w->U64(col.packed_.size());
    w->Bytes(col.packed_.data(), col.packed_.size());
    w->U8(col.int_dict_ != nullptr ? 1 : 0);
    if (col.int_dict_ != nullptr) {
      w->U32(static_cast<uint32_t>(col.int_dict_->size()));
      for (int64_t v : col.int_dict_->values()) w->I64(v);
    }
    w->U8(col.str_dict_ != nullptr ? 1 : 0);
    if (col.str_dict_ != nullptr) {
      w->U32(static_cast<uint32_t>(col.str_dict_->size()));
      for (const std::string& s : col.str_dict_->values()) w->String(s);
    }
    w->U32(static_cast<uint32_t>(col.runs_.size()));
    for (const RleRun& run : col.runs_) {
      w->U64(run.value);
      w->U32(run.count);
    }
    w->I64(col.delta_min_);
    w->U32(static_cast<uint32_t>(col.checkpoints_.size()));
    for (int64_t c : col.checkpoints_) w->I64(c);
  }

  static bool Read(Reader* r, EncodedColumn* col) {
    uint8_t type = 0, encoding = 0, bit_width = 0, has_dict = 0;
    uint64_t packed_size = 0, num_rows = 0;
    if (!r->U8(&type) || !r->U8(&encoding)) return false;
    if (!r->I64(&col->meta_.min) || !r->I64(&col->meta_.max) ||
        !r->U64(&num_rows) || !r->I64(&col->base_) || !r->U8(&bit_width) ||
        !r->U64(&packed_size)) {
      return false;
    }
    col->type_ = static_cast<ColumnType>(type);
    col->encoding_ = static_cast<Encoding>(encoding);
    col->meta_.num_rows = num_rows;
    col->bit_width_ = bit_width;
    col->packed_.Resize(packed_size);
    if (!r->Bytes(col->packed_.data(), packed_size)) return false;
    if (!r->U8(&has_dict)) return false;
    if (has_dict != 0) {
      uint32_t n = 0;
      if (!r->U32(&n)) return false;
      auto dict = std::make_shared<IntDictionary>();
      for (uint32_t i = 0; i < n; ++i) {
        int64_t v = 0;
        if (!r->I64(&v)) return false;
        dict->GetOrInsert(v);
      }
      col->int_dict_ = std::move(dict);
    }
    if (!r->U8(&has_dict)) return false;
    if (has_dict != 0) {
      uint32_t n = 0;
      if (!r->U32(&n)) return false;
      auto dict = std::make_shared<StringDictionary>();
      for (uint32_t i = 0; i < n; ++i) {
        std::string s;
        if (!r->String(&s)) return false;
        dict->GetOrInsert(s);
      }
      col->str_dict_ = std::move(dict);
    }
    uint32_t num_runs = 0;
    if (!r->U32(&num_runs)) return false;
    col->runs_.resize(num_runs);
    for (uint32_t i = 0; i < num_runs; ++i) {
      if (!r->U64(&col->runs_[i].value) || !r->U32(&col->runs_[i].count)) {
        return false;
      }
    }
    uint32_t num_checkpoints = 0;
    if (!r->I64(&col->delta_min_) || !r->U32(&num_checkpoints)) return false;
    col->checkpoints_.resize(num_checkpoints);
    for (uint32_t i = 0; i < num_checkpoints; ++i) {
      if (!r->I64(&col->checkpoints_[i])) return false;
    }
    return true;
  }
};

Status SaveTable(const Table& table, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  Writer w(f.get());
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(static_cast<uint32_t>(table.num_columns()));
  for (const ColumnSpec& spec : table.schema()) {
    w.String(spec.name);
    w.U8(static_cast<uint8_t>(spec.type));
    w.U8(static_cast<uint8_t>(spec.encoding));
  }
  w.U32(static_cast<uint32_t>(table.num_segments()));
  for (size_t s = 0; s < table.num_segments(); ++s) {
    const Segment& segment = table.segment(s);
    w.U64(segment.num_rows());
    const uint8_t* alive = segment.alive_bytes();
    w.U8(alive != nullptr ? 1 : 0);
    if (alive != nullptr) w.Bytes(alive, segment.num_rows());
    for (size_t c = 0; c < segment.num_columns(); ++c) {
      ColumnSerde::Write(&w, segment.column(c));
    }
  }
  if (!w.ok()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Table> LoadTable(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  Reader r(f.get());
  char magic[8];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a bipie table file: " + path);
  }
  uint32_t num_columns = 0;
  if (!r.U32(&num_columns) || num_columns > 4096) {
    return Status::InvalidArgument("corrupt table file (columns)");
  }
  Schema schema(num_columns);
  for (ColumnSpec& spec : schema) {
    uint8_t type = 0, encoding = 0;
    if (!r.String(&spec.name) || !r.U8(&type) || !r.U8(&encoding)) {
      return Status::InvalidArgument("corrupt table file (schema)");
    }
    spec.type = static_cast<ColumnType>(type);
    spec.encoding = static_cast<EncodingChoice>(encoding);
  }
  Table table(std::move(schema));
  uint32_t num_segments = 0;
  if (!r.U32(&num_segments)) {
    return Status::InvalidArgument("corrupt table file (segments)");
  }
  for (uint32_t s = 0; s < num_segments; ++s) {
    uint64_t num_rows = 0;
    uint8_t has_alive = 0;
    if (!r.U64(&num_rows) || !r.U8(&has_alive)) {
      return Status::InvalidArgument("corrupt table file (segment header)");
    }
    std::vector<uint8_t> alive;
    if (has_alive != 0) {
      alive.resize(num_rows);
      if (!r.Bytes(alive.data(), num_rows)) {
        return Status::InvalidArgument("corrupt table file (alive mask)");
      }
    }
    std::vector<EncodedColumn> columns(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      if (!ColumnSerde::Read(&r, &columns[c])) {
        return Status::InvalidArgument("corrupt table file (column data)");
      }
      if (columns[c].num_rows() != num_rows) {
        return Status::InvalidArgument("corrupt table file (row counts)");
      }
    }
    Segment segment(num_rows, std::move(columns));
    for (uint64_t row = 0; row < alive.size(); ++row) {
      if (alive[row] == 0) segment.DeleteRow(row);
    }
    table.AddSegment(std::move(segment));
  }
  return table;
}

}  // namespace bipie
