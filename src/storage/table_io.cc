#include "storage/table_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bipie {

namespace {

// IO counters (DESIGN.md §12). Byte counts are whole-file sizes reported
// once per save/load — never per fwrite/fread call.
struct IoCounters {
  obs::Counter& tables_saved = obs::Counter::Get("io.tables_saved");
  obs::Counter& tables_loaded = obs::Counter::Get("io.tables_loaded");
  obs::Counter& bytes_written = obs::Counter::Get("io.bytes_written");
  obs::Counter& bytes_read = obs::Counter::Get("io.bytes_read");
  obs::Counter& save_errors = obs::Counter::Get("io.save_errors");
  obs::Counter& load_errors = obs::Counter::Get("io.load_errors");
  obs::Counter& checksum_failures = obs::Counter::Get("io.checksum_failures");
};
IoCounters& Counters() {
  static IoCounters counters;
  return counters;
}

constexpr char kMagicV1[8] = {'B', 'I', 'P', 'I', 'E', 'T', 'B', '1'};
constexpr char kMagicV2[8] = {'B', 'I', 'P', 'I', 'E', 'T', 'B', '2'};
constexpr char kMagicPrefix[7] = {'B', 'I', 'P', 'I', 'E', 'T', 'B'};

constexpr uint32_t kMaxColumns = 4096;

// Valid on-disk discriminant ranges; anything outside is rejected before
// the byte is ever cast into the enum (constructing an out-of-range enum
// value is UB and would poison every later comparison).
constexpr uint8_t kMaxColumnType = static_cast<uint8_t>(ColumnType::kString);
constexpr uint8_t kMaxEncoding = static_cast<uint8_t>(Encoding::kByteSliced);
constexpr uint8_t kMaxEncodingChoice =
    static_cast<uint8_t>(EncodingChoice::kByteSliced);

// Writes straight to the file (v1 layout and the v2 outer framing).
class FileWriter {
 public:
  explicit FileWriter(std::FILE* f) : f_(f) {}

  void Bytes(const void* data, size_t n) {
    if (BIPIE_FAILPOINT("table_io/write_fail")) {
      ok_ = false;
      return;
    }
    // n == 0 short-circuits: empty payloads (e.g. zero-length strings) may
    // legally pass a null pointer, which fwrite must not receive.
    ok_ = ok_ && (n == 0 || std::fwrite(data, 1, n, f_) == n);
  }
  void U8(uint8_t v) { Bytes(&v, 1); }
  void U32(uint32_t v) { Bytes(&v, 4); }
  void U64(uint64_t v) { Bytes(&v, 8); }
  void I64(int64_t v) { Bytes(&v, 8); }
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

// Serializes into memory; v2 checksums and frames whole blocks, so every
// block is materialized before it is written.
class BufWriter {
 public:
  // GCC 12 falsely models the first grow of an empty vector as writing past
  // a zero-sized region here; the suppression covers that one diagnostic.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
  void Bytes(const void* data, size_t n) {
    if (n == 0) return;
    const size_t old_size = out_.size();
    out_.resize(old_size + n);
    std::memcpy(out_.data() + old_size, data, n);
  }
#pragma GCC diagnostic pop
  void U8(uint8_t v) { Bytes(&v, 1); }
  void U32(uint32_t v) { Bytes(&v, 4); }
  void U64(uint64_t v) { Bytes(&v, 8); }
  void I64(int64_t v) { Bytes(&v, 8); }
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  const uint8_t* data() const { return out_.data(); }
  size_t size() const { return out_.size(); }

 private:
  std::vector<uint8_t> out_;
};

// Reads the file sequentially. Every read is bounded by remaining(), which
// is also the hard upper bound for any size field decoded from the stream —
// a claimed payload larger than the bytes that physically exist is corrupt,
// and rejecting it *before* allocating is what closes the pre-validation
// allocation DoS.
//
// v2 block framing is streamed: BeginBlock reads the frame (length and
// stored CRC32C) and narrows remaining() to the block payload, every read
// inside the block folds into a running CRC, and EndBlock checks the block
// was consumed exactly and the checksum matches. Payload bytes land
// directly in their final destination (e.g. a column's packed buffer) —
// no staging copy of the block.
class Reader {
 public:
  Reader(std::FILE* f, uint64_t file_size) : f_(f), remaining_(file_size) {}

  bool Bytes(void* data, size_t n) {
    if (BIPIE_FAILPOINT("table_io/read_short")) {
      ok_ = false;
      return false;
    }
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    if (n == 0) return true;
    if (in_block_ && verify_crc_) {
      // Checksum each chunk while it is still cache-hot from the read;
      // one pass over a multi-megabyte payload after the fact would touch
      // cold memory twice.
      constexpr size_t kCrcChunk = 256 * 1024;
      auto* dst = static_cast<uint8_t*>(data);
      for (size_t off = 0; off < n; off += kCrcChunk) {
        const size_t take = std::min(kCrcChunk, n - off);
        if (std::fread(dst + off, 1, take, f_) != take) {
          ok_ = false;
          return false;
        }
        block_crc_ = Crc32cExtend(block_crc_, dst + off, take);
      }
    } else {
      ok_ = std::fread(data, 1, n, f_) == n;
      if (!ok_) return false;
    }
    remaining_ -= n;
    if (in_block_) block_remaining_ -= n;
    return true;
  }
  bool U8(uint8_t* v) { return Bytes(v, 1); }
  bool U32(uint32_t* v) { return Bytes(v, 4); }
  bool U64(uint64_t* v) { return Bytes(v, 8); }
  bool I64(int64_t* v) { return Bytes(v, 8); }
  bool String(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (len > remaining()) {  // claimed length beyond the physical bytes
      ok_ = false;
      return false;
    }
    s->resize(len);
    return Bytes(s->data(), len);
  }

  // Bytes left in the current scope — the block payload when inside a
  // block, the whole file otherwise; the bound for any size decoded here.
  uint64_t remaining() const {
    return in_block_ ? block_remaining_ : remaining_;
  }

  // Enters a v2 block: reads the frame and scopes subsequent reads to the
  // claimed payload, which is itself bounded by the physical bytes left.
  Status BeginBlock(bool verify_checksum, const char* what) {
    uint64_t len = 0;
    uint32_t stored_crc = 0;
    if (!U64(&len) || !U32(&stored_crc)) {
      return Status::DataLoss(std::string("truncated block frame (") + what +
                              ")");
    }
    if (len > remaining_) {
      return Status::DataLoss(std::string("block length exceeds file size (") +
                              what + ")");
    }
    in_block_ = true;
    block_remaining_ = len;
    verify_crc_ = verify_checksum;
    block_crc_ = 0;
    block_crc_expected_ = stored_crc;
    return Status::OK();
  }

  // Leaves the block; the payload must be consumed exactly and (when
  // verifying) the running CRC must match the stored one. Note the parse
  // above ran on as-yet-unverified bytes — that is fine precisely because
  // the parser is hardened against arbitrary bytes (v1 files have no
  // checksums at all), and the CRC verdict still gates the load.
  Status EndBlock(const char* what) {
    in_block_ = false;
    if (!ok_) {
      return Status::DataLoss(std::string("truncated block payload (") + what +
                              ")");
    }
    if (block_remaining_ != 0) {
      return Status::DataLoss(std::string("trailing bytes in ") + what +
                              " block");
    }
    if (verify_crc_) {
      uint32_t actual = block_crc_;
      if (BIPIE_FAILPOINT("table_io/checksum_mismatch")) actual = ~actual;
      if (actual != block_crc_expected_) {
        Counters().checksum_failures.Increment();
        return Status::DataLoss(std::string("checksum mismatch (") + what +
                                ")");
      }
    }
    return Status::OK();
  }

  bool ok() const { return ok_; }

 private:
  std::FILE* f_ = nullptr;
  uint64_t remaining_ = 0;
  bool ok_ = true;
  bool in_block_ = false;
  bool verify_crc_ = false;
  uint64_t block_remaining_ = 0;
  uint32_t block_crc_ = 0;
  uint32_t block_crc_expected_ = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Writes one framed v2 block: length, checksum, payload.
void WriteBlock(FileWriter* fw, const BufWriter& block) {
  fw->U64(block.size());
  fw->U32(Crc32c(block.data(), block.size()));
  fw->Bytes(block.data(), block.size());
}

}  // namespace

// Grants table_io access to EncodedColumn's encoded representation.
struct ColumnSerde {
  template <typename W>
  static void Write(W* w, const EncodedColumn& col) {
    w->U8(static_cast<uint8_t>(col.type_));
    w->U8(static_cast<uint8_t>(col.encoding_));
    w->I64(col.meta_.min);
    w->I64(col.meta_.max);
    w->U64(col.meta_.num_rows);
    w->I64(col.base_);
    w->U8(static_cast<uint8_t>(col.bit_width_));
    w->U64(col.packed_.size());
    w->Bytes(col.packed_.data(), col.packed_.size());
    w->U8(col.int_dict_ != nullptr ? 1 : 0);
    if (col.int_dict_ != nullptr) {
      w->U32(static_cast<uint32_t>(col.int_dict_->size()));
      for (int64_t v : col.int_dict_->values()) w->I64(v);
    }
    w->U8(col.str_dict_ != nullptr ? 1 : 0);
    if (col.str_dict_ != nullptr) {
      w->U32(static_cast<uint32_t>(col.str_dict_->size()));
      for (const std::string& s : col.str_dict_->values()) w->String(s);
    }
    w->U32(static_cast<uint32_t>(col.runs_.size()));
    for (const RleRun& run : col.runs_) {
      w->U64(run.value);
      w->U32(run.count);
    }
    w->I64(col.delta_min_);
    w->U32(static_cast<uint32_t>(col.checkpoints_.size()));
    for (int64_t c : col.checkpoints_) w->I64(c);
  }

  static Status Read(Reader* r, EncodedColumn* col) {
    uint8_t type = 0, encoding = 0, bit_width = 0, has_dict = 0;
    uint64_t packed_size = 0, num_rows = 0;
    if (!r->U8(&type) || !r->U8(&encoding)) {
      return Status::DataLoss("truncated column header");
    }
    if (type > kMaxColumnType) {
      return Status::DataLoss("column type discriminant out of range");
    }
    if (encoding > kMaxEncoding) {
      return Status::DataLoss("column encoding discriminant out of range");
    }
    if (!r->I64(&col->meta_.min) || !r->I64(&col->meta_.max) ||
        !r->U64(&num_rows) || !r->I64(&col->base_) || !r->U8(&bit_width) ||
        !r->U64(&packed_size)) {
      return Status::DataLoss("truncated column metadata");
    }
    col->type_ = static_cast<ColumnType>(type);
    col->encoding_ = static_cast<Encoding>(encoding);
    col->meta_.num_rows = num_rows;
    col->bit_width_ = bit_width;
    // Bound, then allocate, then read: the size field is attacker
    // controlled, the remaining byte count is physical truth.
    if (packed_size > r->remaining()) {
      return Status::DataLoss("packed stream larger than file");
    }
    if (!col->packed_.TryResize(packed_size)) {
      return Status::ResourceExhausted("packed stream allocation failed");
    }
    if (!r->Bytes(col->packed_.data(), packed_size)) {
      return Status::DataLoss("truncated packed stream");
    }
    if (!r->U8(&has_dict)) return Status::DataLoss("truncated column");
    if (has_dict != 0) {
      uint32_t n = 0;
      if (!r->U32(&n)) return Status::DataLoss("truncated int dictionary");
      if (n > r->remaining() / 8) {  // each entry is an 8-byte value
        return Status::DataLoss("int dictionary larger than file");
      }
      auto dict = std::make_shared<IntDictionary>();
      for (uint32_t i = 0; i < n; ++i) {
        int64_t v = 0;
        if (!r->I64(&v)) return Status::DataLoss("truncated int dictionary");
        dict->GetOrInsert(v);
      }
      col->int_dict_ = std::move(dict);
    }
    if (!r->U8(&has_dict)) return Status::DataLoss("truncated column");
    if (has_dict != 0) {
      uint32_t n = 0;
      if (!r->U32(&n)) return Status::DataLoss("truncated string dictionary");
      if (n > r->remaining() / 4) {  // each entry is at least a 4-byte length
        return Status::DataLoss("string dictionary larger than file");
      }
      auto dict = std::make_shared<StringDictionary>();
      for (uint32_t i = 0; i < n; ++i) {
        std::string s;
        if (!r->String(&s)) {
          return Status::DataLoss("truncated string dictionary");
        }
        dict->GetOrInsert(s);
      }
      col->str_dict_ = std::move(dict);
    }
    uint32_t num_runs = 0;
    if (!r->U32(&num_runs)) return Status::DataLoss("truncated RLE runs");
    if (num_runs > r->remaining() / 12) {  // 8-byte value + 4-byte count
      return Status::DataLoss("RLE run list larger than file");
    }
    col->runs_.resize(num_runs);
    for (uint32_t i = 0; i < num_runs; ++i) {
      if (!r->U64(&col->runs_[i].value) || !r->U32(&col->runs_[i].count)) {
        return Status::DataLoss("truncated RLE runs");
      }
    }
    uint32_t num_checkpoints = 0;
    if (!r->I64(&col->delta_min_) || !r->U32(&num_checkpoints)) {
      return Status::DataLoss("truncated delta trailer");
    }
    if (num_checkpoints > r->remaining() / 8) {
      return Status::DataLoss("delta checkpoint list larger than file");
    }
    col->checkpoints_.resize(num_checkpoints);
    for (uint32_t i = 0; i < num_checkpoints; ++i) {
      if (!r->I64(&col->checkpoints_[i])) {
        return Status::DataLoss("truncated delta checkpoints");
      }
    }
    return Status::OK();
  }
};

namespace {

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

Status SaveTableV1(const Table& table, std::FILE* f, const std::string& path) {
  FileWriter w(f);
  w.Bytes(kMagicV1, sizeof(kMagicV1));
  w.U32(static_cast<uint32_t>(table.num_columns()));
  for (const ColumnSpec& spec : table.schema()) {
    w.String(spec.name);
    w.U8(static_cast<uint8_t>(spec.type));
    w.U8(static_cast<uint8_t>(spec.encoding));
  }
  w.U32(static_cast<uint32_t>(table.num_segments()));
  for (size_t s = 0; s < table.num_segments(); ++s) {
    const Segment& segment = table.segment(s);
    w.U64(segment.num_rows());
    const uint8_t* alive = segment.alive_bytes();
    w.U8(alive != nullptr ? 1 : 0);
    if (alive != nullptr) w.Bytes(alive, segment.num_rows());
    for (size_t c = 0; c < segment.num_columns(); ++c) {
      ColumnSerde::Write(&w, segment.column(c));
    }
  }
  if (!w.ok()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Status SaveTableV2(const Table& table, std::FILE* f, const std::string& path) {
  FileWriter w(f);
  w.Bytes(kMagicV2, sizeof(kMagicV2));

  BufWriter header;
  header.U32(static_cast<uint32_t>(table.num_columns()));
  for (const ColumnSpec& spec : table.schema()) {
    header.String(spec.name);
    header.U8(static_cast<uint8_t>(spec.type));
    header.U8(static_cast<uint8_t>(spec.encoding));
  }
  header.U32(static_cast<uint32_t>(table.num_segments()));
  WriteBlock(&w, header);

  for (size_t s = 0; s < table.num_segments(); ++s) {
    const Segment& segment = table.segment(s);
    BufWriter seg;
    seg.U64(segment.num_rows());
    const uint8_t* alive = segment.alive_bytes();
    seg.U8(alive != nullptr ? 1 : 0);
    if (alive != nullptr) seg.Bytes(alive, segment.num_rows());
    WriteBlock(&w, seg);
    for (size_t c = 0; c < segment.num_columns(); ++c) {
      BufWriter col;
      ColumnSerde::Write(&col, segment.column(c));
      WriteBlock(&w, col);
    }
  }
  if (!w.ok()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

// Reads the schema fields shared by both formats from `r` (for v2, `r` is
// the in-memory header block).
Status ReadSchema(Reader* r, Schema* schema) {
  uint32_t num_columns = 0;
  if (!r->U32(&num_columns)) return Status::DataLoss("truncated schema");
  if (num_columns > kMaxColumns) {
    return Status::DataLoss("column count exceeds limit");
  }
  schema->resize(num_columns);
  for (ColumnSpec& spec : *schema) {
    uint8_t type = 0, encoding = 0;
    if (!r->String(&spec.name) || !r->U8(&type) || !r->U8(&encoding)) {
      return Status::DataLoss("truncated schema");
    }
    if (type > kMaxColumnType) {
      return Status::DataLoss("schema type discriminant out of range");
    }
    if (encoding > kMaxEncodingChoice) {
      return Status::DataLoss("schema encoding discriminant out of range");
    }
    spec.type = static_cast<ColumnType>(type);
    spec.encoding = static_cast<EncodingChoice>(encoding);
  }
  return Status::OK();
}

// Applies a loaded liveness mask, checking the *file's* bytes are canonical
// before they are folded into DeleteRow calls.
Status ApplyAliveMask(const std::vector<uint8_t>& alive, Segment* segment) {
  for (uint64_t row = 0; row < alive.size(); ++row) {
    if (alive[row] == 0x00) {
      segment->DeleteRow(row);
    } else if (alive[row] != 0xFF) {
      return Status::DataLoss("non-canonical liveness byte");
    }
  }
  return Status::OK();
}

Result<Table> LoadTableV1(Reader* r) {
  Schema schema;
  BIPIE_RETURN_NOT_OK(ReadSchema(r, &schema));
  const size_t num_columns = schema.size();
  Table table(std::move(schema));
  uint32_t num_segments = 0;
  if (!r->U32(&num_segments)) {
    return Status::DataLoss("truncated segment count");
  }
  for (uint32_t s = 0; s < num_segments; ++s) {
    uint64_t num_rows = 0;
    uint8_t has_alive = 0;
    if (!r->U64(&num_rows) || !r->U8(&has_alive)) {
      return Status::DataLoss("truncated segment header");
    }
    std::vector<uint8_t> alive;
    if (has_alive != 0) {
      if (num_rows > r->remaining()) {
        return Status::DataLoss("liveness mask larger than file");
      }
      alive.resize(num_rows);
      if (!r->Bytes(alive.data(), num_rows)) {
        return Status::DataLoss("truncated liveness mask");
      }
    }
    std::vector<EncodedColumn> columns(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      BIPIE_RETURN_NOT_OK(ColumnSerde::Read(r, &columns[c]));
      if (columns[c].num_rows() != num_rows) {
        return Status::DataLoss("column row count disagrees with segment");
      }
    }
    Segment segment(num_rows, std::move(columns));
    BIPIE_RETURN_NOT_OK(ApplyAliveMask(alive, &segment));
    table.AddSegment(std::move(segment));
  }
  if (r->remaining() != 0) {
    return Status::DataLoss("trailing bytes after table");
  }
  return table;
}

Result<Table> LoadTableV2(Reader* r, const LoadOptions& options) {
  const bool verify = options.verify_checksums;
  BIPIE_RETURN_NOT_OK(r->BeginBlock(verify, "header"));
  Schema schema;
  BIPIE_RETURN_NOT_OK(ReadSchema(r, &schema));
  uint32_t num_segments = 0;
  if (!r->U32(&num_segments)) {
    return Status::DataLoss("truncated segment count");
  }
  BIPIE_RETURN_NOT_OK(r->EndBlock("header"));
  // Each segment costs at least one block frame; more segments than frames
  // that could physically fit is corrupt.
  if (num_segments > r->remaining() / 12) {
    return Status::DataLoss("segment count exceeds file size");
  }
  const size_t num_columns = schema.size();
  Table table(std::move(schema));
  for (uint32_t s = 0; s < num_segments; ++s) {
    BIPIE_RETURN_NOT_OK(r->BeginBlock(verify, "segment"));
    uint64_t num_rows = 0;
    uint8_t has_alive = 0;
    if (!r->U64(&num_rows) || !r->U8(&has_alive)) {
      return Status::DataLoss("truncated segment header");
    }
    std::vector<uint8_t> alive;
    if (has_alive != 0) {
      if (num_rows > r->remaining()) {
        return Status::DataLoss("liveness mask larger than its block");
      }
      alive.resize(num_rows);
      if (!r->Bytes(alive.data(), num_rows)) {
        return Status::DataLoss("truncated liveness mask");
      }
    }
    BIPIE_RETURN_NOT_OK(r->EndBlock("segment"));
    std::vector<EncodedColumn> columns(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      BIPIE_RETURN_NOT_OK(r->BeginBlock(verify, "column"));
      BIPIE_RETURN_NOT_OK(ColumnSerde::Read(r, &columns[c]));
      BIPIE_RETURN_NOT_OK(r->EndBlock("column"));
      if (columns[c].num_rows() != num_rows) {
        return Status::DataLoss("column row count disagrees with segment");
      }
    }
    Segment segment(num_rows, std::move(columns));
    BIPIE_RETURN_NOT_OK(ApplyAliveMask(alive, &segment));
    table.AddSegment(std::move(segment));
  }
  if (r->remaining() != 0) {
    return Status::DataLoss("trailing bytes after table");
  }
  return table;
}

}  // namespace

namespace {

Status SaveTableImpl(const Table& table, const std::string& path,
                     const SaveOptions& options, uint64_t* bytes_written) {
  if (options.format_version != 1 && options.format_version != 2) {
    return Status::NotSupported("unknown table format version " +
                                std::to_string(options.format_version));
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  Status status = options.format_version == 1
                      ? SaveTableV1(table, f.get(), path)
                      : SaveTableV2(table, f.get(), path);
  if (status.ok()) {
    const long pos = std::ftell(f.get());
    if (pos > 0) *bytes_written = static_cast<uint64_t>(pos);
  }
  return status;
}

Result<Table> LoadTableImpl(const std::string& path,
                            const LoadOptions& options,
                            uint64_t* bytes_read) {
  // Charge the whole load — every column's packed stream, the liveness
  // masks — against the caller's tracker, so its limits bound the load's
  // peak footprint. The per-column TryResize below reports a breach as
  // kResourceExhausted before any oversized allocation happens.
  MemoryTrackerScope memory_scope(options.memory_tracker);
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  // The physical file size is the root bound every decoded size field is
  // checked against.
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::Internal("cannot seek: " + path);
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) return Status::Internal("cannot tell: " + path);
  if (std::fseek(f.get(), 0, SEEK_SET) != 0) {
    return Status::Internal("cannot seek: " + path);
  }
  *bytes_read = static_cast<uint64_t>(file_size);

  Reader r(f.get(), static_cast<uint64_t>(file_size));
  char magic[8];
  if (!r.Bytes(magic, sizeof(magic))) {
    return Status::InvalidArgument("not a bipie table file: " + path);
  }
  Result<Table> loaded = Status::Internal("unreachable");
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    loaded = LoadTableV2(&r, options);
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    if (options.strict) {
      return Status::NotSupported(
          "legacy v1 table file has no checksums (strict mode): " + path);
    }
    // Unverified legacy format: no checksums exist, so deep validation
    // below is the only line of defence.
    loaded = LoadTableV1(&r);
  } else if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) == 0) {
    return Status::NotSupported(
        std::string("unsupported table format version '") + magic[7] +
        "': " + path);
  } else {
    return Status::InvalidArgument("not a bipie table file: " + path);
  }
  if (!loaded.ok()) return loaded.status();
  if (options.validate) {
    BIPIE_RETURN_NOT_OK(loaded.value().Validate());
  }
  // The finished table outlives the loading query: hand its footprint to
  // the process tracker so the query's tracker drains back to zero.
  loaded.value().MoveMemoryChargesTo(MemoryTracker::Process());
  return loaded;
}

}  // namespace

Status SaveTable(const Table& table, const std::string& path,
                 const SaveOptions& options) {
  BIPIE_TRACE_SPAN("io.save_table", "io");
  uint64_t bytes_written = 0;
  Status status = SaveTableImpl(table, path, options, &bytes_written);
  if (status.ok()) {
    Counters().tables_saved.Increment();
    Counters().bytes_written.Add(bytes_written);
  } else {
    Counters().save_errors.Increment();
  }
  return status;
}

Result<Table> LoadTable(const std::string& path, const LoadOptions& options) {
  BIPIE_TRACE_SPAN("io.load_table", "io");
  uint64_t bytes_read = 0;
  Result<Table> loaded = Status::Internal("unreachable");
  try {
    loaded = LoadTableImpl(path, options, &bytes_read);
  } catch (const std::bad_alloc&) {
    loaded = Status::ResourceExhausted("table load exceeded the memory limit");
  }
  if (loaded.ok()) {
    Counters().tables_loaded.Increment();
    Counters().bytes_read.Add(bytes_read);
  } else {
    Counters().load_errors.Increment();
  }
  return loaded;
}

}  // namespace bipie
