#include "core/query.h"

namespace bipie {

// QuerySpec and QueryResult are plain data; this translation unit anchors
// the module and hosts future validation helpers.

}  // namespace bipie
