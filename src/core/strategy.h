// Runtime operator specialization (§3, §6).
//
// BIPie implements multiple variants of selection and aggregation and picks
// between them at run time: the aggregation strategy per segment (from
// metadata: group-count bound, aggregate count and widths), the selection
// strategy per batch (from the measured selectivity of the filter for that
// batch). The rules here encode the empirical findings of the paper's §6.1
// and §6.2 evaluation.
#ifndef BIPIE_CORE_STRATEGY_H_
#define BIPIE_CORE_STRATEGY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace bipie {

enum class CompareOp;  // expr/predicate.h

enum class SelectionStrategy {
  kGather,        // §4.2 — unpack only the selected rows
  kCompact,       // §4.1 — unpack all, physically compact
  kSpecialGroup,  // §4.3 — route rejected rows to an extra group
};

enum class AggregationStrategy {
  kScalar,          // §5.1 — reference / wide-value fallback
  kInRegister,      // §5.3 — accumulators in SIMD registers
  kSortBased,       // §5.2 — bucket sort by group, then gather-sum
  kMultiAggregate,  // §5.4 — horizontal SIMD across aggregates
  kCheckedScalar,   // overflow-guarded fallback when metadata cannot prove
                    // sums fit int64
  kRunBased,        // run-level execution (DESIGN.md §11): aggregate
                    // (group, row-range) spans instead of rows when group
                    // columns are RLE/constant and filters reduce to runs
};

// Number of AggregationStrategy values (sizes ScanStats counters).
inline constexpr int kNumAggregationStrategies = 6;

const char* SelectionStrategyName(SelectionStrategy s);
const char* AggregationStrategyName(AggregationStrategy s);

// How admission consults the calibrated cost model (DESIGN.md §17).
//  * kOff      — the legacy hand-tuned heuristics decide (the §6 constants);
//  * kOn       — the model's predicted cycles/row decide, using the
//                process-wide calibration profile (builtin unless a
//                measured one was installed);
//  * kAdaptive — the heuristic choice stands unless the model predicts its
//                own pick is faster by a clear margin (hedges against model
//                error while still catching the heuristics' blind spots).
enum class CostModelMode {
  kOff = 0,
  kOn = 1,
  kAdaptive = 2,
};

// In kAdaptive mode the model must beat the heuristic's predicted cost by
// this factor before its choice replaces the heuristic's.
inline constexpr double kCostModelAdaptiveMargin = 0.90;

const char* CostModelModeName(CostModelMode mode);
// "on" | "off" | "adaptive" -> mode; anything else is nullopt.
std::optional<CostModelMode> ParseCostModelMode(const std::string& name);

// Forced choices for benchmarks / tests; unset means adaptive.
struct StrategyOverrides {
  std::optional<SelectionStrategy> selection;
  std::optional<AggregationStrategy> aggregation;
  // Byte-sliced filter evaluation (DESIGN.md §16): true forces the
  // early-pruning plane kernels for every byteslice filter column (an error
  // if no filter binds to one), false forces the decode-then-compare path;
  // unset means adaptive admission.
  std::optional<bool> byteslice;
  // Cost-model consultation for the adaptive decisions above. Not a
  // "forced" plan: explicit strategy overrides still win, and the hash
  // fallback logic ignores it.
  CostModelMode cost_model = CostModelMode::kOff;
};

// Picks the selection strategy for one batch.
//  * selectivity: measured fraction of rows passing the filter;
//  * max_input_bits: widest bit width among the columns that selection must
//    materialize (gather's win region shrinks as widths grow — Figure 7);
//  * special_group_available: a free group id exists and the aggregation
//    strategy can absorb one extra group.
SelectionStrategy ChooseSelectionStrategy(double selectivity,
                                          int max_input_bits,
                                          bool special_group_available);

// Gather-vs-compact crossover selectivity for a bit width (Figure 7: ~2%
// at 4 bits rising to ~38% at 21 bits).
double GatherCrossoverSelectivity(int bit_width);

// Picks the aggregation strategy for one segment.
//  * num_groups: group-count bound from encoding metadata (incl. special);
//  * num_sums: SUM aggregates to compute (0 = count-only);
//  * max_value_bits: widest aggregate input in bits;
//  * expected_selectivity: estimate (or measurement from prior batches);
//  * multi_aggregate_fits: the expanded row fits one SIMD register.
AggregationStrategy ChooseAggregationStrategy(int num_groups, int num_sums,
                                              int max_value_bits,
                                              double expected_selectivity,
                                              bool multi_aggregate_fits);

// --- run-level admission (DESIGN.md §11) -----------------------------------
//
// The run pipeline replaces the per-row batch loop with arithmetic over
// (group_id, row_range) spans. It is *correct* only when every operator of
// the scan reduces to runs, and *profitable* only when those runs are long
// enough that span bookkeeping beats the row kernels.

struct RunAdmissionInputs {
  // Every group-by column of the segment is RLE-encoded or constant
  // (cardinality 1), so group ids form a run stream.
  bool groups_are_runs = false;
  // Every filter is metadata-satisfied for the segment (min/max proves all
  // rows match) or evaluates on an RLE column (one verdict per run).
  bool filters_are_runs = false;
  // Every aggregate input is a raw bit-packed SUM (contiguous unpack +
  // horizontal sum) or an RLE column (pure run-metadata arithmetic).
  bool aggregates_are_runs = false;
  // Deleted rows arrive as a per-row liveness mask, which has no run
  // representation here; they force the row-level path.
  bool has_deleted_rows = false;
  // A forced selection strategy must be honored by the batch pipeline; the
  // run pipeline never materializes selection vectors.
  bool selection_forced = false;
  size_t segment_rows = 0;
  // Upper bound on spans the pipeline would emit (group runs + filter runs).
  size_t estimated_spans = 1;
};

// Minimum average span length (rows per span) for adaptive admission. Below
// this the per-span dispatch overhead erodes the decode savings; row
// kernels stay within noise of the run path at ~8 rows/span and win below.
inline constexpr size_t kMinRunSpanRows = 8;

// Correctness gate: the run pipeline can compute this segment exactly.
bool RunBasedCapable(const RunAdmissionInputs& in);

// Adaptive gate: capable *and* profitable (average span >= kMinRunSpanRows).
// Forced kRunBased overrides skip the profitability half.
bool RunBasedAdmitted(const RunAdmissionInputs& in);

// --- byteslice filter admission (DESIGN.md §16) ----------------------------
//
// Byte-sliced filter columns can evaluate predicates plane-at-a-time with
// early exit (vector/byteslice_scan.h) instead of assembling full words and
// comparing. The kernel path is always *correct*; admission decides whether
// it is *profitable* for this segment's predicates.

struct ByteSliceAdmissionInputs {
  // At least one filter of the query binds to a kByteSliced column of the
  // segment (and is not metadata-decided for it).
  bool any_byteslice_filter = false;
  // Widest byteslice filter column, in byte planes (ceil(bit_width / 8)).
  int max_planes = 0;
  // Metadata selectivity estimate (uniform-distribution quantile over
  // [min, max]) of the most selective byteslice filter.
  double estimated_selectivity = 1.0;
};

// Adaptive admission ceiling on the estimated selectivity of multi-plane
// columns. Early exit prunes planes fastest when few lanes stay undecided
// past plane 0 — which metadata can only see through the selectivity proxy.
// Hand-tuned like the §6 heuristics; with cost_model=on the calibrated
// model (src/cost, DESIGN.md §17) derives this boundary from measured
// plane/decode throughputs instead.
inline constexpr double kByteSliceSelectivityCeiling = 0.8;

// Correctness gate: the plane kernels can evaluate this segment's filters.
bool ByteSliceCapable(const ByteSliceAdmissionInputs& in);

// Adaptive gate: capable *and* profitable. Single-plane columns always pass
// (there is nothing to early-exit past, and the kernel skips the word
// assembly the decode path pays); multi-plane columns pass below the
// selectivity ceiling. A forced override skips this half.
bool ByteSliceAdmitted(const ByteSliceAdmissionInputs& in);

// Fraction of rows a predicate passes under a uniform distribution over the
// column's [min, max] metadata — the estimate driving byteslice admission
// (and exposed for the explain renderer and tests). literal2 is the
// kBetween upper bound, ignored otherwise.
double EstimatePredicateSelectivity(CompareOp op, int64_t literal,
                                    int64_t literal2, int64_t min,
                                    int64_t max);

// --- plan introspection (DESIGN.md §12) ------------------------------------
//
// Every input that drove one segment's strategy resolution, recorded by
// AggregateProcessor::Bind as plain data (no strings, no allocation beyond
// the struct itself — Bind runs per morsel). PlanExplain (src/obs) turns a
// PlanDecision into human-readable text and JSON, including the rejected
// alternatives it can re-derive from these inputs.
struct PlanDecision {
  AggregationStrategy aggregation = AggregationStrategy::kScalar;
  bool aggregation_forced = false;
  std::optional<SelectionStrategy> forced_selection;

  // ChooseAggregationStrategy inputs.
  int num_groups = 1;          // mapper bound, excluding the special slot
  int groups_for_choice = 1;   // including the reserved special slot
  int num_sums = 0;
  int max_value_bits = 1;
  double expected_selectivity = 1.0;
  bool multi_aggregate_fits = false;
  bool in_register_feasible = false;
  bool any_expr_input = false;

  // Gates around the choice.
  bool overflow_risk = false;  // metadata could not prove int64-safe sums
  bool filtered = false;       // filters present or deleted rows
  bool special_group_available = false;

  // ChooseSelectionStrategy inputs (the per-batch choice; the explain
  // renders the predicted pick at expected_selectivity plus the crossover).
  int max_materialized_bits = 1;

  // Run-level admission (DESIGN.md §11).
  RunAdmissionInputs run_inputs;
  bool run_capable = false;
  bool run_admitted = false;

  // Byteslice filter admission (DESIGN.md §16).
  ByteSliceAdmissionInputs byteslice_inputs;
  bool byteslice_capable = false;
  bool byteslice_admitted = false;
  std::optional<bool> forced_byteslice;

  // Cost model (DESIGN.md §17). Populated only when cost_model_mode is not
  // kOff; fixed-size numbers so Bind stays allocation-free. Costs are
  // predicted cycles per segment row under the active calibration profile;
  // a negative entry means "infeasible for this segment".
  CostModelMode cost_model_mode = CostModelMode::kOff;
  bool cost_model_profile_calibrated = false;  // builtin vs measured profile
  bool cost_model_overrode = false;  // the model's pick replaced the
                                     // heuristic's (kOn: differs at all;
                                     // kAdaptive: differed by the margin)
  double model_selectivity = 1.0;    // unified per-filter product estimate
  double model_total_cpr[kNumAggregationStrategies] = {-1.0, -1.0, -1.0,
                                                       -1.0, -1.0, -1.0};
  double model_selection_cpr[3] = {-1.0, -1.0, -1.0};  // overhead per row
  double model_gather_crossover = 0.0;
  double model_filter_decode_cpr = -1.0;     // decode-then-compare filters
  double model_filter_byteslice_cpr = -1.0;  // plane-kernel filters (<0: n/a)
};

}  // namespace bipie

#endif  // BIPIE_CORE_STRATEGY_H_
