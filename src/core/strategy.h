// Runtime operator specialization (§3, §6).
//
// BIPie implements multiple variants of selection and aggregation and picks
// between them at run time: the aggregation strategy per segment (from
// metadata: group-count bound, aggregate count and widths), the selection
// strategy per batch (from the measured selectivity of the filter for that
// batch). The rules here encode the empirical findings of the paper's §6.1
// and §6.2 evaluation.
#ifndef BIPIE_CORE_STRATEGY_H_
#define BIPIE_CORE_STRATEGY_H_

#include <optional>
#include <string>

namespace bipie {

enum class SelectionStrategy {
  kGather,        // §4.2 — unpack only the selected rows
  kCompact,       // §4.1 — unpack all, physically compact
  kSpecialGroup,  // §4.3 — route rejected rows to an extra group
};

enum class AggregationStrategy {
  kScalar,          // §5.1 — reference / wide-value fallback
  kInRegister,      // §5.3 — accumulators in SIMD registers
  kSortBased,       // §5.2 — bucket sort by group, then gather-sum
  kMultiAggregate,  // §5.4 — horizontal SIMD across aggregates
  kCheckedScalar,   // overflow-guarded fallback when metadata cannot prove
                    // sums fit int64
};

const char* SelectionStrategyName(SelectionStrategy s);
const char* AggregationStrategyName(AggregationStrategy s);

// Forced choices for benchmarks / tests; unset means adaptive.
struct StrategyOverrides {
  std::optional<SelectionStrategy> selection;
  std::optional<AggregationStrategy> aggregation;
};

// Picks the selection strategy for one batch.
//  * selectivity: measured fraction of rows passing the filter;
//  * max_input_bits: widest bit width among the columns that selection must
//    materialize (gather's win region shrinks as widths grow — Figure 7);
//  * special_group_available: a free group id exists and the aggregation
//    strategy can absorb one extra group.
SelectionStrategy ChooseSelectionStrategy(double selectivity,
                                          int max_input_bits,
                                          bool special_group_available);

// Gather-vs-compact crossover selectivity for a bit width (Figure 7: ~2%
// at 4 bits rising to ~38% at 21 bits).
double GatherCrossoverSelectivity(int bit_width);

// Picks the aggregation strategy for one segment.
//  * num_groups: group-count bound from encoding metadata (incl. special);
//  * num_sums: SUM aggregates to compute (0 = count-only);
//  * max_value_bits: widest aggregate input in bits;
//  * expected_selectivity: estimate (or measurement from prior batches);
//  * multi_aggregate_fits: the expanded row fits one SIMD register.
AggregationStrategy ChooseAggregationStrategy(int num_groups, int num_sums,
                                              int max_value_bits,
                                              double expected_selectivity,
                                              bool multi_aggregate_fits);

}  // namespace bipie

#endif  // BIPIE_CORE_STRATEGY_H_
