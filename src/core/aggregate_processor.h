// The Aggregate Processor (§3).
//
// Bound to one segment, it takes the group-id map and the selection byte
// vector produced by the Filter component and computes all aggregates,
// choosing among the Vector Toolbox strategies at run time:
//
//  * the aggregation strategy is fixed per segment, from metadata (group
//    count bound, aggregate count and bit widths) and the §6.2 rules;
//  * the selection strategy adapts per batch from measured selectivity.
//
// Raw bit-packed aggregate columns are summed in the *encoded offset
// domain* and compensated at the end (sum = offset_sum + base * count),
// so the hot loops never materialize logical int64 values unless the
// strategy requires it. Per-segment metadata proves the compensated sums
// cannot overflow int64; otherwise processing falls back to a checked
// scalar path.
#ifndef BIPIE_CORE_AGGREGATE_PROCESSOR_H_
#define BIPIE_CORE_AGGREGATE_PROCESSOR_H_

#include <array>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "core/group_mapper.h"
#include "core/query.h"
#include "core/strategy.h"
#include "storage/table.h"
#include "vector/agg_multi.h"
#include "vector/agg_sort.h"

namespace bipie {

class AggregateProcessor {
 public:
  AggregateProcessor() = default;

  // Binds to one segment. Resolves the aggregation strategy (respecting
  // overrides) and builds per-aggregate input descriptors.
  Status Bind(const Table& table, const Segment& segment,
              const QuerySpec& query, const StrategyOverrides& overrides);

  // Processes rows [start, start + n) of the bound segment. `sel` is the
  // selection byte vector for the window (filter merged with liveness), or
  // nullptr when every row qualifies. start must be batch-aligned
  // (a multiple of kBatchRows) so packed streams can be rebased.
  Status ProcessBatch(size_t start, size_t n, const uint8_t* sel);

  // Per-segment aggregation output, indexed by local group id.
  struct SegmentResult {
    int num_groups = 0;
    const GroupMapper* mapper = nullptr;
    std::vector<uint64_t> counts;  // [group]
    std::vector<int64_t> values;   // [group * num_specs + spec]: counts for
                                   // kCount specs, logical sums otherwise
  };
  Status Finish(SegmentResult* out);

  // Run-level span API (kRunBased, DESIGN.md §11): aggregates rows
  // [start, start + len), all mapped to `group`, without materializing
  // per-row ids or selection bytes. Raw bit-packed SUM inputs unpack the
  // span contiguously and horizontal-SIMD-sum it; RLE inputs reduce to
  // run-metadata arithmetic (sum += value * overlap, zero decode);
  // count += len always. Spans must arrive in ascending start order (the
  // RLE walk keeps an amortized-O(runs) cursor). Only valid when Bind
  // resolved kRunBased.
  Status ProcessRunSpan(uint8_t group, size_t start, size_t len);

  // The bound group mapper — run pipeline callers pull group run spans
  // from it directly.
  const GroupMapper& group_mapper() const { return mapper_; }

  AggregationStrategy aggregation_strategy() const { return agg_strategy_; }
  int num_groups() const { return mapper_.num_groups(); }

  // Inputs and outcome of this bind's strategy resolution (DESIGN.md §12).
  // Valid after Bind, including rejected binds: the feasibility checks fill
  // the inputs before returning an error, so PlanExplain can show what
  // drove a forced-plan rejection.
  const PlanDecision& plan_decision() const { return decision_; }

  // Batches processed per selection strategy (gather/compact/special/full),
  // for tests and the strategy explorer example.
  struct SelectionStats {
    size_t gather = 0;
    size_t compact = 0;
    size_t special_group = 0;
    size_t unfiltered = 0;
  };
  const SelectionStats& selection_stats() const { return selection_stats_; }

 private:
  enum class BatchMode { kFull, kGather, kCompact, kSpecialGroup };

  struct AggInput {
    enum class Op { kSum, kMin, kMax };

    Op op = Op::kSum;
    bool is_expr = false;
    ExprPtr expr;                         // kSumExpr
    const EncodedColumn* column = nullptr;  // raw
    int bit_width = 0;
    int64_t base = 0;
    uint64_t max_offset = 0;
    int word_bytes = 8;    // decoded element width fed to the strategy
    bool compensate = false;
    // RLE aggregate columns keep a direct run-stream reference besides the
    // expression decode path, so kRunBased can aggregate them from run
    // metadata alone.
    const EncodedColumn* run_column = nullptr;
  };

  BatchMode PickBatchMode(size_t n, size_t selected, const uint8_t* sel);

  // Builds dense group ids + per-input dense decoded arrays for the modes
  // that need them (in-register / multi / scalar). Returns the dense row
  // count.
  size_t BuildDenseBatch(size_t start, size_t n, const uint8_t* sel,
                         BatchMode mode);

  Status ProcessInRegister(size_t start, size_t n, const uint8_t* sel,
                           BatchMode mode);
  Status ProcessMultiAggregate(size_t start, size_t n, const uint8_t* sel,
                               BatchMode mode);
  Status ProcessSortBased(size_t start, size_t n, const uint8_t* sel,
                          BatchMode mode);
  Status ProcessScalar(size_t start, size_t n, const uint8_t* sel,
                       BatchMode mode, bool checked);

  // Decodes logical int64 values of table column `col_idx` for the window
  // into expr_col_bufs_[col_idx] (full window, no selection).
  void DecodeExprColumn(int col_idx, size_t start, size_t n);
  // Evaluates input `i` (an expression) over the full window into
  // expr_out_bufs_[i].
  void EvaluateExpr(size_t input_index, size_t start, size_t n);

  const Table* table_ = nullptr;
  const Segment* segment_ = nullptr;
  const QuerySpec* query_ = nullptr;

  GroupMapper mapper_;
  AggregationStrategy agg_strategy_ = AggregationStrategy::kScalar;
  PlanDecision decision_;
  StrategyOverrides overrides_;
  bool special_group_available_ = false;
  int max_materialized_bits_ = 8;  // drives the gather/compact crossover
  // Model-derived gather crossover for this segment (cost_model=on); < 0
  // keeps the Figure-7 heuristic. Precomputed at Bind so PickBatchMode's
  // per-batch cost stays one comparison.
  double model_gather_crossover_ = -1.0;

  std::vector<AggInput> inputs_;      // one per SUM-like spec
  std::vector<int> spec_to_input_;    // query spec index -> inputs_ index, -1 for count

  // MIN/MAX extrema for every dense-mode row batch; value pointers follow
  // the same expr/raw rules the scalar strategy uses.
  void ProcessMinMaxDense(BatchMode mode, size_t m, int geff);
  // MIN/MAX for the sort-based path (full-window values + sorted indices).
  Status ProcessMinMaxSorted(size_t start, size_t n, int geff);

  // Accumulators sized num_groups + 1 (last slot = special group).
  std::vector<uint64_t> counts_;
  std::vector<int64_t> sums_;    // [input * (G + 1) + group], sum inputs
  std::vector<uint64_t> minmax_; // [input * (G + 1) + group], min/max inputs
  std::vector<int> sum_inputs_;  // indices of Op::kSum inputs (register fit)

  MultiAggregator multi_agg_;
  bool multi_agg_ready_ = false;
  SortedBatch sorted_batch_;

  // Scratch (reused across batches).
  AlignedBuffer groups_buf_;
  AlignedBuffer indices_buf_;
  std::vector<AlignedBuffer> value_bufs_;     // per input dense values
  std::vector<AlignedBuffer> expr_col_bufs_;  // per table column, logical i64
  std::vector<AlignedBuffer> expr_out_bufs_;  // per input, expr results
  std::vector<const int64_t*> expr_out_ptrs_; // per input, possibly aliased
  AlignedBuffer compact_scratch_;

  // Run-level state (kRunBased): per-input cursor into RLE aggregate run
  // streams (spans arrive in ascending start order, so the walk is
  // amortized O(runs + spans)).
  struct RunCursor {
    size_t run_idx = 0;
    size_t run_start = 0;
  };
  std::vector<RunCursor> run_cursors_;

  // Per-batch memoization: columns are decoded and shared subexpressions
  // evaluated at most once per batch (Q1's charge reuses disc_price).
  uint64_t batch_seq_ = 0;
  std::vector<uint64_t> col_cache_tag_;  // per table column
  ExprCache expr_cache_;

  SelectionStats selection_stats_;
};

}  // namespace bipie

#endif  // BIPIE_CORE_AGGREGATE_PROCESSOR_H_
