#include "core/strategy.h"

#include <algorithm>

#include "expr/predicate.h"
#include "vector/agg_inregister.h"

namespace bipie {

const char* SelectionStrategyName(SelectionStrategy s) {
  switch (s) {
    case SelectionStrategy::kGather:
      return "gather";
    case SelectionStrategy::kCompact:
      return "compact";
    case SelectionStrategy::kSpecialGroup:
      return "special-group";
  }
  return "?";
}

const char* AggregationStrategyName(AggregationStrategy s) {
  switch (s) {
    case AggregationStrategy::kScalar:
      return "scalar";
    case AggregationStrategy::kInRegister:
      return "in-register";
    case AggregationStrategy::kSortBased:
      return "sort-based";
    case AggregationStrategy::kMultiAggregate:
      return "multi-aggregate";
    case AggregationStrategy::kCheckedScalar:
      return "checked-scalar";
    case AggregationStrategy::kRunBased:
      return "run-based";
  }
  return "?";
}

const char* CostModelModeName(CostModelMode mode) {
  switch (mode) {
    case CostModelMode::kOff:
      return "off";
    case CostModelMode::kOn:
      return "on";
    case CostModelMode::kAdaptive:
      return "adaptive";
  }
  return "?";
}

std::optional<CostModelMode> ParseCostModelMode(const std::string& name) {
  if (name == "off") return CostModelMode::kOff;
  if (name == "on") return CostModelMode::kOn;
  if (name == "adaptive") return CostModelMode::kAdaptive;
  return std::nullopt;
}

bool RunBasedCapable(const RunAdmissionInputs& in) {
  return in.groups_are_runs && in.filters_are_runs &&
         in.aggregates_are_runs && !in.has_deleted_rows &&
         !in.selection_forced && in.segment_rows > 0;
}

bool RunBasedAdmitted(const RunAdmissionInputs& in) {
  if (!RunBasedCapable(in)) return false;
  const size_t spans = std::max<size_t>(in.estimated_spans, 1);
  return in.segment_rows / spans >= kMinRunSpanRows;
}

bool ByteSliceCapable(const ByteSliceAdmissionInputs& in) {
  return in.any_byteslice_filter;
}

bool ByteSliceAdmitted(const ByteSliceAdmissionInputs& in) {
  if (!ByteSliceCapable(in)) return false;
  return in.max_planes <= 1 ||
         in.estimated_selectivity <= kByteSliceSelectivityCeiling;
}

double EstimatePredicateSelectivity(CompareOp op, int64_t literal,
                                    int64_t literal2, int64_t min,
                                    int64_t max) {
  if (min > max) return 0.0;
  const double domain =
      static_cast<double>(static_cast<uint64_t>(max) -
                          static_cast<uint64_t>(min)) + 1.0;
  // Fraction of the domain strictly below v, clamped to [0, 1].
  const auto below = [&](int64_t v) -> double {
    if (v <= min) return 0.0;
    if (v > max) return 1.0;
    return static_cast<double>(static_cast<uint64_t>(v) -
                               static_cast<uint64_t>(min)) / domain;
  };
  const double one = literal >= min && literal <= max ? 1.0 / domain : 0.0;
  switch (op) {
    case CompareOp::kEq:
      return one;
    case CompareOp::kNe:
      return 1.0 - one;
    case CompareOp::kLt:
      return below(literal);
    case CompareOp::kLe:
      return literal >= max ? 1.0 : below(literal) + one;
    case CompareOp::kGt:
      return literal >= max ? 0.0 : 1.0 - below(literal) - one;
    case CompareOp::kGe:
      return 1.0 - below(literal);
    case CompareOp::kBetween: {
      if (literal2 < literal) return 0.0;
      const double le_hi = literal2 >= max ? 1.0 : below(literal2 + 1);
      return std::max(0.0, le_hi - below(literal));
    }
  }
  return 1.0;
}

double GatherCrossoverSelectivity(int bit_width) {
  // Figure 7 calibration: compaction overtakes gather at ~2% selectivity
  // for 4-bit values and ~38% for 21-bit values; interpolate linearly and
  // clamp. Wider values keep favoring gather because physical compaction
  // must unpack the entire column first.
  const double t = 0.02 + (bit_width - 4) * (0.38 - 0.02) / (21 - 4);
  return std::clamp(t, 0.02, 0.45);
}

SelectionStrategy ChooseSelectionStrategy(double selectivity,
                                          int max_input_bits,
                                          bool special_group_available) {
  if (selectivity <= GatherCrossoverSelectivity(max_input_bits)) {
    return SelectionStrategy::kGather;
  }
  // Above the crossover the paper's §6.2 matrix shows special-group winning
  // almost everywhere compaction would apply, because aggregation absorbs
  // the rejected rows at sequential-scan cost. Compaction remains the safe
  // fallback when no spare group id exists.
  return special_group_available ? SelectionStrategy::kSpecialGroup
                                 : SelectionStrategy::kCompact;
}

AggregationStrategy ChooseAggregationStrategy(int num_groups, int num_sums,
                                              int max_value_bits,
                                              double expected_selectivity,
                                              bool multi_aggregate_fits) {
  const bool in_register_feasible =
      num_groups <= kMaxInRegisterGroups && max_value_bits <= 32;
  // Count-only queries: in-register count is unbeatable for few groups.
  if (num_sums == 0) {
    return in_register_feasible ? AggregationStrategy::kInRegister
                                : AggregationStrategy::kScalar;
  }
  // §6.2: sort-based wins with a combination of low selectivity and a high
  // number of aggregates — the fixed sorting cost amortizes across sums and
  // selection comes free with the sort.
  if (expected_selectivity <= 0.25 && num_sums >= 2 &&
      !(in_register_feasible && max_value_bits <= 8)) {
    return AggregationStrategy::kSortBased;
  }
  // Small widths and few groups: in-register extracts the most SIMD lanes.
  if (in_register_feasible && max_value_bits <= 8 && num_sums <= 2) {
    return AggregationStrategy::kInRegister;
  }
  if (multi_aggregate_fits && num_sums >= 2) {
    return AggregationStrategy::kMultiAggregate;
  }
  if (in_register_feasible && max_value_bits <= 16) {
    return AggregationStrategy::kInRegister;
  }
  if (multi_aggregate_fits) {
    return AggregationStrategy::kMultiAggregate;
  }
  if (in_register_feasible) {
    return AggregationStrategy::kInRegister;
  }
  return AggregationStrategy::kScalar;
}

}  // namespace bipie
