#include "core/group_mapper.h"

#include <cstring>

#include "common/bits.h"
#include "vector/gather_select.h"

namespace bipie {

Status GroupMapper::Bind(const Segment& segment,
                         const std::vector<int>& column_indices) {
  columns_.clear();
  num_groups_ = 1;
  if (column_indices.size() > 2) {
    return Status::NotSupported("group by supports at most two columns");
  }
  uint64_t combined = 1;
  for (int idx : column_indices) {
    const EncodedColumn& col = segment.column(static_cast<size_t>(idx));
    BoundColumn bound;
    bound.column = &col;
    if (col.encoding() == Encoding::kDelta) {
      return Status::NotSupported(
          "delta-encoded group-by columns are not id-addressable");
    }
    if (col.encoding() == Encoding::kByteSliced) {
      // Ids are addressable but not gather-able from a packed bit stream
      // (MaterializeIdsSelected rebases a packed pointer); byteslice earns
      // its keep on filter columns, group-bys stay packed/dict/RLE.
      return Status::NotSupported(
          "byte-sliced group-by columns are not supported");
    }
    if (col.encoding() == Encoding::kRle) {
      // RLE columns are not id-addressable directly; assign ids to the run
      // values in first-appearance order (a per-segment dictionary over
      // runs), producing an id-valued run stream to materialize from.
      IntDictionary run_dict;
      bound.id_runs.reserve(col.runs().size());
      for (const RleRun& run : col.runs()) {
        const uint32_t id =
            run_dict.GetOrInsert(static_cast<int64_t>(run.value));
        if (run_dict.size() > 255) {
          return Status::NotSupported(
              "RLE group-by column has more than 255 distinct run values");
        }
        bound.id_runs.push_back(RleRun{id, run.count});
      }
      bound.rle_values = run_dict.values();
      bound.cardinality = static_cast<uint32_t>(bound.rle_values.size());
      if (bound.cardinality == 0) bound.cardinality = 1;
    } else {
      const uint64_t card = col.id_bound();
      if (card == 0) return Status::Internal("empty id domain");
      bound.cardinality = static_cast<uint32_t>(card);
    }
    combined *= bound.cardinality;
    if (combined > 255) {
      return Status::NotSupported(
          "combined group-by cardinality exceeds 255");
    }
    columns_.push_back(std::move(bound));
  }
  num_groups_ = static_cast<int>(combined);
  // Account the run-dictionary structures (per-segment id runs and their
  // value mapping) against the query's tracker — on RLE-heavy segments
  // these are the mapper's dominant allocation.
  size_t bound_bytes = 0;
  for (const BoundColumn& bound : columns_) {
    bound_bytes += bound.id_runs.capacity() * sizeof(RleRun) +
                   bound.rle_values.capacity() * sizeof(int64_t);
  }
  BIPIE_RETURN_NOT_OK(reservation_.Update(bound_bytes));
  return Status::OK();
}

void GroupMapper::MaterializeIds(const BoundColumn& bound, size_t start,
                                 size_t n, uint8_t* out) const {
  const EncodedColumn& col = *bound.column;
  if (col.encoding() != Encoding::kRle) {
    // Per-column ids are at most 255 (combined cardinality cap), so every
    // id stream unpacks to single bytes.
    col.UnpackIds(start, n, out, 1);
    return;
  }
  // Walk the id-valued runs overlapping [start, start + n).
  size_t pos = 0;
  for (const RleRun& run : bound.id_runs) {
    const size_t run_begin = pos;
    const size_t run_end = pos + run.count;
    pos = run_end;
    if (run_end <= start) continue;
    if (run_begin >= start + n) break;
    const size_t lo = run_begin < start ? start : run_begin;
    const size_t hi = run_end > start + n ? start + n : run_end;
    std::memset(out + (lo - start), static_cast<uint8_t>(run.value),
                hi - lo);
  }
}

void GroupMapper::MaterializeIdsSelected(const BoundColumn& bound,
                                         size_t start,
                                         const uint32_t* indices, size_t n,
                                         uint8_t* out) const {
  const EncodedColumn& col = *bound.column;
  if (col.encoding() != Encoding::kRle) {
    // Rebase the packed stream to the batch window: batch starts are
    // multiples of kBatchRows (4096), so start * width is always a whole
    // number of bytes.
    const uint8_t* packed =
        col.packed_data() + start * static_cast<uint64_t>(col.bit_width()) / 8;
    GatherSelect(packed, col.bit_width(), indices, n, out, 1);
    return;
  }
  // Merge-walk the (ascending) indices against the runs.
  size_t run_idx = 0;
  size_t run_begin = 0;
  size_t run_end = bound.id_runs.empty() ? 0 : bound.id_runs[0].count;
  for (size_t i = 0; i < n; ++i) {
    const size_t row = start + indices[i];
    while (run_idx < bound.id_runs.size() && row >= run_end) {
      run_begin = run_end;
      ++run_idx;
      if (run_idx < bound.id_runs.size()) {
        run_end += bound.id_runs[run_idx].count;
      }
    }
    BIPIE_DCHECK(run_idx < bound.id_runs.size());
    out[i] = static_cast<uint8_t>(bound.id_runs[run_idx].value);
  }
  (void)run_begin;
}

void GroupMapper::MapBatch(size_t start, size_t n, uint8_t* out) const {
  if (columns_.empty()) {
    std::memset(out, 0, n);
    return;
  }
  MaterializeIds(columns_[0], start, n, out);
  if (columns_.size() == 1) return;
  scratch_.Resize(n);
  MaterializeIds(columns_[1], start, n, scratch_.data());
  const uint32_t card1 = columns_[1].cardinality;
  const uint8_t* second = scratch_.data();
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(out[i] * card1 + second[i]);
  }
}

void GroupMapper::MapSelected(size_t start, const uint32_t* indices,
                              size_t n, uint8_t* out) const {
  if (columns_.empty()) {
    std::memset(out, 0, n);
    return;
  }
  MaterializeIdsSelected(columns_[0], start, indices, n, out);
  if (columns_.size() == 1) return;
  scratch_.Resize(n);
  MaterializeIdsSelected(columns_[1], start, indices, n, scratch_.data());
  const uint32_t card1 = columns_[1].cardinality;
  const uint8_t* second = scratch_.data();
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(out[i] * card1 + second[i]);
  }
}

bool GroupMapper::runs_available() const {
  for (const BoundColumn& bound : columns_) {
    if (bound.column->encoding() != Encoding::kRle &&
        bound.cardinality != 1) {
      return false;
    }
  }
  return true;
}

size_t GroupMapper::run_count_bound() const {
  size_t total = 1;
  for (const BoundColumn& bound : columns_) {
    total += bound.column->encoding() == Encoding::kRle
                 ? bound.id_runs.size()
                 : 1;
  }
  return total;
}

void GroupMapper::AppendIdRuns(const BoundColumn& bound, size_t start,
                               size_t n,
                               std::vector<GroupRunSpan>* out) const {
  if (bound.column->encoding() != Encoding::kRle) {
    // Constant column (cardinality 1): every row is id 0.
    BIPIE_DCHECK(bound.cardinality == 1);
    out->push_back({start, n, 0});
    return;
  }
  size_t pos = 0;
  for (const RleRun& run : bound.id_runs) {
    const size_t run_begin = pos;
    const size_t run_end = pos + run.count;
    pos = run_end;
    if (run_end <= start) continue;
    if (run_begin >= start + n) break;
    const size_t lo = run_begin < start ? start : run_begin;
    const size_t hi = run_end > start + n ? start + n : run_end;
    out->push_back({lo, hi - lo, static_cast<uint8_t>(run.value)});
  }
}

void GroupMapper::AppendRunSpans(size_t start, size_t n,
                                 std::vector<GroupRunSpan>* out) const {
  if (n == 0) return;
  const auto emit = [out](size_t lo, size_t len, uint8_t group) {
    if (!out->empty() && out->back().group == group &&
        out->back().start + out->back().len == lo) {
      out->back().len += len;
    } else {
      out->push_back({lo, len, group});
    }
  };
  if (columns_.empty()) {
    emit(start, n, 0);
    return;
  }
  std::vector<GroupRunSpan> first;
  AppendIdRuns(columns_[0], start, n, &first);
  if (columns_.size() == 1) {
    for (const GroupRunSpan& s : first) emit(s.start, s.len, s.group);
    return;
  }
  // Two-pointer intersection of the two run tilings; the combined id uses
  // the MapBatch arithmetic (id0 * card1 + id1).
  std::vector<GroupRunSpan> second;
  AppendIdRuns(columns_[1], start, n, &second);
  const uint32_t card1 = columns_[1].cardinality;
  size_t i = 0, j = 0;
  while (i < first.size() && j < second.size()) {
    const size_t end0 = first[i].start + first[i].len;
    const size_t end1 = second[j].start + second[j].len;
    const size_t lo = std::max(first[i].start, second[j].start);
    const size_t hi = std::min(end0, end1);
    if (hi > lo) {
      emit(lo, hi - lo,
           static_cast<uint8_t>(first[i].group * card1 + second[j].group));
    }
    if (end0 <= hi) ++i;
    if (end1 <= hi) ++j;
  }
}

GroupValue GroupMapper::ValueOf(int group_id, int k) const {
  BIPIE_DCHECK(k >= 0 && k < num_columns());
  // Decompose the combined id.
  uint32_t ids[2] = {0, 0};
  if (columns_.size() == 2) {
    ids[0] = static_cast<uint32_t>(group_id) / columns_[1].cardinality;
    ids[1] = static_cast<uint32_t>(group_id) % columns_[1].cardinality;
  } else {
    ids[0] = static_cast<uint32_t>(group_id);
  }
  const EncodedColumn& col = *columns_[k].column;
  GroupValue value;
  if (col.encoding() == Encoding::kRle) {
    value.int_value = columns_[k].rle_values[ids[k]];
  } else if (col.type() == ColumnType::kString) {
    value.is_string = true;
    value.string_value = col.string_dictionary()->value(ids[k]);
  } else if (col.encoding() == Encoding::kDictionary) {
    value.int_value = col.int_dictionary()->value(ids[k]);
  } else {
    value.int_value = col.base() + static_cast<int64_t>(ids[k]);
  }
  return value;
}

}  // namespace bipie
