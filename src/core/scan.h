// The BIPie columnstore scan (§3, Figure 1).
//
// Orchestrates the single-node scan of one table: per segment it applies
// segment elimination, binds an Aggregate Processor (which fixes the
// aggregation strategy for that segment), then walks 4096-row batches —
// filter evaluation producing a selection byte vector, merge with the
// deleted-row mask, per-batch selection strategy choice, and fused
// decode + selection + grouped aggregation. Per-segment local results are
// merged into global groups by decoded group value (dictionary ids are
// segment-local).
#ifndef BIPIE_CORE_SCAN_H_
#define BIPIE_CORE_SCAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/aggregate_processor.h"
#include "core/query.h"
#include "core/strategy.h"
#include "storage/table.h"

namespace bipie {

namespace internal_scan {
struct SegmentContribution;  // defined in scan.cc
}  // namespace internal_scan

struct ScanOptions {
  StrategyOverrides overrides;
  // Disables min/max segment elimination (benchmarks that must touch every
  // row regardless of the filter).
  bool enable_segment_elimination = true;
  // Worker threads for the scan; segments are the parallelism unit
  // (mirroring the paper's use of all hardware threads). 1 = inline.
  size_t num_threads = 1;
};

struct ScanStats {
  // True when the query fell outside the BIPie envelope (e.g. combined
  // group cardinality above 255) and the scan delegated to the generic
  // hash-aggregation engine instead.
  bool used_hash_fallback = false;
  size_t segments_scanned = 0;
  size_t segments_eliminated = 0;
  size_t batches = 0;
  size_t rows_scanned = 0;
  size_t rows_selected = 0;
  AggregateProcessor::SelectionStats selection;
  // Segments per aggregation strategy, indexed by AggregationStrategy.
  size_t aggregation_segments[5] = {0, 0, 0, 0, 0};
};

class BIPieScan {
 public:
  BIPieScan(const Table& table, QuerySpec query, ScanOptions options = {});

  // Runs the scan to completion.
  Result<QueryResult> Execute();

  const ScanStats& stats() const { return stats_; }

 private:
  Status ScanSegment(size_t segment_index,
                     const std::vector<int>& filter_cols, ScanStats* stats,
                     std::vector<internal_scan::SegmentContribution>* out);

  const Table& table_;
  QuerySpec query_;
  ScanOptions options_;
  ScanStats stats_;
};

// Convenience wrapper: scan `table` with `query` and default options.
Result<QueryResult> ExecuteQuery(const Table& table, QuerySpec query,
                                 ScanOptions options = {});

}  // namespace bipie

#endif  // BIPIE_CORE_SCAN_H_
