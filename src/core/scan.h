// The BIPie columnstore scan (§3, Figure 1).
//
// Orchestrates the single-node scan of one table: per segment it applies
// segment elimination, binds an Aggregate Processor (which fixes the
// aggregation strategy for that segment), then walks 4096-row batches —
// filter evaluation producing a selection byte vector, merge with the
// deleted-row mask, per-batch selection strategy choice, and fused
// decode + selection + grouped aggregation. Per-segment local results are
// merged into global groups by decoded group value (dictionary ids are
// segment-local).
//
// Parallelism is morsel-driven (src/exec): with num_threads == 0 the scan
// splits segments into ~64K-row morsels and runs them on the process-wide
// work-stealing pool, so skewed morsels are rebalanced by stealing and
// concurrent queries share one set of hardware threads.
#ifndef BIPIE_CORE_SCAN_H_
#define BIPIE_CORE_SCAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/aggregate_processor.h"
#include "core/query.h"
#include "core/strategy.h"
#include "exec/admission.h"
#include "exec/query_context.h"
#include "storage/table.h"

namespace bipie {

// Default rows per morsel when the scan runs on the shared pool: 16 batches
// of kBatchRows — small enough that stealing fixes skew (an RLE-heavy or
// mostly-eliminated sibling), large enough that per-morsel bind and queue
// costs stay far below decode cost.
inline constexpr size_t kDefaultMorselRows = size_t{1} << 16;

namespace internal_scan {
struct SegmentContribution;  // defined in scan.cc

// Execution order for the inline (single-threaded) path: indices into
// `sizes` sorted largest first (ties: lower index first). Draining the
// biggest work items first degrades gracefully if the tail is later
// chunked or handed to other executors. Exposed for tests.
std::vector<size_t> LargestFirstOrder(const std::vector<size_t>& sizes);
}  // namespace internal_scan

struct ScanOptions {
  StrategyOverrides overrides;
  // Disables min/max segment elimination (benchmarks that must touch every
  // row regardless of the filter).
  bool enable_segment_elimination = true;
  // Scan parallelism:
  //   0  — shared morsel-driven pool (Scheduler::Global()) at hardware
  //        concurrency; segments split into morsel_rows-row morsels.
  //   1  — inline on the calling thread (whole segments, largest first).
  //   k>1 — legacy per-query model: spawns k fresh threads, whole segments
  //        via an atomic cursor (the paper's "one segment per hardware
  //        thread"; kept as the comparator bench_concurrent_queries beats).
  size_t num_threads = 1;
  // Rows per morsel for the pooled path; 0 = kDefaultMorselRows. Rounded up
  // to a multiple of kBatchRows so batch boundaries (and therefore per-batch
  // strategy decisions) match a whole-segment walk exactly.
  size_t morsel_rows = 0;
  // Optional cancellation/deadline context (non-owning; must outlive the
  // scan). Checked between batches; a cancelled scan returns kCancelled and
  // never a partial result. The context's MemoryTracker is bound for every
  // morsel the scan runs, so its limits govern all scan allocations.
  QueryContext* context = nullptr;
  // Admission gate override (tests, the server); nullptr uses the
  // process-wide AdmissionController::Global(). Execute() holds one
  // admission ticket for its whole duration.
  AdmissionController* admission = nullptr;
  // Priority band for the admission queue when slots are contended.
  QueryPriority priority = QueryPriority::kNormal;
};

struct ScanStats {
  // True when the query fell outside the BIPie envelope (e.g. combined
  // group cardinality above 255) and the scan delegated to the generic
  // hash-aggregation engine instead.
  bool used_hash_fallback = false;
  size_t segments_scanned = 0;
  size_t segments_eliminated = 0;
  size_t batches = 0;
  size_t rows_scanned = 0;
  size_t rows_selected = 0;
  // Run-level execution (kRunBased): (group, row-range) spans aggregated and
  // the rows they covered. Those rows never enter the batch loop, so
  // `batches` stays untouched by run-based morsels.
  size_t runs_aggregated = 0;
  size_t rows_run_aggregated = 0;
  // Time this query spent waiting in the admission queue before its slot
  // was granted (0 when it never queued). Lets callers separate queueing
  // latency from execution latency; excluded from the cross-thread-count
  // determinism pins (it is wall-clock, not work).
  uint64_t admission_wait_ns = 0;
  AggregateProcessor::SelectionStats selection;
  // Segments per aggregation strategy, indexed by AggregationStrategy.
  // Counted once per segment regardless of how many morsels scanned it.
  size_t aggregation_segments[kNumAggregationStrategies] = {0};
};

struct PlanExplain;  // obs/plan_explain.h

class BIPieScan {
 public:
  BIPieScan(const Table& table, QuerySpec query, ScanOptions options = {});

  // Runs the scan to completion.
  Result<QueryResult> Execute();

  // Plans the scan without executing it (DESIGN.md §12): per segment, the
  // elimination outcome, the resolved selection×aggregation strategy, the
  // admission/profitability inputs that drove the choice and the rejected
  // alternatives — plus the query-level hash-fallback decision. Rendered
  // via PlanExplain::ToText()/ToJson(). Defined in src/obs/plan_explain.cc.
  Result<PlanExplain> Explain() const;

  const ScanStats& stats() const { return stats_; }

 private:
  // One unit of scan work: a batch-aligned row range of one segment.
  // work_index orders morsels canonically (segment order, then range order)
  // independent of execution order.
  struct Morsel {
    size_t work_index = 0;
    size_t segment_index = 0;
    size_t start_row = 0;
    size_t num_rows = 0;
    bool counts_segment = false;  // first morsel of its segment
  };

  // Binds the query's memory tracker for the morsel's duration and turns
  // any std::bad_alloc from the body into kResourceExhausted — with a
  // per-morsel status the deterministic error reduction keeps the
  // complete-or-error guarantee under memory pressure.
  Status ScanMorsel(const Morsel& morsel, const std::vector<int>& filter_cols,
                    ScanStats* stats,
                    std::vector<internal_scan::SegmentContribution>* out);
  Status ScanMorselImpl(const Morsel& morsel,
                        const std::vector<int>& filter_cols, ScanStats* stats,
                        std::vector<internal_scan::SegmentContribution>* out);

  Result<QueryResult> ExecuteImpl();

  // Run-level execution (DESIGN.md §11), the kRunBased sibling of the batch
  // loop: evaluates filters as run verdicts, intersects them with the
  // group-run tiling and the morsel window, and aggregates the surviving
  // (group, row-range) spans via AggregateProcessor::ProcessRunSpan.
  Status RunPipeline(const Morsel& morsel, const std::vector<int>& filter_cols,
                     AggregateProcessor* processor, ScanStats* stats);

  // Shared morsel epilogue: selection stats, Finish, contribution decode.
  Status FinishMorsel(AggregateProcessor& processor, ScanStats* stats,
                      std::vector<internal_scan::SegmentContribution>* out);

  const Table& table_;
  QuerySpec query_;
  ScanOptions options_;
  ScanStats stats_;
};

// Convenience wrapper: scan `table` with `query` and default options.
Result<QueryResult> ExecuteQuery(const Table& table, QuerySpec query,
                                 ScanOptions options = {});

// Builds ScanOptions from the typed settings carried on `context`
// (DESIGN.md §13) and binds the context itself: execution knobs map onto
// their option fields, the strategy-force strings onto StrategyOverrides.
// Callers still apply the resource settings to the context with
// QueryContext::ApplySettings(). Settings are pre-validated by
// QuerySettings::Set, so the mapping cannot fail.
ScanOptions MakeScanOptions(QueryContext* context);

}  // namespace bipie

#endif  // BIPIE_CORE_SCAN_H_
