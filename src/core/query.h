// Query specification and results for the BIPie scan.
//
// The workload shape (§2.3):
//
//   SELECT g, count(*), sum(a1), ..., sum(an)
//   FROM t WHERE <filter> GROUP BY g;
//
// with g one or two encoded columns, aggregates over raw columns or
// arithmetic expressions, and an optional conjunctive filter.
#ifndef BIPIE_CORE_QUERY_H_
#define BIPIE_CORE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "expr/arithmetic.h"
#include "expr/predicate.h"

namespace bipie {

struct AggregateSpec {
  enum class Kind {
    kCount,      // count(*)
    kSum,        // sum(column)
    kSumExpr,    // sum(expression over columns)
    kAvg,        // avg(column) — computed as sum/count at output time
    kMin,        // min(column)
    kMax,        // max(column)
  };

  Kind kind = Kind::kCount;
  std::string column;  // for kSum / kAvg / kMin / kMax
  ExprPtr expr;        // for kSumExpr (column indices refer to table schema)

  static AggregateSpec Count() { return {Kind::kCount, {}, nullptr}; }
  static AggregateSpec Sum(std::string col) {
    return {Kind::kSum, std::move(col), nullptr};
  }
  static AggregateSpec SumExpr(ExprPtr e) {
    return {Kind::kSumExpr, {}, std::move(e)};
  }
  static AggregateSpec Avg(std::string col) {
    return {Kind::kAvg, std::move(col), nullptr};
  }
  static AggregateSpec Min(std::string col) {
    return {Kind::kMin, std::move(col), nullptr};
  }
  static AggregateSpec Max(std::string col) {
    return {Kind::kMax, std::move(col), nullptr};
  }
};

struct QuerySpec {
  std::vector<std::string> group_by;          // 0, 1 or 2 columns
  std::vector<AggregateSpec> aggregates;      // at least one
  std::vector<ColumnPredicate> filters;       // ANDed together
};

// One output group value: either an int64 or a dictionary-decoded string.
struct GroupValue {
  bool is_string = false;
  int64_t int_value = 0;
  std::string string_value;

  bool operator==(const GroupValue&) const = default;
  bool operator<(const GroupValue& other) const {
    if (is_string != other.is_string) return !is_string;
    if (is_string) return string_value < other.string_value;
    return int_value < other.int_value;
  }
};

struct ResultRow {
  std::vector<GroupValue> group;
  uint64_t count = 0;            // rows aggregated into this group
  std::vector<int64_t> sums;     // one per aggregate spec (kCount slots
                                 // mirror `count`; kAvg slots hold raw sums)
};

struct QueryResult {
  std::vector<std::string> group_column_names;
  std::vector<ResultRow> rows;   // sorted by group values

  // avg for aggregate slot i of row r (kAvg specs), as a double.
  double Avg(size_t row, size_t agg_index) const {
    const ResultRow& r = rows[row];
    return r.count == 0 ? 0.0
                        : static_cast<double>(r.sums[agg_index]) /
                              static_cast<double>(r.count);
  }
};

}  // namespace bipie

#endif  // BIPIE_CORE_QUERY_H_
