// The Group ID Mapper (§3).
//
// Takes the group-by columns and produces a single vector of small integer
// group ids, replacing the hash-table lookup of a classical aggregation:
// dictionary encoding already provides an injective mapping from column
// values to consecutive small integers — a perfect, collision-free hash.
// Multi-column group-bys combine per-column ids arithmetically
// (id = id0 * card1 + id1), exactly how TPC-H Q1's two string columns fold
// into ids 0..5 (§6.3).
#ifndef BIPIE_CORE_GROUP_MAPPER_H_
#define BIPIE_CORE_GROUP_MAPPER_H_

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/query.h"
#include "storage/segment.h"

namespace bipie {

// One contiguous row range mapping to a single combined group id — the
// run-level dual of the per-row group-id vector (DESIGN.md §11). Rows are
// absolute segment row numbers.
struct GroupRunSpan {
  size_t start = 0;
  size_t len = 0;
  uint8_t group = 0;
};

class GroupMapper {
 public:
  GroupMapper() = default;

  // Binds to one segment's group-by columns (0, 1 or 2 indices). Group
  // columns may be dictionary, bit-packed, or RLE encoded (RLE run values
  // get per-segment dense ids), with a combined cardinality of at most 255
  // (one id must remain free for the special group). With no group
  // columns, all rows map to group 0.
  Status Bind(const Segment& segment, const std::vector<int>& column_indices);

  // Upper bound on distinct groups in this segment, from encoding metadata.
  int num_groups() const { return num_groups_; }

  // Produces byte group ids for rows [start, start + n). `out` needs 32
  // bytes of write slack.
  void MapBatch(size_t start, size_t n, uint8_t* out) const;

  // Produces group ids only for the given (ascending, batch-local) row
  // indices of the window starting at `start` — the gather-selection path.
  void MapSelected(size_t start, const uint32_t* indices, size_t n,
                   uint8_t* out) const;

  // Decodes local group id -> the value of group column `k`.
  GroupValue ValueOf(int group_id, int k) const;

  int num_columns() const { return static_cast<int>(columns_.size()); }

  // --- run-span export (run-level execution, DESIGN.md §11) ---------------

  // True when every bound group column has a run representation: RLE, or
  // constant over the segment (cardinality 1). With no group columns every
  // row is group 0 — trivially one run.
  bool runs_available() const;

  // Upper bound on the spans AppendRunSpans would emit for the whole
  // segment (sum of per-column run counts); drives the profitability half
  // of run-based admission.
  size_t run_count_bound() const;

  // Appends the group-id spans covering rows [start, start + n), ascending
  // and non-overlapping, with adjacent equal-group spans merged. Combined
  // ids follow the MapBatch arithmetic (id0 * card1 + id1). Requires
  // runs_available().
  void AppendRunSpans(size_t start, size_t n,
                      std::vector<GroupRunSpan>* out) const;

 private:
  struct BoundColumn {
    const EncodedColumn* column = nullptr;
    uint32_t cardinality = 0;
    // RLE group columns: run stream with values replaced by dense ids, plus
    // the id -> value mapping (a per-segment dictionary over run values).
    std::vector<RleRun> id_runs;
    std::vector<int64_t> rle_values;
  };

  void MaterializeIds(const BoundColumn& bound, size_t start, size_t n,
                      uint8_t* out) const;
  void MaterializeIdsSelected(const BoundColumn& bound, size_t start,
                              const uint32_t* indices, size_t n,
                              uint8_t* out) const;
  // Appends one column's id runs clipped to [start, start + n); the runs
  // tile the window exactly. GroupRunSpan::group holds the per-column id.
  void AppendIdRuns(const BoundColumn& bound, size_t start, size_t n,
                    std::vector<GroupRunSpan>* out) const;

  std::vector<BoundColumn> columns_;
  int num_groups_ = 1;
  mutable AlignedBuffer scratch_;  // second column ids during combine
  // Charge for the id_runs/rle_values vectors, which AlignedBuffer
  // accounting cannot see. Updated at Bind; Bind fails with
  // kResourceExhausted when the growth breaches the query's limit.
  MemoryReservation reservation_;
};

}  // namespace bipie

#endif  // BIPIE_CORE_GROUP_MAPPER_H_
