#include "core/scan.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <numeric>
#include <new>
#include <thread>

#include "baseline/hash_agg.h"
#include "common/failpoint.h"
#include "common/memory_tracker.h"
#include "exec/scheduler.h"
#include "exec/task_group.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/batch.h"
#include "vector/selection_vector.h"

namespace bipie {

// Composite key for merging per-segment local groups into global results.
// Group values decode to int64s and strings; a vector of GroupValue with
// operator< gives deterministic ordering for the sorted output.
using GroupKey = std::vector<GroupValue>;

namespace internal_scan {
// What one morsel contributes to the global result.
struct SegmentContribution {
  GroupKey key;
  uint64_t count = 0;
  std::vector<int64_t> values;  // one per aggregate spec
};

std::vector<size_t> LargestFirstOrder(const std::vector<size_t>& sizes) {
  std::vector<size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&sizes](size_t a, size_t b) { return sizes[a] > sizes[b]; });
  return order;
}
}  // namespace internal_scan
using internal_scan::SegmentContribution;

namespace {

// Per-worker selection scratch, reused across every morsel a thread
// executes. Morsels never share a scratch (pool workers, legacy threads and
// the inline path each run morsels to completion on one thread), so the
// buffers only grow to the largest batch ever seen and the per-morsel
// allocations disappear from the steady state.
struct MorselScratch {
  AlignedBuffer sel_buf;
  AlignedBuffer sel_tmp;
};

MorselScratch& ThreadMorselScratch() {
  thread_local MorselScratch scratch;
  // The scratch outlives any one query, so its retained charge must be
  // re-homed to the process root when a query's tracker scope exits.
  thread_local const bool registered = [] {
    RegisterThreadScratchBuffer(&scratch.sel_buf);
    RegisterThreadScratchBuffer(&scratch.sel_tmp);
    return true;
  }();
  (void)registered;
  return scratch;
}

// Process-wide scan counters (DESIGN.md §12). Reported in bulk — once per
// Execute, from the already-merged ScanStats — so the per-row and per-batch
// hot loops never touch an atomic.
struct ScanCounters {
  obs::Counter& queries = obs::Counter::Get("scan.queries");
  obs::Counter& hash_fallbacks = obs::Counter::Get("scan.hash_fallbacks");
  obs::Counter& cancelled = obs::Counter::Get("scan.cancelled");
  obs::Counter& errors = obs::Counter::Get("scan.errors");
  obs::Counter& soft_limit_exceeded =
      obs::Counter::Get("scan.soft_limit_exceeded");
  obs::Counter& morsels = obs::Counter::Get("scan.morsels");
  obs::Counter& segments_scanned = obs::Counter::Get("scan.segments_scanned");
  obs::Counter& segments_eliminated =
      obs::Counter::Get("scan.segments_eliminated");
  obs::Counter& batches = obs::Counter::Get("scan.batches");
  obs::Counter& rows_scanned = obs::Counter::Get("scan.rows_scanned");
  obs::Counter& rows_selected = obs::Counter::Get("scan.rows_selected");
  obs::Counter& runs_aggregated = obs::Counter::Get("scan.runs_aggregated");
  obs::Counter& rows_run_aggregated =
      obs::Counter::Get("scan.rows_run_aggregated");
};

ScanCounters& Counters() {
  static ScanCounters counters;
  return counters;
}

// Intersects two ascending, non-overlapping interval lists.
void IntersectIntervals(const std::vector<SelInterval>& a,
                        const std::vector<SelInterval>& b,
                        std::vector<SelInterval>* out) {
  out->clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const size_t end_a = a[i].start + a[i].len;
    const size_t end_b = b[j].start + b[j].len;
    const size_t lo = std::max(a[i].start, b[j].start);
    const size_t hi = std::min(end_a, end_b);
    if (hi > lo) out->push_back({lo, hi - lo});
    if (end_a <= end_b) {
      ++i;
    } else {
      ++j;
    }
  }
}

}  // namespace

BIPieScan::BIPieScan(const Table& table, QuerySpec query, ScanOptions options)
    : table_(table), query_(std::move(query)), options_(std::move(options)) {}

Status BIPieScan::ScanMorsel(const Morsel& morsel,
                             const std::vector<int>& filter_cols,
                             ScanStats* stats,
                             std::vector<SegmentContribution>* out) {
  // Every allocation this morsel makes — scratch growth, processor
  // buffers, mapper structures — is charged against the query's tracker,
  // and a hard-limit breach on a throwing Resize path surfaces here as a
  // structured per-morsel kResourceExhausted. The deterministic error
  // reduction in Execute then fails the whole query: complete or error,
  // never a partial aggregate.
  QueryContext* const ctx = options_.context;
  MemoryTrackerScope memory_scope(ctx != nullptr ? &ctx->memory_tracker()
                                                 : nullptr);
  try {
    return ScanMorselImpl(morsel, filter_cols, stats, out);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "morsel allocation exceeded the memory limit");
  }
}

// Scans one morsel (a batch-aligned row range of one segment) end to end:
// filter evaluation, fused batch processing, result decode. Thread-safe with
// respect to other morsels (only reads the table; all mutable state is local
// or in `stats`, which is private to this morsel).
Status BIPieScan::ScanMorselImpl(const Morsel& morsel,
                                 const std::vector<int>& filter_cols,
                                 ScanStats* stats,
                                 std::vector<SegmentContribution>* out) {
  const Segment& segment = table_.segment(morsel.segment_index);
  QueryContext* ctx = options_.context;
  BIPIE_TRACE_SPAN_ARG("scan.morsel", "scan", "segment",
                       morsel.segment_index);

  AggregateProcessor processor;
  BIPIE_RETURN_NOT_OK(
      processor.Bind(table_, segment, query_, options_.overrides));
  if (morsel.counts_segment) {
    stats->aggregation_segments[static_cast<int>(
        processor.aggregation_strategy())]++;
  }

  MorselScratch& scratch = ThreadMorselScratch();
  AlignedBuffer& sel_buf = scratch.sel_buf;
  AlignedBuffer& sel_tmp = scratch.sel_tmp;
  // The selection scratch is sized up front for the largest batch this
  // morsel will see, so a failed allocation degrades to a structured
  // kResourceExhausted here — before any batch is processed — and the scan
  // as a whole stays complete-or-error, never a partial aggregate.
  const size_t scratch_rows = std::min<size_t>(morsel.num_rows, kBatchRows);
  if (BIPIE_FAILPOINT("scan/morsel_scratch_alloc") ||
      !sel_buf.TryResize(scratch_rows) || !sel_tmp.TryResize(scratch_rows)) {
    return Status::ResourceExhausted("morsel selection scratch allocation");
  }

  if (processor.aggregation_strategy() == AggregationStrategy::kRunBased) {
    BIPIE_RETURN_NOT_OK(RunPipeline(morsel, filter_cols, &processor, stats));
    return FinishMorsel(processor, stats, out);
  }

  BatchCursor cursor(segment, kBatchRows, morsel.start_row, morsel.num_rows);
  BatchView view;
  while (cursor.Next(&view)) {
    // Cancellation point: batch granularity bounds the latency of Cancel()
    // to one 4096-row batch per executing worker.
    if (ctx != nullptr) BIPIE_RETURN_NOT_OK(ctx->CheckNotCancelled());
    ++stats->batches;
    stats->rows_scanned += view.num_rows;
    const uint8_t* sel = nullptr;
    if (!query_.filters.empty()) {
      sel_buf.Resize(view.num_rows);
      sel_tmp.Resize(view.num_rows);
      for (size_t f = 0; f < query_.filters.size(); ++f) {
        uint8_t* dst = f == 0 ? sel_buf.data() : sel_tmp.data();
        BIPIE_RETURN_NOT_OK(query_.filters[f].Evaluate(
            segment.column(filter_cols[f]), view.start, view.num_rows, dst,
            processor.plan_decision().byteslice_admitted));
        if (f > 0) {
          AndSelection(sel_buf.data(), sel_tmp.data(), view.num_rows,
                       sel_buf.data());
        }
      }
      sel = sel_buf.data();
    }
    // Deleted rows are zeroed into the selection byte vector (§4).
    if (view.alive_bytes() != nullptr) {
      if (sel == nullptr) {
        sel_buf.Resize(view.num_rows);
        std::memcpy(sel_buf.data(), view.alive_bytes(), view.num_rows);
        sel = sel_buf.data();
      } else {
        AndSelection(sel_buf.data(), view.alive_bytes(), view.num_rows,
                     sel_buf.data());
      }
    }
    // The merged vector (filter results ANDed with the liveness mask) is the
    // last point before the kernels consume it; every byte must be canonical.
    BIPIE_DCHECK_SEL_CANONICAL(sel, view.num_rows);
    if (sel != nullptr) {
      stats->rows_selected += CountSelected(sel, view.num_rows);
    } else {
      stats->rows_selected += view.num_rows;
    }
    BIPIE_RETURN_NOT_OK(
        processor.ProcessBatch(view.start, view.num_rows, sel));
  }

  return FinishMorsel(processor, stats, out);
}

// Shared morsel epilogue for the batch loop and the run pipeline: merge
// per-batch selection stats, finalize the processor and decode the local
// groups into contributions.
Status BIPieScan::FinishMorsel(AggregateProcessor& processor, ScanStats* stats,
                               std::vector<SegmentContribution>* out) {
  const auto& pstats = processor.selection_stats();
  stats->selection.gather += pstats.gather;
  stats->selection.compact += pstats.compact;
  stats->selection.special_group += pstats.special_group;
  stats->selection.unfiltered += pstats.unfiltered;

  AggregateProcessor::SegmentResult local;
  BIPIE_RETURN_NOT_OK(processor.Finish(&local));

  const size_t num_specs = query_.aggregates.size();
  for (int g = 0; g < local.num_groups; ++g) {
    if (local.counts[g] == 0) continue;  // group absent from this morsel
    SegmentContribution contribution;
    for (int k = 0; k < local.mapper->num_columns(); ++k) {
      contribution.key.push_back(local.mapper->ValueOf(g, k));
    }
    contribution.count = local.counts[g];
    contribution.values.assign(
        local.values.begin() + static_cast<size_t>(g) * num_specs,
        local.values.begin() + (static_cast<size_t>(g) + 1) * num_specs);
    out->push_back(std::move(contribution));
  }
  return Status::OK();
}

// The run-level sibling of the batch loop. Instead of materializing
// per-row selection bytes and group ids, the morsel window is tiled into
// (group, row-range) spans — the intersection of the group-run tiling,
// every filter's run verdicts and the window itself — and each surviving
// span is aggregated in one ProcessRunSpan call. Filters that metadata
// proves always-true drop out entirely; an RLE filter contributes one
// interval list walk, independent of row count.
Status BIPieScan::RunPipeline(const Morsel& morsel,
                              const std::vector<int>& filter_cols,
                              AggregateProcessor* processor,
                              ScanStats* stats) {
  const Segment& segment = table_.segment(morsel.segment_index);
  QueryContext* ctx = options_.context;
  BIPIE_TRACE_SPAN_ARG("scan.run_pipeline", "scan", "segment",
                       morsel.segment_index);
  const size_t start = morsel.start_row;
  const size_t n = morsel.num_rows;
  stats->rows_scanned += n;

  // Selected intervals: the whole window, narrowed by each filter in turn.
  std::vector<SelInterval> selected{{start, n}};
  std::vector<SelInterval> runs;
  std::vector<SelInterval> narrowed;
  for (size_t f = 0; f < query_.filters.size(); ++f) {
    const EncodedColumn& col = segment.column(filter_cols[f]);
    if (query_.filters[f].MatchesAllRows(col)) continue;
    runs.clear();
    BIPIE_RETURN_NOT_OK(
        query_.filters[f].EvaluateRuns(col, start, n, &runs));
    IntersectIntervals(selected, runs, &narrowed);
    selected.swap(narrowed);
    if (selected.empty()) return Status::OK();
  }

  std::vector<GroupRunSpan> spans;
  spans.reserve(processor->group_mapper().run_count_bound());
  processor->group_mapper().AppendRunSpans(start, n, &spans);

  // Two-pointer intersection of the group tiling with the selected
  // intervals; pieces come out in ascending start order, which the
  // processor's RLE cursors rely on.
  size_t pieces = 0;
  size_t i = 0, j = 0;
  while (i < spans.size() && j < selected.size()) {
    const size_t end_span = spans[i].start + spans[i].len;
    const size_t end_sel = selected[j].start + selected[j].len;
    const size_t lo = std::max(spans[i].start, selected[j].start);
    const size_t hi = std::min(end_span, end_sel);
    if (hi > lo) {
      // Cancellation point: span granularity is coarse, so bound the check
      // frequency rather than the per-check work.
      if (ctx != nullptr && (pieces++ & 63) == 0) {
        BIPIE_RETURN_NOT_OK(ctx->CheckNotCancelled());
      }
      BIPIE_RETURN_NOT_OK(
          processor->ProcessRunSpan(spans[i].group, lo, hi - lo));
      ++stats->runs_aggregated;
      stats->rows_run_aggregated += hi - lo;
      stats->rows_selected += hi - lo;
    }
    if (end_span <= end_sel) {
      ++i;
    } else {
      ++j;
    }
  }
  return Status::OK();
}

Result<QueryResult> BIPieScan::Execute() {
  // Belt and braces under memory pressure: morsel bodies convert their own
  // bad_alloc, so anything reaching this frame came from the untracked glue
  // (work lists, contribution merge). The answer is the same structured
  // error either way.
  try {
    Result<QueryResult> result = ExecuteImpl();
    QueryContext* const ctx = options_.context;
    if (ctx != nullptr && ctx->memory_tracker().soft_limit_exceeded()) {
      Counters().soft_limit_exceeded.Increment();
    }
    return result;
  } catch (const std::bad_alloc&) {
    Counters().errors.Increment();
    return Status::ResourceExhausted("scan ran out of memory");
  }
}

Result<QueryResult> BIPieScan::ExecuteImpl() {
  stats_ = ScanStats{};
  BIPIE_TRACE_SPAN("scan.execute", "scan");
  Counters().queries.Increment();
  QueryContext* ctx = options_.context;
  if (ctx != nullptr) BIPIE_RETURN_NOT_OK(ctx->CheckNotCancelled());

  // Admission: the scan does no work — and allocates nothing — until the
  // gate grants a slot; the ticket spans the whole execution.
  AdmissionController& admission = options_.admission != nullptr
                                       ? *options_.admission
                                       : AdmissionController::Global();
  AdmissionController::Ticket admission_ticket;
  BIPIE_RETURN_NOT_OK(admission.Admit(ctx, &admission_ticket,
                                      options_.priority,
                                      &stats_.admission_wait_ns));

  // Resolve filter column indices once.
  std::vector<int> filter_cols;
  for (const ColumnPredicate& pred : query_.filters) {
    const int idx = table_.FindColumn(pred.column_name());
    if (idx < 0) {
      return Status::InvalidArgument("unknown filter column: " +
                                     pred.column_name());
    }
    filter_cols.push_back(idx);
  }

  // Segment elimination pass builds the scan work list.
  std::vector<size_t> work;
  for (size_t s = 0; s < table_.num_segments(); ++s) {
    const Segment& segment = table_.segment(s);
    if (segment.num_rows() == 0) continue;
    if (options_.enable_segment_elimination) {
      bool eliminated = false;
      for (size_t f = 0; f < query_.filters.size(); ++f) {
        if (query_.filters[f].EliminatesSegment(
                segment.column(filter_cols[f]))) {
          eliminated = true;
          break;
        }
      }
      if (eliminated) {
        ++stats_.segments_eliminated;
        continue;
      }
    }
    work.push_back(s);
  }
  stats_.segments_scanned = work.size();

  // The work list becomes morsels. Pooled scans chunk large segments into
  // batch-aligned ~64K-row ranges so work stealing rebalances skew; the
  // inline and legacy-spawn paths keep whole segments. Morsel order (the
  // work_index) is canonical — segment order then range order — and every
  // reduction below is ordered by it, never by completion order.
  // A pooled scan only pays off when the pool adds parallelism beyond the
  // calling thread (which already helps drain its own task group). On a
  // single-hardware-thread host with a 1-worker pool the pooled path would
  // only buy thread ping-pong, so run inline instead; BIPIE_SCHEDULER_THREADS
  // (tests, CI) widens the pool and keeps the morsel path exercised anywhere.
  const bool pooled =
      options_.num_threads == 0 &&
      (Scheduler::Global().num_workers() > 1 ||
       std::thread::hardware_concurrency() > 1);
  size_t morsel_rows =
      options_.morsel_rows == 0 ? kDefaultMorselRows : options_.morsel_rows;
  morsel_rows = (morsel_rows + kBatchRows - 1) / kBatchRows * kBatchRows;
  std::vector<Morsel> morsels;
  for (const size_t s : work) {
    const size_t rows = table_.segment(s).num_rows();
    if (pooled) {
      for (size_t start = 0; start < rows; start += morsel_rows) {
        morsels.push_back({morsels.size(), s, start,
                           std::min(morsel_rows, rows - start), start == 0});
      }
    } else {
      morsels.push_back({morsels.size(), s, 0, rows, true});
    }
  }

  std::vector<std::vector<SegmentContribution>> contributions(morsels.size());
  // Per-morsel status so error selection cannot depend on scheduling: the
  // failure reported to the caller is always the lowest-indexed real error,
  // falling back to the lowest-indexed kNotSupported rejection. A real error
  // (e.g. kOverflowRisk) must never be masked by another morsel's
  // kNotSupported, which would silently flip the hash-fallback decision with
  // execution ordering.
  std::vector<Status> morsel_status(morsels.size());
  std::vector<ScanStats> morsel_stats(morsels.size());

  if (pooled) {
    // Morsels above the lowest real-error index recorded so far may be
    // skipped: they can never win the deterministic error selection (real
    // errors outrank kNotSupported, lower index outranks higher), and their
    // contributions would be discarded with the failure anyway. Morsels at
    // or below it always run, so the true minimum is always found and, when
    // no real error exists at all, nothing is skipped and the kNotSupported
    // reduction sees every morsel.
    std::atomic<size_t> first_real_error{SIZE_MAX};
    TaskGroup group(&Scheduler::Global(), ctx);
    for (const Morsel& morsel : morsels) {
      group.Submit([this, morsel, &filter_cols, &morsel_status, &morsel_stats,
                    &contributions, &first_real_error] {
        if (morsel.work_index >
            first_real_error.load(std::memory_order_acquire)) {
          return;
        }
        Status st =
            ScanMorsel(morsel, filter_cols, &morsel_stats[morsel.work_index],
                       &contributions[morsel.work_index]);
        if (!st.ok() && st.code() != StatusCode::kNotSupported) {
          size_t cur = first_real_error.load(std::memory_order_relaxed);
          while (morsel.work_index < cur &&
                 !first_real_error.compare_exchange_weak(
                     cur, morsel.work_index, std::memory_order_acq_rel)) {
          }
        }
        morsel_status[morsel.work_index] = std::move(st);
      });
    }
    group.Wait();
  } else {
    const size_t threads = std::max<size_t>(
        1, std::min<size_t>(options_.num_threads, morsels.size()));
    if (threads <= 1) {
      // Inline path: drain the largest work items first so a pathological
      // segment (RLE-heavy, or the only survivor of elimination) is started
      // as early as possible — the order any future chunking or handoff of
      // the tail would want. Result and error selection stay canonical: the
      // reductions below run over work_index, not execution order.
      std::vector<size_t> sizes(morsels.size());
      for (size_t m = 0; m < morsels.size(); ++m) {
        sizes[m] = morsels[m].num_rows;
      }
      for (const size_t m : internal_scan::LargestFirstOrder(sizes)) {
        morsel_status[m] = ScanMorsel(morsels[m], filter_cols,
                                      &morsel_stats[m], &contributions[m]);
        // Keep scanning past kNotSupported (a later work item may surface a
        // real error that must take precedence); stop on real errors.
        if (!morsel_status[m].ok() &&
            morsel_status[m].code() != StatusCode::kNotSupported) {
          break;
        }
      }
    } else {
      // Legacy per-query model: fresh threads, whole segments claimed off a
      // shared atomic cursor (the paper's scan parallelism unit). Kept as
      // the explicit comparator the shared pool is benchmarked against.
      std::atomic<size_t> next{0};
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
          for (;;) {
            const size_t m = next.fetch_add(1);
            if (m >= morsels.size()) return;
            morsel_status[m] = ScanMorsel(morsels[m], filter_cols,
                                          &morsel_stats[m], &contributions[m]);
            if (!morsel_status[m].ok() &&
                morsel_status[m].code() != StatusCode::kNotSupported) {
              return;
            }
          }
        });
      }
      for (std::thread& t : pool) t.join();
    }
  }

  // Merge per-morsel progress stats in canonical order.
  for (const ScanStats& ms : morsel_stats) {
    stats_.batches += ms.batches;
    stats_.rows_scanned += ms.rows_scanned;
    stats_.rows_selected += ms.rows_selected;
    stats_.runs_aggregated += ms.runs_aggregated;
    stats_.rows_run_aggregated += ms.rows_run_aggregated;
    stats_.selection.gather += ms.selection.gather;
    stats_.selection.compact += ms.selection.compact;
    stats_.selection.special_group += ms.selection.special_group;
    stats_.selection.unfiltered += ms.selection.unfiltered;
    for (int a = 0; a < kNumAggregationStrategies; ++a) {
      stats_.aggregation_segments[a] += ms.aggregation_segments[a];
    }
  }

  // Bulk counter report: the work this scan actually performed, whatever
  // the outcome below (a fallback or error still burned these cycles).
  {
    ScanCounters& c = Counters();
    c.morsels.Add(morsels.size());
    c.segments_scanned.Add(stats_.segments_scanned);
    c.segments_eliminated.Add(stats_.segments_eliminated);
    c.batches.Add(stats_.batches);
    c.rows_scanned.Add(stats_.rows_scanned);
    c.rows_selected.Add(stats_.rows_selected);
    c.runs_aggregated.Add(stats_.runs_aggregated);
    c.rows_run_aggregated.Add(stats_.rows_run_aggregated);
  }

  // A cancelled query never returns a (possibly partial) result, whatever
  // mix of statuses the morsels recorded before the flag landed.
  if (ctx != nullptr && ctx->is_cancelled()) {
    Counters().cancelled.Increment();
    return Status::Cancelled("query cancelled");
  }

  // Deterministic failure choice: lowest-indexed non-kNotSupported error
  // first, then lowest-indexed kNotSupported rejection.
  Status failure;
  for (const Status& st : morsel_status) {
    if (st.ok()) continue;
    if (failure.ok() || (failure.code() == StatusCode::kNotSupported &&
                         st.code() != StatusCode::kNotSupported)) {
      failure = st;
    }
    if (failure.code() != StatusCode::kNotSupported) break;
  }

  if (!failure.ok()) {
    // Outside the specialized envelope (e.g. >255 combined groups): degrade
    // gracefully to the generic engine — unless the caller explicitly
    // forced strategies, in which case the rejection is the answer.
    if (failure.code() == StatusCode::kNotSupported &&
        !options_.overrides.selection.has_value() &&
        !options_.overrides.aggregation.has_value() &&
        !options_.overrides.byteslice.has_value()) {
      // The progress counters describe the aborted specialized scan, not the
      // query that is about to run; reset them so callers never see a mix of
      // the two runs. The segment plan (scanned/eliminated) still stands.
      stats_.batches = 0;
      stats_.rows_scanned = 0;
      stats_.rows_selected = 0;
      stats_.runs_aggregated = 0;
      stats_.rows_run_aggregated = 0;
      stats_.selection = AggregateProcessor::SelectionStats{};
      for (size_t a = 0; a < kNumAggregationStrategies; ++a) {
        stats_.aggregation_segments[a] = 0;
      }
      stats_.used_hash_fallback = true;
      Counters().hash_fallbacks.Increment();
      return ExecuteQueryHashAgg(table_, query_, ctx);
    }
    Counters().errors.Increment();
    return failure;
  }

  // Merge contributions (deterministic: morsel order, then group order).
  const size_t num_specs = query_.aggregates.size();
  std::map<GroupKey, ResultRow> merged;
  for (const auto& morsel_contributions : contributions) {
    for (const SegmentContribution& c : morsel_contributions) {
      // try_emplace makes first-contribution detection structural: testing
      // row.sums.empty() breaks down for count-only queries (num_specs == 0
      // keeps sums empty forever, so MIN/MAX seeding and group assignment
      // would re-trigger on every contribution).
      auto [it, first_contribution] = merged.try_emplace(c.key);
      ResultRow& row = it->second;
      if (first_contribution) {
        row.group = c.key;
        row.sums.assign(num_specs, 0);
      }
      row.count += c.count;
      for (size_t a = 0; a < num_specs; ++a) {
        switch (query_.aggregates[a].kind) {
          case AggregateSpec::Kind::kMin:
            row.sums[a] = first_contribution
                              ? c.values[a]
                              : std::min(row.sums[a], c.values[a]);
            break;
          case AggregateSpec::Kind::kMax:
            row.sums[a] = first_contribution
                              ? c.values[a]
                              : std::max(row.sums[a], c.values[a]);
            break;
          default:
            row.sums[a] += c.values[a];
            break;
        }
      }
    }
  }

  QueryResult result;
  result.group_column_names = query_.group_by;
  result.rows.reserve(merged.size());
  for (auto& [key, row] : merged) {
    // kCount spec slots must reflect the merged count.
    for (size_t a = 0; a < query_.aggregates.size(); ++a) {
      if (query_.aggregates[a].kind == AggregateSpec::Kind::kCount) {
        row.sums[a] = static_cast<int64_t>(row.count);
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

Result<QueryResult> ExecuteQuery(const Table& table, QuerySpec query,
                                 ScanOptions options) {
  BIPieScan scan(table, std::move(query), std::move(options));
  return scan.Execute();
}

ScanOptions MakeScanOptions(QueryContext* context) {
  ScanOptions options;
  options.context = context;
  if (context == nullptr) return options;
  const QuerySettings& settings = context->settings();
  options.num_threads = static_cast<size_t>(settings.num_threads());
  options.morsel_rows = static_cast<size_t>(settings.morsel_rows());
  options.enable_segment_elimination = settings.enable_segment_elimination();
  // The strategy-force strings are validated against the registry's
  // allowed list, which is generated from these same display names — a
  // non-empty value always resolves.
  const std::string& sel = settings.force_selection_strategy();
  if (!sel.empty()) {
    for (int s = 0; s < 3; ++s) {
      const auto strategy = static_cast<SelectionStrategy>(s);
      if (sel == SelectionStrategyName(strategy)) {
        options.overrides.selection = strategy;
        break;
      }
    }
    BIPIE_DCHECK(options.overrides.selection.has_value());
  }
  // Empty means "unset" (the registry always allows it): keep the default.
  const std::string& priority = settings.priority();
  if (!priority.empty()) {
    const bool parsed = ParseQueryPriority(priority, &options.priority);
    BIPIE_DCHECK(parsed);
  }
  const std::string& agg = settings.force_aggregation_strategy();
  if (!agg.empty()) {
    for (size_t a = 0; a < kNumAggregationStrategies; ++a) {
      const auto strategy = static_cast<AggregationStrategy>(a);
      if (agg == AggregationStrategyName(strategy)) {
        options.overrides.aggregation = strategy;
        break;
      }
    }
    BIPIE_DCHECK(options.overrides.aggregation.has_value());
  }
  const std::string& byteslice = settings.force_byteslice();
  if (!byteslice.empty()) {
    options.overrides.byteslice = byteslice == "on";
  }
  const std::string& cost_model = settings.cost_model();
  if (!cost_model.empty()) {
    const auto mode = ParseCostModelMode(cost_model);
    BIPIE_DCHECK(mode.has_value());
    if (mode.has_value()) options.overrides.cost_model = *mode;
  }
  return options;
}

}  // namespace bipie
