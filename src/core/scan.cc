#include "core/scan.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <thread>

#include "baseline/hash_agg.h"
#include "storage/batch.h"
#include "vector/selection_vector.h"

namespace bipie {

// Composite key for merging per-segment local groups into global results.
// Group values decode to int64s and strings; a vector of GroupValue with
// operator< gives deterministic ordering for the sorted output.
using GroupKey = std::vector<GroupValue>;

namespace internal_scan {
// What one segment contributes to the global result.
struct SegmentContribution {
  GroupKey key;
  uint64_t count = 0;
  std::vector<int64_t> values;  // one per aggregate spec
};
}  // namespace internal_scan
using internal_scan::SegmentContribution;

BIPieScan::BIPieScan(const Table& table, QuerySpec query, ScanOptions options)
    : table_(table), query_(std::move(query)), options_(std::move(options)) {}

// Scans one segment end to end: filter evaluation, fused batch processing,
// result decode. Thread-safe with respect to other segments (only reads the
// table; all mutable state is local or in `stats`).
Status BIPieScan::ScanSegment(size_t segment_index,
                              const std::vector<int>& filter_cols,
                              ScanStats* stats,
                              std::vector<SegmentContribution>* out) {
  const Segment& segment = table_.segment(segment_index);

  AggregateProcessor processor;
  BIPIE_RETURN_NOT_OK(
      processor.Bind(table_, segment, query_, options_.overrides));
  stats->aggregation_segments[static_cast<int>(
      processor.aggregation_strategy())]++;

  AlignedBuffer sel_buf;
  AlignedBuffer sel_tmp;
  BatchCursor cursor(segment);
  BatchView view;
  while (cursor.Next(&view)) {
    ++stats->batches;
    stats->rows_scanned += view.num_rows;
    const uint8_t* sel = nullptr;
    if (!query_.filters.empty()) {
      sel_buf.Resize(view.num_rows);
      sel_tmp.Resize(view.num_rows);
      for (size_t f = 0; f < query_.filters.size(); ++f) {
        uint8_t* dst = f == 0 ? sel_buf.data() : sel_tmp.data();
        BIPIE_RETURN_NOT_OK(query_.filters[f].Evaluate(
            segment.column(filter_cols[f]), view.start, view.num_rows, dst));
        if (f > 0) {
          AndSelection(sel_buf.data(), sel_tmp.data(), view.num_rows,
                       sel_buf.data());
        }
      }
      sel = sel_buf.data();
    }
    // Deleted rows are zeroed into the selection byte vector (§4).
    if (view.alive_bytes() != nullptr) {
      if (sel == nullptr) {
        sel_buf.Resize(view.num_rows);
        std::memcpy(sel_buf.data(), view.alive_bytes(), view.num_rows);
        sel = sel_buf.data();
      } else {
        AndSelection(sel_buf.data(), view.alive_bytes(), view.num_rows,
                     sel_buf.data());
      }
    }
    // The merged vector (filter results ANDed with the liveness mask) is the
    // last point before the kernels consume it; every byte must be canonical.
    BIPIE_DCHECK_SEL_CANONICAL(sel, view.num_rows);
    if (sel != nullptr) {
      stats->rows_selected += CountSelected(sel, view.num_rows);
    } else {
      stats->rows_selected += view.num_rows;
    }
    BIPIE_RETURN_NOT_OK(
        processor.ProcessBatch(view.start, view.num_rows, sel));
  }

  const auto& pstats = processor.selection_stats();
  stats->selection.gather += pstats.gather;
  stats->selection.compact += pstats.compact;
  stats->selection.special_group += pstats.special_group;
  stats->selection.unfiltered += pstats.unfiltered;

  AggregateProcessor::SegmentResult local;
  BIPIE_RETURN_NOT_OK(processor.Finish(&local));

  const size_t num_specs = query_.aggregates.size();
  for (int g = 0; g < local.num_groups; ++g) {
    if (local.counts[g] == 0) continue;  // group absent from this segment
    SegmentContribution contribution;
    for (int k = 0; k < local.mapper->num_columns(); ++k) {
      contribution.key.push_back(local.mapper->ValueOf(g, k));
    }
    contribution.count = local.counts[g];
    contribution.values.assign(
        local.values.begin() + static_cast<size_t>(g) * num_specs,
        local.values.begin() + (static_cast<size_t>(g) + 1) * num_specs);
    out->push_back(std::move(contribution));
  }
  return Status::OK();
}

Result<QueryResult> BIPieScan::Execute() {
  stats_ = ScanStats{};

  // Resolve filter column indices once.
  std::vector<int> filter_cols;
  for (const ColumnPredicate& pred : query_.filters) {
    const int idx = table_.FindColumn(pred.column_name());
    if (idx < 0) {
      return Status::InvalidArgument("unknown filter column: " +
                                     pred.column_name());
    }
    filter_cols.push_back(idx);
  }

  // Segment elimination pass builds the scan work list.
  std::vector<size_t> work;
  for (size_t s = 0; s < table_.num_segments(); ++s) {
    const Segment& segment = table_.segment(s);
    if (segment.num_rows() == 0) continue;
    if (options_.enable_segment_elimination) {
      bool eliminated = false;
      for (size_t f = 0; f < query_.filters.size(); ++f) {
        if (query_.filters[f].EliminatesSegment(
                segment.column(filter_cols[f]))) {
          eliminated = true;
          break;
        }
      }
      if (eliminated) {
        ++stats_.segments_eliminated;
        continue;
      }
    }
    work.push_back(s);
  }
  stats_.segments_scanned = work.size();

  const size_t threads =
      std::max<size_t>(1, std::min<size_t>(options_.num_threads, work.size()));
  std::vector<std::vector<SegmentContribution>> contributions(work.size());
  // Per-work-item status so error selection cannot depend on thread
  // scheduling: the failure reported to the caller is always the
  // lowest-indexed real error, falling back to the lowest-indexed
  // kNotSupported rejection. A real error (e.g. kOverflowRisk) must never be
  // masked by another segment's kNotSupported, which would silently flip the
  // hash-fallback decision with thread ordering.
  std::vector<Status> work_status(work.size());

  if (threads <= 1) {
    for (size_t w = 0; w < work.size(); ++w) {
      work_status[w] =
          ScanSegment(work[w], filter_cols, &stats_, &contributions[w]);
      // Keep scanning past kNotSupported (a later segment may surface a real
      // error that must take precedence); stop on real errors.
      if (!work_status[w].ok() &&
          work_status[w].code() != StatusCode::kNotSupported) {
        break;
      }
    }
  } else {
    // Segments are independent; a shared atomic cursor load-balances them
    // across worker threads (the paper's scan parallelism unit).
    std::atomic<size_t> next{0};
    std::vector<ScanStats> thread_stats(threads);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (;;) {
          const size_t w = next.fetch_add(1);
          if (w >= work.size()) return;
          work_status[w] = ScanSegment(work[w], filter_cols,
                                       &thread_stats[t], &contributions[w]);
          if (!work_status[w].ok() &&
              work_status[w].code() != StatusCode::kNotSupported) {
            return;
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (size_t t = 0; t < threads; ++t) {
      stats_.batches += thread_stats[t].batches;
      stats_.rows_scanned += thread_stats[t].rows_scanned;
      stats_.rows_selected += thread_stats[t].rows_selected;
      stats_.selection.gather += thread_stats[t].selection.gather;
      stats_.selection.compact += thread_stats[t].selection.compact;
      stats_.selection.special_group +=
          thread_stats[t].selection.special_group;
      stats_.selection.unfiltered += thread_stats[t].selection.unfiltered;
      for (int a = 0; a < 5; ++a) {
        stats_.aggregation_segments[a] +=
            thread_stats[t].aggregation_segments[a];
      }
    }
  }

  // Deterministic failure choice: lowest-indexed non-kNotSupported error
  // first, then lowest-indexed kNotSupported rejection.
  Status failure;
  for (const Status& st : work_status) {
    if (st.ok()) continue;
    if (failure.ok() || (failure.code() == StatusCode::kNotSupported &&
                         st.code() != StatusCode::kNotSupported)) {
      failure = st;
    }
    if (failure.code() != StatusCode::kNotSupported) break;
  }

  if (!failure.ok()) {
    // Outside the specialized envelope (e.g. >255 combined groups): degrade
    // gracefully to the generic engine — unless the caller explicitly
    // forced strategies, in which case the rejection is the answer.
    if (failure.code() == StatusCode::kNotSupported &&
        !options_.overrides.selection.has_value() &&
        !options_.overrides.aggregation.has_value()) {
      // The progress counters describe the aborted specialized scan, not the
      // query that is about to run; reset them so callers never see a mix of
      // the two runs. The segment plan (scanned/eliminated) still stands.
      stats_.batches = 0;
      stats_.rows_scanned = 0;
      stats_.rows_selected = 0;
      stats_.selection = AggregateProcessor::SelectionStats{};
      for (size_t a = 0; a < 5; ++a) stats_.aggregation_segments[a] = 0;
      stats_.used_hash_fallback = true;
      return ExecuteQueryHashAgg(table_, query_);
    }
    return failure;
  }

  // Merge contributions (deterministic: segment order, then group order).
  const size_t num_specs = query_.aggregates.size();
  std::map<GroupKey, ResultRow> merged;
  for (const auto& segment_contributions : contributions) {
    for (const SegmentContribution& c : segment_contributions) {
      // try_emplace makes first-contribution detection structural: testing
      // row.sums.empty() breaks down for count-only queries (num_specs == 0
      // keeps sums empty forever, so MIN/MAX seeding and group assignment
      // would re-trigger on every contribution).
      auto [it, first_contribution] = merged.try_emplace(c.key);
      ResultRow& row = it->second;
      if (first_contribution) {
        row.group = c.key;
        row.sums.assign(num_specs, 0);
      }
      row.count += c.count;
      for (size_t a = 0; a < num_specs; ++a) {
        switch (query_.aggregates[a].kind) {
          case AggregateSpec::Kind::kMin:
            row.sums[a] = first_contribution
                              ? c.values[a]
                              : std::min(row.sums[a], c.values[a]);
            break;
          case AggregateSpec::Kind::kMax:
            row.sums[a] = first_contribution
                              ? c.values[a]
                              : std::max(row.sums[a], c.values[a]);
            break;
          default:
            row.sums[a] += c.values[a];
            break;
        }
      }
    }
  }

  QueryResult result;
  result.group_column_names = query_.group_by;
  result.rows.reserve(merged.size());
  for (auto& [key, row] : merged) {
    // kCount spec slots must reflect the merged count.
    for (size_t a = 0; a < query_.aggregates.size(); ++a) {
      if (query_.aggregates[a].kind == AggregateSpec::Kind::kCount) {
        row.sums[a] = static_cast<int64_t>(row.count);
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

Result<QueryResult> ExecuteQuery(const Table& table, QuerySpec query,
                                 ScanOptions options) {
  BIPieScan scan(table, std::move(query), std::move(options));
  return scan.Execute();
}

}  // namespace bipie
