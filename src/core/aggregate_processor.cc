#include "core/aggregate_processor.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/bits.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "encoding/bitpack.h"
#include "encoding/byteslice.h"
#include "vector/agg_inregister.h"
#include "vector/agg_minmax.h"
#include "vector/agg_scalar.h"
#include "vector/compact.h"
#include "vector/gather_select.h"
#include "vector/run_agg.h"
#include "vector/selection_vector.h"
#include "vector/special_group.h"

namespace bipie {

namespace {

// Maximum effective group count (including the special group) per strategy.
int GroupCapacity(AggregationStrategy s) {
  switch (s) {
    case AggregationStrategy::kInRegister:
      return kMaxInRegisterGroups;
    default:
      return 256;
  }
}

// Rebases a packed stream to a batch window. Batch starts are multiples of
// kBatchRows = 4096, so start * bit_width is always a whole byte count.
const uint8_t* RebasedPacked(const EncodedColumn& col, size_t start) {
  BIPIE_DCHECK(start * static_cast<uint64_t>(col.bit_width()) % 8 == 0);
  return col.packed_data() +
         start * static_cast<uint64_t>(col.bit_width()) / 8;
}

}  // namespace

Status AggregateProcessor::Bind(const Table& table, const Segment& segment,
                                const QuerySpec& query,
                                const StrategyOverrides& overrides) {
  table_ = &table;
  segment_ = &segment;
  query_ = &query;
  overrides_ = overrides;
  selection_stats_ = SelectionStats{};
  multi_agg_ready_ = false;

  // --- group columns -------------------------------------------------------
  std::vector<int> group_cols;
  for (const std::string& name : query.group_by) {
    const int idx = table.FindColumn(name);
    if (idx < 0) {
      return Status::InvalidArgument("unknown group column: " + name);
    }
    group_cols.push_back(idx);
  }
  BIPIE_RETURN_NOT_OK(mapper_.Bind(segment, group_cols));
  const int num_groups = mapper_.num_groups();

  // --- aggregate inputs ----------------------------------------------------
  inputs_.clear();
  spec_to_input_.clear();
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query needs at least one aggregate");
  }
  // Aggregates over the same column with the same operation share one
  // input slot (e.g. Q1's sum(l_quantity) and avg(l_quantity)); this is
  // what lets all of Q1's sums fit a single multi-aggregate register.
  // Key: column * 4 + op.
  std::vector<int> column_op_to_input(table.num_columns() * 4, -1);
  for (const AggregateSpec& spec : query.aggregates) {
    if (spec.kind == AggregateSpec::Kind::kCount) {
      spec_to_input_.push_back(-1);
      continue;
    }
    AggInput input;
    switch (spec.kind) {
      case AggregateSpec::Kind::kMin:
        input.op = AggInput::Op::kMin;
        break;
      case AggregateSpec::Kind::kMax:
        input.op = AggInput::Op::kMax;
        break;
      default:
        input.op = AggInput::Op::kSum;
        break;
    }
    if (spec.kind == AggregateSpec::Kind::kSumExpr) {
      input.is_expr = true;
      input.expr = spec.expr;
      if (input.expr == nullptr) {
        return Status::InvalidArgument("sum-expression aggregate missing expr");
      }
    } else {
      const int idx = table.FindColumn(spec.column);
      const int dedup_key =
          idx < 0 ? -1 : idx * 4 + static_cast<int>(input.op);
      if (dedup_key >= 0 && column_op_to_input[dedup_key] >= 0) {
        spec_to_input_.push_back(column_op_to_input[dedup_key]);
        continue;
      }
      if (dedup_key >= 0) {
        column_op_to_input[dedup_key] = static_cast<int>(inputs_.size());
      }
      if (idx < 0) {
        return Status::InvalidArgument("unknown aggregate column: " +
                                       spec.column);
      }
      const EncodedColumn& col = segment.column(static_cast<size_t>(idx));
      if (col.type() != ColumnType::kInt64) {
        return Status::NotSupported("aggregates require integer columns");
      }
      if (col.encoding() == Encoding::kBitPacked) {
        input.column = &col;
        input.bit_width = col.bit_width();
        input.base = col.base();
        input.max_offset = col.id_bound() - 1;
        input.compensate = true;
      } else {
        // Dictionary / RLE aggregate inputs go through the expression path
        // (logical decode), matching the §2.2 assumption that raw SUM
        // columns are plain bit-packed. RLE inputs additionally keep their
        // run stream so kRunBased can skip the decode entirely.
        input.is_expr = true;
        input.expr = Expr::Column(idx);
        if (col.encoding() == Encoding::kRle) input.run_column = &col;
      }
    }
    spec_to_input_.push_back(static_cast<int>(inputs_.size()));
    inputs_.push_back(std::move(input));
  }

  // --- overflow proof from metadata (§2.1) ---------------------------------
  const __int128 rows = static_cast<__int128>(segment.num_rows());
  const __int128 int64_max = std::numeric_limits<int64_t>::max();
  bool overflow_risk = false;
  std::vector<ValueBounds> column_bounds(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const ColumnMeta& m = segment.column(c).meta();
    column_bounds[c] = {m.min, m.max};
  }
  for (AggInput& input : inputs_) {
    if (input.op != AggInput::Op::kSum) continue;  // extrema cannot overflow
    __int128 max_abs;
    if (input.is_expr) {
      Result<ValueBounds> bounds = input.expr->EvalBounds(column_bounds);
      if (!bounds.ok()) {
        overflow_risk = true;
        continue;
      }
      max_abs = std::max<__int128>(-static_cast<__int128>(bounds.value().min),
                                   bounds.value().max);
    } else {
      max_abs = static_cast<__int128>(input.max_offset) +
                (input.base < 0 ? -static_cast<__int128>(input.base)
                                : static_cast<__int128>(input.base));
    }
    if (max_abs * rows > int64_max) overflow_risk = true;
  }

  // --- strategy resolution --------------------------------------------------
  // MIN/MAX inputs run through their own kernels per batch; only SUM inputs
  // participate in the strategy choice and register-fit accounting.
  sum_inputs_.clear();
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i].op == AggInput::Op::kSum) {
      sum_inputs_.push_back(static_cast<int>(i));
    }
  }
  const int num_sums = static_cast<int>(sum_inputs_.size());
  int max_value_bits = 1;
  bool any_expr = false;
  for (int i : sum_inputs_) {
    const AggInput& input = inputs_[i];
    if (input.is_expr) {
      any_expr = true;
    } else {
      max_value_bits = std::max(max_value_bits, input.bit_width);
    }
  }
  if (any_expr) max_value_bits = 64;

  // Multi-aggregate register fit: narrow raw inputs (<= 16 bits) take half
  // a 64-bit lane, everything else a full lane.
  int n64 = 0, n32 = 0;
  for (int i : sum_inputs_) {
    const AggInput& input = inputs_[i];
    if (!input.is_expr && input.bit_width <= 16) {
      ++n32;
    } else {
      ++n64;
    }
  }
  const bool multi_fits =
      num_sums >= 1 && (n64 + (n32 + 1) / 2) <= 4 && num_groups + 1 <= 256;

  // Deleted rows reach the processor through the selection byte vector
  // exactly like filter rejections, so they count as filtering too.
  const bool filtered = !query.filters.empty() || segment.has_deleted_rows();
  const double expected_selectivity = query.filters.empty() ? 1.0 : 0.5;
  // A spare group id is only reserved when special-group selection can
  // actually be used (not when the caller pinned selection to gather or
  // compaction).
  const bool may_use_special =
      filtered && (!overrides.selection.has_value() ||
                   *overrides.selection == SelectionStrategy::kSpecialGroup);
  const int groups_for_choice = num_groups + (may_use_special ? 1 : 0);

  // Run-level admission (DESIGN.md §11): can this segment be aggregated by
  // (group, row-range) spans instead of rows, and is it worth it?
  RunAdmissionInputs run_in;
  run_in.segment_rows = segment.num_rows();
  run_in.has_deleted_rows = segment.has_deleted_rows();
  run_in.selection_forced = overrides.selection.has_value();
  run_in.groups_are_runs = mapper_.runs_available();
  run_in.estimated_spans = mapper_.run_count_bound();
  run_in.filters_are_runs = true;
  for (const ColumnPredicate& pred : query.filters) {
    const int idx = table.FindColumn(pred.column_name());
    if (idx < 0) {
      run_in.filters_are_runs = false;  // Execute reports the real error
      break;
    }
    const EncodedColumn& col = segment.column(static_cast<size_t>(idx));
    if (pred.MatchesAllRows(col)) continue;  // metadata-satisfied: free
    if (col.encoding() != Encoding::kRle) {
      run_in.filters_are_runs = false;
      break;
    }
    run_in.estimated_spans += col.runs().size();
  }
  run_in.aggregates_are_runs = true;
  for (const AggInput& input : inputs_) {
    const bool raw_packed_sum =
        !input.is_expr && input.op == AggInput::Op::kSum;
    if (!raw_packed_sum && input.run_column == nullptr) {
      run_in.aggregates_are_runs = false;
      break;
    }
  }

  // Byteslice filter admission (DESIGN.md §16): which filters would the
  // early-pruning plane kernels evaluate, and how selective does metadata
  // say they are? Metadata-decided predicates never reach a kernel and do
  // not count.
  ByteSliceAdmissionInputs bs_in;
  for (const ColumnPredicate& pred : query.filters) {
    const int idx = table.FindColumn(pred.column_name());
    if (idx < 0) continue;  // Execute reports the real error
    const EncodedColumn& col = segment.column(static_cast<size_t>(idx));
    if (col.encoding() != Encoding::kByteSliced) continue;
    if (pred.MatchesAllRows(col) || pred.EliminatesSegment(col)) continue;
    bs_in.any_byteslice_filter = true;
    bs_in.max_planes =
        std::max(bs_in.max_planes, ByteSlicePlanes(col.bit_width()));
    bs_in.estimated_selectivity = std::min(
        bs_in.estimated_selectivity,
        EstimatePredicateSelectivity(pred.op(), pred.literal(),
                                     pred.literal2(), col.meta().min,
                                     col.meta().max));
  }

  // Cost model (DESIGN.md §17): score every candidate pipeline from the
  // same metadata under the active calibration profile. Pure arithmetic on
  // segment statistics — decisions under the builtin profile are
  // machine-independent. The legacy heuristics stay authoritative when the
  // mode is kOff (and remain the hedge in kAdaptive).
  const CostModelMode cost_mode = overrides.cost_model;
  const bool model_active = cost_mode != CostModelMode::kOff;
  cost::SegmentCostInputs model_in;
  cost::SegmentCosts model_costs;
  model_gather_crossover_ = -1.0;
  if (model_active) {
    const cost::CostModel model(cost::ActiveProfile());
    model_in.rows = segment.num_rows();
    model_in.filtered = filtered;
    // Unified selectivity (the fix for the old inconsistency: run-based
    // admission used a constant while byteslice admission estimated — now
    // every path sees the same per-predicate product estimate).
    double sel_product = 1.0;
    double filter_decode = 0.0;
    double filter_byteslice = 0.0;
    bool any_byteslice_filter = false;
    for (const ColumnPredicate& pred : query.filters) {
      const int idx = table.FindColumn(pred.column_name());
      if (idx < 0) continue;  // Execute reports the real error
      const EncodedColumn& col = segment.column(static_cast<size_t>(idx));
      if (pred.MatchesAllRows(col)) continue;  // metadata-satisfied: free
      if (pred.EliminatesSegment(col)) {
        sel_product = 0.0;
        continue;
      }
      const double s_f = std::clamp(
          EstimatePredicateSelectivity(pred.op(), pred.literal(),
                                       pred.literal2(), col.meta().min,
                                       col.meta().max),
          0.0, 1.0);
      sel_product *= s_f;
      const size_t col_runs =
          col.encoding() == Encoding::kRle ? col.runs().size() : 1;
      // The byte-sliced fallback is assemble-then-compare: the sequential
      // plane merge runs at bit-unpack throughput, not at the per-plane
      // scan cost, so it is priced as a plain unpack of the same width.
      const double decode_cost =
          (col.encoding() == Encoding::kByteSliced
               ? model.UnpackCyclesPerRow(col.bit_width())
               : model.DecodeCyclesPerRow(col.encoding(), col.bit_width(),
                                          segment.num_rows(), col_runs)) +
          model.CompareCyclesPerRow(col.bit_width());
      filter_decode += decode_cost;
      if (col.encoding() == Encoding::kByteSliced) {
        any_byteslice_filter = true;
        filter_byteslice += model.ByteSliceFilterCyclesPerRow(
            ByteSlicePlanes(col.bit_width()), s_f);
      } else {
        filter_byteslice += decode_cost;
      }
    }
    model_in.selectivity = filtered ? sel_product : 1.0;
    model_in.filter_decode_cpr = filter_decode;
    model_in.byteslice_capable =
        any_byteslice_filter && !overrides.byteslice.has_value();
    model_in.filter_byteslice_cpr =
        any_byteslice_filter ? filter_byteslice : -1.0;
    for (int idx : group_cols) {
      const EncodedColumn& col = segment.column(static_cast<size_t>(idx));
      const size_t col_runs =
          col.encoding() == Encoding::kRle ? col.runs().size() : 1;
      model_in.group_decode_cpr += model.DecodeCyclesPerRow(
          col.encoding(), col.bit_width(), segment.num_rows(), col_runs);
    }
    for (const AggInput& input : inputs_) {
      if (input.run_column != nullptr) {
        const size_t col_runs = input.run_column->runs().size();
        model_in.agg_decode_cpr += model.DecodeCyclesPerRow(
            Encoding::kRle, input.run_column->bit_width(),
            segment.num_rows(), col_runs);
        // Run path: RLE aggregates reduce to run-metadata arithmetic.
        model_in.run_agg_cpr +=
            model.profile().rle_run_cycles *
            (segment.num_rows() == 0
                 ? 0.0
                 : static_cast<double>(std::max<size_t>(col_runs, 1)) /
                       static_cast<double>(segment.num_rows()));
      } else if (input.is_expr) {
        model_in.agg_decode_cpr += model.profile().expr_eval_cycles;
      } else {
        const double unpack = model.UnpackCyclesPerRow(input.bit_width);
        model_in.agg_decode_cpr += unpack;
        // Run path: only surviving spans unpack their rows.
        model_in.run_agg_cpr += model_in.selectivity * unpack;
      }
    }
    model_in.num_sums = num_sums;
    model_in.in_register_feasible =
        groups_for_choice <= kMaxInRegisterGroups && !any_expr &&
        max_value_bits <= 32;
    model_in.multi_fits = multi_fits;
    model_in.sort_feasible = num_sums >= 1;
    model_in.checked_feasible = true;
    model_in.run_capable = RunBasedCapable(run_in);
    model_in.run_spans = run_in.estimated_spans;
    model_in.special_group_available = may_use_special;
    model_costs = model.ScoreSegment(model_in);
  }

  // Record the decision inputs (plain data only — Bind runs per morsel)
  // before any feasibility check can reject the bind, so an explain of a
  // forced infeasible plan still shows what drove the rejection.
  decision_ = PlanDecision{};
  decision_.aggregation_forced = overrides.aggregation.has_value();
  decision_.forced_selection = overrides.selection;
  decision_.num_groups = num_groups;
  decision_.groups_for_choice = groups_for_choice;
  decision_.num_sums = num_sums;
  decision_.max_value_bits = max_value_bits;
  decision_.expected_selectivity = expected_selectivity;
  decision_.multi_aggregate_fits = multi_fits;
  decision_.in_register_feasible = groups_for_choice <= kMaxInRegisterGroups &&
                                   !any_expr && max_value_bits <= 32;
  decision_.any_expr_input = any_expr;
  decision_.overflow_risk = overflow_risk;
  decision_.filtered = filtered;
  decision_.run_inputs = run_in;
  decision_.run_capable = RunBasedCapable(run_in);
  decision_.run_admitted = RunBasedAdmitted(run_in);
  decision_.byteslice_inputs = bs_in;
  decision_.byteslice_capable = ByteSliceCapable(bs_in);
  decision_.byteslice_admitted = overrides.byteslice.has_value()
                                     ? *overrides.byteslice
                                     : ByteSliceAdmitted(bs_in);
  decision_.forced_byteslice = overrides.byteslice;
  decision_.cost_model_mode = cost_mode;
  if (model_active) {
    decision_.cost_model_profile_calibrated =
        cost::ActiveProfile().calibrated != 0;
    decision_.model_selectivity = model_in.selectivity;
    for (int i = 0; i < kNumAggregationStrategies; ++i) {
      decision_.model_total_cpr[i] = model_costs.total_cpr[i];
    }
    for (int i = 0; i < 3; ++i) {
      decision_.model_selection_cpr[i] = model_costs.selection_cpr[i];
    }
    decision_.model_gather_crossover = model_costs.gather_crossover;
    decision_.model_filter_decode_cpr = model_in.filter_decode_cpr;
    decision_.model_filter_byteslice_cpr = model_in.filter_byteslice_cpr;

    // Byteslice admission via predicted filter cost (forced wins below).
    if (!overrides.byteslice.has_value() && decision_.byteslice_capable) {
      const bool heuristic_admits = ByteSliceAdmitted(bs_in);
      bool model_admits = model_costs.use_byteslice;
      if (cost_mode == CostModelMode::kAdaptive &&
          model_admits != heuristic_admits) {
        // Keep the heuristic unless the model's pick is clearly cheaper.
        const double model_side = model_admits
                                      ? model_in.filter_byteslice_cpr
                                      : model_in.filter_decode_cpr;
        const double heuristic_side = model_admits
                                          ? model_in.filter_decode_cpr
                                          : model_in.filter_byteslice_cpr;
        if (!(model_side < kCostModelAdaptiveMargin * heuristic_side)) {
          model_admits = heuristic_admits;
        }
      }
      decision_.byteslice_admitted = model_admits;
    }
  }

  if (overrides.byteslice.has_value() && *overrides.byteslice &&
      !ByteSliceCapable(bs_in)) {
    decision_.byteslice_admitted = false;
    return Status::NotSupported(
        "byteslice kernels infeasible: no filter binds to a byte-sliced "
        "column of this segment");
  }

  if (overflow_risk) {
    if (overrides.aggregation.has_value() &&
        *overrides.aggregation != AggregationStrategy::kCheckedScalar) {
      return Status::OverflowRisk(
          "segment metadata cannot prove int64-safe sums; forced strategy "
          "rejected");
    }
    agg_strategy_ = AggregationStrategy::kCheckedScalar;
  } else if (overrides.aggregation.has_value()) {
    agg_strategy_ = *overrides.aggregation;
    if (agg_strategy_ == AggregationStrategy::kRunBased &&
        !RunBasedCapable(run_in)) {
      return Status::NotSupported(
          "run-based aggregation infeasible: requires RLE/constant group "
          "columns, run-representable filters and aggregates, no deleted "
          "rows, and no forced selection strategy");
    }
    if (agg_strategy_ == AggregationStrategy::kInRegister &&
        (groups_for_choice > kMaxInRegisterGroups || any_expr ||
         max_value_bits > 32)) {
      return Status::NotSupported(
          "in-register aggregation infeasible for this query/segment");
    }
    if (agg_strategy_ == AggregationStrategy::kMultiAggregate &&
        !multi_fits) {
      return Status::NotSupported(
          "multi-aggregate row does not fit one SIMD register");
    }
    if (agg_strategy_ == AggregationStrategy::kSortBased && num_sums == 0) {
      return Status::NotSupported("sort-based strategy needs >= 1 sum");
    }
  } else if (model_active) {
    // What the legacy constants would have picked — the kOff decision, and
    // the kAdaptive hedge the model must clearly beat.
    const AggregationStrategy heuristic =
        RunBasedAdmitted(run_in)
            ? AggregationStrategy::kRunBased
            : ChooseAggregationStrategy(groups_for_choice, num_sums,
                                        max_value_bits, expected_selectivity,
                                        multi_fits);
    AggregationStrategy pick = model_costs.chosen;
    if (cost_mode == CostModelMode::kAdaptive && pick != heuristic) {
      const double pick_cpr =
          model_costs.total_cpr[static_cast<int>(pick)];
      const double heuristic_cpr =
          model_costs.total_cpr[static_cast<int>(heuristic)];
      if (heuristic_cpr >= 0.0 &&
          !(pick_cpr < kCostModelAdaptiveMargin * heuristic_cpr)) {
        pick = heuristic;
      }
    }
    agg_strategy_ = pick;
    decision_.cost_model_overrode = pick != heuristic;
    // run_admitted reports the decision actually taken for this segment.
    decision_.run_admitted =
        agg_strategy_ == AggregationStrategy::kRunBased;
    if (cost_mode == CostModelMode::kOn) {
      // The per-batch selection crossover comes from the model too;
      // kAdaptive keeps the Figure-7 heuristic (conservative hedge).
      model_gather_crossover_ = model_costs.gather_crossover;
    }
  } else if (RunBasedAdmitted(run_in)) {
    agg_strategy_ = AggregationStrategy::kRunBased;
  } else {
    agg_strategy_ = ChooseAggregationStrategy(
        groups_for_choice, num_sums, max_value_bits, expected_selectivity,
        multi_fits);
  }

  special_group_available_ =
      may_use_special && num_groups + 1 <= GroupCapacity(agg_strategy_);

  // --- per-strategy input decode widths -------------------------------------
  const bool scalar_like = agg_strategy_ == AggregationStrategy::kScalar ||
                           agg_strategy_ == AggregationStrategy::kCheckedScalar;
  for (AggInput& input : inputs_) {
    const bool wide_minmax = input.op != AggInput::Op::kSum &&
                             !input.is_expr && input.bit_width > 32;
    if ((scalar_like || wide_minmax) && !input.is_expr) {
      // Scalar paths (and extrema over >32-bit offsets) aggregate logical
      // int64 values directly.
      int idx = -1;
      for (size_t c = 0; c < table.num_columns(); ++c) {
        if (&segment.column(c) == input.column) idx = static_cast<int>(c);
      }
      input.is_expr = true;
      input.expr = Expr::Column(idx);
      input.compensate = false;
      input.word_bytes = 8;
      continue;
    }
    if (input.is_expr) {
      input.word_bytes = 8;
      continue;
    }
    if (input.op != AggInput::Op::kSum) {
      // Extrema kernels take the smallest word regardless of strategy.
      input.word_bytes = SmallestWordBytes(input.bit_width);
      continue;
    }
    switch (agg_strategy_) {
      case AggregationStrategy::kInRegister:
        input.word_bytes = input.bit_width <= 8    ? 1
                           : input.bit_width <= 15 ? 2
                                                   : 4;
        break;
      case AggregationStrategy::kMultiAggregate:
        input.word_bytes = input.bit_width <= 16 ? 4 : 8;
        break;
      default:
        input.word_bytes = SmallestWordBytes(input.bit_width);
        break;
    }
  }

  // The gather/compact crossover depends on the widest stream selection
  // must materialize.
  max_materialized_bits_ = 1;
  for (int idx : group_cols) {
    max_materialized_bits_ = std::max(
        max_materialized_bits_, segment.column(idx).bit_width());
  }
  for (const AggInput& input : inputs_) {
    if (!input.is_expr) {
      max_materialized_bits_ =
          std::max(max_materialized_bits_, input.bit_width);
    } else if (input.expr != nullptr) {
      std::vector<int> cols;
      input.expr->CollectColumns(&cols);
      for (int c : cols) {
        max_materialized_bits_ = std::max(
            max_materialized_bits_, segment.column(c).bit_width());
      }
    }
  }

  decision_.aggregation = agg_strategy_;
  decision_.special_group_available = special_group_available_;
  decision_.max_materialized_bits = max_materialized_bits_;

  // --- accumulators & engines -----------------------------------------------
  counts_.assign(static_cast<size_t>(num_groups) + 1, 0);
  sums_.assign(inputs_.size() * (static_cast<size_t>(num_groups) + 1), 0);
  minmax_.assign(inputs_.size() * (static_cast<size_t>(num_groups) + 1), 0);
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const AggInput& input = inputs_[i];
    if (input.op == AggInput::Op::kSum) continue;
    uint64_t sentinel;
    if (input.is_expr) {
      sentinel = input.op == AggInput::Op::kMin
                     ? static_cast<uint64_t>(
                           std::numeric_limits<int64_t>::max())
                     : static_cast<uint64_t>(
                           std::numeric_limits<int64_t>::min());
    } else {
      sentinel = input.op == AggInput::Op::kMin ? ~uint64_t{0} : 0;
    }
    std::fill_n(minmax_.begin() +
                    i * (static_cast<size_t>(num_groups) + 1),
                static_cast<size_t>(num_groups) + 1, sentinel);
  }
  run_cursors_.assign(inputs_.size(), RunCursor{});
  value_bufs_.resize(inputs_.size());
  expr_out_bufs_.resize(inputs_.size());
  expr_out_ptrs_.assign(inputs_.size(), nullptr);
  expr_col_bufs_.resize(table.num_columns());
  batch_seq_ = 0;
  col_cache_tag_.assign(table.num_columns(), 0);

  if (agg_strategy_ == AggregationStrategy::kMultiAggregate) {
    std::vector<MultiAggregator::ColumnDesc> descs;
    for (int i : sum_inputs_) {
      descs.push_back({inputs_[i].word_bytes == 4 ? 4 : 8});
    }
    const int geff = num_groups + (special_group_available_ ? 1 : 0);
    BIPIE_RETURN_NOT_OK(multi_agg_.Configure(descs, geff));
    multi_agg_ready_ = true;
  }
  return Status::OK();
}

AggregateProcessor::BatchMode AggregateProcessor::PickBatchMode(
    size_t n, size_t selected, const uint8_t* sel) {
  if (sel == nullptr) return BatchMode::kFull;
  if (overrides_.selection.has_value()) {
    switch (*overrides_.selection) {
      case SelectionStrategy::kGather:
        return BatchMode::kGather;
      case SelectionStrategy::kCompact:
        return BatchMode::kCompact;
      case SelectionStrategy::kSpecialGroup:
        return special_group_available_ ? BatchMode::kSpecialGroup
                                        : BatchMode::kCompact;
    }
  }
  const double selectivity =
      static_cast<double>(selected) / static_cast<double>(n);
  if (model_gather_crossover_ >= 0.0) {
    // cost_model=on: the crossover was bisected from calibrated
    // throughputs at Bind; the per-batch decision stays one comparison.
    if (selectivity <= model_gather_crossover_) return BatchMode::kGather;
    return special_group_available_ ? BatchMode::kSpecialGroup
                                    : BatchMode::kCompact;
  }
  switch (ChooseSelectionStrategy(selectivity, max_materialized_bits_,
                                  special_group_available_)) {
    case SelectionStrategy::kGather:
      return BatchMode::kGather;
    case SelectionStrategy::kSpecialGroup:
      return BatchMode::kSpecialGroup;
    case SelectionStrategy::kCompact:
      return BatchMode::kCompact;
  }
  return BatchMode::kCompact;
}

void AggregateProcessor::DecodeExprColumn(int col_idx, size_t start,
                                          size_t n) {
  if (col_cache_tag_[col_idx] == batch_seq_) return;  // decoded this batch
  AlignedBuffer& buf = expr_col_bufs_[col_idx];
  buf.Resize(n * sizeof(int64_t));
  segment_->column(col_idx).DecodeInt64(start, n, buf.data_as<int64_t>());
  col_cache_tag_[col_idx] = batch_seq_;
}

void AggregateProcessor::EvaluateExpr(size_t input_index, size_t start,
                                      size_t n) {
  const AggInput& input = inputs_[input_index];
  if (const int64_t* cached = expr_cache_.Find(input.expr.get())) {
    expr_out_ptrs_[input_index] = cached;  // identical tree this batch
    return;
  }
  std::vector<int> cols;
  input.expr->CollectColumns(&cols);
  std::vector<const int64_t*> columns(table_->num_columns(), nullptr);
  for (int c : cols) {
    DecodeExprColumn(c, start, n);
    columns[c] = expr_col_bufs_[c].data_as<int64_t>();
  }
  expr_out_bufs_[input_index].Resize(n * sizeof(int64_t));
  int64_t* out = expr_out_bufs_[input_index].data_as<int64_t>();
  input.expr->Evaluate(columns.data(), n, out, &expr_cache_);
  expr_cache_.Put(input.expr.get(), out);
  expr_out_ptrs_[input_index] = out;
}

size_t AggregateProcessor::BuildDenseBatch(size_t start, size_t n,
                                           const uint8_t* sel,
                                           BatchMode mode) {
  const int num_groups = mapper_.num_groups();
  groups_buf_.Resize(n);
  uint8_t* groups = groups_buf_.data();

  size_t m = n;
  const uint32_t* indices = nullptr;
  if (mode == BatchMode::kGather) {
    indices_buf_.Resize((n + 8) * sizeof(uint32_t));
    m = CompactToIndexVector(sel, n, indices_buf_.data_as<uint32_t>());
    indices = indices_buf_.data_as<uint32_t>();
    mapper_.MapSelected(start, indices, m, groups);
  } else {
    mapper_.MapBatch(start, n, groups);
    if (mode == BatchMode::kSpecialGroup) {
      ApplySpecialGroup(groups, sel, n,
                        static_cast<uint8_t>(num_groups), groups);
    } else if (mode == BatchMode::kCompact) {
      compact_scratch_.Resize(n);
      m = CompactValues(sel, groups, n, 1, compact_scratch_.data());
      std::memcpy(groups, compact_scratch_.data(), m);
    }
  }

  for (size_t i = 0; i < inputs_.size(); ++i) {
    const AggInput& input = inputs_[i];
    AlignedBuffer& buf = value_bufs_[i];
    if (input.is_expr) {
      switch (mode) {
        case BatchMode::kFull:
        case BatchMode::kSpecialGroup:
          EvaluateExpr(i, start, n);
          // The aggregation loop reads expr_out_bufs_ directly via the
          // pointer set below; copy-free.
          break;
        case BatchMode::kGather: {
          // Decode referenced columns densely (selected rows only), then
          // evaluate over the dense arrays.
          if (const int64_t* cached = expr_cache_.Find(input.expr.get())) {
            expr_out_ptrs_[i] = cached;
            break;
          }
          std::vector<int> cols;
          input.expr->CollectColumns(&cols);
          std::vector<const int64_t*> columns(table_->num_columns(),
                                              nullptr);
          for (int c : cols) {
            const EncodedColumn& col = segment_->column(c);
            AlignedBuffer& cbuf = expr_col_bufs_[c];
            if (col_cache_tag_[c] != batch_seq_) {
              cbuf.Resize(m * sizeof(int64_t));
              if (col.encoding() == Encoding::kBitPacked) {
                GatherSelect(RebasedPacked(col, start), col.bit_width(),
                             indices, m, cbuf.data(), 8);
                int64_t* vals = cbuf.data_as<int64_t>();
                if (col.base() != 0) {
                  for (size_t r = 0; r < m; ++r) vals[r] += col.base();
                }
              } else {
                compact_scratch_.Resize(n * sizeof(int64_t));
                col.DecodeInt64(start, n,
                                compact_scratch_.data_as<int64_t>());
                CompactValues(sel, compact_scratch_.data(), n, 8,
                              cbuf.data());
              }
              col_cache_tag_[c] = batch_seq_;
            }
            columns[c] = cbuf.data_as<int64_t>();
          }
          expr_out_bufs_[i].Resize(m * sizeof(int64_t));
          int64_t* out = expr_out_bufs_[i].data_as<int64_t>();
          input.expr->Evaluate(columns.data(), m, out, &expr_cache_);
          expr_cache_.Put(input.expr.get(), out);
          expr_out_ptrs_[i] = out;
          break;
        }
        case BatchMode::kCompact: {
          // Post-filter processing: referenced columns are decoded once,
          // physically compacted, and the expression runs over the
          // surviving rows only (this is the §6.2 compact-vs-special
          // trade: compaction pays once so later work touches m rows).
          if (const int64_t* cached = expr_cache_.Find(input.expr.get())) {
            expr_out_ptrs_[i] = cached;
            break;
          }
          std::vector<int> cols;
          input.expr->CollectColumns(&cols);
          std::vector<const int64_t*> columns(table_->num_columns(),
                                              nullptr);
          for (int c : cols) {
            AlignedBuffer& cbuf = expr_col_bufs_[c];
            if (col_cache_tag_[c] != batch_seq_) {
              compact_scratch_.Resize(n * sizeof(int64_t));
              segment_->column(c).DecodeInt64(
                  start, n, compact_scratch_.data_as<int64_t>());
              cbuf.Resize(m * sizeof(int64_t));
              CompactValues(sel, compact_scratch_.data(), n, 8, cbuf.data());
              col_cache_tag_[c] = batch_seq_;
            }
            columns[c] = cbuf.data_as<int64_t>();
          }
          expr_out_bufs_[i].Resize(m * sizeof(int64_t));
          int64_t* out = expr_out_bufs_[i].data_as<int64_t>();
          input.expr->Evaluate(columns.data(), m, out, &expr_cache_);
          expr_cache_.Put(input.expr.get(), out);
          expr_out_ptrs_[i] = out;
          break;
        }
      }
      continue;
    }
    // Raw bit-packed input.
    const int word = input.word_bytes;
    buf.Resize(m * static_cast<size_t>(word));
    switch (mode) {
      case BatchMode::kFull:
      case BatchMode::kSpecialGroup:
        input.column->UnpackIds(start, n, buf.data(), word);
        break;
      case BatchMode::kGather:
        GatherSelect(RebasedPacked(*input.column, start), input.bit_width,
                     indices, m, buf.data(), word);
        break;
      case BatchMode::kCompact:
        compact_scratch_.Resize(n * static_cast<size_t>(word));
        input.column->UnpackIds(start, n, compact_scratch_.data(), word);
        CompactValues(sel, compact_scratch_.data(), n, word, buf.data());
        break;
    }
  }
  return m;
}

Status AggregateProcessor::ProcessBatch(size_t start, size_t n,
                                        const uint8_t* sel) {
  BIPIE_DCHECK(start % kBatchRows == 0);
  if (n == 0) return Status::OK();
  ++batch_seq_;
  expr_cache_.Clear();
  size_t selected = n;
  if (sel != nullptr) {
    selected = CountSelected(sel, n);
    if (selected == 0) return Status::OK();
    if (selected == n) sel = nullptr;  // filter passed everything
  }
  const BatchMode mode = PickBatchMode(n, selected, sel);
  switch (mode) {
    case BatchMode::kFull:
      ++selection_stats_.unfiltered;
      break;
    case BatchMode::kGather:
      ++selection_stats_.gather;
      break;
    case BatchMode::kCompact:
      ++selection_stats_.compact;
      break;
    case BatchMode::kSpecialGroup:
      ++selection_stats_.special_group;
      break;
  }
  switch (agg_strategy_) {
    case AggregationStrategy::kInRegister:
      return ProcessInRegister(start, n, sel, mode);
    case AggregationStrategy::kMultiAggregate:
      return ProcessMultiAggregate(start, n, sel, mode);
    case AggregationStrategy::kSortBased:
      return ProcessSortBased(start, n, sel, mode);
    case AggregationStrategy::kScalar:
      return ProcessScalar(start, n, sel, mode, /*checked=*/false);
    case AggregationStrategy::kCheckedScalar:
      return ProcessScalar(start, n, sel, mode, /*checked=*/true);
    case AggregationStrategy::kRunBased:
      // The run pipeline drives ProcessRunSpan directly; the batch entry
      // point has no row-level configuration to fall back on.
      return Status::Internal(
          "ProcessBatch called on a run-based-bound processor");
  }
  return Status::Internal("unknown aggregation strategy");
}

Status AggregateProcessor::ProcessRunSpan(uint8_t group, size_t start,
                                          size_t len) {
  BIPIE_DCHECK(agg_strategy_ == AggregationStrategy::kRunBased);
  BIPIE_DCHECK(group < counts_.size());
  if (len == 0) return Status::OK();
  counts_[group] += len;
  const size_t stride = static_cast<size_t>(mapper_.num_groups()) + 1;
  const size_t end = start + len;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const AggInput& input = inputs_[i];
    if (input.run_column != nullptr) {
      // RLE aggregate input: pure run-metadata arithmetic, zero decode.
      // The overflow proof bounds |value| * len by max_abs * segment_rows,
      // so the multiplications below cannot wrap.
      const std::vector<RleRun>& runs = input.run_column->runs();
      RunCursor& cur = run_cursors_[i];
      while (cur.run_idx < runs.size() &&
             cur.run_start + runs[cur.run_idx].count <= start) {
        cur.run_start += runs[cur.run_idx].count;
        ++cur.run_idx;
      }
      int64_t* sums = sums_.data() + i * stride;
      auto* extrema = reinterpret_cast<int64_t*>(minmax_.data() + i * stride);
      size_t pos = start;
      size_t idx = cur.run_idx;
      size_t run_start = cur.run_start;
      while (pos < end) {
        BIPIE_DCHECK(idx < runs.size());
        const size_t run_end = run_start + runs[idx].count;
        const size_t hi = run_end < end ? run_end : end;
        const auto value = static_cast<int64_t>(runs[idx].value);
        switch (input.op) {
          case AggInput::Op::kSum:
            sums[group] += value * static_cast<int64_t>(hi - pos);
            break;
          case AggInput::Op::kMin:
            extrema[group] = std::min(extrema[group], value);
            break;
          case AggInput::Op::kMax:
            extrema[group] = std::max(extrema[group], value);
            break;
        }
        pos = hi;
        if (pos >= run_end) {
          run_start = run_end;
          ++idx;
        }
      }
      continue;
    }
    if (input.is_expr || input.op != AggInput::Op::kSum) {
      return Status::Internal("run span over a non-run-representable input");
    }
    // Raw bit-packed SUM: fused span sum over the packed bytes, in the
    // offset domain (Finish compensates with base * count).
    reinterpret_cast<uint64_t*>(sums_.data() + i * stride)[group] +=
        SumBitPackedRange(input.column->packed_data(), start, len,
                          input.bit_width);
  }
  return Status::OK();
}

Status AggregateProcessor::ProcessInRegister(size_t start, size_t n,
                                             const uint8_t* sel,
                                             BatchMode mode) {
  const int num_groups = mapper_.num_groups();
  const size_t m = BuildDenseBatch(start, n, sel, mode);
  const int geff =
      num_groups + (mode == BatchMode::kSpecialGroup ? 1 : 0);
  const uint8_t* groups = groups_buf_.data();
  InRegisterCount(groups, m, geff, counts_.data());
  const size_t stride = static_cast<size_t>(num_groups) + 1;
  for (int i : sum_inputs_) {
    const AggInput& input = inputs_[i];
    auto* sums = reinterpret_cast<uint64_t*>(sums_.data() + i * stride);
    switch (input.word_bytes) {
      case 1:
        InRegisterSum8(groups, value_bufs_[i].data(), m, geff, sums);
        break;
      case 2:
        InRegisterSum16(groups, value_bufs_[i].data_as<uint16_t>(), m, geff,
                        sums);
        break;
      case 4:
        InRegisterSum32(groups, value_bufs_[i].data_as<uint32_t>(), m, geff,
                        input.max_offset, sums);
        break;
      default:
        return Status::Internal("bad in-register word");
    }
  }
  ProcessMinMaxDense(mode, m, geff);
  return Status::OK();
}

Status AggregateProcessor::ProcessMultiAggregate(size_t start, size_t n,
                                                 const uint8_t* sel,
                                                 BatchMode mode) {
  const int num_groups = mapper_.num_groups();
  const size_t m = BuildDenseBatch(start, n, sel, mode);
  const int geff =
      num_groups + (mode == BatchMode::kSpecialGroup ? 1 : 0);
  const uint8_t* groups = groups_buf_.data();
  if (geff <= kMaxInRegisterGroups) {
    InRegisterCount(groups, m, geff, counts_.data());
  } else {
    ScalarCountMultiArray(groups, m, geff, counts_.data());
  }
  std::vector<const void*> ptrs(sum_inputs_.size());
  for (size_t k = 0; k < sum_inputs_.size(); ++k) {
    const int i = sum_inputs_[k];
    const AggInput& input = inputs_[i];
    ptrs[k] = input.is_expr ? static_cast<const void*>(expr_out_ptrs_[i])
                            : static_cast<const void*>(value_bufs_[i].data());
  }
  multi_agg_.Process(groups, ptrs.data(), m);
  ProcessMinMaxDense(mode, m, geff);
  return Status::OK();
}

Status AggregateProcessor::ProcessSortBased(size_t start, size_t n,
                                            const uint8_t* sel,
                                            BatchMode mode) {
  const int num_groups = mapper_.num_groups();
  groups_buf_.Resize(n);
  uint8_t* groups = groups_buf_.data();
  int geff = num_groups;
  size_t m = n;
  const uint32_t* indices = nullptr;

  if (mode == BatchMode::kSpecialGroup) {
    mapper_.MapBatch(start, n, groups);
    ApplySpecialGroup(groups, sel, n, static_cast<uint8_t>(num_groups),
                      groups);
    geff = num_groups + 1;
  } else if (mode == BatchMode::kFull) {
    mapper_.MapBatch(start, n, groups);
  } else {
    // Gather and compaction selection both reduce to sorting a selection
    // index vector (§5.2: rows are excluded before sorting).
    mapper_.MapBatch(start, n, groups);
    indices_buf_.Resize((n + 8) * sizeof(uint32_t));
    m = CompactToIndexVector(sel, n, indices_buf_.data_as<uint32_t>());
    indices = indices_buf_.data_as<uint32_t>();
  }
  sorted_batch_.Sort(groups, indices, m, geff);

  for (int g = 0; g < geff; ++g) {
    counts_[g] += sorted_batch_.count(g);
  }
  const size_t stride = static_cast<size_t>(num_groups) + 1;
  for (int i : sum_inputs_) {
    const AggInput& input = inputs_[i];
    int64_t* sums = sums_.data() + i * stride;
    if (input.is_expr) {
      EvaluateExpr(i, start, n);
      SortedSumDecoded(expr_out_ptrs_[i], sorted_batch_, sums);
    } else {
      SortedGatherSum(RebasedPacked(*input.column, start), input.bit_width,
                      sorted_batch_, reinterpret_cast<uint64_t*>(sums));
    }
  }
  return ProcessMinMaxSorted(start, n, geff);
}

Status AggregateProcessor::ProcessScalar(size_t start, size_t n,
                                         const uint8_t* sel, BatchMode mode,
                                         bool checked) {
  const int num_groups = mapper_.num_groups();
  const size_t m = BuildDenseBatch(start, n, sel, mode);
  const int geff =
      num_groups + (mode == BatchMode::kSpecialGroup ? 1 : 0);
  const uint8_t* groups = groups_buf_.data();
  ScalarCountMultiArray(groups, m, geff, counts_.data());
  const size_t stride = static_cast<size_t>(num_groups) + 1;
  (void)mode;
  for (int i : sum_inputs_) {
    const int64_t* values = expr_out_ptrs_[i];
    int64_t* sums = sums_.data() + i * stride;
    if (checked) {
      for (size_t r = 0; r < m; ++r) {
        if (__builtin_add_overflow(sums[groups[r]], values[r],
                                   &sums[groups[r]])) {
          return Status::OverflowRisk("int64 sum overflow during scan");
        }
      }
    } else {
      ScalarSumMultiArray(groups, values, m, geff, sums);
    }
  }
  ProcessMinMaxDense(mode, m, geff);
  return Status::OK();
}

void AggregateProcessor::ProcessMinMaxDense(BatchMode mode, size_t m,
                                            int geff) {
  (void)mode;
  const size_t stride = static_cast<size_t>(mapper_.num_groups()) + 1;
  const uint8_t* groups = groups_buf_.data();
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const AggInput& input = inputs_[i];
    if (input.op == AggInput::Op::kSum) continue;
    uint64_t* extrema = minmax_.data() + i * stride;
    if (input.is_expr) {
      const int64_t* values = expr_out_ptrs_[i];
      if (input.op == AggInput::Op::kMin) {
        GroupedMinI64(groups, values, m, geff,
                      reinterpret_cast<int64_t*>(extrema));
      } else {
        GroupedMaxI64(groups, values, m, geff,
                      reinterpret_cast<int64_t*>(extrema));
      }
    } else {
      if (input.op == AggInput::Op::kMin) {
        GroupedMinU(groups, value_bufs_[i].data(), input.word_bytes, m,
                    geff, extrema);
      } else {
        GroupedMaxU(groups, value_bufs_[i].data(), input.word_bytes, m,
                    geff, extrema);
      }
    }
  }
}

Status AggregateProcessor::ProcessMinMaxSorted(size_t start, size_t n,
                                               int geff) {
  const size_t stride = static_cast<size_t>(mapper_.num_groups()) + 1;
  const uint32_t* idx = sorted_batch_.indices();
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const AggInput& input = inputs_[i];
    if (input.op == AggInput::Op::kSum) continue;
    uint64_t* extrema = minmax_.data() + i * stride;
    if (input.is_expr) {
      EvaluateExpr(i, start, n);  // memoized per batch
      const int64_t* values = expr_out_ptrs_[i];
      auto* typed = reinterpret_cast<int64_t*>(extrema);
      for (int g = 0; g < geff; ++g) {
        int64_t e = typed[g];
        for (uint32_t k = sorted_batch_.offset(g);
             k < sorted_batch_.offset(g + 1); ++k) {
          const int64_t v = values[idx[k]];
          e = input.op == AggInput::Op::kMin ? std::min(e, v)
                                             : std::max(e, v);
        }
        typed[g] = e;
      }
    } else {
      // Decode the full window once at the input's word width, then walk
      // the sorted index ranges.
      AlignedBuffer& buf = value_bufs_[i];
      buf.Resize(n * static_cast<size_t>(input.word_bytes));
      input.column->UnpackIds(start, n, buf.data(), input.word_bytes);
      for (int g = 0; g < geff; ++g) {
        uint64_t e = extrema[g];
        for (uint32_t k = sorted_batch_.offset(g);
             k < sorted_batch_.offset(g + 1); ++k) {
          uint64_t v = 0;
          std::memcpy(&v,
                      buf.data() + static_cast<size_t>(idx[k]) *
                                       input.word_bytes,
                      input.word_bytes);
          if (input.op == AggInput::Op::kMin ? v < e : v > e) e = v;
        }
        extrema[g] = e;
      }
    }
  }
  return Status::OK();
}

Status AggregateProcessor::Finish(SegmentResult* out) {
  const int num_groups = mapper_.num_groups();
  const size_t stride = static_cast<size_t>(num_groups) + 1;
  if (agg_strategy_ == AggregationStrategy::kMultiAggregate &&
      multi_agg_ready_) {
    // MultiAggregator keeps sums in [group][column] layout; fold into the
    // [input][group] accumulators (special slot included when present).
    const int geff = multi_agg_.num_groups();
    const size_t ncols = sum_inputs_.size();
    std::vector<int64_t> flat(static_cast<size_t>(geff) * ncols, 0);
    multi_agg_.Flush(flat.data());
    for (int g = 0; g < geff; ++g) {
      for (size_t k = 0; k < ncols; ++k) {
        sums_[static_cast<size_t>(sum_inputs_[k]) * stride + g] +=
            flat[g * ncols + k];
      }
    }
  }
  out->num_groups = num_groups;
  out->mapper = &mapper_;
  out->counts.assign(counts_.begin(), counts_.begin() + num_groups);
  out->values.assign(static_cast<size_t>(num_groups) *
                         query_->aggregates.size(),
                     0);
  for (int g = 0; g < num_groups; ++g) {
    const uint64_t count = counts_[g];
    for (size_t s = 0; s < query_->aggregates.size(); ++s) {
      int64_t value;
      const int input_idx = spec_to_input_[s];
      if (input_idx < 0) {
        value = static_cast<int64_t>(count);
      } else {
        const AggInput& input = inputs_[input_idx];
        if (input.op == AggInput::Op::kSum) {
          value = sums_[static_cast<size_t>(input_idx) * stride + g];
          if (input.compensate) {
            value += input.base * static_cast<int64_t>(count);
          }
        } else {
          const uint64_t raw =
              minmax_[static_cast<size_t>(input_idx) * stride + g];
          value = static_cast<int64_t>(raw);
          if (input.compensate) value += input.base;  // monotonic rebase
        }
      }
      out->values[static_cast<size_t>(g) * query_->aggregates.size() + s] =
          value;
    }
  }
  return Status::OK();
}

}  // namespace bipie
