#include "common/aligned_buffer.h"

#include <cstdlib>
#include <new>

#include "common/failpoint.h"
#include "common/memory_tracker.h"

namespace bipie {

namespace {

// Suspiciously large requests fail fast instead of letting the allocator
// thrash: no single column buffer legitimately approaches 2^48 bytes, but a
// corrupt size field easily does.
constexpr size_t kMaxReasonableBytes = size_t{1} << 48;

// The charge unit: what std::aligned_alloc is actually asked for.
size_t AllocBytes(size_t capacity) {
  return (capacity + AlignedBuffer::kAlignment - 1) /
         AlignedBuffer::kAlignment * AlignedBuffer::kAlignment;
}

}  // namespace

bool AlignedBuffer::TryResize(size_t size) {
  if (BIPIE_FAILPOINT("aligned_buffer/alloc_fail")) return false;
  return ResizeInternal(size);
}

void AlignedBuffer::Resize(size_t size) {
  // Deliberately does not evaluate the alloc failpoint: an injected failure
  // on a trusted path would surface as an uncaught bad_alloc, not the
  // graceful degradation the failpoint exists to exercise. A tracker
  // hard-limit breach *does* surface here — operators catch the bad_alloc
  // at the morsel boundary and turn it into kResourceExhausted.
  if (!ResizeInternal(size)) throw std::bad_alloc();
}

bool AlignedBuffer::ResizeInternal(size_t size) {
  if (size > kMaxReasonableBytes) return false;
  MemoryTracker* const current = CurrentMemoryTracker();
  const size_t needed = size + kPaddingBytes;
  if (needed > capacity_) {
    // Grow geometrically to keep repeated Resize calls amortized O(1).
    size_t new_capacity = capacity_ == 0 ? needed : capacity_;
    while (new_capacity < needed) new_capacity *= 2;
    const size_t alloc_bytes = AllocBytes(new_capacity);
    // Account before allocating, so a limit breach never touches the
    // allocator; a failed charge leaves the buffer (and its old charge)
    // untouched.
    if (!current->TryCharge(alloc_bytes)) return false;
    void* ptr = std::aligned_alloc(kAlignment, alloc_bytes);
    if (ptr == nullptr) {
      current->Release(alloc_bytes);
      return false;
    }
    auto* new_data = static_cast<uint8_t*>(ptr);
    if (data_ != nullptr) {
      std::memcpy(new_data, data_, size_ < size ? size_ : size);
      std::free(data_);
    }
    if (tracker_ != nullptr) tracker_->Release(charged_);
    data_ = new_data;
    capacity_ = new_capacity;
    tracker_ = current;
    charged_ = alloc_bytes;
  } else if (tracker_ != current && charged_ != 0) {
    // Retained capacity reused under a different tracker: re-home the
    // charge so the query now using the buffer pays for it. Charge the new
    // owner first — on failure the old charge stands and the caller sees
    // the same limit breach a fresh allocation would.
    if (!current->TryCharge(charged_)) return false;
    tracker_->Release(charged_);
    tracker_ = current;
  }
  // Zero everything between the preserved prefix and the end of padding so
  // that kernels reading past size() see deterministic bytes.
  const size_t preserved = size_ < size ? size_ : size;
  std::memset(data_ + preserved, 0, size + kPaddingBytes - preserved);
  size_ = size;
  return true;
}

void AlignedBuffer::ShrinkToFit() {
  if (data_ == nullptr) return;
  if (size_ == 0) {
    Free();
    return;
  }
  const size_t needed = size_ + kPaddingBytes;
  const size_t alloc_bytes = AllocBytes(needed);
  if (alloc_bytes >= charged_) return;  // already tight
  void* ptr = std::aligned_alloc(kAlignment, alloc_bytes);
  if (ptr == nullptr) return;  // best effort: keep the larger block
  auto* new_data = static_cast<uint8_t*>(ptr);
  std::memcpy(new_data, data_, size_);
  std::memset(new_data + size_, 0, alloc_bytes - size_);
  std::free(data_);
  data_ = new_data;
  capacity_ = needed;
  if (tracker_ != nullptr) tracker_->Release(charged_ - alloc_bytes);
  charged_ = alloc_bytes;
}

void AlignedBuffer::MoveChargeTo(MemoryTracker& to) {
  if (tracker_ == &to) return;
  if (charged_ != 0) {
    if (tracker_ != nullptr) tracker_->Release(charged_);
    to.ForceCharge(charged_);
  }
  tracker_ = &to;
}

void AlignedBuffer::Free() {
  if (data_ != nullptr) {
    std::free(data_);
    data_ = nullptr;
  }
  if (tracker_ != nullptr && charged_ != 0) tracker_->Release(charged_);
  tracker_ = nullptr;
  size_ = capacity_ = charged_ = 0;
}

}  // namespace bipie
