#include "common/aligned_buffer.h"

#include <cstdlib>
#include <new>

#include "common/failpoint.h"

namespace bipie {

namespace {

// Suspiciously large requests fail fast instead of letting the allocator
// thrash: no single column buffer legitimately approaches 2^48 bytes, but a
// corrupt size field easily does.
constexpr size_t kMaxReasonableBytes = size_t{1} << 48;

}  // namespace

bool AlignedBuffer::TryResize(size_t size) {
  if (BIPIE_FAILPOINT("aligned_buffer/alloc_fail")) return false;
  return ResizeInternal(size);
}

void AlignedBuffer::Resize(size_t size) {
  // Deliberately does not evaluate the alloc failpoint: an injected failure
  // on a trusted path would surface as an uncaught bad_alloc, not the
  // graceful degradation the failpoint exists to exercise.
  if (!ResizeInternal(size)) throw std::bad_alloc();
}

bool AlignedBuffer::ResizeInternal(size_t size) {
  if (size > kMaxReasonableBytes) return false;
  const size_t needed = size + kPaddingBytes;
  if (needed > capacity_) {
    // Grow geometrically to keep repeated Resize calls amortized O(1).
    size_t new_capacity = capacity_ == 0 ? needed : capacity_;
    while (new_capacity < needed) new_capacity *= 2;
    void* ptr = std::aligned_alloc(kAlignment,
                                   (new_capacity + kAlignment - 1) /
                                       kAlignment * kAlignment);
    if (ptr == nullptr) return false;
    auto* new_data = static_cast<uint8_t*>(ptr);
    if (data_ != nullptr) {
      std::memcpy(new_data, data_, size_ < size ? size_ : size);
      std::free(data_);
    }
    data_ = new_data;
    capacity_ = new_capacity;
  }
  // Zero everything between the preserved prefix and the end of padding so
  // that kernels reading past size() see deterministic bytes.
  const size_t preserved = size_ < size ? size_ : size;
  std::memset(data_ + preserved, 0, size + kPaddingBytes - preserved);
  size_ = size;
  return true;
}

void AlignedBuffer::Free() {
  if (data_ != nullptr) {
    std::free(data_);
    data_ = nullptr;
  }
  size_ = capacity_ = 0;
}

}  // namespace bipie
