// Deterministic pseudo-random generators for tests, benchmarks, and the
// TPC-H data generator.
//
// All generators are seeded explicitly so every experiment in EXPERIMENTS.md
// is exactly reproducible.
#ifndef BIPIE_COMMON_RANDOM_H_
#define BIPIE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bipie {

// xoshiro256** — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

// Zipf-distributed values in [0, n). `theta` in (0,1); higher = more skew.
// Used to model the data-skew scenarios of §5.1 (high-frequency group ids).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

// Fills `out` with `n` uniform values in [0, cardinality).
std::vector<uint64_t> MakeUniformValues(size_t n, uint64_t cardinality,
                                        uint64_t seed);

// A selection byte vector (0x00 / 0xFF) where each row is selected with
// probability `selectivity`.
std::vector<uint8_t> MakeSelectionBytes(size_t n, double selectivity,
                                        uint64_t seed);

}  // namespace bipie

#endif  // BIPIE_COMMON_RANDOM_H_
