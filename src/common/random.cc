#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace bipie {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  BIPIE_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  BIPIE_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  BIPIE_DCHECK(n > 0);
  double zetan = 0;
  for (uint64_t i = 1; i <= n; ++i) zetan += 1.0 / std::pow(i, theta);
  zetan_ = zetan;
  double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan);
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

std::vector<uint64_t> MakeUniformValues(size_t n, uint64_t cardinality,
                                        uint64_t seed) {
  std::vector<uint64_t> out(n);
  Rng rng(seed);
  for (auto& v : out) v = rng.NextBounded(cardinality);
  return out;
}

std::vector<uint8_t> MakeSelectionBytes(size_t n, double selectivity,
                                        uint64_t seed) {
  std::vector<uint8_t> out(n);
  Rng rng(seed);
  for (auto& b : out) b = rng.NextBernoulli(selectivity) ? 0xFF : 0x00;
  return out;
}

}  // namespace bipie
