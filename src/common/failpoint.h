// Failpoint fault-injection framework.
//
// A failpoint is a named site in library code where a test (or a fuzz run)
// can force a failure that is hard to provoke naturally: a short read, an
// allocation failure, a checksum mismatch. Library code marks the site with
//
//   if (BIPIE_FAILPOINT("table_io/read_short")) { ...fail path... }
//
// and tests arm it through the process-wide registry:
//
//   Failpoints::FailOnce("table_io/read_short");       // next hit fires
//   Failpoints::FailEveryN("x", 3);                    // hits 3, 6, 9, ...
//   Failpoints::FailWithProbability("x", 0.05, seed);  // seeded coin flips
//   Failpoints::Deactivate("x");                       // back to off
//
// In builds without BIPIE_ENABLE_FAILPOINTS the macro expands to `false`,
// so every site compiles to a dead branch and release hot paths pay
// nothing. The registry itself is always compiled (it is tiny and lets the
// registry unit tests run in every build); only the sites are gated.
//
// Mirrors the failpoint facilities production engines pair with their
// storage formats (ClickHouse's FailPoint, TiKV's fail-rs): deterministic,
// per-point modes, armed and disarmed at runtime.
#ifndef BIPIE_COMMON_FAILPOINT_H_
#define BIPIE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bipie {

class Failpoints {
 public:
  // Arms `name` to fire exactly once, then disarm itself.
  static void FailOnce(const std::string& name);

  // Arms `name` to fire on every n-th evaluation (n >= 1; n == 1 fires on
  // every hit).
  static void FailEveryN(const std::string& name, uint64_t n);

  // Arms `name` to fire with probability `p` per evaluation, driven by a
  // deterministic generator seeded with `seed` (same seed -> same firing
  // pattern).
  static void FailWithProbability(const std::string& name, double p,
                                  uint64_t seed);

  // Disarms one point / all points. Counters are discarded.
  static void Deactivate(const std::string& name);
  static void DeactivateAll();

  // Evaluates one site. Unarmed names return false and are not recorded.
  // Called through BIPIE_FAILPOINT, not directly, so sites vanish from
  // builds without BIPIE_ENABLE_FAILPOINTS.
  static bool Evaluate(const std::string& name);

  // Number of times `name` was evaluated while armed (diagnostics; 0 when
  // never armed).
  static uint64_t HitCount(const std::string& name);

  // Names currently armed, sorted.
  static std::vector<std::string> ActiveNames();
};

// Arms a failpoint for the lifetime of a scope (tests).
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string name) : name_(std::move(name)) {
    Failpoints::FailOnce(name_);
  }
  ScopedFailpoint(std::string name, uint64_t every_n)
      : name_(std::move(name)) {
    Failpoints::FailEveryN(name_, every_n);
  }
  ScopedFailpoint(std::string name, double p, uint64_t seed)
      : name_(std::move(name)) {
    Failpoints::FailWithProbability(name_, p, seed);
  }
  ~ScopedFailpoint() { Failpoints::Deactivate(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace bipie

#if defined(BIPIE_ENABLE_FAILPOINTS)
#define BIPIE_FAILPOINT(name) (::bipie::Failpoints::Evaluate(name))
#else
#define BIPIE_FAILPOINT(name) (false)
#endif

#endif  // BIPIE_COMMON_FAILPOINT_H_
