#include "common/cpu.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace bipie {

namespace {

IsaTier Detect() {
#if defined(__x86_64__) || defined(_M_X64)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    const bool avx2 = (ebx & (1u << 5)) != 0;
    const bool bmi2 = (ebx & (1u << 8)) != 0;
    const bool avx512f = (ebx & (1u << 16)) != 0;
    const bool avx512dq = (ebx & (1u << 17)) != 0;
    const bool avx512bw = (ebx & (1u << 30)) != 0;
    const bool avx512vl = (ebx & (1u << 31)) != 0;
    if (avx2 && bmi2 && avx512f && avx512dq && avx512bw && avx512vl) {
      return IsaTier::kAvx512;
    }
    if (avx2 && bmi2) return IsaTier::kAvx2;
  }
#endif
  return IsaTier::kScalar;
}

IsaTier g_override = IsaTier::kAvx512;  // clamped to detected tier on read

}  // namespace

IsaTier DetectIsaTier() {
  static const IsaTier tier = Detect();
  return tier;
}

IsaTier CurrentIsaTier() {
  const IsaTier detected = DetectIsaTier();
  return g_override < detected ? g_override : detected;
}

void SetIsaTierForTesting(IsaTier tier) { g_override = tier; }

const char* IsaTierName(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

}  // namespace bipie
