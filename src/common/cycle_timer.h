// TSC-based cycle measurement.
//
// The paper reports all results in "elapsed CPU cycles per physical core,
// per input row" (§6). On modern x86 the time-stamp counter ticks at the
// nominal (base) frequency, so rdtsc deltas are the natural way to reproduce
// that unit.
#ifndef BIPIE_COMMON_CYCLE_TIMER_H_
#define BIPIE_COMMON_CYCLE_TIMER_H_

#include <cstdint>

namespace bipie {

// Reads the time-stamp counter with partial serialization (rdtscp-like
// ordering). Monotonic on all supported platforms.
uint64_t ReadCycleCounter();

// Estimated TSC ticks per second, measured once against the steady clock.
// Used to convert cycle counts to wall time in reports.
double TscHz();

// Convenience RAII scope: accumulates elapsed cycles into *sink.
class CycleScope {
 public:
  explicit CycleScope(uint64_t* sink)
      : sink_(sink), start_(ReadCycleCounter()) {}
  ~CycleScope() { *sink_ += ReadCycleCounter() - start_; }

  CycleScope(const CycleScope&) = delete;
  CycleScope& operator=(const CycleScope&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace bipie

#endif  // BIPIE_COMMON_CYCLE_TIMER_H_
