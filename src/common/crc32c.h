// CRC32C (Castagnoli polynomial 0x1EDC6F41), the checksum guarding every
// block of the v2 table file format.
//
// Two implementations sit behind one entry point: a portable slice-by-8
// software path, and the SSE4.2 crc32 instruction path selected at runtime
// on x86-64 hardware that reports the feature. Both produce identical
// results (the hardware instruction implements exactly this polynomial,
// which is why Castagnoli — not the zip/ethernet CRC32 — is the choice of
// storage engines).
//
// The checksum value is stored and compared in the "masked" convention of
// the raw CRC (no final rotation beyond the standard bit-inversion); callers
// that need incremental computation chain through Crc32cExtend.
#ifndef BIPIE_COMMON_CRC32C_H_
#define BIPIE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

// CRC32C of `data[0, n)` continuing from `crc` (the value returned by a
// previous call over the preceding bytes). Pass 0 to start a new stream.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// CRC32C of one complete buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

// True when the process dispatches to the SSE4.2 hardware instruction
// (diagnostics; both paths return identical checksums).
bool Crc32cUsesHardware();

}  // namespace bipie

#endif  // BIPIE_COMMON_CRC32C_H_
