#include "common/crc32c.h"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#include <immintrin.h>

#include "common/cpu.h"
#endif

namespace bipie {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

// Slice-by-8 lookup tables: table[0] is the classic byte-at-a-time table,
// table[k][b] advances byte `b` through k additional zero bytes, letting the
// inner loop fold 8 input bytes per iteration.
struct Tables {
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xFF] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

uint32_t Crc32cSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  const Tables& tb = GetTables();
  crc = ~crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
          tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
          tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
          tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][word >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

#if defined(__x86_64__) || defined(_M_X64)

bool DetectSse42() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 20)) != 0;  // CPUID.1:ECX.SSE4_2
}

bool DetectPclmul() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 1)) != 0;  // CPUID.1:ECX.PCLMULQDQ
}

bool UsePclmul() {
  static const bool use = DetectPclmul();
  return use;
}

// --- PCLMULQDQ folding ------------------------------------------------------
//
// The fastest tier: fold 64 input bytes per iteration through four 128-bit
// lanes with carry-less multiplies (Intel's "Fast CRC Computation Using
// PCLMULQDQ" technique, as structured in the zlib/Chromium SIMD CRC). The
// crc32q chains above peak at 8 bytes/cycle (one crc32 issue per cycle);
// this path is limited by clmul throughput instead and roughly doubles that.
//
// Constants are x^E mod P for the Castagnoli polynomial, bit-reflected and
// shifted left one (the standard trick that lets reflected-domain inputs be
// multiplied without reversing them: reflect(a*b) = reflect(a)*reflect(b)>>1
// under clmul). E is 512±32 for the 64-byte fold, 128±32 for the 16-byte
// fold, 64 for the final 64→32 fold; the last pair is the reflected
// polynomial itself and the reflected Barrett quotient floor(x^64/P). The
// derivation was checked by regenerating the well-known zlib CRC32 constants
// from the same recipe.

// Folds four accumulated 128-bit lanes (lane i holding bytes 16*i ahead of
// lane i-1) plus any whole 16-byte chunks left at `p` down to a 32-bit CRC.
__attribute__((target("sse4.2,pclmul"))) uint32_t Crc32cFoldLanesToCrc(
    __m128i x1, __m128i x2, __m128i x3, __m128i x4, const uint8_t* p,
    size_t n) {
  const __m128i k3k4 = _mm_set_epi64x(0x14cd00bd6, 0xf20c0dfe);
  const __m128i k5k0 = _mm_set_epi64x(0, 0xdd45aab8);
  const __m128i pmu = _mm_set_epi64x(0xdea713f1, 0x105ec76f1);
  // Fold the four lanes into one (each lane is 16 bytes ahead of the last).
  __m128i x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x2);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x3);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x4);
  while (n >= 16) {
    x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }
  // Reduce 128 -> 64 -> 32 bits, then Barrett-reduce modulo P.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  __m128i x0 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x0);
  x0 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k5k0, 0x00);
  x1 = _mm_xor_si128(x1, x0);
  x0 = _mm_and_si128(x1, mask32);
  x0 = _mm_clmulepi64_si128(x0, pmu, 0x10);
  x0 = _mm_and_si128(x0, mask32);
  x0 = _mm_clmulepi64_si128(x0, pmu, 0x00);
  x1 = _mm_xor_si128(x1, x0);
  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

__attribute__((target("sse4.2,pclmul"))) uint32_t Crc32cClmulBulk(
    uint32_t crc, const uint8_t* p, size_t n) {
  // Requires n >= 64 and n % 16 == 0; returns the working (uninverted) CRC.
  const __m128i k1k2 = _mm_set_epi64x(0x9e4addf8, 0x740eef02);
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  p += 64;
  n -= 64;
  while (n >= 64) {
    __m128i x5 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    __m128i x6 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    __m128i x7 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    __m128i x8 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, x6),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, x7),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, x8),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)));
    p += 64;
    n -= 64;
  }
  return Crc32cFoldLanesToCrc(x1, x2, x3, x4, p, n);
}

// VPCLMULQDQ tier: four 512-bit accumulators fold 256 input bytes per
// iteration, each 512-bit carry-less multiply folding four 128-bit lanes at
// once. The 256-byte fold constants are x^(2048±32) mod P in the same
// reflected form, broadcast to every lane; reduction goes 4 zmm → 1 zmm
// (64-byte fold, the xmm kernel's k1k2) → four xmm lanes → the shared tail.
__attribute__((target(
    "avx512f,avx512vl,avx512dq,vpclmulqdq,pclmul,sse4.2"))) uint32_t
Crc32cVpclmulBulk(uint32_t crc, const uint8_t* p, size_t n) {
  // Requires n >= 256 and n % 64 == 0; returns the working CRC.
  const __m512i k256 = _mm512_set_epi64(0xb9e02b86, 0xdcb17aa4, 0xb9e02b86,
                                        0xdcb17aa4, 0xb9e02b86, 0xdcb17aa4,
                                        0xb9e02b86, 0xdcb17aa4);
  const __m512i k64 = _mm512_set_epi64(0x9e4addf8, 0x740eef02, 0x9e4addf8,
                                       0x740eef02, 0x9e4addf8, 0x740eef02,
                                       0x9e4addf8, 0x740eef02);
  __m512i z0 = _mm512_loadu_si512(p);
  __m512i z1 = _mm512_loadu_si512(p + 64);
  __m512i z2 = _mm512_loadu_si512(p + 128);
  __m512i z3 = _mm512_loadu_si512(p + 192);
  z0 = _mm512_xor_si512(
      z0, _mm512_set_epi64(0, 0, 0, 0, 0, 0, 0, static_cast<int64_t>(crc)));
  p += 256;
  n -= 256;
  while (n >= 256) {
    __m512i t0 = _mm512_clmulepi64_epi128(z0, k256, 0x00);
    __m512i t1 = _mm512_clmulepi64_epi128(z1, k256, 0x00);
    __m512i t2 = _mm512_clmulepi64_epi128(z2, k256, 0x00);
    __m512i t3 = _mm512_clmulepi64_epi128(z3, k256, 0x00);
    z0 = _mm512_clmulepi64_epi128(z0, k256, 0x11);
    z1 = _mm512_clmulepi64_epi128(z1, k256, 0x11);
    z2 = _mm512_clmulepi64_epi128(z2, k256, 0x11);
    z3 = _mm512_clmulepi64_epi128(z3, k256, 0x11);
    z0 = _mm512_xor_si512(_mm512_xor_si512(z0, t0), _mm512_loadu_si512(p));
    z1 = _mm512_xor_si512(_mm512_xor_si512(z1, t1),
                          _mm512_loadu_si512(p + 64));
    z2 = _mm512_xor_si512(_mm512_xor_si512(z2, t2),
                          _mm512_loadu_si512(p + 128));
    z3 = _mm512_xor_si512(_mm512_xor_si512(z3, t3),
                          _mm512_loadu_si512(p + 192));
    p += 256;
    n -= 256;
  }
  // Fold the four zmm into one (each 64 bytes ahead of the last).
  __m512i t = _mm512_clmulepi64_epi128(z0, k64, 0x00);
  z0 = _mm512_clmulepi64_epi128(z0, k64, 0x11);
  z1 = _mm512_xor_si512(_mm512_xor_si512(z0, t), z1);
  t = _mm512_clmulepi64_epi128(z1, k64, 0x00);
  z1 = _mm512_clmulepi64_epi128(z1, k64, 0x11);
  z2 = _mm512_xor_si512(_mm512_xor_si512(z1, t), z2);
  t = _mm512_clmulepi64_epi128(z2, k64, 0x00);
  z2 = _mm512_clmulepi64_epi128(z2, k64, 0x11);
  z3 = _mm512_xor_si512(_mm512_xor_si512(z2, t), z3);
  while (n >= 64) {
    t = _mm512_clmulepi64_epi128(z3, k64, 0x00);
    z3 = _mm512_clmulepi64_epi128(z3, k64, 0x11);
    z3 = _mm512_xor_si512(_mm512_xor_si512(z3, t), _mm512_loadu_si512(p));
    p += 64;
    n -= 64;
  }
  // GCC's _mm512_extracti32x4_epi32 passes _mm_undefined_si128 as the
  // masked-out pass-through operand, tripping -Wuninitialized spuriously.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
  return Crc32cFoldLanesToCrc(_mm512_extracti32x4_epi32(z3, 0),
                              _mm512_extracti32x4_epi32(z3, 1),
                              _mm512_extracti32x4_epi32(z3, 2),
                              _mm512_extracti32x4_epi32(z3, 3), p, n);
#pragma GCC diagnostic pop
}

bool DetectVpclmul() {
  if (DetectIsaTier() != IsaTier::kAvx512) return false;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 10)) != 0;  // CPUID.7.0:ECX.VPCLMULQDQ
}

bool UseVpclmul() {
  static const bool use = DetectVpclmul();
  return use;
}

// --- 3-way interleaved hardware CRC ----------------------------------------
//
// A single crc32q dependency chain is latency-bound (~3 cycles per 8 bytes);
// running three independent chains over adjacent sub-blocks triples the
// throughput. The partial CRCs are then merged with precomputed "advance a
// CRC past N zero bytes" operators — CRC32C is linear over GF(2), so such an
// operator is a 32x32 bit matrix, flattened here into 4x256 byte-indexed
// tables exactly like the classic zlib/Adler crc32c implementation.

constexpr size_t kLongBlock = 8192;  // per-lane bytes in the big-stride loop
constexpr size_t kShortBlock = 256;  // per-lane bytes in the cleanup loop

// Multiplies the GF(2) 32x32 matrix `mat` (column vectors) by `vec`.
uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int i = 0; i < 32; ++i) square[i] = Gf2MatrixTimes(mat, mat[i]);
}

// Builds the 4x256 table form of the operator that advances a CRC past
// `len` zero bytes. `len` must be a power of two (repeated squaring of the
// one-byte operator); both block sizes used here are.
struct ZeroOp {
  uint32_t t[4][256];
};

ZeroOp BuildZeroOp(size_t len) {
  // Operator for one zero *bit* is the polynomial shift...
  uint32_t odd[32];
  odd[0] = kPoly;
  for (int i = 1; i < 32; ++i) odd[i] = uint32_t{1} << (i - 1);
  uint32_t even[32];
  // ...squared three times gives one zero *byte* (8 = 2^3 bits).
  Gf2MatrixSquare(even, odd);   // 2 bits
  Gf2MatrixSquare(odd, even);   // 4 bits
  Gf2MatrixSquare(even, odd);   // 8 bits = 1 byte
  // Each further squaring doubles the byte count: len = 2^k needs k more.
  uint32_t* from = even;
  uint32_t* to = odd;
  for (size_t l = len; l > 1; l >>= 1) {
    Gf2MatrixSquare(to, from);
    uint32_t* swap = from;
    from = to;
    to = swap;
  }
  ZeroOp op;
  for (uint32_t b = 0; b < 256; ++b) {
    for (int k = 0; k < 4; ++k) {
      op.t[k][b] = Gf2MatrixTimes(from, b << (8 * k));
    }
  }
  return op;
}

uint32_t ApplyZeroOp(const ZeroOp& op, uint32_t crc) {
  return op.t[0][crc & 0xFF] ^ op.t[1][(crc >> 8) & 0xFF] ^
         op.t[2][(crc >> 16) & 0xFF] ^ op.t[3][crc >> 24];
}

const ZeroOp& LongOp() {
  static const ZeroOp op = BuildZeroOp(kLongBlock);
  return op;
}

const ZeroOp& ShortOp() {
  static const ZeroOp op = BuildZeroOp(kShortBlock);
  return op;
}

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  crc = ~crc;
  // Align to 8 bytes so the word loops below read aligned memory.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  // Bulk of the buffer through the widest clmul folding kernel available;
  // whatever is left (a sub-16-byte tail, or everything on pre-PCLMUL CPUs)
  // falls through to the crc32q tiers below.
  if (UseVpclmul() && n >= 256) {
    const size_t bulk = n & ~size_t{63};
    crc = Crc32cVpclmulBulk(crc, p, bulk);
    p += bulk;
    n -= bulk;
  } else if (UsePclmul() && n >= 64) {
    const size_t bulk = n & ~size_t{15};
    crc = Crc32cClmulBulk(crc, p, bulk);
    p += bulk;
    n -= bulk;
  }
  // Three independent crc32q chains over adjacent sub-blocks, merged by
  // advancing the earlier lanes past the bytes the later lanes covered:
  //   crc(A||B||C) = shift(shift(crc(A)) ^ crc(B)) ^ crc(C).
  while (n >= 3 * kLongBlock) {
    uint64_t c0 = crc, c1 = 0, c2 = 0;
    for (size_t i = 0; i < kLongBlock; i += 8) {
      uint64_t w0, w1, w2;
      std::memcpy(&w0, p + i, 8);
      std::memcpy(&w1, p + i + kLongBlock, 8);
      std::memcpy(&w2, p + i + 2 * kLongBlock, 8);
      c0 = _mm_crc32_u64(c0, w0);
      c1 = _mm_crc32_u64(c1, w1);
      c2 = _mm_crc32_u64(c2, w2);
    }
    crc = ApplyZeroOp(LongOp(), static_cast<uint32_t>(c0)) ^
          static_cast<uint32_t>(c1);
    crc = ApplyZeroOp(LongOp(), crc) ^ static_cast<uint32_t>(c2);
    p += 3 * kLongBlock;
    n -= 3 * kLongBlock;
  }
  while (n >= 3 * kShortBlock) {
    uint64_t c0 = crc, c1 = 0, c2 = 0;
    for (size_t i = 0; i < kShortBlock; i += 8) {
      uint64_t w0, w1, w2;
      std::memcpy(&w0, p + i, 8);
      std::memcpy(&w1, p + i + kShortBlock, 8);
      std::memcpy(&w2, p + i + 2 * kShortBlock, 8);
      c0 = _mm_crc32_u64(c0, w0);
      c1 = _mm_crc32_u64(c1, w1);
      c2 = _mm_crc32_u64(c2, w2);
    }
    crc = ApplyZeroOp(ShortOp(), static_cast<uint32_t>(c0)) ^
          static_cast<uint32_t>(c1);
    crc = ApplyZeroOp(ShortOp(), crc) ^ static_cast<uint32_t>(c2);
    p += 3 * kShortBlock;
    n -= 3 * kShortBlock;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return ~crc;
}

bool UseHardware() {
  static const bool use = DetectSse42();
  return use;
}

#else

bool UseHardware() { return false; }

#endif

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  if (n == 0) return crc;  // empty payloads may pass a null pointer
#if defined(__x86_64__) || defined(_M_X64)
  if (UseHardware()) return Crc32cHardware(crc, p, n);
#endif
  return Crc32cSoftware(crc, p, n);
}

bool Crc32cUsesHardware() { return UseHardware(); }

}  // namespace bipie
