// Error handling primitives: Status and Result<T>.
//
// bipie does not use exceptions; fallible operations return a Status (or a
// Result<T> carrying either a value or a Status). Mirrors the conventions of
// Arrow / RocksDB style database codebases.
#ifndef BIPIE_COMMON_STATUS_H_
#define BIPIE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace bipie {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotSupported,
  kOverflowRisk,
  kCancelled,
  kInternal,
  // Persisted data failed a checksum or a decode-validation invariant. The
  // bytes on disk cannot be trusted; retrying will not help.
  kDataLoss,
  // An allocation or similar resource acquisition failed; the operation was
  // abandoned cleanly and may succeed if retried under less pressure.
  kResourceExhausted,
  // The service cannot take this request right now (overload shedding,
  // draining, or a transport failure/timeout on the way to it). The request
  // was not executed; retrying after a backoff is the expected reaction —
  // the wire protocol carries an optional retry-after hint alongside it.
  kUnavailable,
};

// A success-or-error value. Cheap to copy when OK (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OverflowRisk(std::string msg) {
    return Status(StatusCode::kOverflowRisk, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" rendering.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// Either a T or an error Status. `ValueOrDie()` aborts on error and is meant
// for tests and examples; library code checks `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT (implicit)
  Result(Status status) : value_(std::move(status)) {    // NOLINT (implicit)
    BIPIE_DCHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  T& value() {
    BIPIE_DCHECK(ok());
    return std::get<T>(value_);
  }
  const T& value() const {
    BIPIE_DCHECK(ok());
    return std::get<T>(value_);
  }

  T ValueOrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "Result error: %s\n",
                   std::get<Status>(value_).ToString().c_str());
      std::abort();
    }
    return std::move(std::get<T>(value_));
  }

 private:
  std::variant<T, Status> value_;
};

#define BIPIE_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::bipie::Status _st = (expr);            \
    if (BIPIE_UNLIKELY(!_st.ok())) return _st; \
  } while (0)

}  // namespace bipie

#endif  // BIPIE_COMMON_STATUS_H_
