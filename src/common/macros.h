// Common low-level macros used throughout bipie.
#ifndef BIPIE_COMMON_MACROS_H_
#define BIPIE_COMMON_MACROS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define BIPIE_ALWAYS_INLINE inline __attribute__((always_inline))
#define BIPIE_NOINLINE __attribute__((noinline))
#define BIPIE_LIKELY(x) __builtin_expect(!!(x), 1)
#define BIPIE_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define BIPIE_RESTRICT __restrict__
#else
#define BIPIE_ALWAYS_INLINE inline
#define BIPIE_NOINLINE
#define BIPIE_LIKELY(x) (x)
#define BIPIE_UNLIKELY(x) (x)
#define BIPIE_RESTRICT
#endif

// Internal invariant check, active in all build types. Used for conditions
// that indicate a bug in bipie itself (never for user input validation).
#define BIPIE_DCHECK(cond)                                                    \
  do {                                                                        \
    if (BIPIE_UNLIKELY(!(cond))) {                                            \
      std::fprintf(stderr, "bipie check failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define BIPIE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

#endif  // BIPIE_COMMON_MACROS_H_
