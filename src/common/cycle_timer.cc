#include "common/cycle_timer.h"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace bipie {

uint64_t ReadCycleCounter() {
#if defined(__x86_64__) || defined(_M_X64)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

double TscHz() {
  static const double hz = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = ReadCycleCounter();
    // ~20ms calibration window keeps startup cheap while staying well above
    // clock granularity.
    for (;;) {
      const auto t1 = std::chrono::steady_clock::now();
      if (t1 - t0 >= std::chrono::milliseconds(20)) {
        const uint64_t c1 = ReadCycleCounter();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        return static_cast<double>(c1 - c0) / secs;
      }
    }
  }();
  return hz;
}

}  // namespace bipie
