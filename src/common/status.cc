#include "common/status.h"

namespace bipie {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOverflowRisk:
      return "OverflowRisk";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace bipie
