// Small bit-manipulation helpers shared by the encoders and the Vector
// Toolbox.
#ifndef BIPIE_COMMON_BITS_H_
#define BIPIE_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace bipie {

// Number of bits needed to represent `max_value` (0 needs 1 bit so that a
// packed stream always has a positive width).
inline int BitsRequired(uint64_t max_value) {
  return max_value == 0 ? 1 : 64 - std::countl_zero(max_value);
}

// Smallest power-of-two byte width (1, 2, 4, 8) that holds `bit_width` bits.
// This is the "smallest word" rule of §2.2: unpacked output always uses the
// smallest power-of-two element size all values fit in.
inline int SmallestWordBytes(int bit_width) {
  if (bit_width <= 8) return 1;
  if (bit_width <= 16) return 2;
  if (bit_width <= 32) return 4;
  return 8;
}

// Mask with the low `bits` bits set; bits in [0, 64].
inline uint64_t LowBitsMask(int bits) {
  return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace bipie

#endif  // BIPIE_COMMON_BITS_H_
