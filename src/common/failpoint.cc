#include "common/failpoint.h"

#include <map>
#include <mutex>

namespace bipie {

namespace {

enum class Mode { kFailOnce, kFailEveryN, kProbability };

struct PointState {
  Mode mode = Mode::kFailOnce;
  bool spent = false;       // kFailOnce: already fired
  uint64_t every_n = 1;     // kFailEveryN
  double probability = 0;   // kProbability
  uint64_t rng_state = 1;   // splitmix64 state for kProbability
  uint64_t evaluations = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState> points;
  // Sticky per-name evaluation counters so HitCount survives Deactivate
  // (tests arm, run, disarm, then assert the point was actually reached).
  std::map<std::string, uint64_t> hits;
};

Registry& Global() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

// splitmix64: tiny, seedable, good enough for firing-pattern coins.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Failpoints::FailOnce(const std::string& name) {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  PointState st;
  st.mode = Mode::kFailOnce;
  r.points[name] = st;
}

void Failpoints::FailEveryN(const std::string& name, uint64_t n) {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  PointState st;
  st.mode = Mode::kFailEveryN;
  st.every_n = n == 0 ? 1 : n;
  r.points[name] = st;
}

void Failpoints::FailWithProbability(const std::string& name, double p,
                                     uint64_t seed) {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  PointState st;
  st.mode = Mode::kProbability;
  st.probability = p;
  st.rng_state = seed;
  r.points[name] = st;
}

void Failpoints::Deactivate(const std::string& name) {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.erase(name);
}

void Failpoints::DeactivateAll() {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
}

bool Failpoints::Evaluate(const std::string& name) {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end()) return false;
  PointState& st = it->second;
  ++st.evaluations;
  ++r.hits[name];
  switch (st.mode) {
    case Mode::kFailOnce:
      if (st.spent) return false;
      st.spent = true;
      return true;
    case Mode::kFailEveryN:
      return st.evaluations % st.every_n == 0;
    case Mode::kProbability: {
      // 53-bit uniform double in [0, 1).
      const double u =
          static_cast<double>(NextRandom(&st.rng_state) >> 11) * 0x1.0p-53;
      return u < st.probability;
    }
  }
  return false;
}

uint64_t Failpoints::HitCount(const std::string& name) {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.hits.find(name);
  return it == r.hits.end() ? 0 : it->second;
}

std::vector<std::string> Failpoints::ActiveNames() {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.points.size());
  for (const auto& [name, st] : r.points) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

}  // namespace bipie
