#include "common/memory_tracker.h"

#include <vector>

#include "common/aligned_buffer.h"
#include "common/macros.h"

namespace bipie {

namespace {

thread_local MemoryTracker* t_current_tracker = nullptr;

// The re-home list: thread_local scratch buffers whose retained capacity
// may be charged to a query tracker when that query's scope exits. Plain
// thread_local vector — only ever touched by its own thread.
std::vector<AlignedBuffer*>& ThreadScratchList() {
  thread_local std::vector<AlignedBuffer*> list;
  return list;
}

}  // namespace

MemoryTracker& MemoryTracker::Process() {
  // Leaked deliberately: thread_local scratch buffers Release against the
  // root during thread teardown, which can run after static destructors.
  static MemoryTracker* const process = new MemoryTracker(nullptr, "process");
  return *process;
}

bool MemoryTracker::ChargeOne(size_t bytes) {
  const size_t hard = hard_limit_.load(std::memory_order_relaxed);
  size_t used = used_.load(std::memory_order_relaxed);
  for (;;) {
    const size_t next = used + bytes;
    if (hard != 0 && next > hard) return false;
    if (used_.compare_exchange_weak(used, next, std::memory_order_acq_rel)) {
      used = next;
      break;
    }
  }
  // Peak is monotone between ResetPeak calls; races only ever lose a
  // smaller candidate.
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (used > peak &&
         !peak_.compare_exchange_weak(peak, used, std::memory_order_acq_rel)) {
  }
  const size_t soft = soft_limit_.load(std::memory_order_relaxed);
  if (soft != 0 && used > soft) {
    soft_exceeded_.store(true, std::memory_order_release);
  }
  return true;
}

void MemoryTracker::ReleaseOne(size_t bytes) {
  const size_t before = used_.fetch_sub(bytes, std::memory_order_acq_rel);
  BIPIE_DCHECK(before >= bytes);
  (void)before;
}

bool MemoryTracker::TryCharge(size_t bytes) {
  if (bytes == 0) return true;
  for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
    if (!t->ChargeOne(bytes)) {
      // Roll back the ancestors charged so far: [this, t).
      for (MemoryTracker* u = this; u != t; u = u->parent_) {
        u->ReleaseOne(bytes);
      }
      return false;
    }
  }
  return true;
}

void MemoryTracker::ForceCharge(size_t bytes) {
  if (bytes == 0) return;
  for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
    // ChargeOne without a hard limit cannot fail; re-check is still needed
    // for peak/soft bookkeeping, so route through it with limits ignored.
    size_t used = t->used_.fetch_add(bytes, std::memory_order_acq_rel) + bytes;
    size_t peak = t->peak_.load(std::memory_order_relaxed);
    while (used > peak && !t->peak_.compare_exchange_weak(
                              peak, used, std::memory_order_acq_rel)) {
    }
    const size_t soft = t->soft_limit_.load(std::memory_order_relaxed);
    if (soft != 0 && used > soft) {
      t->soft_exceeded_.store(true, std::memory_order_release);
    }
  }
}

void MemoryTracker::Release(size_t bytes) {
  if (bytes == 0) return;
  for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
    t->ReleaseOne(bytes);
  }
}

MemoryTracker* CurrentMemoryTracker() {
  MemoryTracker* t = t_current_tracker;
  return t != nullptr ? t : &MemoryTracker::Process();
}

MemoryTrackerScope::MemoryTrackerScope(MemoryTracker* tracker)
    : bound_(tracker), prev_(t_current_tracker) {
  if (bound_ != nullptr) t_current_tracker = bound_;
}

MemoryTrackerScope::~MemoryTrackerScope() {
  if (bound_ == nullptr) return;
  // Scratch buffers live past this query; move their retained charge to
  // the root before the query tracker can die.
  for (AlignedBuffer* buffer : ThreadScratchList()) {
    if (buffer->charged_tracker() == bound_) {
      buffer->MoveChargeTo(MemoryTracker::Process());
    }
  }
  t_current_tracker = prev_;
}

void RegisterThreadScratchBuffer(AlignedBuffer* buffer) {
  std::vector<AlignedBuffer*>& list = ThreadScratchList();
  for (AlignedBuffer* b : list) {
    if (b == buffer) return;
  }
  list.push_back(buffer);
}

Status MemoryReservation::Update(size_t total_bytes) {
  if (tracker_ == nullptr) tracker_ = CurrentMemoryTracker();
  if (total_bytes >= bytes_) {
    const size_t delta = total_bytes - bytes_;
    if (!tracker_->TryCharge(delta)) {
      return Status::ResourceExhausted(
          "memory limit exceeded growing an aggregation structure");
    }
  } else {
    tracker_->Release(bytes_ - total_bytes);
  }
  bytes_ = total_bytes;
  return Status::OK();
}

void MemoryReservation::Reset() {
  if (tracker_ != nullptr && bytes_ != 0) tracker_->Release(bytes_);
  bytes_ = 0;
  tracker_ = nullptr;
}

}  // namespace bipie
