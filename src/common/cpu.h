// Runtime CPU feature detection used by the Vector Toolbox dispatcher.
//
// The paper's VectorToolbox ships kernels "compiled for different generations
// of CPUs that can be automatically switched at run-time"; this is the
// switching half. bipie implements three tiers: a portable scalar tier, an
// AVX2 tier (with BMI2), and an AVX-512 tier (F+DQ+BW+VL — mask compares,
// compress-store selection, 64-lane aggregation). The highest supported tier
// is selected per process at first use and is overridable for testing.
#ifndef BIPIE_COMMON_CPU_H_
#define BIPIE_COMMON_CPU_H_

namespace bipie {

enum class IsaTier {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

// Highest tier supported by the hardware this process runs on.
IsaTier DetectIsaTier();

// Tier the Vector Toolbox will dispatch to. Defaults to DetectIsaTier().
IsaTier CurrentIsaTier();

// Overrides the dispatch tier (clamped to the detected tier). Used by tests
// to exercise the scalar fallbacks on SIMD hardware. Not thread-safe with
// concurrent kernel execution; intended for test setup only.
void SetIsaTierForTesting(IsaTier tier);

const char* IsaTierName(IsaTier tier);

}  // namespace bipie

#endif  // BIPIE_COMMON_CPU_H_
