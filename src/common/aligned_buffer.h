// 64-byte aligned, padded byte buffer used for all encoded and decoded
// column data.
//
// SIMD kernels in the Vector Toolbox are allowed to *read* up to
// `kPaddingBytes` past the logical end of any buffer (never write). Every
// buffer handed to a kernel must therefore come from AlignedBuffer (or
// provide equivalent padding).
//
// Memory accounting: every allocation is charged to the thread-current
// MemoryTracker at grow time and released on free (charge on grow, release
// on free — DESIGN.md §13). A buffer whose retained capacity is reused
// under a *different* tracker re-homes its charge on the next Resize, so
// per-query limits cover recycled scratch too. A hard-limit breach makes
// TryResize return false and Resize throw std::bad_alloc, exactly like a
// failed allocation.
#ifndef BIPIE_COMMON_ALIGNED_BUFFER_H_
#define BIPIE_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

#include "common/macros.h"

namespace bipie {

class MemoryTracker;

class AlignedBuffer {
 public:
  // Kernels may read this many bytes past size(). The padding is zeroed.
  static constexpr size_t kPaddingBytes = 64;
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t size) { Resize(size); }

  AlignedBuffer(AlignedBuffer&& other) noexcept { *this = std::move(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      tracker_ = other.tracker_;
      charged_ = other.charged_;
      other.data_ = nullptr;
      other.size_ = other.capacity_ = other.charged_ = 0;
      other.tracker_ = nullptr;
    }
    return *this;
  }

  BIPIE_DISALLOW_COPY_AND_ASSIGN(AlignedBuffer);

  ~AlignedBuffer() { Free(); }

  // Resizes to `size` logical bytes. Existing contents up to
  // min(old, new) size are preserved; the padding tail is re-zeroed.
  // Throws std::bad_alloc when the allocation fails (trusted callers whose
  // sizes derive from in-process data).
  void Resize(size_t size);

  // As Resize, but returns false instead of throwing when the allocation
  // fails — the buffer is left unchanged. This is the entry point for sizes
  // that cross the untrusted-data boundary (table files) and for scratch
  // allocations that must degrade to kResourceExhausted instead of
  // aborting; the "aligned_buffer/alloc_fail" failpoint injects failures
  // here.
  [[nodiscard]] bool TryResize(size_t size);

  // Deep copy helper (copies logical contents only).
  AlignedBuffer Clone() const {
    AlignedBuffer out(size_);
    std::memcpy(out.data_, data_, size_);
    return out;
  }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  template <typename T>
  T* data_as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data_as() const {
    return reinterpret_cast<const T*>(data_);
  }

  // Number of elements of type T that fit in the logical size.
  template <typename T>
  size_t size_as() const {
    return size_ / sizeof(T);
  }

  void ZeroFill() {
    if (data_ != nullptr) std::memset(data_, 0, size_);
  }

  // Releases retained capacity beyond size() + kPaddingBytes back to the
  // allocator and the tracker (geometric growth keeps peak capacity pinned
  // otherwise — a single transient large query would hold it forever).
  // Best effort: kept as-is when the tighter allocation fails.
  void ShrinkToFit();

  // Releases the allocation and its tracked charge.
  void Free();

  // Transfers this buffer's charge to `to` without limit checks (the bytes
  // are already allocated). Used when a buffer's ownership outlives the
  // tracker it was charged to — e.g. loaded table columns become
  // process-owned once LoadTable returns.
  void MoveChargeTo(MemoryTracker& to);

  // Allocation-size bytes currently charged to charged_tracker().
  size_t charged_bytes() const { return charged_; }
  MemoryTracker* charged_tracker() const { return tracker_; }

 private:
  bool ResizeInternal(size_t size);

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;  // allocated bytes including padding
  MemoryTracker* tracker_ = nullptr;  // where charged_ is accounted
  size_t charged_ = 0;                // bytes charged for data_
};

}  // namespace bipie

#endif  // BIPIE_COMMON_ALIGNED_BUFFER_H_
