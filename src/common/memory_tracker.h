// Hierarchical memory accounting (DESIGN.md §13).
//
// Every AlignedBuffer allocation in the process is charged to exactly one
// MemoryTracker. Trackers form a tree rooted at the process-wide
// MemoryTracker::Process(); a query charges a per-query child (owned by its
// QueryContext), and charging a child charges every ancestor, so one atomic
// walk enforces both the per-query and the process-wide limit.
//
// The charge/release contract:
//   * charge on grow, release on free — whoever holds bytes holds a charge
//     of exactly the allocated size, and a buffer's charge always matches
//     its live allocation (asserted by the tracker-balance invariant in
//     tests/test_util.h).
//   * a failed TryCharge rolls back completely (no partial ancestor
//     charges) and the caller's buffer is left unchanged, so limit
//     breaches degrade to kResourceExhausted, never to a torn account.
//   * hard limits fail the charge; soft limits never fail — crossing one
//     latches soft_limit_exceeded() for the owner to report.
//
// Binding: allocation sites do not pass trackers around. The executing
// thread binds the query's tracker with a MemoryTrackerScope for the
// duration of a morsel (or a fallback/load call), and AlignedBuffer
// charges whatever CurrentMemoryTracker() returns at grow time. Scratch
// buffers that outlive the query (thread_local arenas) are registered via
// RegisterThreadScratchBuffer; scope exit re-homes their retained charge
// to the process root so a dying query tracker is never left referenced.
#ifndef BIPIE_COMMON_MEMORY_TRACKER_H_
#define BIPIE_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>

#include "common/status.h"

namespace bipie {

class AlignedBuffer;

class MemoryTracker {
 public:
  // `parent` must outlive this tracker (nullptr for a root).
  explicit MemoryTracker(MemoryTracker* parent = nullptr,
                         const char* label = "tracker")
      : parent_(parent), label_(label) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  // The process-wide root every other tracker chains to. Never destroyed
  // (thread_local scratch buffers release against it at thread exit).
  static MemoryTracker& Process();

  // Accounts `bytes` against this tracker and every ancestor. Returns
  // false — after rolling back completely — when any hard limit on the
  // chain would be exceeded. Crossing a soft limit succeeds and latches
  // soft_limit_exceeded() on the tracker whose limit was crossed.
  [[nodiscard]] bool TryCharge(size_t bytes);

  // As TryCharge but ignores limits: used to transfer an existing charge
  // (the bytes are already allocated; refusing would strand them
  // unaccounted).
  void ForceCharge(size_t bytes);

  // Releases `bytes` from this tracker and every ancestor.
  void Release(size_t bytes);

  // Limits in bytes; 0 = unlimited.
  void set_hard_limit(size_t bytes) {
    hard_limit_.store(bytes, std::memory_order_relaxed);
  }
  void set_soft_limit(size_t bytes) {
    soft_limit_.store(bytes, std::memory_order_relaxed);
  }
  size_t hard_limit() const {
    return hard_limit_.load(std::memory_order_relaxed);
  }
  size_t soft_limit() const {
    return soft_limit_.load(std::memory_order_relaxed);
  }

  size_t used() const { return used_.load(std::memory_order_acquire); }
  size_t peak() const { return peak_.load(std::memory_order_acquire); }
  // Restarts peak tracking from the current usage (bench sampling).
  void ResetPeak() { peak_.store(used(), std::memory_order_release); }

  bool soft_limit_exceeded() const {
    return soft_exceeded_.load(std::memory_order_acquire);
  }
  void reset_soft_limit_exceeded() {
    soft_exceeded_.store(false, std::memory_order_release);
  }

  MemoryTracker* parent() const { return parent_; }
  const char* label() const { return label_; }

 private:
  // Charges one node; returns false on hard-limit breach (node unchanged).
  bool ChargeOne(size_t bytes);
  void ReleaseOne(size_t bytes);

  MemoryTracker* const parent_;
  const char* const label_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<size_t> hard_limit_{0};
  std::atomic<size_t> soft_limit_{0};
  std::atomic<bool> soft_exceeded_{false};
};

// The tracker new AlignedBuffer growth on this thread is charged to.
// Defaults to the process root; never null.
MemoryTracker* CurrentMemoryTracker();

// Binds `tracker` as the thread-current tracker for the scope's lifetime
// (restores the previous binding on exit). A null tracker is a no-op scope.
// On exit, any registered thread-scratch buffer still charged to the bound
// tracker is re-homed to the process root: the scratch outlives the query,
// so its retained capacity must not keep a reference to the query tracker.
class MemoryTrackerScope {
 public:
  explicit MemoryTrackerScope(MemoryTracker* tracker);
  ~MemoryTrackerScope();

  MemoryTrackerScope(const MemoryTrackerScope&) = delete;
  MemoryTrackerScope& operator=(const MemoryTrackerScope&) = delete;

 private:
  MemoryTracker* bound_;
  MemoryTracker* prev_;
};

// Registers a long-lived (thread_local) scratch buffer with this thread's
// re-home list — see MemoryTrackerScope. Idempotent per buffer; the buffer
// must live until thread exit.
void RegisterThreadScratchBuffer(AlignedBuffer* buffer);

// Explicit accounting for allocations AlignedBuffer cannot see (std::vector
// growth in hash tables and run dictionaries). The owner calls Update with
// its current total footprint at natural checkpoints (per batch, per bind);
// the reservation charges the delta against the thread-current tracker at
// first use and releases everything on destruction.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  ~MemoryReservation() { Reset(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  // Adjusts the reservation to `total_bytes`. Shrinking always succeeds;
  // growing returns kResourceExhausted when the tracker's hard limit would
  // be exceeded (the reservation keeps its previous size).
  Status Update(size_t total_bytes);

  // Releases the whole reservation.
  void Reset();

  size_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace bipie

#endif  // BIPIE_COMMON_MEMORY_TRACKER_H_
