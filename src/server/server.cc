#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "core/scan.h"
#include "exec/scheduler.h"
#include "obs/plan_explain.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace bipie::server {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NsBetween(Clock::time_point from, Clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

uint64_t MsBetween(Clock::time_point from, Clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
          .count());
}

obs::Counter& ConnectionsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.connections");
  return c;
}
obs::Counter& QueriesCounter() {
  static obs::Counter& c = obs::Counter::Get("server.queries");
  return c;
}
obs::Counter& QueryErrorsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.query_errors");
  return c;
}
obs::Counter& ProtocolErrorsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.protocol_errors");
  return c;
}
obs::Counter& CancelsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.cancel_frames");
  return c;
}
obs::Counter& BytesReceivedCounter() {
  static obs::Counter& c = obs::Counter::Get("server.bytes_received");
  return c;
}
obs::Counter& BytesSentCounter() {
  static obs::Counter& c = obs::Counter::Get("server.bytes_sent");
  return c;
}
obs::Counter& PingsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.pings");
  return c;
}
obs::Counter& LoadShedCounter() {
  static obs::Counter& c = obs::Counter::Get("server.load_shed");
  return c;
}
obs::Counter& IdleTimeoutsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.timeouts_idle");
  return c;
}
obs::Counter& FrameTimeoutsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.timeouts_frame_read");
  return c;
}
obs::Counter& WriteStallsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.write_stalls");
  return c;
}
obs::Counter& WriteOverflowsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.write_overflow");
  return c;
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

// One client connection: socket state, the session (settings + tracker), the
// at-most-one in-flight query, and the bounded write buffer the IO thread
// drains. Owned by shared_ptr — the IO thread holds one reference, each
// running query job another, so the fd outlives every writer and is closed
// exactly once.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {
    const auto now = Clock::now();
    last_read_activity = now;
    last_write_progress = now;
  }
  ~Connection() {
    // Output still buffered when the connection dies is discarded; its
    // session charge goes with it. After that the session must balance:
    // every query of this session released its tracker chain when it
    // finished (the tracker-balance invariant), and nothing else charges.
    if (wbuf_charged > 0) session_tracker.Release(wbuf_charged);
    wbuf_charged = 0;
    BIPIE_DCHECK(session_tracker.used() == 0);
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  // Receive buffer: bytes read but not yet consumed as frames. NextFrame's
  // payload cap bounds it at one frame of backlog.
  std::vector<uint8_t> rbuf;
  size_t roffset = 0;
  // IO-thread-only deadline state.
  Clock::time_point last_read_activity{};
  bool mid_frame = false;  // rbuf ends inside a partial frame

  // The session: settings deltas applied by SetSetting frames, and the
  // tracker every query of this connection parents under.
  QuerySettings settings;
  MemoryTracker session_tracker{&MemoryTracker::Process(), "session"};

  std::mutex state_mu;  // guards `active`
  std::shared_ptr<ActiveQuery> active;

  // Write side, guarded by write_mu: frames are appended (worker or IO
  // thread) and drained by the IO thread via POLLOUT — a worker never
  // blocks in send. wbuf_charged tracks the buffered-but-unsent bytes
  // charged to session_tracker.
  std::mutex write_mu;
  std::vector<uint8_t> wbuf;
  size_t woffset = 0;
  size_t wbuf_charged = 0;
  Clock::time_point last_write_progress{};
  std::atomic<bool> has_pending_write{false};

  // closing: stop taking input, flush wbuf, then drop (protocol errors —
  // the error frame must still reach the peer). closed: drop now.
  std::atomic<bool> closing{false};
  std::atomic<bool> closed{false};
};

// One in-flight query on a connection, from Query frame to final frame.
struct Server::ActiveQuery {
  explicit ActiveQuery(MemoryTracker* session_tracker)
      : ctx(session_tracker) {}

  QueryContext ctx;
  std::string statement;
  std::string table_name;
  bool explain = false;
  const Table* table = nullptr;
  Clock::time_point enqueued{};
  std::atomic<uint64_t> queue_wait_ns{0};
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), admission_(options_.admission) {}

Server::~Server() { Shutdown(); }

void Server::AddTable(std::string name, const Table* table) {
  tables_[std::move(name)] = table;
}

Status Server::Start() {
  if (started_) return Status::Internal("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind/listen failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_fds_) != 0 || !SetNonBlocking(wake_fds_[0]) ||
      !SetNonBlocking(wake_fds_[1]) || !SetNonBlocking(listen_fd_)) {
    Shutdown();
    return Status::Internal("pipe/nonblock setup failed");
  }

  if (options_.soft_memory_limit_bytes > 0) {
    prev_soft_limit_ = MemoryTracker::Process().soft_limit();
    MemoryTracker::Process().set_soft_limit(options_.soft_memory_limit_bytes);
  }

  started_ = true;
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void Server::Wake() {
  if (wake_fds_[1] >= 0) {
    char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
  }
}

void Server::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;

  // Drain: no new queries, fail everything still queued, let running
  // queries finish.
  draining_.store(true, std::memory_order_release);
  admission_.CancelQueued();
  {
    std::unique_lock<std::mutex> lock(jobs_mu_);
    jobs_cv_.wait(lock, [this] { return jobs_in_flight_ == 0; });
  }

  // Flush: the IO thread keeps draining buffered replies and stops once
  // every connection's output is out (or its write stalled past the
  // timeout — the stall sweep bounds this phase).
  flushing_.store(true, std::memory_order_release);
  Wake();
  io_thread_.join();

  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int i = 0; i < 2; ++i) {
    if (wake_fds_[i] >= 0) ::close(wake_fds_[i]);
    wake_fds_[i] = -1;
  }
  if (options_.soft_memory_limit_bytes > 0) {
    MemoryTracker::Process().set_soft_limit(prev_soft_limit_);
    if (prev_soft_limit_ == 0) {
      MemoryTracker::Process().reset_soft_limit_exceeded();
    }
  }
}

void Server::IoLoop() {
  std::vector<pollfd> pfds;
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    bool accepting = !draining_.load(std::memory_order_acquire) &&
                     connections_.size() < options_.max_connections;
    if (accepting) pfds.push_back({listen_fd_, POLLIN, 0});
    size_t conn_base = pfds.size();
    size_t polled = connections_.size();  // AcceptOne may append more below
    for (const auto& conn : connections_) {
      short events = POLLIN;
      if (conn->has_pending_write.load(std::memory_order_acquire)) {
        events |= POLLOUT;
      }
      pfds.push_back({conn->fd, events, 0});
    }

    int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
    // Sweep queued async waiters for cancels/deadlines every round; 50ms
    // resolution is plenty for deadline granularity.
    admission_.Tick();
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (BIPIE_FAILPOINT("server/poll_delay")) {
      // Delayed wakeup: the IO thread reacts late, as if the machine
      // stalled. Everything must still be correct, just slower.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (accepting && (pfds[conn_base - 1].revents & POLLIN)) AcceptOne();

    // Service each polled connection: drain its write buffer, read and
    // dispatch frames, tick its deadlines; drop finished ones. Only the
    // `polled` prefix of connections_ has a pfd entry — connections
    // AcceptOne just added are picked up next round.
    const auto now = Clock::now();
    for (size_t i = 0; i < polled;) {
      auto conn = connections_[i];
      short revents = pfds[conn_base + i].revents;
      bool alive = true;
      if (!conn->closed.load(std::memory_order_acquire) &&
          (revents & POLLOUT)) {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (!FlushLocked(conn.get())) {
          conn->closed.store(true, std::memory_order_release);
        }
      }
      if (!conn->closed.load(std::memory_order_acquire) &&
          (revents & (POLLIN | POLLERR | POLLHUP))) {
        alive = ServiceReadable(conn);
      }
      if (alive && !conn->closed.load(std::memory_order_acquire)) {
        alive = ConnectionHealthy(conn.get(), now);
      }
      const bool flushed =
          !conn->has_pending_write.load(std::memory_order_acquire);
      if (!alive || conn->closed.load(std::memory_order_acquire) ||
          (conn->closing.load(std::memory_order_acquire) && flushed)) {
        conn->closed.store(true, std::memory_order_release);
        {
          std::lock_guard<std::mutex> lock(conn->state_mu);
          if (conn->active) conn->active->ctx.Cancel();
        }
        connections_.erase(connections_.begin() + static_cast<ptrdiff_t>(i));
        pfds.erase(pfds.begin() + static_cast<ptrdiff_t>(conn_base + i));
        --polled;
      } else {
        ++i;
      }
    }

    // Shutdown flush phase: exit once nothing is left to drain. Stalled
    // peers were closed by the write-stall sweep above, so this terminates.
    if (flushing_.load(std::memory_order_acquire)) {
      bool pending = false;
      for (const auto& conn : connections_) {
        if (conn->has_pending_write.load(std::memory_order_acquire)) {
          pending = true;
          break;
        }
      }
      if (!pending) break;
    }
  }
  // Loop exit: drain finished (no jobs in flight), so dropping our
  // references closes every idle connection.
  for (auto& conn : connections_) {
    conn->closed.store(true, std::memory_order_release);
  }
  connections_.clear();
}

void Server::AcceptOne() {
  while (connections_.size() < options_.max_connections) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again
    if (BIPIE_FAILPOINT("server/accept_fail")) {
      // Simulated accept-path failure (fd exhaustion, transient kernel
      // error): the client sees a closed connection and must retry.
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ConnectionsCounter().Increment();
    connections_.push_back(std::make_shared<Connection>(fd));
  }
}

bool Server::ServiceReadable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  if (conn->closing.load(std::memory_order_acquire)) {
    // The stream is already condemned (protocol error being flushed):
    // swallow whatever the peer still sends so poll stays quiet, and
    // notice the peer going away.
    while (true) {
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) continue;
      if (n == 0) return false;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  while (true) {
    if (BIPIE_FAILPOINT("server/read_reset")) return false;  // ~ECONNRESET
    size_t cap = sizeof(buf);
    if (BIPIE_FAILPOINT("server/read_short")) cap = 1;  // torn read
    ssize_t n = ::recv(conn->fd, buf, cap, 0);
    if (n > 0) {
      BytesReceivedCounter().Add(static_cast<uint64_t>(n));
      conn->rbuf.insert(conn->rbuf.end(), buf, buf + n);
      conn->last_read_activity = Clock::now();
      continue;
    }
    if (n == 0) return false;  // client closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // ECONNRESET and friends
  }

  FrameView frame;
  Status error;
  while (true) {
    FrameScan scan = NextFrame(conn->rbuf, &conn->roffset, &frame, &error);
    if (scan == FrameScan::kNeedMore) break;
    if (scan == FrameScan::kError) {
      // Hostile or corrupt framing: report once, flush the report, then
      // drop the stream (a desynced length prefix cannot be
      // resynchronized).
      ProtocolErrorsCounter().Increment();
      conn->closing.store(true, std::memory_order_release);
      SendFrame(conn, EncodeErrorFrame(error));
      conn->rbuf.clear();
      conn->roffset = 0;
      conn->mid_frame = false;
      return true;
    }
    DispatchFrame(conn, frame);
    if (conn->closed.load(std::memory_order_acquire)) return false;
    if (conn->closing.load(std::memory_order_acquire)) {
      conn->rbuf.clear();
      conn->roffset = 0;
      conn->mid_frame = false;
      return true;
    }
  }
  conn->rbuf.erase(conn->rbuf.begin(),
                   conn->rbuf.begin() +
                       static_cast<std::ptrdiff_t>(conn->roffset));
  conn->roffset = 0;
  conn->mid_frame = !conn->rbuf.empty();
  return true;
}

bool Server::ConnectionHealthy(Connection* conn, Clock::time_point now) {
  // Write stall: buffered output exists and the socket took none of it for
  // too long — the peer stopped reading. Forfeits the rest of the reply.
  if (options_.write_stall_timeout_ms > 0 &&
      conn->has_pending_write.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->woffset < conn->wbuf.size() &&
        MsBetween(conn->last_write_progress, now) >=
            options_.write_stall_timeout_ms) {
      WriteStallsCounter().Increment();
      return false;
    }
  }
  if (conn->closing.load(std::memory_order_acquire)) return true;
  if (conn->mid_frame) {
    // Stuck mid-frame: the peer sent a length prefix and stalled. A torn
    // sender cannot pin a socket indefinitely.
    if (options_.frame_read_timeout_ms > 0 &&
        MsBetween(conn->last_read_activity, now) >=
            options_.frame_read_timeout_ms) {
      FrameTimeoutsCounter().Increment();
      return false;
    }
    return true;
  }
  if (options_.idle_timeout_ms > 0 &&
      !conn->has_pending_write.load(std::memory_order_acquire)) {
    bool busy;
    {
      std::lock_guard<std::mutex> lock(conn->state_mu);
      busy = conn->active != nullptr;
    }
    if (!busy && MsBetween(conn->last_read_activity, now) >=
                     options_.idle_timeout_ms) {
      IdleTimeoutsCounter().Increment();
      return false;
    }
  }
  return true;
}

void Server::DispatchFrame(const std::shared_ptr<Connection>& conn,
                           const FrameView& frame) {
  switch (frame.type) {
    case FrameType::kSetSetting: {
      std::string name, value;
      Status st = DecodeSetSettingFrame(frame, &name, &value);
      if (!st.ok()) {
        ProtocolErrorsCounter().Increment();
        conn->closing.store(true, std::memory_order_release);
        SendFrame(conn, EncodeErrorFrame(st));
        return;
      }
      // Unknown names / bad values are user errors, not protocol errors:
      // the session survives them.
      st = conn->settings.Set(name, value);
      SendFrame(conn, st.ok() ? EncodeOkFrame() : EncodeErrorFrame(st));
      return;
    }
    case FrameType::kCancel: {
      CancelsCounter().Increment();
      std::shared_ptr<ActiveQuery> active;
      {
        std::lock_guard<std::mutex> lock(conn->state_mu);
        active = conn->active;
      }
      // Cancelling with nothing in flight is a no-op, not an error (the
      // query may have finished while the frame was in transit).
      if (active) active->ctx.Cancel();
      return;
    }
    case FrameType::kPing: {
      // Liveness probe: answered inline on the IO thread, so it bypasses
      // the admission queue by construction and works even while a drain
      // or an overload rejects every query.
      uint64_t token = 0;
      Status st = DecodePingFrame(frame, &token);
      if (!st.ok()) {
        ProtocolErrorsCounter().Increment();
        conn->closing.store(true, std::memory_order_release);
        SendFrame(conn, EncodeErrorFrame(st));
        return;
      }
      PingsCounter().Increment();
      SendFrame(conn, EncodePongFrame(token));
      return;
    }
    case FrameType::kQuery:
      HandleQueryFrame(conn, frame);
      return;
    default:
      // Server->client frame types from a client are protocol violations.
      ProtocolErrorsCounter().Increment();
      conn->closing.store(true, std::memory_order_release);
      SendFrame(conn, EncodeErrorFrame(Status::InvalidArgument(
                          "protocol error: unexpected client frame type")));
      return;
  }
}

bool Server::ShedActive(uint32_t* retry_after_ms) const {
  if (options_.soft_memory_limit_bytes > 0 &&
      MemoryTracker::Process().used() >= options_.soft_memory_limit_bytes) {
    *retry_after_ms = 200;
    return true;
  }
  if (options_.shed_queue_wait_ms > 0) {
    const uint64_t wait_ms = admission_.OldestWaitMs(QueryPriority::kLow);
    if (wait_ms >= options_.shed_queue_wait_ms) {
      // Hint roughly the backlog's age: retrying sooner would just rejoin
      // the same queue.
      *retry_after_ms = static_cast<uint32_t>(
          std::min<uint64_t>(std::max<uint64_t>(wait_ms, 50), 60000));
      return true;
    }
  }
  return false;
}

bool Server::degraded() const {
  uint32_t unused = 0;
  return ShedActive(&unused);
}

void Server::HandleQueryFrame(const std::shared_ptr<Connection>& conn,
                              const FrameView& frame) {
  std::string sql;
  Status st = DecodeQueryFrame(frame, &sql);
  if (!st.ok()) {
    ProtocolErrorsCounter().Increment();
    conn->closing.store(true, std::memory_order_release);
    SendFrame(conn, EncodeErrorFrame(st));
    return;
  }
  QueriesCounter().Increment();

  if (draining_.load(std::memory_order_acquire)) {
    QueryErrorsCounter().Increment();
    SendFrame(conn, EncodeErrorFrame(
                        Status::Unavailable("server is shutting down"),
                        /*retry_after_ms=*/1000));
    return;
  }

  QueryPriority priority = QueryPriority::kNormal;
  if (!conn->settings.priority().empty()) {
    ParseQueryPriority(conn->settings.priority(), &priority);
  }

  // Overload shedding: while the process sits above its soft memory limit
  // or the low band's queue delay is over the threshold, low-band queries
  // are rejected up front — never queued — with a retry-after hint. High
  // and normal bands keep flowing; this is the graceful part of degrading.
  uint32_t retry_after_ms = 0;
  if (priority == QueryPriority::kLow && ShedActive(&retry_after_ms)) {
    LoadShedCounter().Increment();
    QueryErrorsCounter().Increment();
    SendFrame(conn,
              EncodeErrorFrame(Status::Unavailable(
                                   "server overloaded: low-priority query "
                                   "shed, retry later"),
                               retry_after_ms));
    return;
  }

  // Schema-free pre-parse: enough to route to a table and spot EXPLAIN.
  // The full parse happens on the worker, against the table's schema.
  Result<PreparsedQuery> pre = PreparseQuery(sql);
  if (!pre.ok()) {
    QueryErrorsCounter().Increment();
    SendFrame(conn, EncodeErrorFrame(pre.status()));
    return;
  }
  auto table_it = tables_.find(pre.value().table_name);
  if (table_it == tables_.end()) {
    QueryErrorsCounter().Increment();
    SendFrame(conn, EncodeErrorFrame(Status::InvalidArgument(
                        "unknown table '" + pre.value().table_name + "'")));
    return;
  }

  std::shared_ptr<ActiveQuery> query;
  {
    std::lock_guard<std::mutex> lock(conn->state_mu);
    if (conn->active) {
      QueryErrorsCounter().Increment();
      SendFrame(conn, EncodeErrorFrame(Status::InvalidArgument(
                          "a query is already in flight on this "
                          "connection")));
      return;
    }
    query = std::make_shared<ActiveQuery>(&conn->session_tracker);
    conn->active = query;
  }
  query->statement = std::move(pre.value().statement);
  query->table_name = std::move(pre.value().table_name);
  query->explain = pre.value().explain;
  query->table = table_it->second;
  // Session settings become the query's settings; the deadline clock starts
  // now, so time spent queued counts against it (Tick expires queued
  // queries whose deadline passes before a slot frees up).
  query->ctx.settings() = conn->settings;
  query->ctx.ApplySettings();
  query->enqueued = Clock::now();

  st = admission_.Enqueue(
      priority, &query->ctx,
      [this, conn, query](Status admit, AdmissionController::Ticket ticket) {
        query->queue_wait_ns.store(NsBetween(query->enqueued, Clock::now()),
                                   std::memory_order_relaxed);
        if (!admit.ok()) {
          QueryErrorsCounter().Increment();
          SendFrame(conn, EncodeErrorFrame(admit));
          std::lock_guard<std::mutex> lock(conn->state_mu);
          if (conn->active == query) conn->active.reset();
          return;
        }
        SubmitQueryJob(conn, query, std::move(ticket));
      });
  if (!st.ok()) {
    // Band queue full: structured saturation answer, connection kept.
    QueryErrorsCounter().Increment();
    SendFrame(conn, EncodeErrorFrame(st));
    std::lock_guard<std::mutex> lock(conn->state_mu);
    if (conn->active == query) conn->active.reset();
  }
}

void Server::SubmitQueryJob(std::shared_ptr<Connection> conn,
                            std::shared_ptr<ActiveQuery> query,
                            AdmissionController::Ticket ticket) {
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    ++jobs_in_flight_;
  }
  // Scheduler tasks must be copyable; the move-only ticket rides in a
  // shared_ptr and is released only after the query's frames are buffered,
  // so the slot stays held for the query's whole execution.
  auto held = std::make_shared<AdmissionController::Ticket>(std::move(ticket));
  Scheduler::Global().Submit([this, conn, query, held]() mutable {
    std::vector<uint8_t> terminal = RunQuery(conn, query);
    held->Release();
    // Clear the active-query slot BEFORE the terminal frame goes out: a
    // request-response client that reads the terminal frame and fires its
    // next query must find the connection free.
    FinishQuery(conn, query);
    SendFrame(conn, terminal);
    // Drop the captured references BEFORE counting the job done: once
    // jobs_in_flight_ hits zero, Shutdown may proceed on the promise that
    // no job still pins a Connection (and its socket) — a ref released
    // after the decrement would hold the fd past Shutdown's return.
    conn.reset();
    query.reset();
    held.reset();
    // Count the job done only AFTER the terminal frame is buffered:
    // Shutdown's drain waits on this count, then its flush phase waits for
    // the buffers themselves, so a drained query's client still reads its
    // full reply. Notify under the mutex: once the count drops, Shutdown
    // may return and destroy the condvar, so the notify must already be
    // over by then.
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      --jobs_in_flight_;
      jobs_cv_.notify_all();
    }
  });
}

std::vector<uint8_t> Server::RunQuery(
    const std::shared_ptr<Connection>& conn,
    const std::shared_ptr<ActiveQuery>& query) {
  if (options_.before_execute_hook) options_.before_execute_hook(&query->ctx);

  Result<ParsedQuery> parsed = ParseQuery(query->statement, *query->table);
  if (!parsed.ok()) {
    QueryErrorsCounter().Increment();
    return EncodeErrorFrame(parsed.status());
  }

  ScanOptions scan_options = MakeScanOptions(&query->ctx);
  // The server already holds this query's admission slot; the scan's own
  // admission call goes through the unlimited pass-through so the query is
  // never queued twice.
  scan_options.admission = &passthrough_;
  BIPieScan scan(*query->table, std::move(parsed.value().spec), scan_options);

  if (query->explain) {
    Result<PlanExplain> plan = scan.Explain();
    if (!plan.ok()) {
      QueryErrorsCounter().Increment();
      return EncodeErrorFrame(plan.status());
    }
    return EncodeExplainFrame(plan.value().ToText());
  }

  Clock::time_point exec_start = Clock::now();
  Result<QueryResult> result = scan.Execute();
  if (!result.ok()) {
    // Execution failures — including kCancelled and a memory limit's
    // kResourceExhausted — are clean Error frames; the connection and its
    // session live on.
    QueryErrorsCounter().Increment();
    return EncodeErrorFrame(result.status());
  }

  std::vector<std::vector<uint8_t>> frames;
  EncodeResultFrames(result.value(), &frames);
  for (const auto& frame : frames) {
    if (!SendFrame(conn, frame)) break;  // terminal send will no-op too
  }

  QueryStatsWire wire;
  const ScanStats& stats = scan.stats();
  wire.rows_scanned = stats.rows_scanned;
  wire.rows_selected = stats.rows_selected;
  wire.batches = stats.batches;
  wire.segments_scanned = stats.segments_scanned;
  wire.segments_eliminated = stats.segments_eliminated;
  wire.runs_aggregated = stats.runs_aggregated;
  wire.queue_wait_ns = query->queue_wait_ns.load(std::memory_order_relaxed);
  wire.exec_ns = NsBetween(exec_start, Clock::now());
  wire.peak_memory_bytes = query->ctx.memory_tracker().peak();
  wire.used_hash_fallback = stats.used_hash_fallback;
  wire.degraded = degraded();
  return EncodeStatsFrame(wire);
}

void Server::FinishQuery(const std::shared_ptr<Connection>& conn,
                         const std::shared_ptr<ActiveQuery>& query) {
  std::lock_guard<std::mutex> lock(conn->state_mu);
  if (conn->active == query) conn->active.reset();
}

bool Server::FlushLocked(Connection* conn) {
  while (conn->woffset < conn->wbuf.size()) {
    size_t left = conn->wbuf.size() - conn->woffset;
    if (BIPIE_FAILPOINT("server/send_fail")) return false;  // ~EPIPE
    if (BIPIE_FAILPOINT("server/send_partial")) left = 1;   // torn write
    ssize_t n =
        ::send(conn->fd, conn->wbuf.data() + conn->woffset, left, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woffset += static_cast<size_t>(n);
      conn->last_write_progress = Clock::now();
      BytesSentCounter().Add(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // ECONNRESET / EPIPE: peer is gone
  }
  // Compact and hand back the drained bytes' session charge.
  if (conn->woffset == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->woffset = 0;
  } else if (conn->woffset >= (256u << 10)) {
    conn->wbuf.erase(conn->wbuf.begin(),
                     conn->wbuf.begin() +
                         static_cast<std::ptrdiff_t>(conn->woffset));
    conn->woffset = 0;
  }
  const size_t pending = conn->wbuf.size() - conn->woffset;
  if (conn->wbuf_charged > pending) {
    conn->session_tracker.Release(conn->wbuf_charged - pending);
    conn->wbuf_charged = pending;
  }
  conn->has_pending_write.store(pending > 0, std::memory_order_release);
  return true;
}

bool Server::SendFrame(const std::shared_ptr<Connection>& conn,
                       const std::vector<uint8_t>& frame) {
  if (conn->closed.load(std::memory_order_acquire)) return false;
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    const size_t pending = conn->wbuf.size() - conn->woffset;
    if (pending > options_.write_buffer_limit_bytes) {
      // Backpressure terminal: the peer is not draining and the buffer is
      // over its bound. The frame (and the rest of the reply) is
      // forfeited; the connection closes. Checked before appending, so
      // any single frame fits while the buffer is under the limit.
      WriteOverflowsCounter().Increment();
      conn->closed.store(true, std::memory_order_release);
      return false;
    }
    if (pending == 0) conn->last_write_progress = Clock::now();
    conn->wbuf.insert(conn->wbuf.end(), frame.begin(), frame.end());
    // Buffered output is session memory: ForceCharge (the bytes exist
    // either way) so a hoarding client shows up in the tracker hierarchy.
    conn->session_tracker.ForceCharge(frame.size());
    conn->wbuf_charged += frame.size();
    if (!FlushLocked(conn.get())) {
      conn->closed.store(true, std::memory_order_release);
      return false;
    }
    need_wake = conn->has_pending_write.load(std::memory_order_acquire);
  }
  // Residue stays for the IO thread: make sure its poll set includes
  // POLLOUT for this fd promptly.
  if (need_wake) Wake();
  return true;
}

}  // namespace bipie::server
