#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "core/scan.h"
#include "exec/scheduler.h"
#include "obs/plan_explain.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace bipie::server {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NsBetween(Clock::time_point from, Clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

obs::Counter& ConnectionsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.connections");
  return c;
}
obs::Counter& QueriesCounter() {
  static obs::Counter& c = obs::Counter::Get("server.queries");
  return c;
}
obs::Counter& QueryErrorsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.query_errors");
  return c;
}
obs::Counter& ProtocolErrorsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.protocol_errors");
  return c;
}
obs::Counter& CancelsCounter() {
  static obs::Counter& c = obs::Counter::Get("server.cancel_frames");
  return c;
}
obs::Counter& BytesReceivedCounter() {
  static obs::Counter& c = obs::Counter::Get("server.bytes_received");
  return c;
}
obs::Counter& BytesSentCounter() {
  static obs::Counter& c = obs::Counter::Get("server.bytes_sent");
  return c;
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

// One client connection: socket state, the session (settings + tracker) and
// the at-most-one in-flight query. Owned by shared_ptr — the IO thread holds
// one reference, each running query job another, so the fd outlives every
// writer and is closed exactly once.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  // Receive buffer: bytes read but not yet consumed as frames. NextFrame's
  // payload cap bounds it at one frame of backlog.
  std::vector<uint8_t> rbuf;
  size_t roffset = 0;

  // The session: settings deltas applied by SetSetting frames, and the
  // tracker every query of this connection parents under.
  QuerySettings settings;
  MemoryTracker session_tracker{&MemoryTracker::Process(), "session"};

  std::mutex state_mu;  // guards `active`
  std::shared_ptr<ActiveQuery> active;

  std::mutex write_mu;  // serializes frame writes (worker vs IO thread)
  std::atomic<bool> closed{false};
};

// One in-flight query on a connection, from Query frame to final frame.
struct Server::ActiveQuery {
  explicit ActiveQuery(MemoryTracker* session_tracker)
      : ctx(session_tracker) {}

  QueryContext ctx;
  std::string statement;
  std::string table_name;
  bool explain = false;
  const Table* table = nullptr;
  Clock::time_point enqueued{};
  std::atomic<uint64_t> queue_wait_ns{0};
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), admission_(options_.admission) {}

Server::~Server() { Shutdown(); }

void Server::AddTable(std::string name, const Table* table) {
  tables_[std::move(name)] = table;
}

Status Server::Start() {
  if (started_) return Status::Internal("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind/listen failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_fds_) != 0 || !SetNonBlocking(wake_fds_[0]) ||
      !SetNonBlocking(wake_fds_[1]) || !SetNonBlocking(listen_fd_)) {
    Shutdown();
    return Status::Internal("pipe/nonblock setup failed");
  }

  started_ = true;
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void Server::Wake() {
  if (wake_fds_[1] >= 0) {
    char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
  }
}

void Server::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;

  // Drain: no new queries, fail everything still queued, let running
  // queries finish and flush their frames.
  draining_.store(true, std::memory_order_release);
  admission_.CancelQueued();
  {
    std::unique_lock<std::mutex> lock(jobs_mu_);
    jobs_cv_.wait(lock, [this] { return jobs_in_flight_ == 0; });
  }

  stopping_.store(true, std::memory_order_release);
  Wake();
  io_thread_.join();

  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int i = 0; i < 2; ++i) {
    if (wake_fds_[i] >= 0) ::close(wake_fds_[i]);
    wake_fds_[i] = -1;
  }
}

void Server::IoLoop() {
  std::vector<pollfd> pfds;
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    bool accepting = !draining_.load(std::memory_order_acquire) &&
                     connections_.size() < options_.max_connections;
    if (accepting) pfds.push_back({listen_fd_, POLLIN, 0});
    size_t conn_base = pfds.size();
    size_t polled = connections_.size();  // AcceptOne may append more below
    for (const auto& conn : connections_) {
      pfds.push_back({conn->fd, POLLIN, 0});
    }

    int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
    // Sweep queued async waiters for cancels/deadlines every round; 50ms
    // resolution is plenty for deadline granularity.
    admission_.Tick();
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (accepting && (pfds[conn_base - 1].revents & POLLIN)) AcceptOne();

    // Service readable/erroring connections; drop finished ones. Only the
    // `polled` prefix of connections_ has a pfd entry — connections
    // AcceptOne just added are picked up next round.
    for (size_t i = 0; i < polled;) {
      short revents = pfds[conn_base + i].revents;
      bool alive = true;
      if (revents & (POLLIN | POLLERR | POLLHUP)) {
        alive = ServiceReadable(connections_[i]);
      }
      if (!alive || connections_[i]->closed.load(std::memory_order_acquire)) {
        auto conn = connections_[i];
        conn->closed.store(true, std::memory_order_release);
        {
          std::lock_guard<std::mutex> lock(conn->state_mu);
          if (conn->active) conn->active->ctx.Cancel();
        }
        connections_.erase(connections_.begin() + i);
        pfds.erase(pfds.begin() + conn_base + i);
        --polled;
      } else {
        ++i;
      }
    }
  }
  // Loop exit: drain finished (no jobs in flight), so dropping our
  // references closes every idle connection.
  for (auto& conn : connections_) {
    conn->closed.store(true, std::memory_order_release);
  }
  connections_.clear();
}

void Server::AcceptOne() {
  while (connections_.size() < options_.max_connections) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ConnectionsCounter().Increment();
    connections_.push_back(std::make_shared<Connection>(fd));
  }
}

bool Server::ServiceReadable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      BytesReceivedCounter().Add(static_cast<uint64_t>(n));
      conn->rbuf.insert(conn->rbuf.end(), buf, buf + n);
      continue;
    }
    if (n == 0) return false;  // client closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // ECONNRESET and friends
  }

  FrameView frame;
  Status error;
  while (true) {
    FrameScan scan = NextFrame(conn->rbuf, &conn->roffset, &frame, &error);
    if (scan == FrameScan::kNeedMore) break;
    if (scan == FrameScan::kError) {
      // Hostile or corrupt framing: report once, then drop the stream (a
      // desynced length prefix cannot be resynchronized).
      ProtocolErrorsCounter().Increment();
      SendFrame(conn, EncodeErrorFrame(error));
      return false;
    }
    DispatchFrame(conn, frame);
    if (conn->closed.load(std::memory_order_acquire)) return false;
  }
  conn->rbuf.erase(conn->rbuf.begin(),
                   conn->rbuf.begin() +
                       static_cast<std::ptrdiff_t>(conn->roffset));
  conn->roffset = 0;
  return true;
}

void Server::DispatchFrame(const std::shared_ptr<Connection>& conn,
                           const FrameView& frame) {
  switch (frame.type) {
    case FrameType::kSetSetting: {
      std::string name, value;
      Status st = DecodeSetSettingFrame(frame, &name, &value);
      if (!st.ok()) {
        ProtocolErrorsCounter().Increment();
        SendFrame(conn, EncodeErrorFrame(st));
        conn->closed.store(true, std::memory_order_release);
        return;
      }
      // Unknown names / bad values are user errors, not protocol errors:
      // the session survives them.
      st = conn->settings.Set(name, value);
      SendFrame(conn, st.ok() ? EncodeOkFrame() : EncodeErrorFrame(st));
      return;
    }
    case FrameType::kCancel: {
      CancelsCounter().Increment();
      std::shared_ptr<ActiveQuery> active;
      {
        std::lock_guard<std::mutex> lock(conn->state_mu);
        active = conn->active;
      }
      // Cancelling with nothing in flight is a no-op, not an error (the
      // query may have finished while the frame was in transit).
      if (active) active->ctx.Cancel();
      return;
    }
    case FrameType::kQuery:
      HandleQueryFrame(conn, frame);
      return;
    default:
      // Server->client frame types from a client are protocol violations.
      ProtocolErrorsCounter().Increment();
      SendFrame(conn, EncodeErrorFrame(Status::InvalidArgument(
                          "protocol error: unexpected client frame type")));
      conn->closed.store(true, std::memory_order_release);
      return;
  }
}

void Server::HandleQueryFrame(const std::shared_ptr<Connection>& conn,
                              const FrameView& frame) {
  std::string sql;
  Status st = DecodeQueryFrame(frame, &sql);
  if (!st.ok()) {
    ProtocolErrorsCounter().Increment();
    SendFrame(conn, EncodeErrorFrame(st));
    conn->closed.store(true, std::memory_order_release);
    return;
  }
  QueriesCounter().Increment();

  if (draining_.load(std::memory_order_acquire)) {
    QueryErrorsCounter().Increment();
    SendFrame(conn, EncodeErrorFrame(
                        Status::Cancelled("server is shutting down")));
    return;
  }

  // Schema-free pre-parse: enough to route to a table and spot EXPLAIN.
  // The full parse happens on the worker, against the table's schema.
  Result<PreparsedQuery> pre = PreparseQuery(sql);
  if (!pre.ok()) {
    QueryErrorsCounter().Increment();
    SendFrame(conn, EncodeErrorFrame(pre.status()));
    return;
  }
  auto table_it = tables_.find(pre.value().table_name);
  if (table_it == tables_.end()) {
    QueryErrorsCounter().Increment();
    SendFrame(conn, EncodeErrorFrame(Status::InvalidArgument(
                        "unknown table '" + pre.value().table_name + "'")));
    return;
  }

  std::shared_ptr<ActiveQuery> query;
  {
    std::lock_guard<std::mutex> lock(conn->state_mu);
    if (conn->active) {
      QueryErrorsCounter().Increment();
      SendFrame(conn, EncodeErrorFrame(Status::InvalidArgument(
                          "a query is already in flight on this "
                          "connection")));
      return;
    }
    query = std::make_shared<ActiveQuery>(&conn->session_tracker);
    conn->active = query;
  }
  query->statement = std::move(pre.value().statement);
  query->table_name = std::move(pre.value().table_name);
  query->explain = pre.value().explain;
  query->table = table_it->second;
  // Session settings become the query's settings; the deadline clock starts
  // now, so time spent queued counts against it (Tick expires queued
  // queries whose deadline passes before a slot frees up).
  query->ctx.settings() = conn->settings;
  query->ctx.ApplySettings();
  query->enqueued = Clock::now();

  QueryPriority priority = QueryPriority::kNormal;
  if (!query->ctx.settings().priority().empty()) {
    ParseQueryPriority(query->ctx.settings().priority(), &priority);
  }

  st = admission_.Enqueue(
      priority, &query->ctx,
      [this, conn, query](Status admit, AdmissionController::Ticket ticket) {
        query->queue_wait_ns.store(NsBetween(query->enqueued, Clock::now()),
                                   std::memory_order_relaxed);
        if (!admit.ok()) {
          QueryErrorsCounter().Increment();
          SendFrame(conn, EncodeErrorFrame(admit));
          std::lock_guard<std::mutex> lock(conn->state_mu);
          if (conn->active == query) conn->active.reset();
          return;
        }
        SubmitQueryJob(conn, query, std::move(ticket));
      });
  if (!st.ok()) {
    // Band queue full: structured saturation answer, connection kept.
    QueryErrorsCounter().Increment();
    SendFrame(conn, EncodeErrorFrame(st));
    std::lock_guard<std::mutex> lock(conn->state_mu);
    if (conn->active == query) conn->active.reset();
  }
}

void Server::SubmitQueryJob(std::shared_ptr<Connection> conn,
                            std::shared_ptr<ActiveQuery> query,
                            AdmissionController::Ticket ticket) {
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    ++jobs_in_flight_;
  }
  // Scheduler tasks must be copyable; the move-only ticket rides in a
  // shared_ptr and is released only after the query's frames are flushed,
  // so the slot stays held for the query's whole wall-clock run.
  auto held = std::make_shared<AdmissionController::Ticket>(std::move(ticket));
  Scheduler::Global().Submit([this, conn, query, held]() {
    std::vector<uint8_t> terminal = RunQuery(conn, query);
    held->Release();
    // Clear the active-query slot BEFORE the terminal frame goes out: a
    // request-response client that reads the terminal frame and fires its
    // next query must find the connection free.
    FinishQuery(conn, query);
    SendFrame(conn, terminal);
    // Count the job done only AFTER the terminal frame is flushed:
    // Shutdown's drain waits on this count before it tears the sockets
    // down, and a drained query's client must still read its full reply.
    // Notify under the mutex: once it drops, Shutdown may return and
    // destroy the condvar, so the notify must already be over by then.
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      --jobs_in_flight_;
      jobs_cv_.notify_all();
    }
  });
}

std::vector<uint8_t> Server::RunQuery(
    const std::shared_ptr<Connection>& conn,
    const std::shared_ptr<ActiveQuery>& query) {
  if (options_.before_execute_hook) options_.before_execute_hook(&query->ctx);

  Result<ParsedQuery> parsed = ParseQuery(query->statement, *query->table);
  if (!parsed.ok()) {
    QueryErrorsCounter().Increment();
    return EncodeErrorFrame(parsed.status());
  }

  ScanOptions scan_options = MakeScanOptions(&query->ctx);
  // The server already holds this query's admission slot; the scan's own
  // admission call goes through the unlimited pass-through so the query is
  // never queued twice.
  scan_options.admission = &passthrough_;
  BIPieScan scan(*query->table, std::move(parsed.value().spec), scan_options);

  if (query->explain) {
    Result<PlanExplain> plan = scan.Explain();
    if (!plan.ok()) {
      QueryErrorsCounter().Increment();
      return EncodeErrorFrame(plan.status());
    }
    return EncodeExplainFrame(plan.value().ToText());
  }

  Clock::time_point exec_start = Clock::now();
  Result<QueryResult> result = scan.Execute();
  if (!result.ok()) {
    // Execution failures — including kCancelled and a memory limit's
    // kResourceExhausted — are clean Error frames; the connection and its
    // session live on.
    QueryErrorsCounter().Increment();
    return EncodeErrorFrame(result.status());
  }

  std::vector<std::vector<uint8_t>> frames;
  EncodeResultFrames(result.value(), &frames);
  for (const auto& frame : frames) {
    if (!SendFrame(conn, frame)) break;  // terminal send will no-op too
  }

  QueryStatsWire wire;
  const ScanStats& stats = scan.stats();
  wire.rows_scanned = stats.rows_scanned;
  wire.rows_selected = stats.rows_selected;
  wire.batches = stats.batches;
  wire.segments_scanned = stats.segments_scanned;
  wire.segments_eliminated = stats.segments_eliminated;
  wire.runs_aggregated = stats.runs_aggregated;
  wire.queue_wait_ns = query->queue_wait_ns.load(std::memory_order_relaxed);
  wire.exec_ns = NsBetween(exec_start, Clock::now());
  wire.peak_memory_bytes = query->ctx.memory_tracker().peak();
  wire.used_hash_fallback = stats.used_hash_fallback;
  return EncodeStatsFrame(wire);
}

void Server::FinishQuery(const std::shared_ptr<Connection>& conn,
                         const std::shared_ptr<ActiveQuery>& query) {
  std::lock_guard<std::mutex> lock(conn->state_mu);
  if (conn->active == query) conn->active.reset();
}

bool Server::SendFrame(const std::shared_ptr<Connection>& conn,
                       const std::vector<uint8_t>& frame) {
  if (conn->closed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  const uint8_t* p = frame.data();
  size_t left = frame.size();
  while (left > 0) {
    ssize_t n = ::send(conn->fd, p, left, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      left -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      // A client that stops reading for 10s forfeits the rest of its
      // result; the server never blocks a worker on one slow socket
      // forever.
      if (::poll(&pfd, 1, 10000) <= 0) {
        conn->closed.store(true, std::memory_order_release);
        return false;
      }
      continue;
    }
    conn->closed.store(true, std::memory_order_release);
    return false;
  }
  BytesSentCounter().Add(frame.size());
  return true;
}

}  // namespace bipie::server
