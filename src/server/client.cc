#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/failpoint.h"

namespace bipie::server {

namespace {

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Waits (bounded) for `events` on `fd`. Returns +1 ready, 0 timeout,
// -1 error. timeout_ms == 0 waits forever.
int PollFor(int fd, short events, uint64_t timeout_ms) {
  pollfd pfd{fd, events, 0};
  const int timeout =
      timeout_ms == 0
          ? -1
          : static_cast<int>(std::min<uint64_t>(timeout_ms, 3600000));
  while (true) {
    int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return 1;
    if (rc == 0) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(options), jitter_state_(options.jitter_seed) {}

Status Client::Connect(const std::string& host, uint16_t port) {
  host_ = host;
  port_ = port;
  Status st = ConnectSocket();
  if (!st.ok()) return st;
  // A fresh Connect() call still replays recorded settings: callers that
  // reconnect by hand get the same session they had.
  return Reconnect();
}

Status Client::ConnectSocket() {
  Close();
  if (BIPIE_FAILPOINT("client/connect_fail")) {
    return Status::Unavailable("injected connect failure");
  }

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host_.c_str(), std::to_string(port_).c_str(), &hints,
                    &res) != 0 ||
      res == nullptr) {
    return Status::InvalidArgument("cannot resolve host: " + host_);
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Status::Internal("socket() failed");
  }
  if (!SetNonBlocking(fd)) {
    ::close(fd);
    ::freeaddrinfo(res);
    return Status::Internal("fcntl(O_NONBLOCK) failed");
  }
  // Nonblocking connect: EINPROGRESS, then poll for writability bounded by
  // the connect timeout, then read the socket's final verdict.
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    Status st = Status::Unavailable("connect failed: " +
                                    std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (rc != 0) {
    int ready = PollFor(fd, POLLOUT, options_.connect_timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      return Status::Unavailable(ready == 0 ? "connect timed out"
                                            : "connect poll failed");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Status::Unavailable("connect failed: " +
                                 std::string(std::strerror(err)));
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  rbuf_.clear();
  roffset_ = 0;
  return Status::OK();
}

Status Client::Reconnect() {
  if (!connected()) {
    BIPIE_RETURN_NOT_OK(ConnectSocket());
  }
  // Replay the session: a retried query must run under the same settings
  // it was submitted under. These were accepted once, so a rejection now
  // means the server changed underneath us — surface it.
  for (const auto& [name, value] : session_settings_) {
    BIPIE_RETURN_NOT_OK(WriteAll(EncodeSetSettingFrame(name, value)));
    FrameView frame;
    BIPIE_RETURN_NOT_OK(ReadFrame(&frame));
    if (frame.type == FrameType::kError) {
      Status server_error;
      BIPIE_RETURN_NOT_OK(DecodeErrorFrame(frame, &server_error));
      return server_error;
    }
    if (frame.type != FrameType::kOk) {
      return Status::Internal("unexpected frame type in SetSetting response");
    }
  }
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  rbuf_.clear();
  roffset_ = 0;
}

Status Client::WriteAll(const std::vector<uint8_t>& bytes) {
  if (fd_ < 0) return Status::Unavailable("client is not connected");
  const uint8_t* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    if (BIPIE_FAILPOINT("client/send_fail")) {
      return Status::Unavailable("injected send failure");
    }
    ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      left -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int ready = PollFor(fd_, POLLOUT, options_.send_timeout_ms);
      if (ready <= 0) {
        return Status::Unavailable(ready == 0 ? "send timed out"
                                              : "send poll failed");
      }
      continue;
    }
    return Status::Unavailable("send failed: " +
                               std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status Client::ReadFrame(FrameView* frame) {
  if (fd_ < 0) return Status::Unavailable("client is not connected");
  // Compact consumed bytes so a long session's buffer stays bounded.
  if (roffset_ > 0) {
    rbuf_.erase(rbuf_.begin(),
                rbuf_.begin() + static_cast<std::ptrdiff_t>(roffset_));
    roffset_ = 0;
  }
  while (true) {
    Status error;
    FrameScan scan = NextFrame(rbuf_, &roffset_, frame, &error);
    if (scan == FrameScan::kFrame) return Status::OK();
    if (scan == FrameScan::kError) return error;
    if (BIPIE_FAILPOINT("client/recv_fail")) {
      return Status::Unavailable("injected recv failure");
    }
    char buf[64 * 1024];
    size_t cap = sizeof(buf);
    if (BIPIE_FAILPOINT("client/read_short")) cap = 1;  // torn read
    ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      int ready = PollFor(fd_, POLLIN, options_.recv_timeout_ms);
      if (ready <= 0) {
        return Status::Unavailable(ready == 0 ? "recv timed out"
                                              : "recv poll failed");
      }
      continue;
    }
    return Status::Unavailable("recv failed: " +
                               std::string(std::strerror(errno)));
  }
}

Status Client::Set(const std::string& name, const std::string& value) {
  BIPIE_RETURN_NOT_OK(WriteAll(EncodeSetSettingFrame(name, value)));
  FrameView frame;
  BIPIE_RETURN_NOT_OK(ReadFrame(&frame));
  if (frame.type == FrameType::kOk) {
    session_settings_[name] = value;  // recorded for reconnect replay
    return Status::OK();
  }
  if (frame.type == FrameType::kError) {
    Status server_error;
    BIPIE_RETURN_NOT_OK(DecodeErrorFrame(frame, &server_error));
    return server_error;
  }
  return Status::Internal("unexpected frame type in SetSetting response");
}

Status Client::SendQuery(const std::string& sql) {
  return WriteAll(EncodeQueryFrame(sql));
}

Status Client::SendCancel() { return WriteAll(EncodeCancelFrame()); }

Status Client::SendRaw(const std::vector<uint8_t>& bytes) {
  return WriteAll(bytes);
}

Status Client::ReadFrameInto(std::vector<uint8_t>* payload, FrameType* type) {
  FrameView frame;
  BIPIE_RETURN_NOT_OK(ReadFrame(&frame));
  *type = frame.type;
  payload->assign(frame.payload, frame.payload + frame.size);
  return Status::OK();
}

Status Client::Ping(uint64_t token) {
  BIPIE_RETURN_NOT_OK(WriteAll(EncodePingFrame(token)));
  FrameView frame;
  BIPIE_RETURN_NOT_OK(ReadFrame(&frame));
  if (frame.type != FrameType::kPong) {
    return Status::Internal("unexpected frame type in Ping response");
  }
  uint64_t echoed = 0;
  BIPIE_RETURN_NOT_OK(DecodePongFrame(frame, &echoed));
  if (echoed != token) {
    return Status::Internal("pong token mismatch");
  }
  return Status::OK();
}

Status Client::ReadQueryResponse(QueryResult* result, QueryStatsWire* stats,
                                 std::string* explain_text) {
  // Fresh response: callers reuse result objects across queries, and the
  // batch decoder both appends rows and cross-checks the column header.
  // Resetting here also makes a retried query safe after a partial
  // response: the replayed attempt starts from an empty result.
  if (result != nullptr) *result = QueryResult{};
  while (true) {
    FrameView frame;
    BIPIE_RETURN_NOT_OK(ReadFrame(&frame));
    switch (frame.type) {
      case FrameType::kResultBatch:
        if (result != nullptr) {
          BIPIE_RETURN_NOT_OK(DecodeResultBatch(frame, result));
        }
        break;
      case FrameType::kStats: {
        QueryStatsWire wire;
        BIPIE_RETURN_NOT_OK(DecodeStatsFrame(frame, &wire));
        if (stats != nullptr) *stats = wire;
        return Status::OK();
      }
      case FrameType::kExplain: {
        std::string text;
        BIPIE_RETURN_NOT_OK(DecodeExplainFrame(frame, &text));
        if (explain_text != nullptr) *explain_text = std::move(text);
        return Status::OK();
      }
      case FrameType::kError: {
        Status server_error;
        uint32_t retry_after_ms = 0;
        BIPIE_RETURN_NOT_OK(
            DecodeErrorFrame(frame, &server_error, &retry_after_ms));
        last_retry_after_ms_ = retry_after_ms;
        // A decoded Error frame means the stream is still synchronized: a
        // retry (shed/drain rejections) can reuse this connection.
        last_failure_remote_ = true;
        return server_error;
      }
      default:
        return Status::Internal("unexpected frame type in query response");
    }
  }
}

uint64_t Client::Jitter(uint64_t bound) {
  if (bound == 0) return 0;
  return SplitMix64(&jitter_state_) % (bound + 1);
}

Status Client::RunWithRetry(const std::function<Status()>& attempt) {
  uint64_t backoff = options_.backoff_initial_ms;
  for (uint32_t tried = 0;; ++tried) {
    last_retry_after_ms_ = 0;
    last_failure_remote_ = false;
    Status st = connected() ? Status::OK() : Reconnect();
    if (st.ok()) st = attempt();
    if (st.ok() || st.code() != StatusCode::kUnavailable) return st;
    if (tried >= options_.max_retries ||
        retries_spent_ >= options_.retry_budget) {
      return st;
    }
    ++retries_spent_;
    // Transport failures leave the stream in an unknown state (a request
    // may be half-written, a reply half-read): drop the connection so the
    // retry starts on a clean one. A server-sent rejection arrived on a
    // synchronized stream — keep it.
    if (!last_failure_remote_) Close();
    uint64_t delay_ms = std::max<uint64_t>(
        backoff, static_cast<uint64_t>(last_retry_after_ms_));
    delay_ms += Jitter(delay_ms / 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    backoff = std::min<uint64_t>(backoff * 2, options_.backoff_max_ms);
  }
}

Status Client::Query(const std::string& sql, QueryResult* result,
                     QueryStatsWire* stats) {
  // Queries are read-only (the engine has no writes), so replaying one
  // after an ambiguous transport failure is safe: worst case the server
  // executed the first attempt and nobody read the answer.
  return RunWithRetry([&]() -> Status {
    BIPIE_RETURN_NOT_OK(SendQuery(sql));
    return ReadQueryResponse(result, stats);
  });
}

Status Client::Explain(const std::string& sql, std::string* text) {
  return RunWithRetry([&]() -> Status {
    BIPIE_RETURN_NOT_OK(SendQuery(sql));
    return ReadQueryResponse(nullptr, nullptr, text);
  });
}

}  // namespace bipie::server
