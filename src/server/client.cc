#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace bipie::server {

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0 ||
      res == nullptr) {
    return Status::InvalidArgument("cannot resolve host: " + host);
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Status::Internal("socket() failed");
  }
  if (::connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
    Status st = Status::Internal("connect failed: " +
                                 std::string(std::strerror(errno)));
    ::close(fd);
    ::freeaddrinfo(res);
    return st;
  }
  ::freeaddrinfo(res);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  rbuf_.clear();
  roffset_ = 0;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  rbuf_.clear();
  roffset_ = 0;
}

Status Client::WriteAll(const std::vector<uint8_t>& bytes) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  const uint8_t* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("send failed: " +
                              std::string(std::strerror(errno)));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::ReadFrame(FrameView* frame) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  // Compact consumed bytes so a long session's buffer stays bounded.
  if (roffset_ > 0) {
    rbuf_.erase(rbuf_.begin(),
                rbuf_.begin() + static_cast<std::ptrdiff_t>(roffset_));
    roffset_ = 0;
  }
  while (true) {
    Status error;
    FrameScan scan = NextFrame(rbuf_, &roffset_, frame, &error);
    if (scan == FrameScan::kFrame) return Status::OK();
    if (scan == FrameScan::kError) return error;
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Internal("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("recv failed: " +
                              std::string(std::strerror(errno)));
    }
    rbuf_.insert(rbuf_.end(), buf, buf + n);
  }
}

Status Client::Set(const std::string& name, const std::string& value) {
  BIPIE_RETURN_NOT_OK(WriteAll(EncodeSetSettingFrame(name, value)));
  FrameView frame;
  BIPIE_RETURN_NOT_OK(ReadFrame(&frame));
  if (frame.type == FrameType::kOk) return Status::OK();
  if (frame.type == FrameType::kError) {
    Status server_error;
    BIPIE_RETURN_NOT_OK(DecodeErrorFrame(frame, &server_error));
    return server_error;
  }
  return Status::Internal("unexpected frame type in SetSetting response");
}

Status Client::SendQuery(const std::string& sql) {
  return WriteAll(EncodeQueryFrame(sql));
}

Status Client::SendCancel() { return WriteAll(EncodeCancelFrame()); }

Status Client::SendRaw(const std::vector<uint8_t>& bytes) {
  return WriteAll(bytes);
}

Status Client::ReadFrameInto(std::vector<uint8_t>* payload, FrameType* type) {
  FrameView frame;
  BIPIE_RETURN_NOT_OK(ReadFrame(&frame));
  *type = frame.type;
  payload->assign(frame.payload, frame.payload + frame.size);
  return Status::OK();
}

Status Client::ReadQueryResponse(QueryResult* result, QueryStatsWire* stats,
                                 std::string* explain_text) {
  // Fresh response: callers reuse result objects across queries, and the
  // batch decoder both appends rows and cross-checks the column header.
  if (result != nullptr) *result = QueryResult{};
  while (true) {
    FrameView frame;
    BIPIE_RETURN_NOT_OK(ReadFrame(&frame));
    switch (frame.type) {
      case FrameType::kResultBatch:
        if (result != nullptr) {
          BIPIE_RETURN_NOT_OK(DecodeResultBatch(frame, result));
        }
        break;
      case FrameType::kStats: {
        QueryStatsWire wire;
        BIPIE_RETURN_NOT_OK(DecodeStatsFrame(frame, &wire));
        if (stats != nullptr) *stats = wire;
        return Status::OK();
      }
      case FrameType::kExplain: {
        std::string text;
        BIPIE_RETURN_NOT_OK(DecodeExplainFrame(frame, &text));
        if (explain_text != nullptr) *explain_text = std::move(text);
        return Status::OK();
      }
      case FrameType::kError: {
        Status server_error;
        BIPIE_RETURN_NOT_OK(DecodeErrorFrame(frame, &server_error));
        return server_error;
      }
      default:
        return Status::Internal("unexpected frame type in query response");
    }
  }
}

Status Client::Query(const std::string& sql, QueryResult* result,
                     QueryStatsWire* stats) {
  BIPIE_RETURN_NOT_OK(SendQuery(sql));
  return ReadQueryResponse(result, stats);
}

Status Client::Explain(const std::string& sql, std::string* text) {
  BIPIE_RETURN_NOT_OK(SendQuery(sql));
  return ReadQueryResponse(nullptr, nullptr, text);
}

}  // namespace bipie::server
