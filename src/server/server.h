// The bipie query service (DESIGN.md §14).
//
// A long-running server that accepts SQL over the framed TCP protocol
// (server/protocol.h) and streams results back. One accept+IO thread owns
// every socket: it polls all connections, assembles frames from untrusted
// bytes, and dispatches them. Query execution never runs on the IO thread —
// and never blocks a pool worker in admission either: a Query frame is
// handed to AdmissionController::Enqueue, and only when a slot is granted
// does the server submit the query job to the process-wide work-stealing
// Scheduler. There is no second thread pool.
//
// Sessions: each connection carries its own QuerySettings (mutated by
// SetSetting frames; `SET key = value` deltas in the REPL) and a session
// MemoryTracker child of the process root. Every query runs under a
// QueryContext whose tracker is a child of the session tracker, so
// process <- session <- query limits all hold, and a drained session
// trivially satisfies used() == 0.
//
// Graceful drain (Shutdown, or SIGTERM in tools/bipie_server): stop
// accepting, fail queued queries with kCancelled, let running queries
// finish and flush their result frames, then close.
#ifndef BIPIE_SERVER_SERVER_H_
#define BIPIE_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "exec/admission.h"
#include "exec/query_context.h"
#include "exec/query_settings.h"
#include "server/protocol.h"
#include "storage/table.h"

namespace bipie::server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; Server::port() reports the real one
  size_t max_connections = 64;
  // Admission limits for the server's controller. The default
  // (max_concurrent_queries = 0) admits everything immediately; set a
  // concurrency cap to activate the priority-banded queue — the sustained-
  // load harness and the daemon both do.
  AdmissionController::Limits admission{};
  // Test hook: runs on the worker thread after admission granted a slot
  // and before the query parses/executes. Lets tests hold a query at a
  // deterministic point (e.g. to land a Cancel frame mid-query).
  std::function<void(QueryContext*)> before_execute_hook;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers `table` under `name` (non-owning; the table must outlive the
  // server). Call before Start().
  void AddTable(std::string name, const Table* table);

  // Binds, listens and starts the IO thread.
  Status Start();

  // Graceful drain: stop accepting, cancel queued queries, wait for
  // running queries to finish and flush, then close every connection.
  // Idempotent; also runs from the destructor.
  void Shutdown();

  // The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  AdmissionController& admission() { return admission_; }

 private:
  struct Connection;
  struct ActiveQuery;

  void IoLoop();
  void AcceptOne();
  // Reads whatever is available; parses and dispatches complete frames.
  // Returns false when the connection is finished (EOF, error, protocol
  // violation) and should be dropped from the poll set.
  bool ServiceReadable(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     const FrameView& frame);
  void HandleQueryFrame(const std::shared_ptr<Connection>& conn,
                        const FrameView& frame);
  // Admission granted: submit the execution job to the scheduler.
  void SubmitQueryJob(std::shared_ptr<Connection> conn,
                      std::shared_ptr<ActiveQuery> query,
                      AdmissionController::Ticket ticket);
  // The scheduler job: parse, execute (or explain), stream result frames.
  // Returns the terminal frame (Stats / Explain / Error) WITHOUT sending
  // it: the caller clears the connection's active-query slot first, so by
  // the time the client reads the terminal frame the connection accepts
  // the next query — no "already in flight" race for request-response
  // clients.
  std::vector<uint8_t> RunQuery(const std::shared_ptr<Connection>& conn,
                                const std::shared_ptr<ActiveQuery>& query);
  // Clears the connection's active-query slot (accepts the next query).
  // The jobs_in_flight_ count, which Shutdown's drain waits on, drops only
  // after the terminal frame is flushed — see SubmitQueryJob.
  void FinishQuery(const std::shared_ptr<Connection>& conn,
                   const std::shared_ptr<ActiveQuery>& query);

  static bool SendFrame(const std::shared_ptr<Connection>& conn,
                        const std::vector<uint8_t>& frame);
  void Wake();

  const ServerOptions options_;
  std::map<std::string, const Table*> tables_;

  AdmissionController admission_;
  // Pass-through controller handed to BIPieScan: the server already holds
  // the admission ticket for the query, so Execute()'s own admission call
  // must not queue a second time. Unlimited = single-branch no-op.
  AdmissionController passthrough_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // pipe: IO thread sleeps in poll on [0]
  uint16_t port_ = 0;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};   // stop IO loop
  std::atomic<bool> draining_{false};   // reject new queries

  std::vector<std::shared_ptr<Connection>> connections_;  // IO thread only

  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  size_t jobs_in_flight_ = 0;

  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace bipie::server

#endif  // BIPIE_SERVER_SERVER_H_
