// The bipie query service (DESIGN.md §14, §15).
//
// A long-running server that accepts SQL over the framed TCP protocol
// (server/protocol.h) and streams results back. One accept+IO thread owns
// every socket: it polls all connections, assembles frames from untrusted
// bytes, and dispatches them. Query execution never runs on the IO thread —
// and never blocks a pool worker in admission either: a Query frame is
// handed to AdmissionController::Enqueue, and only when a slot is granted
// does the server submit the query job to the process-wide work-stealing
// Scheduler. There is no second thread pool.
//
// Resilience (DESIGN.md §15): workers never block on a slow socket either.
// Result frames are appended to a per-connection bounded write buffer
// (charged to the session MemoryTracker) and drained by the IO thread via
// POLLOUT; a peer that stops reading costs a bounded buffer, never a
// scheduler worker, and overflowing the bound is a terminal error. The IO
// thread's 50 ms poll clock also ticks per-connection deadlines — idle
// connections, peers stuck mid-frame, and writes that stop making progress
// are all closed after a configured timeout — and an overload shed policy
// rejects (never queues) low-band queries with kUnavailable + a retry-after
// hint while the process sits above its soft memory limit or the low band's
// queue delay crosses the shed threshold. Socket failpoints (short reads,
// resets, send failures, accept faults, delayed wakeups) cover the whole IO
// surface, mirroring the table-IO sites.
//
// Sessions: each connection carries its own QuerySettings (mutated by
// SetSetting frames; `SET key = value` deltas in the REPL) and a session
// MemoryTracker child of the process root. Every query runs under a
// QueryContext whose tracker is a child of the session tracker, so
// process <- session <- query limits all hold, and a drained session
// trivially satisfies used() == 0 (buffered output is part of the session's
// charge until it drains or the connection dies).
//
// Graceful drain (Shutdown, or SIGTERM in tools/bipie_server): stop
// accepting, fail queued queries with kCancelled, let running queries
// finish, flush every connection's buffered replies (bounded by the write
// stall timeout), then close.
#ifndef BIPIE_SERVER_SERVER_H_
#define BIPIE_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "exec/admission.h"
#include "exec/query_context.h"
#include "exec/query_settings.h"
#include "server/protocol.h"
#include "storage/table.h"

namespace bipie::server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; Server::port() reports the real one
  size_t max_connections = 64;
  // Admission limits for the server's controller. The default
  // (max_concurrent_queries = 0) admits everything immediately; set a
  // concurrency cap to activate the priority-banded queue — the sustained-
  // load harness and the daemon both do.
  AdmissionController::Limits admission{};

  // --- timeout discipline (DESIGN.md §15); 0 disables the timeout ---
  // Close a connection with no query in flight, nothing buffered to write,
  // and no bytes received for this long.
  uint64_t idle_timeout_ms = 300000;
  // Close a connection stuck mid-frame (a partial frame buffered, no new
  // bytes) for this long: a torn or stalled sender cannot pin a socket.
  uint64_t frame_read_timeout_ms = 30000;
  // Close a connection whose buffered output has made no send progress for
  // this long (the peer stopped reading). Also bounds the shutdown flush.
  uint64_t write_stall_timeout_ms = 10000;
  // Bound on one connection's buffered-but-unsent output, charged to the
  // session MemoryTracker. A frame may be appended while the buffer is
  // below the limit, so the hard ceiling is this plus one max frame.
  // Overflow is a terminal error: Error frame dropped, connection closed.
  size_t write_buffer_limit_bytes = size_t{64} << 20;

  // --- overload shedding (DESIGN.md §15) ---
  // > 0: Start() sets this as the process tracker's soft limit (restored on
  // Shutdown()). While process usage sits at or above the soft limit,
  // low-band queries are rejected with kUnavailable instead of queued.
  size_t soft_memory_limit_bytes = 0;
  // > 0: also shed low-band queries whenever the oldest queued low-band
  // waiter has already waited at least this long (the live queue-delay
  // signal from AdmissionController::OldestWaitMs).
  uint64_t shed_queue_wait_ms = 0;

  // Test hook: runs on the worker thread after admission granted a slot
  // and before the query parses/executes. Lets tests hold a query at a
  // deterministic point (e.g. to land a Cancel frame mid-query).
  std::function<void(QueryContext*)> before_execute_hook;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers `table` under `name` (non-owning; the table must outlive the
  // server). Call before Start().
  void AddTable(std::string name, const Table* table);

  // Binds, listens and starts the IO thread.
  Status Start();

  // Graceful drain: stop accepting, cancel queued queries, wait for
  // running queries to finish, flush buffered replies, then close every
  // connection. Idempotent; also runs from the destructor.
  void Shutdown();

  // The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  AdmissionController& admission() { return admission_; }

  // True while the shed policy is active (soft memory limit reached or
  // low-band queue delay over the threshold). Reported in every Stats
  // frame as `degraded`.
  bool degraded() const;

 private:
  struct Connection;
  struct ActiveQuery;

  void IoLoop();
  void AcceptOne();
  // Reads whatever is available; parses and dispatches complete frames.
  // Returns false when the connection is finished (EOF, error) and should
  // be dropped from the poll set.
  bool ServiceReadable(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     const FrameView& frame);
  void HandleQueryFrame(const std::shared_ptr<Connection>& conn,
                        const FrameView& frame);
  // Admission granted: submit the execution job to the scheduler.
  void SubmitQueryJob(std::shared_ptr<Connection> conn,
                      std::shared_ptr<ActiveQuery> query,
                      AdmissionController::Ticket ticket);
  // The scheduler job: parse, execute (or explain), stream result frames.
  // Returns the terminal frame (Stats / Explain / Error) WITHOUT sending
  // it: the caller clears the connection's active-query slot first, so by
  // the time the client reads the terminal frame the connection accepts
  // the next query — no "already in flight" race for request-response
  // clients.
  std::vector<uint8_t> RunQuery(const std::shared_ptr<Connection>& conn,
                                const std::shared_ptr<ActiveQuery>& query);
  // Clears the connection's active-query slot (accepts the next query).
  // The jobs_in_flight_ count, which Shutdown's drain waits on, drops only
  // after the terminal frame is buffered — the drain's flush phase then
  // waits for the buffers themselves.
  void FinishQuery(const std::shared_ptr<Connection>& conn,
                   const std::shared_ptr<ActiveQuery>& query);

  // Appends `frame` to the connection's write buffer (session-tracked) and
  // drains what the socket will take without blocking; the IO thread
  // finishes the job via POLLOUT. Never blocks the caller. Returns false
  // when the connection is already closed, a fatal send error occurred, or
  // the buffered backlog overflowed its bound (terminal: connection
  // closed).
  bool SendFrame(const std::shared_ptr<Connection>& conn,
                 const std::vector<uint8_t>& frame);
  // Drains buffered output into the socket until it would block. Caller
  // holds write_mu. Returns false on a fatal socket error.
  bool FlushLocked(Connection* conn);
  // Idle / mid-frame / write-stall deadline check, ticked from the IO
  // loop. Returns false when the connection timed out and must close.
  bool ConnectionHealthy(Connection* conn,
                         std::chrono::steady_clock::time_point now);
  // The shed decision; fills a client-facing retry-after hint when active.
  bool ShedActive(uint32_t* retry_after_ms) const;
  void Wake();

  const ServerOptions options_;
  std::map<std::string, const Table*> tables_;

  AdmissionController admission_;
  // Pass-through controller handed to BIPieScan: the server already holds
  // the admission ticket for the query, so Execute()'s own admission call
  // must not queue a second time. Unlimited = single-branch no-op.
  AdmissionController passthrough_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // pipe: IO thread sleeps in poll on [0]
  uint16_t port_ = 0;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};   // stop IO loop unconditionally
  std::atomic<bool> draining_{false};   // reject new queries
  std::atomic<bool> flushing_{false};   // drain write buffers, then stop

  std::vector<std::shared_ptr<Connection>> connections_;  // IO thread only

  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  size_t jobs_in_flight_ = 0;

  size_t prev_soft_limit_ = 0;  // process soft limit to restore on Shutdown
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace bipie::server

#endif  // BIPIE_SERVER_SERVER_H_
