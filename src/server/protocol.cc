#include "server/protocol.h"

#include <cstring>

namespace bipie::server {

namespace {

// One sanity bound for per-row counts inside a ResultBatch: group columns
// and aggregate slots are tiny in the BIPie shape, but the decoder must not
// trust the wire. 64 is far above anything the engine produces.
constexpr uint32_t kMaxResultColumns = 64;

Status ProtocolError(const std::string& message) {
  return Status::InvalidArgument("protocol error: " + message);
}

}  // namespace

Status StatusFromCode(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kOutOfRange: return Status::OutOfRange(std::move(message));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(message));
    case StatusCode::kOverflowRisk:
      return Status::OverflowRisk(std::move(message));
    case StatusCode::kCancelled: return Status::Cancelled(std::move(message));
    case StatusCode::kInternal: return Status::Internal(std::move(message));
    case StatusCode::kDataLoss: return Status::DataLoss(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
  }
  return Status::Internal(std::move(message));
}

uint8_t WireCodeOfStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kOutOfRange: return 2;
    case StatusCode::kNotSupported: return 3;
    case StatusCode::kOverflowRisk: return 4;
    case StatusCode::kCancelled: return 5;
    case StatusCode::kInternal: return 6;
    case StatusCode::kDataLoss: return 7;
    case StatusCode::kResourceExhausted: return 8;
    case StatusCode::kUnavailable: return 9;
  }
  return 6;
}

StatusCode StatusCodeOfWire(uint8_t wire) {
  switch (wire) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kOutOfRange;
    case 3: return StatusCode::kNotSupported;
    case 4: return StatusCode::kOverflowRisk;
    case 5: return StatusCode::kCancelled;
    case 6: return StatusCode::kInternal;
    case 7: return StatusCode::kDataLoss;
    case 8: return StatusCode::kResourceExhausted;
    case 9: return StatusCode::kUnavailable;
    default: return StatusCode::kInternal;
  }
}

// ---------------------------------------------------------------------------
// FrameBuilder

FrameBuilder::FrameBuilder(FrameType type) {
  bytes_.reserve(64);
  bytes_.resize(4, 0);  // length placeholder, patched by Finish()
  bytes_.push_back(static_cast<uint8_t>(type));
}

void FrameBuilder::PutU8(uint8_t v) { bytes_.push_back(v); }

void FrameBuilder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(uint8_t(v >> (8 * i)));
}

void FrameBuilder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(uint8_t(v >> (8 * i)));
}

void FrameBuilder::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void FrameBuilder::PutString(const std::string& s) {
  // Produced strings stay under the decode cap so every frame we emit is
  // decodable by our own reader; callers pass error messages / SQL / names
  // that are all far below it, but truncate defensively rather than emit an
  // undecodable frame.
  size_t n = s.size() < kMaxStringBytes ? s.size() : kMaxStringBytes - 1;
  PutU32(static_cast<uint32_t>(n));
  bytes_.insert(bytes_.end(), s.data(), s.data() + n);
}

std::vector<uint8_t> FrameBuilder::Finish() {
  uint32_t payload = static_cast<uint32_t>(bytes_.size() - kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) bytes_[i] = uint8_t(payload >> (8 * i));
  return std::move(bytes_);
}

// ---------------------------------------------------------------------------
// Encoders

std::vector<uint8_t> EncodeQueryFrame(const std::string& sql) {
  FrameBuilder b(FrameType::kQuery);
  b.PutString(sql);
  return b.Finish();
}

std::vector<uint8_t> EncodeSetSettingFrame(const std::string& name,
                                           const std::string& value) {
  FrameBuilder b(FrameType::kSetSetting);
  b.PutString(name);
  b.PutString(value);
  return b.Finish();
}

std::vector<uint8_t> EncodeCancelFrame() {
  return FrameBuilder(FrameType::kCancel).Finish();
}

std::vector<uint8_t> EncodeOkFrame() {
  return FrameBuilder(FrameType::kOk).Finish();
}

std::vector<uint8_t> EncodePingFrame(uint64_t token) {
  FrameBuilder b(FrameType::kPing);
  b.PutU64(token);
  return b.Finish();
}

std::vector<uint8_t> EncodePongFrame(uint64_t token) {
  FrameBuilder b(FrameType::kPong);
  b.PutU64(token);
  return b.Finish();
}

std::vector<uint8_t> EncodeErrorFrame(const Status& status,
                                      uint32_t retry_after_ms) {
  FrameBuilder b(FrameType::kError);
  b.PutU8(WireCodeOfStatus(status.code()));
  b.PutString(status.message());
  if (retry_after_ms > 0) b.PutU32(retry_after_ms);
  return b.Finish();
}

std::vector<uint8_t> EncodeExplainFrame(const std::string& text) {
  FrameBuilder b(FrameType::kExplain);
  b.PutString(text);
  return b.Finish();
}

std::vector<uint8_t> EncodeStatsFrame(const QueryStatsWire& stats) {
  FrameBuilder b(FrameType::kStats);
  b.PutU64(stats.rows_scanned);
  b.PutU64(stats.rows_selected);
  b.PutU64(stats.batches);
  b.PutU64(stats.segments_scanned);
  b.PutU64(stats.segments_eliminated);
  b.PutU64(stats.runs_aggregated);
  b.PutU64(stats.queue_wait_ns);
  b.PutU64(stats.exec_ns);
  b.PutU64(stats.peak_memory_bytes);
  b.PutU8(stats.used_hash_fallback ? 1 : 0);
  b.PutU8(stats.degraded ? 1 : 0);
  return b.Finish();
}

void EncodeResultFrames(const QueryResult& result,
                        std::vector<std::vector<uint8_t>>* out) {
  size_t num_aggs =
      result.rows.empty() ? 0 : result.rows.front().sums.size();
  size_t row = 0;
  do {
    size_t n = result.rows.size() - row;
    if (n > kMaxResultRowsPerBatch) n = kMaxResultRowsPerBatch;
    FrameBuilder b(FrameType::kResultBatch);
    b.PutU32(static_cast<uint32_t>(result.group_column_names.size()));
    for (const std::string& name : result.group_column_names) {
      b.PutString(name);
    }
    b.PutU32(static_cast<uint32_t>(num_aggs));
    b.PutU32(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      const ResultRow& r = result.rows[row + i];
      for (const GroupValue& g : r.group) {
        b.PutU8(g.is_string ? 1 : 0);
        if (g.is_string) {
          b.PutString(g.string_value);
        } else {
          b.PutI64(g.int_value);
        }
      }
      b.PutU64(r.count);
      for (int64_t s : r.sums) b.PutI64(s);
    }
    out->push_back(b.Finish());
    row += n;
  } while (row < result.rows.size());
}

// ---------------------------------------------------------------------------
// PayloadReader

bool PayloadReader::GetU8(uint8_t* v) {
  if (size_ - pos_ < 1) return false;
  *v = data_[pos_++];
  return true;
}

bool PayloadReader::GetU32(uint32_t* v) {
  if (size_ - pos_ < 4) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) r |= uint32_t(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  *v = r;
  return true;
}

bool PayloadReader::GetU64(uint64_t* v) {
  if (size_ - pos_ < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r |= uint64_t(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  *v = r;
  return true;
}

bool PayloadReader::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool PayloadReader::GetString(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  // The length is untrusted: bound it by the cap AND the bytes actually
  // left in the payload before any allocation happens.
  if (len > kMaxStringBytes) return false;
  if (len > size_ - pos_) return false;
  s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return true;
}

// ---------------------------------------------------------------------------
// Frame scanning

FrameScan NextFrame(const std::vector<uint8_t>& buffer, size_t* offset,
                    FrameView* frame, Status* error) {
  size_t avail = buffer.size() - *offset;
  if (avail < kFrameHeaderBytes) return FrameScan::kNeedMore;
  const uint8_t* p = buffer.data() + *offset;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= uint32_t(p[i]) << (8 * i);
  if (len > kMaxFramePayload) {
    *error = ProtocolError("frame payload length " + std::to_string(len) +
                           " exceeds limit " +
                           std::to_string(kMaxFramePayload));
    return FrameScan::kError;
  }
  uint8_t type = p[4];
  if (type < 1 || type > kMaxFrameType) {
    *error = ProtocolError("unknown frame type " + std::to_string(type));
    return FrameScan::kError;
  }
  if (avail - kFrameHeaderBytes < len) return FrameScan::kNeedMore;
  frame->type = static_cast<FrameType>(type);
  frame->payload = p + kFrameHeaderBytes;
  frame->size = len;
  *offset += kFrameHeaderBytes + len;
  return FrameScan::kFrame;
}

// ---------------------------------------------------------------------------
// Decoders

Status DecodeQueryFrame(const FrameView& frame, std::string* sql) {
  if (frame.type != FrameType::kQuery) {
    return ProtocolError("expected Query frame");
  }
  PayloadReader r(frame.payload, frame.size);
  if (!r.GetString(sql) || !r.AtEnd()) {
    return ProtocolError("malformed Query payload");
  }
  return Status::OK();
}

Status DecodeSetSettingFrame(const FrameView& frame, std::string* name,
                             std::string* value) {
  if (frame.type != FrameType::kSetSetting) {
    return ProtocolError("expected SetSetting frame");
  }
  PayloadReader r(frame.payload, frame.size);
  if (!r.GetString(name) || !r.GetString(value) || !r.AtEnd()) {
    return ProtocolError("malformed SetSetting payload");
  }
  return Status::OK();
}

Status DecodeErrorFrame(const FrameView& frame, Status* out,
                        uint32_t* retry_after_ms) {
  if (frame.type != FrameType::kError) {
    return ProtocolError("expected Error frame");
  }
  PayloadReader r(frame.payload, frame.size);
  uint8_t wire;
  std::string message;
  if (!r.GetU8(&wire) || !r.GetString(&message)) {
    return ProtocolError("malformed Error payload");
  }
  // Optional trailing retry-after hint (kUnavailable rejections).
  uint32_t retry = 0;
  if (!r.AtEnd() && (!r.GetU32(&retry) || !r.AtEnd())) {
    return ProtocolError("malformed Error payload");
  }
  if (retry_after_ms != nullptr) *retry_after_ms = retry;
  *out = StatusFromCode(StatusCodeOfWire(wire), std::move(message));
  return Status::OK();
}

Status DecodePingFrame(const FrameView& frame, uint64_t* token) {
  if (frame.type != FrameType::kPing) {
    return ProtocolError("expected Ping frame");
  }
  PayloadReader r(frame.payload, frame.size);
  if (!r.GetU64(token) || !r.AtEnd()) {
    return ProtocolError("malformed Ping payload");
  }
  return Status::OK();
}

Status DecodePongFrame(const FrameView& frame, uint64_t* token) {
  if (frame.type != FrameType::kPong) {
    return ProtocolError("expected Pong frame");
  }
  PayloadReader r(frame.payload, frame.size);
  if (!r.GetU64(token) || !r.AtEnd()) {
    return ProtocolError("malformed Pong payload");
  }
  return Status::OK();
}

Status DecodeExplainFrame(const FrameView& frame, std::string* text) {
  if (frame.type != FrameType::kExplain) {
    return ProtocolError("expected Explain frame");
  }
  PayloadReader r(frame.payload, frame.size);
  if (!r.GetString(text) || !r.AtEnd()) {
    return ProtocolError("malformed Explain payload");
  }
  return Status::OK();
}

Status DecodeStatsFrame(const FrameView& frame, QueryStatsWire* stats) {
  if (frame.type != FrameType::kStats) {
    return ProtocolError("expected Stats frame");
  }
  PayloadReader r(frame.payload, frame.size);
  uint8_t hash = 0;
  uint8_t degraded = 0;
  if (!r.GetU64(&stats->rows_scanned) || !r.GetU64(&stats->rows_selected) ||
      !r.GetU64(&stats->batches) || !r.GetU64(&stats->segments_scanned) ||
      !r.GetU64(&stats->segments_eliminated) ||
      !r.GetU64(&stats->runs_aggregated) ||
      !r.GetU64(&stats->queue_wait_ns) || !r.GetU64(&stats->exec_ns) ||
      !r.GetU64(&stats->peak_memory_bytes) || !r.GetU8(&hash) ||
      !r.GetU8(&degraded) || !r.AtEnd()) {
    return ProtocolError("malformed Stats payload");
  }
  stats->used_hash_fallback = hash != 0;
  stats->degraded = degraded != 0;
  return Status::OK();
}

Status DecodeResultBatch(const FrameView& frame, QueryResult* result) {
  if (frame.type != FrameType::kResultBatch) {
    return ProtocolError("expected ResultBatch frame");
  }
  PayloadReader r(frame.payload, frame.size);
  uint32_t num_groups, num_aggs, num_rows;
  if (!r.GetU32(&num_groups) || num_groups > kMaxResultColumns) {
    return ProtocolError("malformed ResultBatch group-column count");
  }
  std::vector<std::string> names(num_groups);
  for (uint32_t i = 0; i < num_groups; ++i) {
    if (!r.GetString(&names[i])) {
      return ProtocolError("malformed ResultBatch column name");
    }
  }
  if (!r.GetU32(&num_aggs) || num_aggs > kMaxResultColumns) {
    return ProtocolError("malformed ResultBatch aggregate count");
  }
  if (!r.GetU32(&num_rows)) {
    return ProtocolError("malformed ResultBatch row count");
  }
  // Each row carries at least 8 bytes (the count), so num_rows is bounded
  // by the payload size — no allocation is sized from num_rows directly.
  if (result->rows.empty() && result->group_column_names.empty()) {
    result->group_column_names = names;
  } else if (result->group_column_names != names) {
    return ProtocolError("ResultBatch column header changed mid-result");
  }
  for (uint32_t i = 0; i < num_rows; ++i) {
    ResultRow row;
    row.group.resize(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) {
      uint8_t is_string;
      if (!r.GetU8(&is_string)) {
        return ProtocolError("malformed ResultBatch group value");
      }
      row.group[g].is_string = is_string != 0;
      bool ok = is_string ? r.GetString(&row.group[g].string_value)
                          : r.GetI64(&row.group[g].int_value);
      if (!ok) return ProtocolError("malformed ResultBatch group value");
    }
    if (!r.GetU64(&row.count)) {
      return ProtocolError("malformed ResultBatch row count field");
    }
    row.sums.resize(num_aggs);
    for (uint32_t a = 0; a < num_aggs; ++a) {
      if (!r.GetI64(&row.sums[a])) {
        return ProtocolError("malformed ResultBatch aggregate value");
      }
    }
    result->rows.push_back(std::move(row));
  }
  if (!r.AtEnd()) {
    return ProtocolError("trailing bytes in ResultBatch payload");
  }
  return Status::OK();
}

}  // namespace bipie::server
