// Thin client for the bipie query service: a blocking socket speaking the
// framed protocol (server/protocol.h). Used by tools/bipie_client, the
// sustained-load mode of bench_concurrent_queries and server_test.
//
// One Client is one session: settings applied with Set() persist for every
// later Query() on the same connection. Not thread-safe — one thread per
// Client (SendCancel() is the one exception: it may be called from another
// thread to interrupt a Query() in progress).
#ifndef BIPIE_SERVER_CLIENT_H_
#define BIPIE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "server/protocol.h"

namespace bipie::server {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // SET name = value for this session. Server-side validation errors come
  // back as the returned status.
  Status Set(const std::string& name, const std::string& value);

  // Runs `sql` to completion: result rows into *result, the server's Stats
  // frame into *stats (nullable). Server-side errors (parse, execution,
  // admission rejection, cancellation) come back as the returned status.
  Status Query(const std::string& sql, QueryResult* result,
               QueryStatsWire* stats = nullptr);

  // EXPLAIN helper: runs `sql` (which must be an EXPLAIN statement) and
  // returns the plan text.
  Status Explain(const std::string& sql, std::string* text);

  // Split-phase API for cancellation tests and the REPL's Ctrl-C path:
  // send the query, optionally send Cancel while it runs, then collect the
  // response.
  Status SendQuery(const std::string& sql);
  Status SendCancel();
  // Reads frames until the query terminates (Stats / Explain / Error).
  // Explain text lands in *explain_text (nullable) when the statement was
  // an EXPLAIN.
  Status ReadQueryResponse(QueryResult* result, QueryStatsWire* stats,
                           std::string* explain_text = nullptr);

  // Test hook: writes raw bytes to the socket (malformed-frame tests).
  Status SendRaw(const std::vector<uint8_t>& bytes);
  // Test hook: reads one frame (kOk / kError acknowledgements).
  Status ReadFrameInto(std::vector<uint8_t>* payload, FrameType* type);

 private:
  Status WriteAll(const std::vector<uint8_t>& bytes);
  // Blocks until one complete frame is buffered; points *frame into rbuf_.
  Status ReadFrame(FrameView* frame);

  int fd_ = -1;
  std::vector<uint8_t> rbuf_;
  size_t roffset_ = 0;
};

}  // namespace bipie::server

#endif  // BIPIE_SERVER_CLIENT_H_
