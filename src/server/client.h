// Client for the bipie query service: a nonblocking socket speaking the
// framed protocol (server/protocol.h) behind poll-based timeouts. Used by
// tools/bipie_client, the sustained-load mode of bench_concurrent_queries
// and server_test.
//
// Resilience (DESIGN.md §15): every socket operation is bounded — connect,
// send and recv each carry their own timeout, so a dead or stalled server
// costs the caller a bounded wait, never a hang. Transport failures
// (timeouts, resets, refused connections) surface as kUnavailable, distinct
// from server-side errors which keep their own codes.
//
// Retry: with max_retries > 0, Query()/Explain() retry kUnavailable
// failures — and only those — by reconnecting with exponential backoff plus
// deterministic jitter, bounded by a per-call retry cap and a client-wide
// retry budget. Only these read-only statements are retried (every query in
// this engine is idempotent — there are no writes); a server-supplied
// retry-after hint (shed/drain rejections) overrides the backoff floor.
// After a reconnect the recorded session settings are replayed, so a
// retried query runs under the same session it was submitted under.
//
// One Client is one session: settings applied with Set() persist for every
// later Query() on the same connection (and survive reconnects via replay).
// Not thread-safe — one thread per Client (SendCancel() is the one
// exception: it may be called from another thread to interrupt a Query()
// in progress).
#ifndef BIPIE_SERVER_CLIENT_H_
#define BIPIE_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "server/protocol.h"

namespace bipie::server {

struct ClientOptions {
  // Socket timeouts; 0 = wait forever (not recommended).
  uint64_t connect_timeout_ms = 5000;
  uint64_t send_timeout_ms = 30000;
  uint64_t recv_timeout_ms = 30000;
  // Retries per Query()/Explain() call after a kUnavailable failure;
  // 0 disables retrying entirely.
  uint32_t max_retries = 0;
  // Exponential backoff between retries: initial, doubling, capped.
  // A server retry-after hint raises the floor for that retry.
  uint64_t backoff_initial_ms = 50;
  uint64_t backoff_max_ms = 2000;
  // Client-wide cap on total retries across all calls: a flapping server
  // exhausts the budget instead of retrying forever.
  uint32_t retry_budget = 64;
  // Seed for the deterministic backoff jitter (reproducible runs).
  uint64_t jitter_seed = 1;
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientOptions options);
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Remembers host/port for reconnects, then connects (bounded by
  // connect_timeout_ms). Replays any recorded session settings.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // SET name = value for this session. Server-side validation errors come
  // back as the returned status. Accepted settings are recorded and
  // replayed after every reconnect.
  Status Set(const std::string& name, const std::string& value);

  // Runs `sql` to completion: result rows into *result, the server's Stats
  // frame into *stats (nullable). Server-side errors (parse, execution,
  // admission rejection, cancellation) come back as the returned status.
  // Retries kUnavailable failures per ClientOptions.
  Status Query(const std::string& sql, QueryResult* result,
               QueryStatsWire* stats = nullptr);

  // EXPLAIN helper: runs `sql` (which must be an EXPLAIN statement) and
  // returns the plan text. Retries like Query().
  Status Explain(const std::string& sql, std::string* text);

  // Liveness probe: sends a Ping carrying `token` and waits (bounded) for
  // the matching Pong. Answered by the server's IO thread directly, so it
  // bypasses the admission queue — a saturated or draining server still
  // answers. Never retried: the caller wants the truth about now.
  Status Ping(uint64_t token);

  // Split-phase API for cancellation tests and the REPL's Ctrl-C path:
  // send the query, optionally send Cancel while it runs, then collect the
  // response. No retries at this level.
  Status SendQuery(const std::string& sql);
  Status SendCancel();
  // Reads frames until the query terminates (Stats / Explain / Error).
  // Explain text lands in *explain_text (nullable) when the statement was
  // an EXPLAIN.
  Status ReadQueryResponse(QueryResult* result, QueryStatsWire* stats,
                           std::string* explain_text = nullptr);

  // The retry-after hint from the last kError frame read (0 when it
  // carried none): how long the server suggests waiting before retrying a
  // shed or drain rejection.
  uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }
  // Retries spent against the client-wide budget so far.
  uint32_t retries_spent() const { return retries_spent_; }

  // Test hook: writes raw bytes to the socket (malformed-frame tests).
  Status SendRaw(const std::vector<uint8_t>& bytes);
  // Test hook: reads one frame (kOk / kError acknowledgements).
  Status ReadFrameInto(std::vector<uint8_t>* payload, FrameType* type);

 private:
  Status ConnectSocket();
  // Reconnect + replay recorded session settings (the retry path).
  Status Reconnect();
  Status WriteAll(const std::vector<uint8_t>& bytes);
  // Blocks (bounded by recv_timeout_ms) until one complete frame is
  // buffered; points *frame into rbuf_.
  Status ReadFrame(FrameView* frame);
  // Runs `attempt`, retrying kUnavailable failures with backoff/jitter.
  Status RunWithRetry(const std::function<Status()>& attempt);
  // Deterministic jitter in [0, bound] (splitmix64 over jitter_seed).
  uint64_t Jitter(uint64_t bound);

  ClientOptions options_{};
  std::string host_;
  uint16_t port_ = 0;
  int fd_ = -1;
  std::vector<uint8_t> rbuf_;
  size_t roffset_ = 0;
  // Session settings the server accepted, in application order (replayed
  // on reconnect). A map: the last value per name is what the session is.
  std::map<std::string, std::string> session_settings_;
  uint32_t last_retry_after_ms_ = 0;
  // True when the last failure was a clean server-sent Error frame (the
  // stream is still synchronized); false for transport failures, where a
  // retry must reconnect.
  bool last_failure_remote_ = false;
  uint32_t retries_spent_ = 0;
  uint64_t jitter_state_ = 0;
};

}  // namespace bipie::server

#endif  // BIPIE_SERVER_CLIENT_H_
