// The bipie wire protocol (DESIGN.md §14).
//
// Length-prefixed binary frames over a byte stream:
//
//   u32 payload_len (LE) | u8 frame_type | payload[payload_len]
//
// Client -> server: Query (SQL text), SetSetting (name/value), Cancel.
// Server -> client: zero or more ResultBatch frames followed by one Stats
// frame (success), one Explain frame (EXPLAIN statements), or one Error
// frame (failure); Ok acknowledges SetSetting.
//
// Everything arriving off the wire is untrusted, exactly like a table file
// (DESIGN.md §10): the payload length is bounded before any allocation,
// every string length is checked against both its own cap and the bytes
// actually remaining in the frame, and decoders return a structured
// kInvalidArgument — never trusting a length, never crashing. Integers are
// fixed-width little-endian; strings are u32 length + raw bytes.
#ifndef BIPIE_SERVER_PROTOCOL_H_
#define BIPIE_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"

namespace bipie::server {

// Hard ceiling on one frame's payload: big enough for any result batch the
// server cuts, small enough that a hostile length cannot balloon a read
// buffer. Frames above it are protocol errors (connection closed).
inline constexpr uint32_t kMaxFramePayload = 16u << 20;
// Per-string ceiling inside a payload (SQL text, error messages, names).
inline constexpr uint32_t kMaxStringBytes = 1u << 20;
// Result rows per ResultBatch frame; larger results span several frames.
inline constexpr size_t kMaxResultRowsPerBatch = 1024;
// Frame header: u32 payload length + u8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

enum class FrameType : uint8_t {
  kQuery = 1,        // str sql
  kSetSetting = 2,   // str name | str value
  kCancel = 3,       // (empty) cancel the in-flight query, if any
  kResultBatch = 4,  // result header + rows (see EncodeResultFrames)
  kStats = 5,        // QueryStatsWire; terminates a successful query
  kError = 6,        // u8 status code | str message | [u32 retry-after ms]
  kOk = 7,           // (empty) acknowledges SetSetting
  kExplain = 8,      // str text; terminates an EXPLAIN statement
  kPing = 9,         // u64 token; liveness probe, bypasses admission
  kPong = 10,        // u64 token; echoes the Ping's token
};
inline constexpr uint8_t kMaxFrameType = 10;

// Per-query execution stats returned in the Stats frame. queue_wait_ns /
// exec_ns split the server-side latency into admission queueing vs scan
// execution; peak_memory_bytes is the query tracker's high-water mark.
struct QueryStatsWire {
  uint64_t rows_scanned = 0;
  uint64_t rows_selected = 0;
  uint64_t batches = 0;
  uint64_t segments_scanned = 0;
  uint64_t segments_eliminated = 0;
  uint64_t runs_aggregated = 0;
  uint64_t queue_wait_ns = 0;
  uint64_t exec_ns = 0;
  uint64_t peak_memory_bytes = 0;
  bool used_hash_fallback = false;
  // The server's degraded-mode flag at reply time: true while the overload
  // shed policy is rejecting low-band queries (soft memory limit latched or
  // queue wait over the shed threshold). Lets clients and load balancers
  // see overload on every response, not only on rejections.
  bool degraded = false;
};

// Stable status-code wire values (the StatusCode enum itself is not a wire
// contract). Unknown wire values decode as kInternal.
uint8_t WireCodeOfStatus(StatusCode code);
StatusCode StatusCodeOfWire(uint8_t wire);

// ---------------------------------------------------------------------------
// Encoding (trusted side: lengths are produced, not believed).

// Builds one frame: header plus typed payload appended via the Put* calls.
class FrameBuilder {
 public:
  explicit FrameBuilder(FrameType type);

  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutString(const std::string& s);  // caller keeps s under kMaxStringBytes

  // Patches the length header and returns the wire bytes. The builder is
  // spent afterwards.
  std::vector<uint8_t> Finish();

 private:
  std::vector<uint8_t> bytes_;
};

std::vector<uint8_t> EncodeQueryFrame(const std::string& sql);
std::vector<uint8_t> EncodeSetSettingFrame(const std::string& name,
                                           const std::string& value);
std::vector<uint8_t> EncodeCancelFrame();
std::vector<uint8_t> EncodeOkFrame();
std::vector<uint8_t> EncodePingFrame(uint64_t token);
std::vector<uint8_t> EncodePongFrame(uint64_t token);
// A retry_after_ms > 0 appends a retry-after hint (kUnavailable shedding /
// draining rejections); 0 keeps the legacy two-field payload.
std::vector<uint8_t> EncodeErrorFrame(const Status& status,
                                      uint32_t retry_after_ms = 0);
std::vector<uint8_t> EncodeExplainFrame(const std::string& text);
std::vector<uint8_t> EncodeStatsFrame(const QueryStatsWire& stats);
// Splits `result` into ResultBatch frames of at most kMaxResultRowsPerBatch
// rows each (at least one frame, so empty results still round-trip the
// column header) and appends them to `out`.
void EncodeResultFrames(const QueryResult& result,
                        std::vector<std::vector<uint8_t>>* out);

// ---------------------------------------------------------------------------
// Decoding (untrusted side).

// Bounds-checked cursor over one frame payload. Get* return false once the
// payload is exhausted or a nested length lies about the remaining bytes.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetString(std::string* s);
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// One complete frame located inside a receive buffer (borrowed bytes).
struct FrameView {
  FrameType type = FrameType::kOk;
  const uint8_t* payload = nullptr;
  size_t size = 0;
};

enum class FrameScan { kFrame, kNeedMore, kError };

// Tries to take the next complete frame from buffer[*offset..). On kFrame,
// fills *frame and advances *offset past it. kNeedMore means the buffer
// ends mid-frame (read more bytes and retry). kError (oversized length,
// unknown frame type) fills *error; the connection should be dropped.
FrameScan NextFrame(const std::vector<uint8_t>& buffer, size_t* offset,
                    FrameView* frame, Status* error);

Status DecodeQueryFrame(const FrameView& frame, std::string* sql);
Status DecodeSetSettingFrame(const FrameView& frame, std::string* name,
                             std::string* value);
// A non-null `retry_after_ms` receives the optional retry-after hint
// (0 when the frame carries none).
Status DecodeErrorFrame(const FrameView& frame, Status* out,
                        uint32_t* retry_after_ms = nullptr);
Status DecodePingFrame(const FrameView& frame, uint64_t* token);
Status DecodePongFrame(const FrameView& frame, uint64_t* token);
Status DecodeExplainFrame(const FrameView& frame, std::string* text);
Status DecodeStatsFrame(const FrameView& frame, QueryStatsWire* stats);
// Appends the batch's rows to *result (sets the column header on the first
// batch and cross-checks it on later ones).
Status DecodeResultBatch(const FrameView& frame, QueryResult* result);

}  // namespace bipie::server

#endif  // BIPIE_SERVER_PROTOCOL_H_
