// Minimal streaming JSON writer shared by PlanExplain and the trace
// exporter.
//
// Output is byte-stable for a given call sequence: keys appear in the order
// the caller emits them, numbers are formatted with fixed rules (integers
// verbatim, doubles with up to 6 significant digits and no locale), and
// strings are escaped per RFC 8259. That stability is what lets golden
// tests diff explain JSON across machines.
#ifndef BIPIE_OBS_JSON_WRITER_H_
#define BIPIE_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bipie::obs {

std::string JsonEscaped(std::string_view s);

class JsonWriter {
 public:
  // `indent` > 0 pretty-prints with that many spaces per level; 0 emits the
  // compact single-line form.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key for the next value (objects only).
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view s);
  JsonWriter& Value(const char* s) { return Value(std::string_view(s)); }
  JsonWriter& Value(bool b);
  JsonWriter& Value(double d);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Null();

  // Shorthand for Key(k) followed by Value(v).
  template <typename T>
  JsonWriter& KV(std::string_view key, T&& v) {
    Key(key);
    return Value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();
  void OpenScope(char c, bool is_object);
  void CloseScope(char c);
  void NewlineIndent();

  struct Scope {
    bool is_object = false;
    bool has_items = false;
  };

  int indent_;
  bool pending_key_ = false;
  std::string out_;
  std::vector<Scope> scopes_;
};

}  // namespace bipie::obs

#endif  // BIPIE_OBS_JSON_WRITER_H_
