// Query plan introspection (DESIGN.md §12).
//
// BIPieScan::Explain() resolves the same per-segment decisions Execute()
// would make — segment elimination, aggregation strategy with every
// admission/profitability input, the predicted per-batch selection choice,
// the query-level hash-fallback — without touching a single encoded byte
// beyond metadata. The result renders as human-readable text and as stable
// JSON (fixed key order, fixed number formatting) suitable for golden
// tests: the same table + query + options produce byte-identical output on
// every machine and at every thread count.
#ifndef BIPIE_OBS_PLAN_EXPLAIN_H_
#define BIPIE_OBS_PLAN_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/strategy.h"

namespace bipie {

// One strategy that was not chosen for a segment, and why. Reasons are
// derived from the PlanDecision inputs (never recorded on the bind hot
// path).
struct RejectedAlternative {
  AggregationStrategy strategy = AggregationStrategy::kScalar;
  bool feasible = false;
  std::string reason;
};

struct SegmentPlan {
  size_t segment_index = 0;
  size_t num_rows = 0;

  // Segment elimination: metadata proved no row can pass this filter.
  bool eliminated = false;
  int eliminated_by_filter = -1;  // index into the query's filters
  std::string eliminated_by;      // rendered predicate

  // Strategy resolution (meaningful when !eliminated). A failed bind
  // (forced-plan rejection, overflow abort, >255 groups) keeps bind_ok
  // false with the status text; decision still holds the recorded inputs.
  bool bind_ok = false;
  std::string bind_error;
  bool bind_not_supported = false;  // the kNotSupported (fallback) class
  PlanDecision decision;

  // The per-batch selection prediction at decision.expected_selectivity
  // (the real choice adapts to each batch's measured selectivity).
  bool selection_applies = false;  // filters or deleted rows present
  SelectionStrategy predicted_selection = SelectionStrategy::kGather;
  double gather_crossover = 0.0;  // at decision.max_materialized_bits

  std::vector<RejectedAlternative> rejected;
};

struct PlanExplain {
  // Query shape, rendered.
  std::vector<std::string> group_by;
  std::vector<std::string> aggregates;
  std::vector<std::string> filters;

  size_t total_rows = 0;
  size_t segments_total = 0;       // non-empty segments
  size_t segments_scanned = 0;
  size_t segments_eliminated = 0;
  bool segment_elimination_enabled = true;

  // Query-level outcome Execute() would reach: delegate to the generic
  // hash-aggregation engine (adaptive plan outside the specialized
  // envelope), fail with the recorded error (forced plan infeasible,
  // overflow risk), or run the specialized scan.
  bool hash_fallback = false;
  std::string hash_fallback_reason;
  bool plan_error = false;       // forced/overflow rejection Execute returns
  std::string plan_error_text;

  std::vector<SegmentPlan> segments;

  std::string ToText() const;
  // Stable JSON; indent > 0 pretty-prints, 0 emits one line.
  std::string ToJson(int indent = 2) const;
};

}  // namespace bipie

#endif  // BIPIE_OBS_PLAN_EXPLAIN_H_
