#include "obs/plan_explain.h"

#include <array>
#include <cstdio>

#include "core/aggregate_processor.h"
#include "core/scan.h"
#include "obs/json_writer.h"
#include "storage/table.h"

namespace bipie {

namespace {

const char* CompareOpText(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "between";
  }
  return "?";
}

std::string RenderPredicate(const ColumnPredicate& pred) {
  if (pred.op() == CompareOp::kBetween) {
    return pred.column_name() + " between " + std::to_string(pred.literal()) +
           " and " + std::to_string(pred.literal2());
  }
  std::string lit = pred.string_literal().empty()
                        ? std::to_string(pred.literal())
                        : "'" + pred.string_literal() + "'";
  return pred.column_name() + " " + CompareOpText(pred.op()) + " " + lit;
}

std::string RenderExpr(const Expr& expr, const Table& table) {
  switch (expr.kind()) {
    case ExprKind::kColumn: {
      const int idx = expr.column_index();
      if (idx >= 0 && static_cast<size_t>(idx) < table.num_columns()) {
        return table.schema()[idx].name;
      }
      return "col#" + std::to_string(idx);
    }
    case ExprKind::kConstant:
      return std::to_string(expr.constant());
    case ExprKind::kAdd:
      return "(" + RenderExpr(*expr.lhs(), table) + " + " +
             RenderExpr(*expr.rhs(), table) + ")";
    case ExprKind::kSub:
      return "(" + RenderExpr(*expr.lhs(), table) + " - " +
             RenderExpr(*expr.rhs(), table) + ")";
    case ExprKind::kMul:
      return "(" + RenderExpr(*expr.lhs(), table) + " * " +
             RenderExpr(*expr.rhs(), table) + ")";
  }
  return "?";
}

std::string RenderAggregate(const AggregateSpec& spec, const Table& table) {
  switch (spec.kind) {
    case AggregateSpec::Kind::kCount:
      return "count(*)";
    case AggregateSpec::Kind::kSum:
      return "sum(" + spec.column + ")";
    case AggregateSpec::Kind::kAvg:
      return "avg(" + spec.column + ")";
    case AggregateSpec::Kind::kMin:
      return "min(" + spec.column + ")";
    case AggregateSpec::Kind::kMax:
      return "max(" + spec.column + ")";
    case AggregateSpec::Kind::kSumExpr:
      return "sum(" +
             (spec.expr != nullptr ? RenderExpr(*spec.expr, table) : "?") +
             ")";
  }
  return "?";
}

std::string Fixed2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// Index of the model's cheapest feasible strategy (strict-less argmin, the
// same tie rule ScoreSegment uses); -1 when nothing was scored.
int ModelArgmin(const PlanDecision& d) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(kNumAggregationStrategies); ++i) {
    if (d.model_total_cpr[i] < 0.0) continue;
    if (best < 0 || d.model_total_cpr[i] < d.model_total_cpr[best]) best = i;
  }
  return best;
}

// Why the run pipeline cannot (or should not) take this segment, from the
// recorded admission inputs.
std::string RunRejectionReason(const PlanDecision& d) {
  const RunAdmissionInputs& in = d.run_inputs;
  if (!d.run_capable) {
    std::string why;
    auto add = [&why](const char* part) {
      if (!why.empty()) why += ", ";
      why += part;
    };
    if (!in.groups_are_runs) add("group columns are not runs");
    if (!in.filters_are_runs) add("filters are not run-representable");
    if (!in.aggregates_are_runs) add("aggregates are not run-representable");
    if (in.has_deleted_rows) add("segment has deleted rows");
    if (in.selection_forced) add("selection strategy forced");
    if (in.segment_rows == 0) add("empty segment");
    return "infeasible: " + why;
  }
  const size_t spans = in.estimated_spans > 0 ? in.estimated_spans : 1;
  return "unprofitable: avg span " +
         std::to_string(in.segment_rows / spans) + " rows < " +
         std::to_string(kMinRunSpanRows) + " (" +
         std::to_string(in.segment_rows) + " rows / " +
         std::to_string(spans) + " spans)";
}

// Why the byteslice plane kernels were (or were not) admitted, from the
// recorded admission inputs (DESIGN.md §16).
std::string ByteSliceReason(const PlanDecision& d) {
  const ByteSliceAdmissionInputs& in = d.byteslice_inputs;
  if (d.forced_byteslice.has_value()) {
    return *d.forced_byteslice ? "forced on" : "forced off";
  }
  if (!d.byteslice_capable) {
    return "infeasible: no filter binds to a byte-sliced column";
  }
  if (d.cost_model_mode != CostModelMode::kOff &&
      d.model_filter_byteslice_cpr >= 0.0) {
    return std::string("model: plane kernels ") +
           Fixed2(d.model_filter_byteslice_cpr) + " vs decode " +
           Fixed2(d.model_filter_decode_cpr) + " cycles/row" +
           (d.cost_model_mode == CostModelMode::kAdaptive
                ? ", adaptive margin applied"
                : "");
  }
  if (d.byteslice_admitted) {
    return in.max_planes <= 1
               ? "single plane: no pruning needed"
               : "est selectivity " + Fixed2(in.estimated_selectivity) +
                     " <= " + Fixed2(kByteSliceSelectivityCeiling) +
                     " ceiling";
  }
  return "unprofitable: est selectivity " + Fixed2(in.estimated_selectivity) +
         " above the " + Fixed2(kByteSliceSelectivityCeiling) +
         " ceiling with " + std::to_string(in.max_planes) + " planes";
}

// Rejected-alternative reasons, derived from the recorded decision inputs.
std::vector<RejectedAlternative> DeriveRejected(const PlanDecision& d) {
  static constexpr std::array<AggregationStrategy, 6> kAll = {
      AggregationStrategy::kScalar,         AggregationStrategy::kInRegister,
      AggregationStrategy::kSortBased,      AggregationStrategy::kMultiAggregate,
      AggregationStrategy::kCheckedScalar,  AggregationStrategy::kRunBased,
  };
  std::vector<RejectedAlternative> out;
  const std::string chosen = AggregationStrategyName(d.aggregation);
  for (const AggregationStrategy s : kAll) {
    if (s == d.aggregation) continue;
    RejectedAlternative alt;
    alt.strategy = s;
    if (d.aggregation_forced) {
      alt.feasible = false;
      alt.reason = "strategy forced to " + chosen;
      out.push_back(std::move(alt));
      continue;
    }
    if (d.overflow_risk && s != AggregationStrategy::kCheckedScalar) {
      alt.feasible = false;
      alt.reason = "metadata cannot prove int64-safe sums";
      out.push_back(std::move(alt));
      continue;
    }
    switch (s) {
      case AggregationStrategy::kRunBased:
        alt.feasible = d.run_capable;
        alt.reason = RunRejectionReason(d);
        break;
      case AggregationStrategy::kInRegister:
        if (!d.in_register_feasible) {
          alt.feasible = false;
          alt.reason = "infeasible: ";
          if (d.any_expr_input) {
            alt.reason += "expression aggregate inputs";
          } else if (d.max_value_bits > 32) {
            alt.reason += std::to_string(d.max_value_bits) +
                          "-bit values exceed 32-bit lanes";
          } else {
            alt.reason += std::to_string(d.groups_for_choice) +
                          " groups exceed the register lane budget";
          }
        } else {
          alt.feasible = true;
          alt.reason = "feasible; adaptive rules preferred " + chosen;
        }
        break;
      case AggregationStrategy::kSortBased:
        if (d.num_sums == 0) {
          alt.feasible = false;
          alt.reason = "infeasible: needs at least one sum";
        } else {
          alt.feasible = true;
          if (d.expected_selectivity > 0.25) {
            alt.reason = "selectivity estimate " +
                         Fixed2(d.expected_selectivity) +
                         " above the 0.25 sort-based region";
          } else if (d.num_sums < 2) {
            alt.reason = "fewer than 2 sums to amortize the sort";
          } else {
            alt.reason = "feasible; adaptive rules preferred " + chosen;
          }
        }
        break;
      case AggregationStrategy::kMultiAggregate:
        if (!d.multi_aggregate_fits) {
          alt.feasible = false;
          alt.reason =
              "infeasible: expanded row does not fit one SIMD register";
        } else {
          alt.feasible = true;
          alt.reason = "feasible; adaptive rules preferred " + chosen;
        }
        break;
      case AggregationStrategy::kCheckedScalar:
        alt.feasible = true;
        alt.reason = "unneeded: metadata proves int64-safe sums";
        break;
      case AggregationStrategy::kScalar:
        alt.feasible = true;
        alt.reason = "generic fallback; " + chosen + " is faster here";
        break;
    }
    out.push_back(std::move(alt));
  }
  return out;
}

}  // namespace

Result<PlanExplain> BIPieScan::Explain() const {
  PlanExplain explain;
  explain.segment_elimination_enabled = options_.enable_segment_elimination;
  for (const std::string& g : query_.group_by) explain.group_by.push_back(g);
  for (const AggregateSpec& spec : query_.aggregates) {
    explain.aggregates.push_back(RenderAggregate(spec, table_));
  }
  for (const ColumnPredicate& pred : query_.filters) {
    explain.filters.push_back(RenderPredicate(pred));
  }

  // Same early validation as Execute: unknown filter columns are an error,
  // not a plan.
  std::vector<int> filter_cols;
  for (const ColumnPredicate& pred : query_.filters) {
    const int idx = table_.FindColumn(pred.column_name());
    if (idx < 0) {
      return Status::InvalidArgument("unknown filter column: " +
                                     pred.column_name());
    }
    filter_cols.push_back(idx);
  }

  // Per-segment resolution, mirroring Execute's elimination pass and the
  // per-morsel Bind (which is metadata-only and cheap).
  Status first_real_error;
  Status first_not_supported;
  for (size_t s = 0; s < table_.num_segments(); ++s) {
    const Segment& segment = table_.segment(s);
    if (segment.num_rows() == 0) continue;
    ++explain.segments_total;
    explain.total_rows += segment.num_rows();

    SegmentPlan plan;
    plan.segment_index = s;
    plan.num_rows = segment.num_rows();

    if (options_.enable_segment_elimination) {
      for (size_t f = 0; f < query_.filters.size(); ++f) {
        if (query_.filters[f].EliminatesSegment(
                segment.column(filter_cols[f]))) {
          plan.eliminated = true;
          plan.eliminated_by_filter = static_cast<int>(f);
          plan.eliminated_by = explain.filters[f];
          break;
        }
      }
    }
    if (plan.eliminated) {
      ++explain.segments_eliminated;
      explain.segments.push_back(std::move(plan));
      continue;
    }
    ++explain.segments_scanned;

    AggregateProcessor processor;
    const Status bind =
        processor.Bind(table_, segment, query_, options_.overrides);
    plan.decision = processor.plan_decision();
    if (!bind.ok()) {
      plan.bind_ok = false;
      plan.bind_error = bind.ToString();
      plan.bind_not_supported = bind.code() == StatusCode::kNotSupported;
      if (plan.bind_not_supported) {
        if (first_not_supported.ok()) first_not_supported = bind;
      } else if (first_real_error.ok()) {
        first_real_error = bind;
      }
    } else {
      plan.bind_ok = true;
      const PlanDecision& d = plan.decision;
      plan.selection_applies =
          d.filtered && d.aggregation != AggregationStrategy::kRunBased;
      plan.gather_crossover =
          GatherCrossoverSelectivity(d.max_materialized_bits);
      plan.predicted_selection =
          d.forced_selection.has_value()
              ? *d.forced_selection
              : ChooseSelectionStrategy(d.expected_selectivity,
                                        d.max_materialized_bits,
                                        d.special_group_available);
      // cost_model=on swaps the Figure-7 crossover for the model's (the
      // same substitution PickBatchMode makes per batch).
      if (d.cost_model_mode == CostModelMode::kOn &&
          !d.forced_selection.has_value()) {
        plan.gather_crossover = d.model_gather_crossover;
        plan.predicted_selection =
            d.model_selectivity <= d.model_gather_crossover
                ? SelectionStrategy::kGather
                : (d.special_group_available ? SelectionStrategy::kSpecialGroup
                                             : SelectionStrategy::kCompact);
      }
      plan.rejected = DeriveRejected(d);
    }
    explain.segments.push_back(std::move(plan));
  }

  // Query-level outcome, following Execute's deterministic failure choice:
  // the lowest-indexed real error wins; otherwise a kNotSupported rejection
  // means hash fallback (adaptive) or a returned error (forced plan).
  const bool forced = options_.overrides.selection.has_value() ||
                      options_.overrides.aggregation.has_value() ||
                      options_.overrides.byteslice.has_value();
  if (!first_real_error.ok()) {
    explain.plan_error = true;
    explain.plan_error_text = first_real_error.ToString();
  } else if (!first_not_supported.ok()) {
    if (forced) {
      explain.plan_error = true;
      explain.plan_error_text = first_not_supported.ToString();
    } else {
      explain.hash_fallback = true;
      explain.hash_fallback_reason = first_not_supported.ToString();
    }
  }
  return explain;
}

std::string PlanExplain::ToText() const {
  std::string out;
  auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  auto join = [](const std::vector<std::string>& parts) {
    std::string s;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) s += ", ";
      s += parts[i];
    }
    return s.empty() ? std::string("(none)") : s;
  };

  line("== BIPie plan ==");
  line("table: " + std::to_string(total_rows) + " rows in " +
       std::to_string(segments_total) + " segments (elimination " +
       (segment_elimination_enabled ? "on" : "off") + ")");
  line("group by: " + join(group_by));
  line("aggregates: " + join(aggregates));
  line("filters: " + join(filters));
  if (plan_error) {
    line("outcome: error — " + plan_error_text);
  } else if (hash_fallback) {
    line("outcome: hash-aggregation fallback — " + hash_fallback_reason);
  } else {
    line("outcome: specialized scan (" + std::to_string(segments_scanned) +
         " segments, " + std::to_string(segments_eliminated) +
         " eliminated)");
  }

  for (const SegmentPlan& seg : segments) {
    line("segment " + std::to_string(seg.segment_index) + ": " +
         std::to_string(seg.num_rows) + " rows");
    if (seg.eliminated) {
      line("  eliminated by filter[" +
           std::to_string(seg.eliminated_by_filter) + "]: " +
           seg.eliminated_by);
      continue;
    }
    if (!seg.bind_ok) {
      line("  bind rejected: " + seg.bind_error);
      continue;
    }
    const PlanDecision& d = seg.decision;
    line(std::string("  aggregation: ") +
         AggregationStrategyName(d.aggregation) +
         (d.aggregation_forced ? " (forced)" : ""));
    line("    groups: " + std::to_string(d.num_groups) +
         (d.special_group_available ? " (+special)" : "") +
         ", sums: " + std::to_string(d.num_sums) +
         ", max value bits: " + std::to_string(d.max_value_bits) +
         ", est selectivity: " + Fixed2(d.expected_selectivity) +
         ", multi-agg fits: " + (d.multi_aggregate_fits ? "yes" : "no") +
         ", overflow risk: " + (d.overflow_risk ? "yes" : "no"));
    {
      const RunAdmissionInputs& in = d.run_inputs;
      const size_t spans = in.estimated_spans > 0 ? in.estimated_spans : 1;
      line("    run-level: capable " + std::string(d.run_capable ? "yes" : "no") +
           ", admitted " + (d.run_admitted ? "yes" : "no") + ", spans<=" +
           std::to_string(in.estimated_spans) + ", avg span " +
           std::to_string(in.segment_rows / spans) + " rows");
    }
    // Byteslice admission only prints when it can matter — a capable
    // segment or an explicit override. Queries that never touch a
    // byte-sliced column keep their pre-§16 explain text.
    if (d.byteslice_capable || d.forced_byteslice.has_value()) {
      line("    byteslice: capable " +
           std::string(d.byteslice_capable ? "yes" : "no") + ", admitted " +
           (d.byteslice_admitted ? "yes" : "no") + ", planes<=" +
           std::to_string(d.byteslice_inputs.max_planes) + " (" +
           ByteSliceReason(d) + ")");
    }
    // Cost-model block only renders when the model was consulted: off-mode
    // explains stay byte-identical to the pre-§17 text.
    if (d.cost_model_mode != CostModelMode::kOff) {
      line(std::string("    cost model: ") +
           CostModelModeName(d.cost_model_mode) + ", profile " +
           (d.cost_model_profile_calibrated ? "calibrated" : "builtin") +
           ", model selectivity " + Fixed2(d.model_selectivity) +
           ", overrode heuristic: " + (d.cost_model_overrode ? "yes" : "no"));
      {
        const int best = ModelArgmin(d);
        std::string cpr = "      predicted cycles/row:";
        for (int i = 0; i < static_cast<int>(kNumAggregationStrategies); ++i) {
          cpr += i == 0 ? " " : ", ";
          cpr += AggregationStrategyName(static_cast<AggregationStrategy>(i));
          cpr += ' ';
          cpr += d.model_total_cpr[i] < 0.0 ? std::string("-")
                                            : Fixed2(d.model_total_cpr[i]);
          if (i == best) cpr += '*';
        }
        line(cpr);
      }
      if (d.filtered) {
        static constexpr const char* kSelNames[3] = {"gather", "compact",
                                                     "special-group"};
        std::string sel = "      selection cycles/row:";
        for (int i = 0; i < 3; ++i) {
          sel += i == 0 ? " " : ", ";
          sel += kSelNames[i];
          sel += ' ';
          sel += d.model_selection_cpr[i] < 0.0
                     ? std::string("-")
                     : Fixed2(d.model_selection_cpr[i]);
        }
        sel += "; model gather crossover " + Fixed2(d.model_gather_crossover);
        line(sel);
        line("      filter cycles/row: decode " +
             (d.model_filter_decode_cpr < 0.0
                  ? std::string("-")
                  : Fixed2(d.model_filter_decode_cpr)) +
             ", byteslice " +
             (d.model_filter_byteslice_cpr < 0.0
                  ? std::string("-")
                  : Fixed2(d.model_filter_byteslice_cpr)));
      }
    }
    if (!seg.selection_applies) {
      line("  selection: none (no filters or deletes reach the batch loop)");
    } else {
      line(std::string("  selection: ") +
           (d.forced_selection.has_value() ? "forced " : "adaptive, predicted ") +
           SelectionStrategyName(seg.predicted_selection) + " @" +
           Fixed2(d.expected_selectivity) + " est (gather<=" +
           Fixed2(seg.gather_crossover) + " crossover at " +
           std::to_string(d.max_materialized_bits) + " bits)");
    }
    for (const RejectedAlternative& alt : seg.rejected) {
      line(std::string("  rejected ") + AggregationStrategyName(alt.strategy) +
           ": " + alt.reason);
    }
  }
  return out;
}

std::string PlanExplain::ToJson(int indent) const {
  obs::JsonWriter w(indent);
  w.BeginObject();

  w.Key("query").BeginObject();
  w.Key("group_by").BeginArray();
  for (const std::string& g : group_by) w.Value(g);
  w.EndArray();
  w.Key("aggregates").BeginArray();
  for (const std::string& a : aggregates) w.Value(a);
  w.EndArray();
  w.Key("filters").BeginArray();
  for (const std::string& f : filters) w.Value(f);
  w.EndArray();
  w.EndObject();

  w.Key("table").BeginObject();
  w.KV("total_rows", total_rows);
  w.KV("segments", segments_total);
  w.KV("elimination_enabled", segment_elimination_enabled);
  w.EndObject();

  w.Key("outcome").BeginObject();
  if (plan_error) {
    w.KV("kind", "error");
    w.KV("reason", plan_error_text);
  } else if (hash_fallback) {
    w.KV("kind", "hash_fallback");
    w.KV("reason", hash_fallback_reason);
  } else {
    w.KV("kind", "specialized_scan");
  }
  w.KV("segments_scanned", segments_scanned);
  w.KV("segments_eliminated", segments_eliminated);
  w.EndObject();

  w.Key("segments").BeginArray();
  for (const SegmentPlan& seg : segments) {
    w.BeginObject();
    w.KV("index", seg.segment_index);
    w.KV("rows", seg.num_rows);
    if (seg.eliminated) {
      w.KV("eliminated", true);
      w.KV("eliminated_by_filter", static_cast<int64_t>(seg.eliminated_by_filter));
      w.KV("eliminated_by", seg.eliminated_by);
      w.EndObject();
      continue;
    }
    if (!seg.bind_ok) {
      w.KV("bind_error", seg.bind_error);
      w.KV("bind_not_supported", seg.bind_not_supported);
      w.EndObject();
      continue;
    }
    const PlanDecision& d = seg.decision;
    w.Key("aggregation").BeginObject();
    w.KV("strategy", AggregationStrategyName(d.aggregation));
    w.KV("forced", d.aggregation_forced);
    w.Key("inputs").BeginObject();
    w.KV("num_groups", d.num_groups);
    w.KV("groups_for_choice", d.groups_for_choice);
    w.KV("num_sums", d.num_sums);
    w.KV("max_value_bits", d.max_value_bits);
    w.KV("expected_selectivity", d.expected_selectivity);
    w.KV("multi_aggregate_fits", d.multi_aggregate_fits);
    w.KV("in_register_feasible", d.in_register_feasible);
    w.KV("any_expr_input", d.any_expr_input);
    w.KV("overflow_risk", d.overflow_risk);
    w.KV("filtered", d.filtered);
    w.KV("special_group_available", d.special_group_available);
    w.EndObject();
    w.Key("run_admission").BeginObject();
    w.KV("capable", d.run_capable);
    w.KV("admitted", d.run_admitted);
    w.KV("groups_are_runs", d.run_inputs.groups_are_runs);
    w.KV("filters_are_runs", d.run_inputs.filters_are_runs);
    w.KV("aggregates_are_runs", d.run_inputs.aggregates_are_runs);
    w.KV("has_deleted_rows", d.run_inputs.has_deleted_rows);
    w.KV("selection_forced", d.run_inputs.selection_forced);
    w.KV("estimated_spans", d.run_inputs.estimated_spans);
    w.EndObject();
    if (d.byteslice_capable || d.forced_byteslice.has_value()) {
      w.Key("byteslice_admission").BeginObject();
      w.KV("capable", d.byteslice_capable);
      w.KV("admitted", d.byteslice_admitted);
      w.KV("forced", d.forced_byteslice.has_value());
      w.KV("max_planes", static_cast<int64_t>(d.byteslice_inputs.max_planes));
      w.KV("estimated_selectivity", d.byteslice_inputs.estimated_selectivity);
      w.KV("reason", ByteSliceReason(d));
      w.EndObject();
    }
    w.EndObject();

    // Present only when the model was consulted, so cost_model=off JSON is
    // byte-identical to the pre-§17 schema.
    if (d.cost_model_mode != CostModelMode::kOff) {
      w.Key("cost_model").BeginObject();
      w.KV("mode", CostModelModeName(d.cost_model_mode));
      w.KV("profile",
           d.cost_model_profile_calibrated ? "calibrated" : "builtin");
      w.KV("model_selectivity", d.model_selectivity);
      w.KV("overrode_heuristic", d.cost_model_overrode);
      {
        const int best = ModelArgmin(d);
        w.Key("predicted_cycles_per_row").BeginObject();
        for (int i = 0; i < static_cast<int>(kNumAggregationStrategies); ++i) {
          w.Key(AggregationStrategyName(static_cast<AggregationStrategy>(i)));
          if (d.model_total_cpr[i] < 0.0) {
            w.Null();
          } else {
            w.Value(d.model_total_cpr[i]);
          }
        }
        if (best >= 0) {
          w.KV("model_pick", AggregationStrategyName(
                                 static_cast<AggregationStrategy>(best)));
        }
        w.EndObject();
      }
      if (d.filtered) {
        static constexpr const char* kSelNames[3] = {"gather", "compact",
                                                     "special_group"};
        w.Key("selection_cycles_per_row").BeginObject();
        for (int i = 0; i < 3; ++i) {
          w.Key(kSelNames[i]);
          if (d.model_selection_cpr[i] < 0.0) {
            w.Null();
          } else {
            w.Value(d.model_selection_cpr[i]);
          }
        }
        w.EndObject();
        w.KV("model_gather_crossover", d.model_gather_crossover);
        w.Key("filter_cycles_per_row").BeginObject();
        w.Key("decode");
        if (d.model_filter_decode_cpr < 0.0) {
          w.Null();
        } else {
          w.Value(d.model_filter_decode_cpr);
        }
        w.Key("byteslice");
        if (d.model_filter_byteslice_cpr < 0.0) {
          w.Null();
        } else {
          w.Value(d.model_filter_byteslice_cpr);
        }
        w.EndObject();
      }
      w.EndObject();
    }

    w.Key("selection").BeginObject();
    w.KV("applies", seg.selection_applies);
    if (seg.selection_applies) {
      w.KV("forced", d.forced_selection.has_value());
      w.KV("predicted", SelectionStrategyName(seg.predicted_selection));
      w.KV("expected_selectivity", d.expected_selectivity);
      w.KV("gather_crossover", seg.gather_crossover);
      w.KV("max_materialized_bits", d.max_materialized_bits);
    }
    w.EndObject();

    w.Key("rejected").BeginArray();
    for (const RejectedAlternative& alt : seg.rejected) {
      w.BeginObject();
      w.KV("strategy", AggregationStrategyName(alt.strategy));
      w.KV("feasible", alt.feasible);
      w.KV("reason", alt.reason);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

}  // namespace bipie
