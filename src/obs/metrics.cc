#include "obs/metrics.h"

#include <algorithm>
#include <memory>
#include <mutex>

namespace bipie::obs {

namespace {

// Name-keyed registry. Get takes the mutex (registration is rare and never
// on a per-row path); Add/value touch only the counter's own atomic.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* registry = new Registry();  // leaked: process lifetime
    return *registry;
  }

  Counter& Get(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& c : counters_) {
      if (c->name() == name) return *c;
    }
    counters_.emplace_back(new Counter(std::string(name)));
    return *counters_.back();
  }

  MetricsSnapshot Snapshot() {
    MetricsSnapshot snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot.entries.reserve(counters_.size());
      for (const auto& c : counters_) {
        snapshot.entries.emplace_back(c->name(), c->value());
      }
    }
    std::sort(snapshot.entries.begin(), snapshot.entries.end());
    return snapshot;
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
};

}  // namespace

Counter& Counter::Get(std::string_view name) {
  return Registry::Instance().Get(name);
}

uint64_t MetricsSnapshot::ValueOf(std::string_view name) const {
  for (const auto& [key, value] : entries) {
    if (key == name) return value;
  }
  return 0;
}

MetricsSnapshot SnapshotMetrics() { return Registry::Instance().Snapshot(); }

MetricsSnapshot MetricsDelta(const MetricsSnapshot& now,
                             const MetricsSnapshot& base) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : now.entries) {
    const uint64_t before = base.ValueOf(name);
    // Counters are monotonic; guard anyway so a stale `base` from another
    // process run can never underflow.
    const uint64_t diff = value >= before ? value - before : 0;
    if (diff != 0) delta.entries.emplace_back(name, diff);
  }
  return delta;
}

MetricsSnapshot MetricsDelta(const MetricsSnapshot& base) {
  return MetricsDelta(SnapshotMetrics(), base);
}

std::string MetricsToText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.entries) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

}  // namespace bipie::obs
