#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>

#include "obs/json_writer.h"

namespace bipie::obs {

namespace {

// Per-thread fixed-capacity event buffer. Exactly one thread appends; the
// (acquire) count load in Snapshot publishes every slot written before the
// matching release store, so concurrent collection reads a clean prefix.
// Full buffers drop (and count) rather than wrap: overwriting slots would
// race collection.
class ThreadTraceBuffer {
 public:
  static constexpr size_t kCapacity = size_t{1} << 16;

  explicit ThreadTraceBuffer(uint32_t tid)
      : tid_(tid), events_(new TraceEvent[kCapacity]) {}

  void Append(const TraceEvent& event) {
    const size_t idx = count_.load(std::memory_order_relaxed);
    if (idx >= kCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[idx] = event;
    events_[idx].tid = tid_;
    count_.store(idx + 1, std::memory_order_release);
  }

  void Snapshot(std::vector<TraceEvent>* out) const {
    const size_t n = count_.load(std::memory_order_acquire);
    out->insert(out->end(), events_, events_ + n);
  }

  // Only safe while the owning thread is not recording (StartTracing).
  void Reset() {
    count_.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
  }

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  uint32_t tid_;
  TraceEvent* events_;  // leaked with the buffer: process lifetime
  std::atomic<size_t> count_{0};
  std::atomic<uint64_t> dropped_{0};
};

// Buffers are heap-allocated and registered forever: a thread that exits
// leaves its events collectable, and the registry never holds a dangling
// pointer.
struct TraceRegistry {
  std::mutex mu;
  std::vector<ThreadTraceBuffer*> buffers;
  std::atomic<bool> active{false};
};

TraceRegistry& GlobalTraceRegistry() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

ThreadTraceBuffer& LocalBuffer() {
  thread_local ThreadTraceBuffer* buffer = [] {
    TraceRegistry& registry = GlobalTraceRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto* b = new ThreadTraceBuffer(
        static_cast<uint32_t>(registry.buffers.size()));
    registry.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

bool TracingCompiledIn() {
#ifdef BIPIE_ENABLE_TRACING
  return true;
#else
  return false;
#endif
}

void StartTracing() {
  TraceRegistry& registry = GlobalTraceRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (ThreadTraceBuffer* buffer : registry.buffers) buffer->Reset();
  registry.active.store(true, std::memory_order_release);
}

void StopTracing() {
  GlobalTraceRegistry().active.store(false, std::memory_order_release);
}

bool IsTracingActive() {
  return GlobalTraceRegistry().active.load(std::memory_order_acquire);
}

void RecordTraceSpan(const char* name, const char* category,
                     uint64_t start_cycles, uint64_t end_cycles,
                     const char* arg_name, uint64_t arg_value) {
  if (!IsTracingActive()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_cycles = start_cycles;
  event.end_cycles = end_cycles;
  event.arg_name = arg_name;
  event.arg_value = arg_value;
  LocalBuffer().Append(event);
}

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> events;
  {
    TraceRegistry& registry = GlobalTraceRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const ThreadTraceBuffer* buffer : registry.buffers) {
      buffer->Snapshot(&events);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_cycles != b.start_cycles) {
                       return a.start_cycles < b.start_cycles;
                     }
                     return a.tid < b.tid;
                   });
  return events;
}

uint64_t TraceDroppedEvents() {
  TraceRegistry& registry = GlobalTraceRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  uint64_t dropped = 0;
  for (const ThreadTraceBuffer* buffer : registry.buffers) {
    dropped += buffer->dropped();
  }
  return dropped;
}

std::string TraceToChromeJson(const std::vector<TraceEvent>& events,
                              double tsc_hz) {
  // ts/dur are microseconds relative to the earliest start, so documents
  // from different machines diff cleanly.
  uint64_t origin = 0;
  if (!events.empty()) {
    origin = events[0].start_cycles;
    for (const TraceEvent& e : events) {
      origin = std::min(origin, e.start_cycles);
    }
  }
  const double us_per_cycle = tsc_hz > 0 ? 1e6 / tsc_hz : 0.0;
  std::string out = "{\"traceEvents\":[";
  char buf[64];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ',';
    out += "\n{\"name\":\"";
    out += JsonEscaped(e.name);
    out += "\",\"cat\":\"";
    out += JsonEscaped(e.category);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(e.start_cycles - origin) * us_per_cycle,
                  static_cast<double>(e.end_cycles - e.start_cycles) *
                      us_per_cycle);
    out += buf;
    if (e.arg_name != nullptr) {
      out += ",\"args\":{\"";
      out += JsonEscaped(e.arg_name);
      out += "\":";
      out += std::to_string(e.arg_value);
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

}  // namespace bipie::obs
