#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace bipie::obs {

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(scopes_.size() * static_cast<size_t>(indent_), ' ');
}

void JsonWriter::BeforeValue() {
  if (scopes_.empty()) return;
  Scope& scope = scopes_.back();
  if (scope.is_object && !pending_key_) return;  // Key() already separated
  if (!scope.is_object) {
    if (scope.has_items) out_ += ',';
    NewlineIndent();
    scope.has_items = true;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Scope& scope = scopes_.back();
  if (scope.has_items) out_ += ',';
  NewlineIndent();
  scope.has_items = true;
  out_ += '"';
  out_ += JsonEscaped(key);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

void JsonWriter::OpenScope(char c, bool is_object) {
  BeforeValue();
  out_ += c;
  scopes_.push_back({is_object, false});
}

void JsonWriter::CloseScope(char c) {
  const bool had_items = scopes_.back().has_items;
  scopes_.pop_back();
  if (had_items) NewlineIndent();
  out_ += c;
}

JsonWriter& JsonWriter::BeginObject() {
  OpenScope('{', true);
  return *this;
}
JsonWriter& JsonWriter::EndObject() {
  CloseScope('}');
  return *this;
}
JsonWriter& JsonWriter::BeginArray() {
  OpenScope('[', false);
  return *this;
}
JsonWriter& JsonWriter::EndArray() {
  CloseScope(']');
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view s) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscaped(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(bool b) {
  BeforeValue();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(double d) {
  BeforeValue();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace bipie::obs
