// Low-overhead scan tracing (DESIGN.md §12).
//
// Two layers:
//
//  * The recording *sites* — BIPIE_TRACE_SPAN(...) macros in scan.cc, the
//    scheduler and table IO — are compile-time gated on
//    BIPIE_ENABLE_TRACING. A default (release) build compiles them to
//    nothing: zero instructions, zero data, provably no regression.
//  * The recording *infrastructure* below is always compiled, so the
//    exporter is testable in every build and tools can emit explain/counter
//    metadata even when the span sites are compiled out.
//
// Recording is lock-free on the hot path: each thread owns a fixed-capacity
// event buffer (registered once under a mutex, on the thread's first
// event). An append is one relaxed load, one slot write and one release
// store; when the buffer fills, further events are dropped and counted —
// never overwritten, so collection can read concurrently without tearing.
// Timestamps are CycleTimer TSC reads, converted to microseconds only at
// export time.
//
// Start/Collect discipline: StartTracing() resets every buffer, so it must
// not race recording (trace one query at a time; pool workers are idle
// between queries). CollectTraceEvents() is safe concurrently with
// recording — it sees a prefix of each buffer.
#ifndef BIPIE_OBS_TRACE_H_
#define BIPIE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cycle_timer.h"

namespace bipie::obs {

// One completed span. Name/category/arg_name must be static-lifetime
// strings (string literals at every in-tree site): events store pointers,
// never copies, to keep the record path allocation-free.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  uint32_t tid = 0;  // sequential per-thread id, assigned at registration
  uint64_t start_cycles = 0;
  uint64_t end_cycles = 0;
  const char* arg_name = nullptr;  // optional integer argument
  uint64_t arg_value = 0;
};

// True when this library was built with BIPIE_ENABLE_TRACING (i.e. the
// BIPIE_TRACE_SPAN sites in scan/exec/storage record for real).
bool TracingCompiledIn();

// Runtime gate on top of the compile-time one. StartTracing resets all
// per-thread buffers and the dropped count.
void StartTracing();
void StopTracing();
bool IsTracingActive();

// Appends one completed span to the calling thread's buffer (no-op when
// tracing is inactive). Always compiled; the macro sites below are the
// gated callers, tests call it directly.
void RecordTraceSpan(const char* name, const char* category,
                     uint64_t start_cycles, uint64_t end_cycles,
                     const char* arg_name = nullptr, uint64_t arg_value = 0);

// Snapshot of every thread's events so far, sorted by (start, tid).
std::vector<TraceEvent> CollectTraceEvents();

// Events discarded because a per-thread buffer filled since StartTracing.
uint64_t TraceDroppedEvents();

// Renders events as a Chrome trace_event JSON document ("X" complete
// events, chrome://tracing and Perfetto both load it). Timestamps are
// microseconds relative to the earliest event, converted with `tsc_hz`
// (pass TscHz() for real traces; tests pass 1e6 so ts == cycles).
std::string TraceToChromeJson(const std::vector<TraceEvent>& events,
                              double tsc_hz);

// RAII span: samples the cycle counter at construction and records at
// destruction when tracing was active at construction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category,
                     const char* arg_name = nullptr, uint64_t arg_value = 0)
      : name_(name),
        category_(category),
        arg_name_(arg_name),
        arg_value_(arg_value),
        active_(IsTracingActive()),
        start_(active_ ? ReadCycleCounter() : 0) {}

  ~TraceSpan() {
    if (active_) {
      RecordTraceSpan(name_, category_, start_, ReadCycleCounter(), arg_name_,
                      arg_value_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  const char* arg_name_;
  uint64_t arg_value_;
  bool active_;
  uint64_t start_;
};

}  // namespace bipie::obs

// The gated site macros. Compiled out entirely (no atomic load, no branch)
// unless the build defines BIPIE_ENABLE_TRACING.
#ifdef BIPIE_ENABLE_TRACING
#define BIPIE_TRACE_CONCAT_INNER(a, b) a##b
#define BIPIE_TRACE_CONCAT(a, b) BIPIE_TRACE_CONCAT_INNER(a, b)
#define BIPIE_TRACE_SPAN(name, category)                    \
  ::bipie::obs::TraceSpan BIPIE_TRACE_CONCAT(bipie_trace_, \
                                             __LINE__)(name, category)
#define BIPIE_TRACE_SPAN_ARG(name, category, arg_name, arg_value)  \
  ::bipie::obs::TraceSpan BIPIE_TRACE_CONCAT(bipie_trace_,        \
                                             __LINE__)(            \
      name, category, arg_name, static_cast<uint64_t>(arg_value))
#else
#define BIPIE_TRACE_SPAN(name, category) ((void)0)
#define BIPIE_TRACE_SPAN_ARG(name, category, arg_name, arg_value) ((void)0)
#endif

#endif  // BIPIE_OBS_TRACE_H_
