// Process-wide counter/metrics registry (DESIGN.md §12).
//
// One Counter is one monotonically increasing uint64 with a stable
// dot-separated name ("scan.rows_scanned", "exec.tasks_stolen", ...).
// Counters are registered once (first Get) and live for the process; Add is
// a single relaxed atomic increment, cheap enough for per-morsel and
// per-query reporting (hot loops report in bulk after the fact, never per
// row). Snapshots capture every counter by name; deltas between two
// snapshots are how tests and tools measure "what did this query do"
// without resetting global state.
#ifndef BIPIE_OBS_METRICS_H_
#define BIPIE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bipie::obs {

class Counter {
 public:
  // Returns the process-wide counter registered under `name`, creating it
  // on first use. The returned reference is valid for the process lifetime.
  // Callers cache it in a static:
  //   static obs::Counter& c = obs::Counter::Get("scan.queries");
  static Counter& Get(std::string_view name);

  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  // Registry use only — call Get() instead of constructing counters.
  explicit Counter(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

// A point-in-time copy of every registered counter, sorted by name (the
// registration order is scheduling-dependent; the sort makes snapshots and
// their renderings deterministic).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> entries;

  // Value under `name`, or 0 when the counter has not been registered.
  uint64_t ValueOf(std::string_view name) const;
};

MetricsSnapshot SnapshotMetrics();

// Per-counter difference `now - base` (counters are monotonic, so the
// difference is what happened in between; counters registered after `base`
// count from zero). Entries with a zero delta are dropped.
MetricsSnapshot MetricsDelta(const MetricsSnapshot& base);
MetricsSnapshot MetricsDelta(const MetricsSnapshot& now,
                             const MetricsSnapshot& base);

// "name value\n" lines, sorted by name — the system.events-style dump used
// by tools and failure diagnostics.
std::string MetricsToText(const MetricsSnapshot& snapshot);

}  // namespace bipie::obs

#endif  // BIPIE_OBS_METRICS_H_
