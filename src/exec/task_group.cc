#include "exec/task_group.h"

#include <chrono>
#include <utility>

namespace bipie {

TaskGroup::TaskGroup(Scheduler* scheduler, QueryContext* context)
    : scheduler_(scheduler != nullptr ? scheduler : &Scheduler::Global()),
      state_(std::make_shared<State>()) {
  state_->context = context;
}

TaskGroup::~TaskGroup() { WaitNoRethrow(); }

void TaskGroup::Submit(std::function<void()> fn) {
  state_->pending.fetch_add(1, std::memory_order_acq_rel);
  scheduler_->Submit(
      [state = state_, fn = std::move(fn)]() mutable { RunTask(state, fn); });
}

void TaskGroup::RunTask(const std::shared_ptr<State>& state,
                        std::function<void()>& fn) {
  // Cancelled groups drain without running bodies: a Cancel() issued before
  // (or while) tasks sit queued skips them entirely, which is what bounds
  // cancellation latency to one in-flight morsel per worker.
  if (state->context == nullptr || !state->context->is_cancelled()) {
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->first_exception) {
        state->first_exception = std::current_exception();
      }
    }
  }
  if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task out: synchronize with Wait's predicate check, then wake it.
    { std::lock_guard<std::mutex> lock(state->mu); }
    state->cv.notify_all();
  }
}

void TaskGroup::WaitNoRethrow() {
  while (state_->pending.load(std::memory_order_acquire) != 0) {
    // Help first: run queued tasks (ours or another query's — work
    // conservation either way) on this thread.
    if (scheduler_->TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state_->mu);
    // Timed wait rather than pure blocking: new scheduler work can appear
    // while we sleep (queued behind busy workers), and helping it along is
    // the only way to make progress when every worker is long-occupied.
    state_->cv.wait_for(lock, std::chrono::microseconds(500), [this] {
      return state_->pending.load(std::memory_order_acquire) == 0;
    });
  }
}

void TaskGroup::Wait() {
  WaitNoRethrow();
  std::exception_ptr rethrow;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    rethrow = std::exchange(state_->first_exception, nullptr);
  }
  if (rethrow) std::rethrow_exception(rethrow);
}

bool TaskGroup::has_exception() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->first_exception != nullptr;
}

}  // namespace bipie
