// Typed per-query settings (DESIGN.md §13).
//
// Replaces ad-hoc env-var knobs with a declared registry: every setting has
// a name, a type, a default, a range (or allowed-value list) and a
// docstring, so a service layer can enumerate, validate and document the
// whole surface from one table — the BaseSettings idea from the ClickHouse
// lineage named in the ROADMAP. A QuerySettings value is carried on
// QueryContext; Set() validates names, types and ranges up front, so by the
// time execution starts every value is known good.
//
// Process-scope knobs that must be decided before any query exists (the
// scheduler's worker count, the admission gate) stay environment-driven but
// go through the same strict parser, EnvUInt64Setting: full-string digits
// only, clamped to the declared range, one warning per variable on bad
// input — never a silent wrap of "-1" to 2^64-1.
#ifndef BIPIE_EXEC_QUERY_SETTINGS_H_
#define BIPIE_EXEC_QUERY_SETTINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace bipie {

enum class SettingType { kUInt64, kBool, kString };

// One registry row. The registry is static data; Doc strings surface in
// README's settings table and error messages.
struct SettingDef {
  const char* name;
  SettingType type;
  const char* doc;
  uint64_t default_u64 = 0;  // kUInt64
  uint64_t min_u64 = 0;      // kUInt64: inclusive range
  uint64_t max_u64 = 0;
  bool default_bool = false;        // kBool
  const char* default_string = "";  // kString
  // kString: '|'-separated allowed values; the empty string is always
  // allowed (meaning "unset").
  const char* allowed = "";
};

class QuerySettings {
 public:
  QuerySettings();

  // The full registry, in declaration order.
  static const std::vector<SettingDef>& Registry();
  // nullptr when no setting has that name.
  static const SettingDef* Find(const std::string& name);

  // Parses and validates `text` against the named setting's type and range.
  // kInvalidArgument for unknown names or unparseable values, kOutOfRange
  // for well-formed values outside the declared range.
  Status Set(const std::string& name, const std::string& text);
  Status SetUInt64(const std::string& name, uint64_t value);
  Status SetBool(const std::string& name, bool value);
  Status SetString(const std::string& name, const std::string& value);

  // Typed getters; the name must exist with the matching type (DCHECKed).
  uint64_t GetUInt64(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  // Named accessors for every registered setting (the hot call sites).
  uint64_t num_threads() const { return u64_[0]; }
  uint64_t morsel_rows() const { return u64_[1]; }
  uint64_t memory_limit_bytes() const { return u64_[2]; }
  uint64_t memory_soft_limit_bytes() const { return u64_[3]; }
  uint64_t deadline_ms() const { return u64_[4]; }
  bool enable_segment_elimination() const { return bool_[0]; }
  bool io_verify_checksums() const { return bool_[1]; }
  bool io_validate() const { return bool_[2]; }
  bool io_strict() const { return bool_[3]; }
  const std::string& force_selection_strategy() const { return str_[0]; }
  const std::string& force_aggregation_strategy() const { return str_[1]; }
  const std::string& force_byteslice() const { return str_[2]; }
  const std::string& priority() const { return str_[3]; }
  const std::string& cost_model() const { return str_[4]; }

 private:
  // Values live in per-type arrays indexed by the registry row's
  // type-local ordinal (SettingDef rows are mapped at construction).
  std::vector<uint64_t> u64_;
  std::vector<bool> bool_;
  std::vector<std::string> str_;
};

// Strict unsigned parse: the whole string must be decimal digits (no sign,
// no prefix, no trailing garbage) and fit in uint64. Returns false
// otherwise.
bool ParseUInt64Strict(const std::string& text, uint64_t* out);

// Parses "true"/"false"/"1"/"0"/"on"/"off" (lowercase).
bool ParseBoolStrict(const std::string& text, bool* out);

// Reads an environment variable through the strict parser. Absent -> `def`.
// Malformed -> `def` with a one-time (per variable) stderr warning.
// Well-formed but outside [min, max] -> clamped, with the same warning.
uint64_t EnvUInt64Setting(const char* name, uint64_t def, uint64_t min,
                          uint64_t max);

}  // namespace bipie

#endif  // BIPIE_EXEC_QUERY_SETTINGS_H_
