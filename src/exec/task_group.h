// TaskGroup: the unit a query uses to fan work out onto the Scheduler.
//
// A query submits its morsels into one TaskGroup and joins on it; the
// group tracks completion, applies per-query cancellation (tasks submitted
// into a cancelled group, or still queued when the group's QueryContext is
// cancelled, are skipped rather than run), and captures the first task
// exception to rethrow at the join point. Wait() runs queued scheduler
// tasks on the calling thread while it blocks, so the submitter acts as an
// extra worker and joins cannot deadlock behind a saturated pool.
#ifndef BIPIE_EXEC_TASK_GROUP_H_
#define BIPIE_EXEC_TASK_GROUP_H_

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>

#include "exec/query_context.h"
#include "exec/scheduler.h"

namespace bipie {

class TaskGroup {
 public:
  // `scheduler` defaults to the process-wide pool; `context` (optional,
  // non-owning, must outlive the group) supplies the cancellation flag.
  explicit TaskGroup(Scheduler* scheduler = nullptr,
                     QueryContext* context = nullptr);

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Joins (without rethrowing) so submitted tasks never outlive the group.
  ~TaskGroup();

  // Enqueues one work item. If the group's context is already cancelled the
  // task completes immediately without running its body.
  void Submit(std::function<void()> fn);

  // Blocks until every submitted task has completed, helping the scheduler
  // drain while waiting. Rethrows the first exception any task threw.
  void Wait();

  bool has_exception() const;

 private:
  // Shared with every in-flight task wrapper: a finishing task may signal
  // completion concurrently with (or after) the group object being torn
  // down, so the synchronization state must outlive both.
  struct State {
    QueryContext* context = nullptr;
    std::atomic<size_t> pending{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr first_exception;  // guarded by mu
  };

  static void RunTask(const std::shared_ptr<State>& state,
                      std::function<void()>& fn);
  void WaitNoRethrow();

  Scheduler* scheduler_;
  std::shared_ptr<State> state_;
};

}  // namespace bipie

#endif  // BIPIE_EXEC_TASK_GROUP_H_
