// Process-wide work-stealing task scheduler.
//
// The morsel-driven execution model (Leis et al., "Morsel-Driven
// Parallelism") replaces per-query thread spawning with one shared pool
// sized to the hardware: queries split their work into small morsels and
// submit them through a TaskGroup; a skewed or slow morsel no longer stalls
// the query (idle workers steal the rest), and N concurrent queries share
// the machine instead of oversubscribing it N-fold.
//
// Topology: one deque per worker. A worker pops its own deque LIFO (back),
// keeping its working set cache-hot, and steals FIFO (front) from victims,
// taking the oldest — and for a splitting producer, largest-remaining —
// work first. External submitters distribute round-robin across deques.
// Deques are mutex-guarded (one uncontended lock per push/pop, at morsel —
// not batch — granularity, so the cost is ~tens of nanoseconds per ~64K
// rows of work); idle workers sleep on a condition variable.
#ifndef BIPIE_EXEC_SCHEDULER_H_
#define BIPIE_EXEC_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bipie {

class Scheduler {
 public:
  using Task = std::function<void()>;

  // 0 = one worker per hardware thread. Tests construct private pools;
  // library code uses Global().
  explicit Scheduler(size_t num_workers = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // The lazily-started process-wide pool. Sized to hardware concurrency
  // unless the BIPIE_SCHEDULER_THREADS environment variable overrides it.
  static Scheduler& Global();

  // Enqueues a task. Called from any thread; a submitting worker pushes to
  // its own deque (LIFO pairing), other threads distribute round-robin.
  void Submit(Task task);

  // Runs one queued task on the calling thread if any is available.
  // TaskGroup::Wait uses this so a blocked submitter acts as an extra
  // worker instead of idling (and so joins make progress even when every
  // pool worker is busy with other queries).
  bool TryRunOneTask();

  size_t num_workers() const { return workers_.size(); }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t worker_index);
  // Local LIFO pop, then FIFO steal sweep over the other deques starting
  // after `self` (SIZE_MAX = external caller: pure steal sweep).
  bool FindTask(size_t self, Task* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};   // round-robin cursor for Submit
  std::atomic<size_t> queued_{0};       // tasks sitting in deques
  std::atomic<bool> stop_{false};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
};

}  // namespace bipie

#endif  // BIPIE_EXEC_SCHEDULER_H_
