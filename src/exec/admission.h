// Query admission control (DESIGN.md §13, §14).
//
// Bounds how many queries execute concurrently: each Execute() acquires a
// ticket before doing any work. When all slots are busy the query waits in
// a priority-banded bounded queue; a full band rejects immediately with
// kResourceExhausted — the caller gets a structured "system is saturated"
// answer instead of the process collapsing under N queries' worth of
// scratch memory. Waiting queries keep honoring their context: a cancel or
// deadline while queued returns kCancelled without ever occupying a slot.
//
// Priorities: three bands (high/normal/low), selected per query via the
// `priority` setting. Dequeue is strict priority — a freed slot goes to the
// highest non-empty band — softened by aging: a waiter's effective band
// improves by one for every `aging_ms` it has waited, so saturating the
// high band cannot starve low-band queries forever.
//
// Two admission styles share the queue:
//   * Admit() blocks the calling thread (library callers running Execute()
//     on their own thread, exactly as before);
//   * Enqueue() is asynchronous: it returns immediately and fires a
//     callback — with an owned Ticket — once a slot is granted, the context
//     cancels, or the queue is drained. The server front-end (src/server)
//     uses this so scheduler workers are never parked in admission.
//
// The default controller is process-wide and configured once from the
// environment (BIPIE_MAX_CONCURRENT_QUERIES, BIPIE_ADMISSION_QUEUE_LIMIT,
// BIPIE_ADMISSION_AGING_MS, all through the strict setting parser).
// Unlimited (the default) takes a single-branch fast path with no lock.
#ifndef BIPIE_EXEC_ADMISSION_H_
#define BIPIE_EXEC_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>

#include "common/status.h"
#include "exec/query_context.h"

namespace bipie {

// Priority bands, best first. The numeric value is the band index.
enum class QueryPriority : uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr size_t kNumPriorityBands = 3;

// Display name ("high" / "normal" / "low").
const char* QueryPriorityName(QueryPriority priority);
// Parses a display name; false on anything else.
bool ParseQueryPriority(const std::string& text, QueryPriority* out);

class AdmissionController {
 public:
  struct Limits {
    // Queries allowed to execute at once; 0 = unlimited (Admit never
    // blocks and issues no ticket state).
    size_t max_concurrent_queries = 0;
    // Queries allowed to wait for a slot *per priority band*; one more is
    // rejected with kResourceExhausted. Only meaningful with a concurrency
    // limit.
    size_t max_queued_queries = 16;
    // Starvation-avoidance aging: a queued query's effective band improves
    // by one for every aging_ms it has waited. 0 disables aging (pure
    // strict priority).
    uint64_t aging_ms = 500;
  };

  // Unlimited by default. (Two constructors instead of one defaulted
  // argument: a `= {}` default cannot use Limits' member initializers
  // while the enclosing class is still incomplete.)
  AdmissionController() : limits_() {}
  explicit AdmissionController(const Limits& limits) : limits_(limits) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // The process-wide controller, environment-configured on first use.
  static AdmissionController& Global();

  // RAII slot: releasing (or destroying) returns the slot and wakes one
  // waiter. Default-constructed tickets hold nothing.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    void Release();
    bool holds_slot() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  // Blocks until a slot is free, then fills `*ticket`. Returns
  // kResourceExhausted when the band's wait queue is already full,
  // kCancelled when `ctx` (nullable) cancels or times out while waiting.
  // A non-null `queue_wait_ns` receives the time spent queued (0 on the
  // no-wait paths).
  Status Admit(QueryContext* ctx, Ticket* ticket,
               QueryPriority priority = QueryPriority::kNormal,
               uint64_t* queue_wait_ns = nullptr);

  // Asynchronous admission. Exactly one of:
  //   * a slot is free: `callback` runs inline with OK and an owned ticket;
  //   * the band's queue is full: returns kResourceExhausted and the
  //     callback is never invoked;
  //   * otherwise the query is queued (returns OK) and the callback fires
  //     later — from the thread releasing a slot (OK + ticket), from
  //     Tick() (kCancelled, when `ctx` cancelled or its deadline passed
  //     while queued), or from CancelQueued() (kCancelled).
  // The callback must be cheap and must not re-enter this controller.
  using AdmitCallback = std::function<void(Status, Ticket)>;
  Status Enqueue(QueryPriority priority, QueryContext* ctx,
                 AdmitCallback callback);

  // Sweeps queued async waiters whose context cancelled or whose deadline
  // passed, failing them with kCancelled (and counting
  // admission.timeouts). Meant to be called periodically (the server's IO
  // loop ticks every poll round); blocking Admit() waiters poll their own
  // context and need no tick.
  void Tick();

  // Fails every queued waiter with kCancelled (graceful-drain shutdown:
  // queued queries are cancelled, running ones finish).
  void CancelQueued();

  size_t running() const;
  size_t queued() const;                      // across all bands
  size_t queued(QueryPriority band) const;    // one band
  // Age in milliseconds of the oldest waiter queued in `band` (0 when the
  // band is empty). The live per-band queue-delay signal the server's
  // overload shed policy keys on.
  uint64_t OldestWaitMs(QueryPriority band) const;
  const Limits& limits() const { return limits_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Waiter {
    uint64_t seq = 0;
    QueryPriority band = QueryPriority::kNormal;
    Clock::time_point enqueued;
    QueryContext* ctx = nullptr;
    AdmitCallback callback;  // null for blocking (Admit) waiters
    bool granted = false;    // slot transferred; owner must consume it
  };

  // Effective band after aging, given `now`. Lower is better.
  size_t EffectiveBand(const Waiter& w, Clock::time_point now) const;
  // Picks the next waiter to grant (nullptr when all bands are empty).
  // Caller holds mu_. Strict priority over effective bands; FIFO within a
  // band (so each band's front is its best candidate).
  std::list<Waiter>* BestBand(Clock::time_point now);
  // Removes and returns the grant winner's callback work under mu_;
  // the caller invokes callbacks outside the lock.
  void ReleaseSlot();
  // Records a grant's queue-wait into the admission counters.
  static void CountQueueWait(Clock::time_point enqueued, Clock::time_point now);

  const Limits limits_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  size_t running_ = 0;
  uint64_t next_seq_ = 0;
  // One FIFO per band. Blocking waiters are list nodes owned by their
  // Admit frame's loop (removed by that frame); async waiters are removed
  // when granted/cancelled.
  std::list<Waiter> bands_[kNumPriorityBands];
};

}  // namespace bipie

#endif  // BIPIE_EXEC_ADMISSION_H_
