// Query admission control (DESIGN.md §13).
//
// Bounds how many queries execute concurrently: each Execute() acquires a
// ticket before doing any work. When all slots are busy the query waits in
// a bounded queue; a full queue rejects immediately with
// kResourceExhausted — the caller gets a structured "system is saturated"
// answer instead of the process collapsing under N queries' worth of
// scratch memory. Waiting queries keep honoring their context: a cancel or
// deadline while queued returns kCancelled without ever occupying a slot.
//
// The default controller is process-wide and configured once from the
// environment (BIPIE_MAX_CONCURRENT_QUERIES, BIPIE_ADMISSION_QUEUE_LIMIT,
// both through the strict setting parser). Unlimited (the default) takes a
// single-branch fast path with no lock.
#ifndef BIPIE_EXEC_ADMISSION_H_
#define BIPIE_EXEC_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/status.h"
#include "exec/query_context.h"

namespace bipie {

class AdmissionController {
 public:
  struct Limits {
    // Queries allowed to execute at once; 0 = unlimited (Admit never
    // blocks and issues no ticket state).
    size_t max_concurrent_queries = 0;
    // Queries allowed to wait for a slot; one more is rejected with
    // kResourceExhausted. Only meaningful with a concurrency limit.
    size_t max_queued_queries = 16;
  };

  // Unlimited by default. (Two constructors instead of one defaulted
  // argument: a `= {}` default cannot use Limits' member initializers
  // while the enclosing class is still incomplete.)
  AdmissionController() : limits_() {}
  explicit AdmissionController(const Limits& limits) : limits_(limits) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // The process-wide controller, environment-configured on first use.
  static AdmissionController& Global();

  // RAII slot: releasing (or destroying) returns the slot and wakes one
  // waiter. Default-constructed tickets hold nothing.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    void Release();

   private:
    friend class AdmissionController;
    AdmissionController* controller_ = nullptr;
  };

  // Blocks until a slot is free, then fills `*ticket`. Returns
  // kResourceExhausted when the wait queue is already full, kCancelled when
  // `ctx` (nullable) cancels or times out while waiting.
  Status Admit(QueryContext* ctx, Ticket* ticket);

  size_t running() const;
  size_t queued() const;
  const Limits& limits() const { return limits_; }

 private:
  void ReleaseSlot();

  const Limits limits_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  size_t running_ = 0;
  size_t queued_ = 0;
};

}  // namespace bipie

#endif  // BIPIE_EXEC_ADMISSION_H_
