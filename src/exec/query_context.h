// Per-query execution context: cooperative cancellation, deadlines, typed
// settings and memory accounting.
//
// A QueryContext is owned by the client issuing a query and shared (by
// non-owning pointer) with every operator the query runs. Cancellation is
// cooperative: kernels call CheckNotCancelled() at batch granularity — a
// cancelled query stops within one 4096-row batch per worker and surfaces
// StatusCode::kCancelled to the caller, never a partial result.
//
// The context also owns the query's MemoryTracker (a child of the process
// root) and its QuerySettings. Configure settings, call ApplySettings(),
// then execute: workers bind the tracker for each morsel they run, so
// every allocation the query makes is charged against its limits.
//
// Thread-safety: Cancel(), is_cancelled() and CheckNotCancelled() may be
// called concurrently from any thread. set_deadline / CancelAfterChecks are
// atomic too, but are meant to be configured before execution starts —
// like settings() and ApplySettings(), which are not synchronized.
#ifndef BIPIE_EXEC_QUERY_CONTEXT_H_
#define BIPIE_EXEC_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "exec/query_settings.h"

namespace bipie {

class QueryContext {
 public:
  QueryContext() = default;
  // Parents the query's memory tracker under `parent_tracker` instead of
  // the process root — the server threads each query under its session's
  // tracker, so one session cannot hide another's footprint. `parent_tracker`
  // must outlive this context.
  explicit QueryContext(MemoryTracker* parent_tracker)
      : tracker_(parent_tracker, "query") {}
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // Requests cancellation. Idempotent; takes effect at the next
  // cancellation point of every worker processing the query.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool is_cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  // Absolute deadline; once it passes, the next CheckNotCancelled() latches
  // the cancelled flag and reports kCancelled.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  // Test / fuzz hook: latch cancellation after `checks` further calls to
  // CheckNotCancelled(), injecting a mid-scan cancel at a deterministic
  // cancellation point (exactly deterministic single-threaded; approximately
  // so across workers, which is what the cancellation invariants need).
  void CancelAfterChecks(int64_t checks) {
    checks_remaining_.store(checks, std::memory_order_release);
  }

  // The cancellation point. Cheap when armed with neither a deadline nor a
  // check budget: one relaxed flag load.
  Status CheckNotCancelled() {
    if (is_cancelled()) return MakeCancelledStatus();
    if (checks_remaining_.load(std::memory_order_relaxed) >= 0 &&
        checks_remaining_.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
      Cancel();
      return MakeCancelledStatus();
    }
    const int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch() >=
            std::chrono::nanoseconds(deadline)) {
      Cancel();
      return Status::Cancelled("query deadline exceeded");
    }
    return Status::OK();
  }

  // The query's typed settings. Mutate before ApplySettings()/execution.
  QuerySettings& settings() { return settings_; }
  const QuerySettings& settings() const { return settings_; }

  // The query's memory tracker (child of MemoryTracker::Process()).
  MemoryTracker& memory_tracker() { return tracker_; }
  const MemoryTracker& memory_tracker() const { return tracker_; }

  // Applies the resource settings to this context: memory limits onto the
  // per-query tracker, deadline_ms onto the deadline clock (measured from
  // now). Call once, after the settings are final and before execution.
  void ApplySettings() {
    tracker_.set_hard_limit(settings_.memory_limit_bytes());
    tracker_.set_soft_limit(settings_.memory_soft_limit_bytes());
    if (settings_.deadline_ms() > 0) {
      set_deadline(std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(settings_.deadline_ms()));
    }
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MIN;

  static Status MakeCancelledStatus() {
    return Status::Cancelled("query cancelled");
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  std::atomic<int64_t> checks_remaining_{-1};  // < 0 = disarmed
  QuerySettings settings_;
  MemoryTracker tracker_{&MemoryTracker::Process(), "query"};
};

}  // namespace bipie

#endif  // BIPIE_EXEC_QUERY_CONTEXT_H_
