#include "exec/admission.h"

#include <chrono>

#include "exec/query_settings.h"
#include "obs/metrics.h"

namespace bipie {

namespace {

struct AdmissionCounters {
  obs::Counter& admitted = obs::Counter::Get("admission.admitted");
  obs::Counter& queued = obs::Counter::Get("admission.queued");
  obs::Counter& rejected = obs::Counter::Get("admission.rejected");
};

AdmissionCounters& Counters() {
  static AdmissionCounters counters;
  return counters;
}

}  // namespace

AdmissionController& AdmissionController::Global() {
  // Leaked: queries may still hold tickets during static destruction.
  static AdmissionController* const global = [] {
    Limits limits;
    limits.max_concurrent_queries = static_cast<size_t>(EnvUInt64Setting(
        "BIPIE_MAX_CONCURRENT_QUERIES", /*def=*/0, /*min=*/0, /*max=*/4096));
    limits.max_queued_queries = static_cast<size_t>(EnvUInt64Setting(
        "BIPIE_ADMISSION_QUEUE_LIMIT", /*def=*/16, /*min=*/0, /*max=*/65536));
    return new AdmissionController(limits);
  }();
  return *global;
}

Status AdmissionController::Admit(QueryContext* ctx, Ticket* ticket) {
  ticket->Release();
  if (limits_.max_concurrent_queries == 0) return Status::OK();

  std::unique_lock<std::mutex> lock(mu_);
  if (running_ >= limits_.max_concurrent_queries) {
    if (queued_ >= limits_.max_queued_queries) {
      Counters().rejected.Increment();
      return Status::ResourceExhausted(
          "admission queue full: " + std::to_string(running_) +
          " queries running, " + std::to_string(queued_) + " queued");
    }
    ++queued_;
    Counters().queued.Increment();
    while (running_ >= limits_.max_concurrent_queries) {
      // Bounded waits keep the queue responsive to cancellation and
      // deadlines that fire while no slot frees up.
      slot_free_.wait_for(lock, std::chrono::milliseconds(10));
      if (ctx != nullptr) {
        const Status status = ctx->CheckNotCancelled();
        if (!status.ok()) {
          --queued_;
          return status;
        }
      }
    }
    --queued_;
  }
  ++running_;
  Counters().admitted.Increment();
  ticket->controller_ = this;
  return Status::OK();
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  slot_free_.notify_one();
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

size_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace bipie
