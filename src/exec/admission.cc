#include "exec/admission.h"

#include <utility>
#include <vector>

#include "common/macros.h"
#include "exec/query_settings.h"
#include "obs/metrics.h"

namespace bipie {

namespace {

struct AdmissionCounters {
  obs::Counter& admitted = obs::Counter::Get("admission.admitted");
  obs::Counter& queued = obs::Counter::Get("admission.queued");
  obs::Counter& rejected = obs::Counter::Get("admission.rejected");
  // Per-band enqueue counts (how contended each priority is).
  obs::Counter& queued_high = obs::Counter::Get("admission.queued_high");
  obs::Counter& queued_normal = obs::Counter::Get("admission.queued_normal");
  obs::Counter& queued_low = obs::Counter::Get("admission.queued_low");
  // Queries that left the queue cancelled (deadline expiry or explicit
  // cancel) without ever occupying a slot.
  obs::Counter& timeouts = obs::Counter::Get("admission.timeouts");
  // Total time granted queries spent waiting for their slot.
  obs::Counter& queue_wait_us = obs::Counter::Get("admission.queue_wait_us");
};

AdmissionCounters& Counters() {
  static AdmissionCounters counters;
  return counters;
}

obs::Counter& BandCounter(QueryPriority band) {
  switch (band) {
    case QueryPriority::kHigh:
      return Counters().queued_high;
    case QueryPriority::kNormal:
      return Counters().queued_normal;
    case QueryPriority::kLow:
      return Counters().queued_low;
  }
  return Counters().queued_normal;
}

}  // namespace

const char* QueryPriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kHigh:
      return "high";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kLow:
      return "low";
  }
  return "normal";
}

bool ParseQueryPriority(const std::string& text, QueryPriority* out) {
  for (size_t b = 0; b < kNumPriorityBands; ++b) {
    const auto priority = static_cast<QueryPriority>(b);
    if (text == QueryPriorityName(priority)) {
      *out = priority;
      return true;
    }
  }
  return false;
}

AdmissionController& AdmissionController::Global() {
  // Leaked: queries may still hold tickets during static destruction.
  static AdmissionController* const global = [] {
    Limits limits;
    limits.max_concurrent_queries = static_cast<size_t>(EnvUInt64Setting(
        "BIPIE_MAX_CONCURRENT_QUERIES", /*def=*/0, /*min=*/0, /*max=*/4096));
    limits.max_queued_queries = static_cast<size_t>(EnvUInt64Setting(
        "BIPIE_ADMISSION_QUEUE_LIMIT", /*def=*/16, /*min=*/0, /*max=*/65536));
    limits.aging_ms = EnvUInt64Setting("BIPIE_ADMISSION_AGING_MS", /*def=*/500,
                                       /*min=*/0, /*max=*/3600000);
    return new AdmissionController(limits);
  }();
  return *global;
}

size_t AdmissionController::EffectiveBand(const Waiter& w,
                                          Clock::time_point now) const {
  const size_t band = static_cast<size_t>(w.band);
  if (limits_.aging_ms == 0 || band == 0) return band;
  const uint64_t waited_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - w.enqueued)
          .count());
  const uint64_t promotions = waited_ms / limits_.aging_ms;
  return promotions >= band ? 0 : band - static_cast<size_t>(promotions);
}

std::list<AdmissionController::Waiter>* AdmissionController::BestBand(
    Clock::time_point now) {
  // Within a band, the front waiter has both the longest wait (best
  // effective band) and the lowest seq, so comparing band fronts suffices.
  std::list<Waiter>* best = nullptr;
  size_t best_eff = kNumPriorityBands;
  uint64_t best_seq = 0;
  for (auto& band : bands_) {
    if (band.empty()) continue;
    const Waiter& w = band.front();
    const size_t eff = EffectiveBand(w, now);
    if (best == nullptr || eff < best_eff ||
        (eff == best_eff && w.seq < best_seq)) {
      best = &band;
      best_eff = eff;
      best_seq = w.seq;
    }
  }
  return best;
}

void AdmissionController::CountQueueWait(Clock::time_point enqueued,
                                         Clock::time_point now) {
  Counters().queue_wait_us.Add(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - enqueued)
          .count()));
}

Status AdmissionController::Admit(QueryContext* ctx, Ticket* ticket,
                                  QueryPriority priority,
                                  uint64_t* queue_wait_ns) {
  ticket->Release();
  if (queue_wait_ns != nullptr) *queue_wait_ns = 0;
  if (limits_.max_concurrent_queries == 0) return Status::OK();

  std::unique_lock<std::mutex> lock(mu_);
  if (running_ < limits_.max_concurrent_queries) {
    ++running_;
    Counters().admitted.Increment();
    *ticket = Ticket(this);
    return Status::OK();
  }

  std::list<Waiter>& band = bands_[static_cast<size_t>(priority)];
  if (band.size() >= limits_.max_queued_queries) {
    Counters().rejected.Increment();
    return Status::ResourceExhausted(
        "admission queue full (" + std::string(QueryPriorityName(priority)) +
        " band): " + std::to_string(running_) + " queries running, " +
        std::to_string(band.size()) + " queued");
  }
  band.push_back(Waiter{next_seq_++, priority, Clock::now(), ctx,
                        /*callback=*/nullptr, /*granted=*/false});
  auto it = std::prev(band.end());
  Counters().queued.Increment();
  BandCounter(priority).Increment();

  for (;;) {
    // Bounded waits keep the queue responsive to cancellation and
    // deadlines that fire while no slot frees up.
    slot_free_.wait_for(lock, std::chrono::milliseconds(10));
    if (it->granted) {
      // ReleaseSlot transferred a slot to this waiter (running_ already
      // counts it) and recorded the queue wait.
      const auto now = Clock::now();
      if (queue_wait_ns != nullptr) {
        *queue_wait_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - it->enqueued)
                .count());
      }
      band.erase(it);
      Counters().admitted.Increment();
      *ticket = Ticket(this);
      return Status::OK();
    }
    if (ctx != nullptr) {
      const Status status = ctx->CheckNotCancelled();
      if (!status.ok()) {
        band.erase(it);
        Counters().timeouts.Increment();
        return status;
      }
    }
  }
}

Status AdmissionController::Enqueue(QueryPriority priority, QueryContext* ctx,
                                    AdmitCallback callback) {
  BIPIE_DCHECK(callback != nullptr);
  if (limits_.max_concurrent_queries == 0) {
    Counters().admitted.Increment();
    callback(Status::OK(), Ticket());
    return Status::OK();
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (running_ < limits_.max_concurrent_queries) {
      ++running_;
    } else {
      std::list<Waiter>& band = bands_[static_cast<size_t>(priority)];
      if (band.size() >= limits_.max_queued_queries) {
        Counters().rejected.Increment();
        return Status::ResourceExhausted(
            "admission queue full (" +
            std::string(QueryPriorityName(priority)) +
            " band): " + std::to_string(running_) + " queries running, " +
            std::to_string(band.size()) + " queued");
      }
      band.push_back(Waiter{next_seq_++, priority, Clock::now(), ctx,
                            std::move(callback), /*granted=*/false});
      Counters().queued.Increment();
      BandCounter(priority).Increment();
      return Status::OK();
    }
  }
  // Slot taken on the fast path; grant inline, outside the lock.
  Counters().admitted.Increment();
  callback(Status::OK(), Ticket(this));
  return Status::OK();
}

void AdmissionController::ReleaseSlot() {
  AdmitCallback grant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = Clock::now();
    std::list<Waiter>* band = BestBand(now);
    if (band == nullptr) {
      --running_;
    } else {
      // Transfer the slot directly to the winner: running_ stays constant,
      // so no third query can slip in between release and grant.
      Waiter& w = band->front();
      CountQueueWait(w.enqueued, now);
      if (w.callback != nullptr) {
        grant = std::move(w.callback);
        band->pop_front();
        Counters().admitted.Increment();
      } else {
        w.granted = true;  // blocking waiter consumes it in its Admit loop
      }
    }
  }
  slot_free_.notify_all();
  if (grant != nullptr) grant(Status::OK(), Ticket(this));
}

void AdmissionController::Tick() {
  std::vector<std::pair<AdmitCallback, Status>> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& band : bands_) {
      for (auto it = band.begin(); it != band.end();) {
        if (it->callback == nullptr || it->ctx == nullptr) {
          ++it;  // blocking waiters poll their own context
          continue;
        }
        const Status status = it->ctx->CheckNotCancelled();
        if (status.ok()) {
          ++it;
          continue;
        }
        Counters().timeouts.Increment();
        expired.emplace_back(std::move(it->callback), status);
        it = band.erase(it);
      }
    }
  }
  for (auto& [callback, status] : expired) callback(status, Ticket());
}

void AdmissionController::CancelQueued() {
  std::vector<AdmitCallback> cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& band : bands_) {
      for (auto it = band.begin(); it != band.end();) {
        if (it->callback == nullptr) {
          // Blocking waiter: cancel through its context (it polls) — or
          // leave it; drain callers own those threads.
          if (it->ctx != nullptr) it->ctx->Cancel();
          ++it;
          continue;
        }
        Counters().timeouts.Increment();
        cancelled.push_back(std::move(it->callback));
        it = band.erase(it);
      }
    }
  }
  slot_free_.notify_all();
  for (auto& callback : cancelled) {
    callback(Status::Cancelled("server draining: query cancelled while queued"),
             Ticket());
  }
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

size_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& band : bands_) total += band.size();
  return total;
}

size_t AdmissionController::queued(QueryPriority band) const {
  std::lock_guard<std::mutex> lock(mu_);
  return bands_[static_cast<size_t>(band)].size();
}

uint64_t AdmissionController::OldestWaitMs(QueryPriority band) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::list<Waiter>& waiters = bands_[static_cast<size_t>(band)];
  if (waiters.empty()) return 0;
  // FIFO within a band: the front waiter is the oldest.
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now() - waiters.front().enqueued)
          .count());
}

}  // namespace bipie
