#include "exec/query_settings.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

#include "common/macros.h"

namespace bipie {

namespace {

constexpr uint64_t kMaxMemoryBytes = uint64_t{1} << 48;

// Registry order fixes the type-local ordinals the named accessors in the
// header index into: uint64 rows are u64_[0..], bool rows bool_[0..],
// string rows str_[0..], each in declaration order.
const std::vector<SettingDef>& RegistryImpl() {
  static const std::vector<SettingDef>* defs = new std::vector<SettingDef>{
      {"num_threads", SettingType::kUInt64,
       "Scan parallelism: 0 = shared morsel pool, 1 = inline on the calling "
       "thread, k>1 = legacy per-query threads.",
       1, 0, 1024},
      {"morsel_rows", SettingType::kUInt64,
       "Rows per morsel on the pooled path (0 = default 65536); rounded up "
       "to a 4096-row batch multiple.",
       0, 0, uint64_t{1} << 24},
      {"memory_limit_bytes", SettingType::kUInt64,
       "Hard per-query memory limit; an allocation pushing the query past "
       "it fails the query with kResourceExhausted. 0 = unlimited.",
       0, 0, kMaxMemoryBytes},
      {"memory_soft_limit_bytes", SettingType::kUInt64,
       "Soft per-query memory limit: crossing it never fails the query but "
       "latches a flag reported via the scan.soft_limit_exceeded counter. "
       "0 = disabled.",
       0, 0, kMaxMemoryBytes},
      {"deadline_ms", SettingType::kUInt64,
       "Query deadline in milliseconds from ApplySettings(); past it the "
       "next cancellation check returns kCancelled. 0 = no deadline.",
       0, 0, 86400000},
      {"enable_segment_elimination", SettingType::kBool,
       "Min/max segment elimination before scanning (disable for benchmarks "
       "that must touch every row).",
       0, 0, 0, true},
      {"io_verify_checksums", SettingType::kBool,
       "Verify the CRC32C of every v2 block when loading a table file.", 0,
       0, 0, true},
      {"io_validate", SettingType::kBool,
       "Run the deep decode validation pass on every loaded table.", 0, 0, 0,
       true},
      {"io_strict", SettingType::kBool,
       "Refuse table formats that cannot be checksum-verified (legacy v1).",
       0, 0, 0, false},
      {"force_selection_strategy", SettingType::kString,
       "Force one selection strategy instead of the per-batch choice; the "
       "scan fails with kNotSupported when the strategy cannot run. Empty = "
       "adaptive.",
       0, 0, 0, false, "", "gather|compact|special-group"},
      {"force_aggregation_strategy", SettingType::kString,
       "Force one aggregation strategy instead of the per-segment choice. "
       "Empty = adaptive.",
       0, 0, 0, false, "",
       "scalar|in-register|sort-based|multi-aggregate|checked-scalar|"
       "run-based"},
      {"force_byteslice", SettingType::kString,
       "Byteslice predicate kernels for byte-sliced filter columns: 'on' "
       "forces the plane kernels (the scan fails with kNotSupported when no "
       "filter binds to a byte-sliced column), 'off' forces the "
       "assemble-then-compare fallback. Empty = adaptive admission.",
       0, 0, 0, false, "", "on|off"},
      {"priority", SettingType::kString,
       "Admission priority band. A freed slot goes to the highest-priority "
       "queued query; aging promotes long waiters one band per aging "
       "quantum so low priority is delayed under saturation, never starved.",
       0, 0, 0, false, "normal", "high|normal|low"},
      {"cost_model", SettingType::kString,
       "Calibrated cost-model consultation for per-segment admission "
       "(DESIGN.md §17): 'on' lets the model pick the aggregation strategy, "
       "byteslice admission and gather crossover; 'adaptive' keeps the §6 "
       "heuristics unless the model predicts a clear win; 'off' (default) "
       "uses the legacy heuristics alone. Empty = off.",
       0, 0, 0, false, "", "on|off|adaptive"},
  };
  return *defs;
}

// Registry index -> type-local ordinal.
size_t OrdinalOf(size_t registry_index) {
  const std::vector<SettingDef>& defs = RegistryImpl();
  size_t ordinal = 0;
  for (size_t i = 0; i < registry_index; ++i) {
    if (defs[i].type == defs[registry_index].type) ++ordinal;
  }
  return ordinal;
}

// -1 when absent.
int IndexOf(const std::string& name) {
  const std::vector<SettingDef>& defs = RegistryImpl();
  for (size_t i = 0; i < defs.size(); ++i) {
    if (name == defs[i].name) return static_cast<int>(i);
  }
  return -1;
}

bool StringAllowed(const SettingDef& def, const std::string& value) {
  if (value.empty()) return true;
  const std::string allowed(def.allowed);
  size_t pos = 0;
  while (pos <= allowed.size()) {
    const size_t bar = allowed.find('|', pos);
    const size_t end = bar == std::string::npos ? allowed.size() : bar;
    if (allowed.compare(pos, end - pos, value) == 0 && end - pos > 0) {
      return true;
    }
    if (bar == std::string::npos) break;
    pos = bar + 1;
  }
  return false;
}

void WarnOnce(const char* env_name, const std::string& message) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  if (!warned->insert(env_name).second) return;
  std::fprintf(stderr, "bipie: warning: %s\n", message.c_str());
}

}  // namespace

bool ParseUInt64Strict(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseBoolStrict(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "on") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "off") {
    *out = false;
    return true;
  }
  return false;
}

uint64_t EnvUInt64Setting(const char* name, uint64_t def, uint64_t min,
                          uint64_t max) {
  const char* env = std::getenv(name);
  if (env == nullptr) return def;
  uint64_t value = 0;
  if (!ParseUInt64Strict(env, &value)) {
    WarnOnce(name, std::string(name) + "='" + env +
                       "' is not a non-negative integer; using default " +
                       std::to_string(def));
    return def;
  }
  if (value < min || value > max) {
    const uint64_t clamped = value < min ? min : max;
    WarnOnce(name, std::string(name) + "=" + std::to_string(value) +
                       " is outside [" + std::to_string(min) + ", " +
                       std::to_string(max) + "]; clamping to " +
                       std::to_string(clamped));
    return clamped;
  }
  return value;
}

QuerySettings::QuerySettings() {
  for (const SettingDef& def : RegistryImpl()) {
    switch (def.type) {
      case SettingType::kUInt64:
        u64_.push_back(def.default_u64);
        break;
      case SettingType::kBool:
        bool_.push_back(def.default_bool);
        break;
      case SettingType::kString:
        str_.emplace_back(def.default_string);
        break;
    }
  }
}

const std::vector<SettingDef>& QuerySettings::Registry() {
  return RegistryImpl();
}

const SettingDef* QuerySettings::Find(const std::string& name) {
  const int idx = IndexOf(name);
  return idx < 0 ? nullptr : &RegistryImpl()[static_cast<size_t>(idx)];
}

Status QuerySettings::Set(const std::string& name, const std::string& text) {
  const int idx = IndexOf(name);
  if (idx < 0) return Status::InvalidArgument("unknown setting: " + name);
  const SettingDef& def = RegistryImpl()[static_cast<size_t>(idx)];
  switch (def.type) {
    case SettingType::kUInt64: {
      uint64_t value = 0;
      if (!ParseUInt64Strict(text, &value)) {
        return Status::InvalidArgument("setting " + name +
                                       ": not a non-negative integer: '" +
                                       text + "'");
      }
      return SetUInt64(name, value);
    }
    case SettingType::kBool: {
      bool value = false;
      if (!ParseBoolStrict(text, &value)) {
        return Status::InvalidArgument(
            "setting " + name + ": expected true/false/1/0/on/off, got '" +
            text + "'");
      }
      return SetBool(name, value);
    }
    case SettingType::kString:
      return SetString(name, text);
  }
  return Status::Internal("unreachable");
}

Status QuerySettings::SetUInt64(const std::string& name, uint64_t value) {
  const int idx = IndexOf(name);
  if (idx < 0) return Status::InvalidArgument("unknown setting: " + name);
  const SettingDef& def = RegistryImpl()[static_cast<size_t>(idx)];
  if (def.type != SettingType::kUInt64) {
    return Status::InvalidArgument("setting " + name + " is not an integer");
  }
  if (value < def.min_u64 || value > def.max_u64) {
    return Status::OutOfRange(
        "setting " + name + "=" + std::to_string(value) + " is outside [" +
        std::to_string(def.min_u64) + ", " + std::to_string(def.max_u64) +
        "]");
  }
  u64_[OrdinalOf(static_cast<size_t>(idx))] = value;
  return Status::OK();
}

Status QuerySettings::SetBool(const std::string& name, bool value) {
  const int idx = IndexOf(name);
  if (idx < 0) return Status::InvalidArgument("unknown setting: " + name);
  const SettingDef& def = RegistryImpl()[static_cast<size_t>(idx)];
  if (def.type != SettingType::kBool) {
    return Status::InvalidArgument("setting " + name + " is not a boolean");
  }
  bool_[OrdinalOf(static_cast<size_t>(idx))] = value;
  return Status::OK();
}

Status QuerySettings::SetString(const std::string& name,
                                const std::string& value) {
  const int idx = IndexOf(name);
  if (idx < 0) return Status::InvalidArgument("unknown setting: " + name);
  const SettingDef& def = RegistryImpl()[static_cast<size_t>(idx)];
  if (def.type != SettingType::kString) {
    return Status::InvalidArgument("setting " + name + " is not a string");
  }
  if (!StringAllowed(def, value)) {
    return Status::OutOfRange("setting " + name + "='" + value +
                              "' is not one of: " + def.allowed);
  }
  str_[OrdinalOf(static_cast<size_t>(idx))] = value;
  return Status::OK();
}

uint64_t QuerySettings::GetUInt64(const std::string& name) const {
  const int idx = IndexOf(name);
  BIPIE_DCHECK(idx >= 0 &&
               RegistryImpl()[static_cast<size_t>(idx)].type ==
                   SettingType::kUInt64);
  return u64_[OrdinalOf(static_cast<size_t>(idx))];
}

bool QuerySettings::GetBool(const std::string& name) const {
  const int idx = IndexOf(name);
  BIPIE_DCHECK(idx >= 0 && RegistryImpl()[static_cast<size_t>(idx)].type ==
                               SettingType::kBool);
  return bool_[OrdinalOf(static_cast<size_t>(idx))];
}

const std::string& QuerySettings::GetString(const std::string& name) const {
  const int idx = IndexOf(name);
  BIPIE_DCHECK(idx >= 0 && RegistryImpl()[static_cast<size_t>(idx)].type ==
                               SettingType::kString);
  return str_[OrdinalOf(static_cast<size_t>(idx))];
}

}  // namespace bipie
