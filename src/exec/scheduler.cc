#include "exec/scheduler.h"

#include "exec/query_settings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bipie {

namespace {

// Per-task counters (DESIGN.md §12): task granularity is one morsel (~64K
// rows), so one relaxed increment per task is far below noise.
obs::Counter& TasksSubmitted() {
  static obs::Counter& c = obs::Counter::Get("exec.tasks_submitted");
  return c;
}
obs::Counter& TasksExecuted() {
  static obs::Counter& c = obs::Counter::Get("exec.tasks_executed");
  return c;
}
obs::Counter& TasksStolen() {
  static obs::Counter& c = obs::Counter::Get("exec.tasks_stolen");
  return c;
}
obs::Counter& TaskAssists() {
  static obs::Counter& c = obs::Counter::Get("exec.task_assists");
  return c;
}

// Identifies the calling thread as worker `tls_worker_index` of
// `tls_scheduler`, so Submit can push to the local deque and FindTask can
// skip it during the steal sweep.
thread_local Scheduler* tls_scheduler = nullptr;
thread_local size_t tls_worker_index = 0;

size_t DefaultWorkerCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

Scheduler::Scheduler(size_t num_workers) {
  if (num_workers == 0) num_workers = DefaultWorkerCount();
  queues_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Scheduler& Scheduler::Global() {
  static Scheduler global = [] {
    // Strict parse: strtoull would silently wrap "-1" to 2^64-1 (spawning
    // until thread exhaustion) and accept trailing garbage ("8abc").
    // Malformed values fall back to the default (hardware concurrency)
    // with a one-time warning; huge values clamp to 4x hardware threads.
    const size_t workers = static_cast<size_t>(EnvUInt64Setting(
        "BIPIE_SCHEDULER_THREADS", /*def=*/0, /*min=*/0,
        /*max=*/uint64_t{4} * DefaultWorkerCount()));
    return Scheduler(workers);
  }();
  return global;
}

void Scheduler::Submit(Task task) {
  size_t target;
  if (tls_scheduler == this) {
    target = tls_worker_index;  // worker: local LIFO push
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  TasksSubmitted().Increment();
  // Taking idle_mu_ orders the increment against a worker's predicate
  // check, so a worker that just saw queued_ == 0 either re-reads it as
  // nonzero or is asleep when the notification lands — no lost wakeups.
  { std::lock_guard<std::mutex> lock(idle_mu_); }
  idle_cv_.notify_one();
}

bool Scheduler::FindTask(size_t self, Task* task) {
  if (queued_.load(std::memory_order_acquire) == 0) return false;
  if (self != SIZE_MAX) {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());  // LIFO: newest local work
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  const size_t n = queues_.size();
  const size_t base = self == SIZE_MAX ? 0 : self + 1;
  for (size_t k = 0; k < n; ++k) {
    const size_t victim = (base + k) % n;
    if (victim == self) continue;
    WorkerQueue& q = *queues_[victim];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.front());  // FIFO steal: oldest work
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_release);
      if (self != SIZE_MAX) TasksStolen().Increment();
      return true;
    }
  }
  return false;
}

bool Scheduler::TryRunOneTask() {
  Task task;
  const size_t self = tls_scheduler == this ? tls_worker_index : SIZE_MAX;
  if (!FindTask(self, &task)) return false;
  {
    BIPIE_TRACE_SPAN("exec.task", "exec");
    task();
  }
  TasksExecuted().Increment();
  if (self == SIZE_MAX) TaskAssists().Increment();
  return true;
}

void Scheduler::WorkerLoop(size_t worker_index) {
  tls_scheduler = this;
  tls_worker_index = worker_index;
  Task task;
  for (;;) {
    if (FindTask(worker_index, &task)) {
      {
        BIPIE_TRACE_SPAN("exec.task", "exec");
        task();
      }
      TasksExecuted().Increment();
      task = nullptr;  // release captures before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace bipie
