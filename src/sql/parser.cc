#include "sql/parser.h"

#include <cctype>
#include <cstdint>
#include <optional>
#include <vector>

namespace bipie {

namespace {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kString,   // 'quoted'
  kSymbol,   // ( ) , * + - < > = ! <= >= <> !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (original case) / symbol / string body
  int64_t value = 0;  // kInteger
  size_t offset = 0;  // byte offset of the token's first character
};

// Lower-cases ASCII for keyword comparison.
std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

// Bounded, printable rendering of a token for error context: SQL is
// untrusted network input, so the echoed text is clipped and non-printable
// bytes are masked before it lands in an error message.
std::string ContextOf(const Token& token) {
  if (token.kind == TokenKind::kEnd) return "end of input";
  constexpr size_t kMaxContext = 24;
  std::string out = "'";
  const size_t n = std::min(token.text.size(), kMaxContext);
  for (size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(token.text[i]);
    out += (c >= 0x20 && c < 0x7f) ? static_cast<char>(c) : '?';
  }
  if (token.text.size() > kMaxContext) out += "...";
  out += "'";
  return out;
}

// Every parse/lex error carries the byte offset and the offending token, so
// a caller (or a human at the bipie_client REPL) can point at the input.
Status ErrorAt(size_t offset, const std::string& context,
               const std::string& message) {
  return Status::InvalidArgument("parse error at byte " +
                                 std::to_string(offset) + " near " + context +
                                 ": " + message);
}

Status ErrorAtToken(const Token& token, const std::string& message) {
  return ErrorAt(token.offset, ContextOf(token), message);
}

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < input_.size()) {
      const char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                input_[j] == '_')) {
          ++j;
        }
        out->push_back(
            {TokenKind::kIdentifier, input_.substr(i, j - i), 0, i});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[j]))) {
          ++j;
        }
        Token t;
        t.kind = TokenKind::kInteger;
        t.text = input_.substr(i, j - i);
        t.offset = i;
        // Overflow-checked accumulate: a 40-digit literal is a structured
        // error, never an exception (std::stoll would throw out_of_range).
        int64_t value = 0;
        for (const char d : t.text) {
          const int64_t digit = d - '0';
          if (value > (INT64_MAX - digit) / 10) {
            return ErrorAt(i, ContextOf(t),
                           "integer literal out of 64-bit range");
          }
          value = value * 10 + digit;
        }
        t.value = value;
        out->push_back(t);
        i = j;
        continue;
      }
      if (c == '\'') {
        const size_t close = input_.find('\'', i + 1);
        if (close == std::string::npos) {
          Token t{TokenKind::kString, input_.substr(i + 1), 0, i};
          return ErrorAt(i, ContextOf(t), "unterminated string literal");
        }
        out->push_back(
            {TokenKind::kString, input_.substr(i + 1, close - i - 1), 0, i});
        i = close + 1;
        continue;
      }
      // Two-character comparison operators first.
      if (i + 1 < input_.size()) {
        const std::string two = input_.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          out->push_back({TokenKind::kSymbol, two, 0, i});
          i += 2;
          continue;
        }
      }
      if (std::string("(),*+-<>=").find(c) != std::string::npos) {
        out->push_back({TokenKind::kSymbol, std::string(1, c), 0, i});
        ++i;
        continue;
      }
      Token t{TokenKind::kSymbol, std::string(1, c), 0, i};
      return ErrorAt(i, ContextOf(t), "unexpected character in query");
    }
    out->push_back({TokenKind::kEnd, "", 0, input_.size()});
    return Status::OK();
  }

 private:
  const std::string& input_;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Table& table)
      : tokens_(std::move(tokens)), table_(table) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery parsed;
    BIPIE_RETURN_NOT_OK(ExpectKeyword("select"));

    // SELECT list: group columns and aggregates in any order.
    std::vector<std::string> select_columns;
    for (;;) {
      Result<bool> item = ParseSelectItem(&parsed.spec, &select_columns);
      if (!item.ok()) return item.status();
      if (!AcceptSymbol(",")) break;
    }

    BIPIE_RETURN_NOT_OK(ExpectKeyword("from"));
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorAtToken(Peek(), "expected table name after FROM");
    }
    parsed.table_name = Next().text;

    if (AcceptKeyword("where")) {
      for (;;) {
        BIPIE_RETURN_NOT_OK(ParsePredicate(&parsed.spec));
        if (!AcceptKeyword("and")) break;
      }
    }

    if (AcceptKeyword("group")) {
      BIPIE_RETURN_NOT_OK(ExpectKeyword("by"));
      for (;;) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return ErrorAtToken(Peek(), "expected column in GROUP BY");
        }
        const Token& tok = Next();
        if (table_.FindColumn(tok.text) < 0) {
          return ErrorAtToken(tok, "unknown GROUP BY column");
        }
        parsed.spec.group_by.push_back(tok.text);
        if (!AcceptSymbol(",")) break;
      }
    }

    if (Peek().kind != TokenKind::kEnd) {
      return ErrorAtToken(Peek(), "unexpected trailing input");
    }

    // Validate: every bare select column must be grouped.
    for (const std::string& col : select_columns) {
      bool grouped = false;
      for (const std::string& g : parsed.spec.group_by) grouped |= g == col;
      if (!grouped) {
        return Status::InvalidArgument(
            "column " + col + " must appear in GROUP BY or an aggregate");
      }
    }
    if (parsed.spec.aggregates.empty()) {
      return Status::InvalidArgument("query needs at least one aggregate");
    }
    return parsed;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }

  bool AcceptSymbol(const std::string& symbol) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const std::string& keyword) {
    if (Peek().kind == TokenKind::kIdentifier &&
        Lower(Peek().text) == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& keyword) {
    if (!AcceptKeyword(keyword)) {
      return ErrorAtToken(Peek(), "expected keyword '" + keyword + "'");
    }
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& symbol) {
    if (!AcceptSymbol(symbol)) {
      return ErrorAtToken(Peek(), "expected '" + symbol + "'");
    }
    return Status::OK();
  }

  // Returns true when an item was consumed; registers bare columns in
  // `select_columns` and aggregates in the spec.
  Result<bool> ParseSelectItem(QuerySpec* spec,
                               std::vector<std::string>* select_columns) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorAtToken(Peek(), "expected select item");
    }
    const std::string word = Lower(Peek().text);
    if (word == "count") {
      ++pos_;
      BIPIE_RETURN_NOT_OK(ExpectSymbol("("));
      BIPIE_RETURN_NOT_OK(ExpectSymbol("*"));
      BIPIE_RETURN_NOT_OK(ExpectSymbol(")"));
      spec->aggregates.push_back(AggregateSpec::Count());
      return true;
    }
    if (word == "sum" || word == "avg" || word == "min" || word == "max") {
      ++pos_;
      BIPIE_RETURN_NOT_OK(ExpectSymbol("("));
      if (word == "sum") {
        // sum() takes a full expression.
        Result<ExprPtr> expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        BIPIE_RETURN_NOT_OK(ExpectSymbol(")"));
        // A plain column reference stays a column sum (fast raw path).
        if (expr.value()->kind() == ExprKind::kColumn) {
          spec->aggregates.push_back(AggregateSpec::Sum(
              table_.schema()[expr.value()->column_index()].name));
        } else {
          spec->aggregates.push_back(AggregateSpec::SumExpr(expr.value()));
        }
        return true;
      }
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorAtToken(Peek(), word + "() takes a column name");
      }
      const Token& col = Next();
      if (table_.FindColumn(col.text) < 0) {
        return ErrorAtToken(col, "unknown column");
      }
      BIPIE_RETURN_NOT_OK(ExpectSymbol(")"));
      if (word == "avg") {
        spec->aggregates.push_back(AggregateSpec::Avg(col.text));
      } else if (word == "min") {
        spec->aggregates.push_back(AggregateSpec::Min(col.text));
      } else {
        spec->aggregates.push_back(AggregateSpec::Max(col.text));
      }
      return true;
    }
    // Bare column reference.
    const Token& col = Next();
    if (table_.FindColumn(col.text) < 0) {
      return ErrorAtToken(col, "unknown column");
    }
    select_columns->push_back(col.text);
    return true;
  }

  // expr := term (('+' | '-') term)*
  // term := factor ('*' factor)*
  // factor := column | integer | '-' factor | '(' expr ')'
  Result<ExprPtr> ParseExpr() {
    Result<ExprPtr> lhs = ParseTerm();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = lhs.value();
    for (;;) {
      if (AcceptSymbol("+")) {
        Result<ExprPtr> rhs = ParseTerm();
        if (!rhs.ok()) return rhs;
        expr = Expr::Add(expr, rhs.value());
      } else if (AcceptSymbol("-")) {
        Result<ExprPtr> rhs = ParseTerm();
        if (!rhs.ok()) return rhs;
        expr = Expr::Sub(expr, rhs.value());
      } else {
        return expr;
      }
    }
  }

  Result<ExprPtr> ParseTerm() {
    Result<ExprPtr> lhs = ParseFactor();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = lhs.value();
    while (AcceptSymbol("*")) {
      Result<ExprPtr> rhs = ParseFactor();
      if (!rhs.ok()) return rhs;
      expr = Expr::Mul(expr, rhs.value());
    }
    return expr;
  }

  Result<ExprPtr> ParseFactor() {
    if (AcceptSymbol("(")) {
      Result<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      BIPIE_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (AcceptSymbol("-")) {
      Result<ExprPtr> inner = ParseFactor();
      if (!inner.ok()) return inner;
      return Expr::Sub(Expr::Constant(0), inner.value());
    }
    if (Peek().kind == TokenKind::kInteger) {
      return Expr::Constant(Next().value);
    }
    if (Peek().kind == TokenKind::kIdentifier) {
      const Token& name = Next();
      const int idx = table_.FindColumn(name.text);
      if (idx < 0) {
        return ErrorAtToken(name, "unknown column");
      }
      return Expr::Column(idx);
    }
    return ErrorAtToken(Peek(), "expected expression");
  }

  Result<int64_t> ParseIntLiteral() {
    bool negative = false;
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "-") {
      ++pos_;
      negative = true;
    }
    if (Peek().kind != TokenKind::kInteger) {
      return ErrorAtToken(Peek(), "expected integer literal");
    }
    const int64_t v = Next().value;
    return negative ? -v : v;
  }

  Status ParsePredicate(QuerySpec* spec) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorAtToken(Peek(), "expected column in WHERE");
    }
    const Token& col_tok = Next();
    const std::string col = col_tok.text;
    if (table_.FindColumn(col) < 0) {
      return ErrorAtToken(col_tok, "unknown column");
    }
    if (AcceptKeyword("between")) {
      Result<int64_t> lo = ParseIntLiteral();
      if (!lo.ok()) return lo.status();
      BIPIE_RETURN_NOT_OK(ExpectKeyword("and"));
      Result<int64_t> hi = ParseIntLiteral();
      if (!hi.ok()) return hi.status();
      spec->filters.push_back(
          ColumnPredicate::Between(col, lo.value(), hi.value()));
      return Status::OK();
    }
    if (Peek().kind != TokenKind::kSymbol) {
      return ErrorAtToken(Peek(), "expected comparison operator");
    }
    const Token& symbol_tok = Next();
    const std::string symbol = symbol_tok.text;
    CompareOp op;
    if (symbol == "=") {
      op = CompareOp::kEq;
    } else if (symbol == "<>" || symbol == "!=") {
      op = CompareOp::kNe;
    } else if (symbol == "<") {
      op = CompareOp::kLt;
    } else if (symbol == "<=") {
      op = CompareOp::kLe;
    } else if (symbol == ">") {
      op = CompareOp::kGt;
    } else if (symbol == ">=") {
      op = CompareOp::kGe;
    } else {
      return ErrorAtToken(symbol_tok, "unsupported operator");
    }
    bool negative = false;
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "-") {
      ++pos_;
      negative = true;
    }
    if (Peek().kind == TokenKind::kInteger) {
      const int64_t literal = Next().value;
      spec->filters.emplace_back(col, op, negative ? -literal : literal);
      return Status::OK();
    }
    if (Peek().kind == TokenKind::kString && !negative) {
      spec->filters.emplace_back(col, op, Next().text);
      return Status::OK();
    }
    return ErrorAtToken(Peek(), "expected literal after operator");
  }

  std::vector<Token> tokens_;
  const Table& table_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& sql, const Table& table) {
  std::vector<Token> tokens;
  Lexer lexer(sql);
  BIPIE_RETURN_NOT_OK(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens), table);
  return parser.Parse();
}

Result<PreparsedQuery> PreparseQuery(const std::string& sql) {
  std::vector<Token> tokens;
  Lexer lexer(sql);
  BIPIE_RETURN_NOT_OK(lexer.Tokenize(&tokens));
  PreparsedQuery out;
  out.statement = sql;
  size_t pos = 0;
  if (tokens[pos].kind == TokenKind::kIdentifier &&
      Lower(tokens[pos].text) == "explain") {
    out.explain = true;
    // Strip the prefix so the statement re-parses as a plain query.
    out.statement = sql.substr(tokens[pos].offset + tokens[pos].text.size());
    ++pos;
  }
  if (!(tokens[pos].kind == TokenKind::kIdentifier &&
        Lower(tokens[pos].text) == "select")) {
    return ErrorAtToken(tokens[pos], "expected SELECT statement");
  }
  // Find the top-level FROM. The grammar has no subqueries, so the first
  // FROM keyword is the one that names the table.
  for (size_t i = pos; i < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier &&
        Lower(tokens[i].text) == "from") {
      if (i + 1 >= tokens.size() ||
          tokens[i + 1].kind != TokenKind::kIdentifier) {
        const Token& at = tokens[std::min(i + 1, tokens.size() - 1)];
        return ErrorAtToken(at, "expected table name after FROM");
      }
      out.table_name = tokens[i + 1].text;
      return out;
    }
  }
  return ErrorAtToken(tokens.back(), "query has no FROM clause");
}

}  // namespace bipie
