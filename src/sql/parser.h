// A small SQL frontend for the BIPie workload shape (§2.3):
//
//   SELECT g1 [, g2], count(*), sum(<expr>), avg(col), min(col), max(col)...
//   FROM <table>
//   [WHERE col <op> literal [AND ...]]
//   [GROUP BY g1 [, g2]]
//
// Expressions support +, -, * over column names and integer literals with
// the usual precedence and parentheses. String literals ('A') are allowed
// in WHERE equality/comparison against dictionary-encoded string columns.
// Identifiers are case-insensitive keywords / case-sensitive column names.
//
// The parser resolves column names against a table's schema and produces a
// QuerySpec ready for BIPieScan. It rejects anything outside the supported
// shape with a descriptive InvalidArgument.
//
// SQL is untrusted input (it arrives over the network via src/server), so
// every error carries position context — "parse error at byte N near
// '<token>'" — and the lexer never throws: oversized integer literals,
// unterminated strings and stray bytes all surface as kInvalidArgument.
// The parse_sql mode of tools/bipie_fuzz sweeps mutated query text against
// this contract.
#ifndef BIPIE_SQL_PARSER_H_
#define BIPIE_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "core/query.h"
#include "storage/table.h"

namespace bipie {

struct ParsedQuery {
  QuerySpec spec;
  std::string table_name;  // whatever followed FROM (informational)
};

// Parses `sql` against `table`'s schema.
Result<ParsedQuery> ParseQuery(const std::string& sql, const Table& table);

// The schema-free pre-parse the server runs before it can pick a table:
// lexes the statement, strips an optional leading EXPLAIN, and extracts the
// identifier after FROM. No column resolution happens here — the full
// ParseQuery runs later against the resolved table's schema.
struct PreparsedQuery {
  bool explain = false;    // statement started with EXPLAIN
  std::string table_name;  // identifier following FROM
  std::string statement;   // the statement with any EXPLAIN prefix removed
};
Result<PreparsedQuery> PreparseQuery(const std::string& sql);

}  // namespace bipie

#endif  // BIPIE_SQL_PARSER_H_
