#include "vector/byteslice_scan.h"

#include "common/cpu.h"
#include "common/macros.h"
#include "expr/predicate.h"
#include "vector/selection_vector.h"

namespace bipie {

namespace internal {

namespace {

// Lexicographic plane compare of one row against a shifted literal with
// early exit at the first differing plane. Returns -1 / 0 / +1.
BIPIE_ALWAYS_INLINE int CompareRow(const uint8_t* planes, size_t plane_stride,
                                   int num_planes, size_t row,
                                   uint64_t shifted_literal) {
  for (int p = 0; p < num_planes; ++p) {
    const uint8_t b = planes[static_cast<size_t>(p) * plane_stride + row];
    const uint8_t lb = LiteralPlaneByte(shifted_literal, num_planes, p);
    if (b != lb) return b < lb ? -1 : 1;
  }
  return 0;
}

}  // namespace

void ByteSliceCompareScalar(const uint8_t* planes, size_t plane_stride,
                            int num_planes, size_t start, size_t n,
                            CompareOp op, uint64_t literal, uint64_t literal2,
                            uint8_t* sel_out) {
  for (size_t i = 0; i < n; ++i) {
    const size_t row = start + i;
    bool selected = false;
    if (op == CompareOp::kBetween) {
      selected =
          CompareRow(planes, plane_stride, num_planes, row, literal) >= 0 &&
          CompareRow(planes, plane_stride, num_planes, row, literal2) <= 0;
    } else {
      const int c =
          CompareRow(planes, plane_stride, num_planes, row, literal);
      switch (op) {
        case CompareOp::kEq:
          selected = c == 0;
          break;
        case CompareOp::kNe:
          selected = c != 0;
          break;
        case CompareOp::kLt:
          selected = c < 0;
          break;
        case CompareOp::kLe:
          selected = c <= 0;
          break;
        case CompareOp::kGt:
          selected = c > 0;
          break;
        case CompareOp::kGe:
          selected = c >= 0;
          break;
        case CompareOp::kBetween:
          break;  // handled above
      }
    }
    sel_out[i] = selected ? kRowSelected : kRowRejected;
  }
}

}  // namespace internal

void ByteSliceCompare(const uint8_t* planes, size_t plane_stride,
                      int num_planes, size_t start, size_t n, CompareOp op,
                      uint64_t literal, uint64_t literal2, uint8_t* sel_out) {
  switch (CurrentIsaTier()) {
    case IsaTier::kAvx512:
      internal::ByteSliceCompareAvx512(planes, plane_stride, num_planes,
                                       start, n, op, literal, literal2,
                                       sel_out);
      return;
    case IsaTier::kAvx2:
      internal::ByteSliceCompareAvx2(planes, plane_stride, num_planes, start,
                                     n, op, literal, literal2, sel_out);
      return;
    case IsaTier::kScalar:
      break;
  }
  internal::ByteSliceCompareScalar(planes, plane_stride, num_planes, start,
                                   n, op, literal, literal2, sel_out);
}

}  // namespace bipie
