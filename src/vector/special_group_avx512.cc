// AVX-512 tier of special-group assignment: one VPTESTMB to derive the
// 64-row mask, one masked blend to merge.
#include <immintrin.h>

#include "vector/special_group.h"

namespace bipie::internal {

void ApplySpecialGroupAvx512(const uint8_t* group_ids, const uint8_t* sel,
                             size_t n, uint8_t special_group, uint8_t* out) {
  const __m512i special = _mm512_set1_epi8(static_cast<char>(special_group));
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i g = _mm512_loadu_si512(group_ids + i);
    const __m512i s = _mm512_loadu_si512(sel + i);
    const __mmask64 selected = _mm512_test_epi8_mask(s, s);
    _mm512_storeu_si512(out + i,
                        _mm512_mask_blend_epi8(selected, special, g));
  }
  ApplySpecialGroupScalar(group_ids + i, sel + i, n - i, special_group,
                          out + i);
}

}  // namespace bipie::internal
