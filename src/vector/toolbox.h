// Umbrella header for the Vector Toolbox (§3).
//
// The Vector Toolbox is bipie's library of low-level vector functions:
// highly optimized, runtime-dispatched between ISA tiers, and free of
// dependencies on the rest of the engine. Operators above it (the Aggregate
// Processor, the Filter component, the Group ID Mapper) compose these
// kernels.
#ifndef BIPIE_VECTOR_TOOLBOX_H_
#define BIPIE_VECTOR_TOOLBOX_H_

#include "vector/agg_inregister.h"
#include "vector/agg_multi.h"
#include "vector/agg_scalar.h"
#include "vector/agg_sort.h"
#include "vector/compact.h"
#include "vector/gather_select.h"
#include "vector/selection_vector.h"
#include "vector/special_group.h"

namespace bipie {

// Human-readable description of the dispatch state, e.g. "avx2 (detected
// avx2)". Examples print this so runs are interpretable.
const char* ToolboxIsaDescription();

}  // namespace bipie

#endif  // BIPIE_VECTOR_TOOLBOX_H_
