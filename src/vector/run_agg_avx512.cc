// AVX-512 VBMI tier of the run-span SUM kernel.
//
// The generic unpack tier extracts 16 values per iteration through a dword
// gather (~0.5 cycles/value of port pressure); a horizontal sum never needs
// the values in row order, so this tier replaces the gather with byte
// shuffles over one 64-byte load and accumulates in registers:
//
//   w <= 8:  VPERMB groups each 8-value w-byte window into a qword, then
//            VPMULTISHIFTQB extracts all 8 values of every qword at once
//            and VPSADBW folds the 64 resulting bytes into u64 lanes.
//            64 values per ~5-instruction iteration.
//   w <= 25: VPERMB places each value's 4-byte window into its dword lane
//            (the 16 windows of one iteration span at most 50 bytes, so a
//            single 64-byte load covers them), then VPSRLVD + mask. u32
//            lanes accumulate and flush to u64 every 64 iterations, which
//            cannot overflow (64 * (2^25 - 1) < 2^31).
//
// VBMI (VPERMB/VPMULTISHIFTQB) is not part of the toolbox's kAvx512 tier
// contract (F+DQ+BW+VL), so availability is probed separately at runtime.
#include <immintrin.h>

#include <algorithm>

#include "common/macros.h"
#include "encoding/bitpack.h"
#include "vector/run_agg.h"

namespace bipie::internal {

namespace {

uint64_t SumScalarTail(const uint8_t* src, size_t start, size_t n, int w) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += BitUnpackOne(src, start + i, w);
  return total;
}

#if defined(__AVX512VBMI__)

// src points at the byte of value 0 (caller pre-aligned the range so value
// 0 starts on a byte boundary). Widths 1..8.
uint64_t SumNarrowVbmi(const uint8_t* src, size_t n, int w) {
  alignas(64) uint8_t perm_idx[64];
  alignas(64) uint8_t shift_ctl[64];
  for (int q = 0; q < 8; ++q) {
    for (int j = 0; j < 8; ++j) {
      // Qword q holds values [8q, 8q + 8) = packed bytes [q*w, q*w + w).
      perm_idx[q * 8 + j] = static_cast<uint8_t>(q * w + j);
      // Byte j of each qword extracts the 8 bits at offset j*w (<= 56).
      shift_ctl[q * 8 + j] = static_cast<uint8_t>(j * w);
    }
  }
  const __m512i idx = _mm512_load_si512(perm_idx);
  const __m512i ctl = _mm512_load_si512(shift_ctl);
  const __m512i mask =
      _mm512_set1_epi8(static_cast<char>(LowBitsMask(w) & 0xFF));
  const __m512i zero = _mm512_setzero_si512();
  __m512i acc = zero;
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i raw = _mm512_loadu_si512(src + i * static_cast<size_t>(w) / 8);
    const __m512i grouped = _mm512_permutexvar_epi8(idx, raw);
    const __m512i vals =
        _mm512_and_si512(_mm512_multishift_epi64_epi8(ctl, grouped), mask);
    acc = _mm512_add_epi64(acc, _mm512_sad_epu8(vals, zero));
  }
  return _mm512_reduce_add_epi64(acc) + SumScalarTail(src, i, n - i, w);
}

// Widths 9..25; same pre-alignment contract as SumNarrowVbmi.
uint64_t SumMidVbmi(const uint8_t* src, size_t n, int w) {
  alignas(64) uint8_t perm_idx[64];
  alignas(64) uint32_t shifts[16];
  for (int l = 0; l < 16; ++l) {
    const int bit = l * w;
    const int byte = bit >> 3;  // <= 46 for w <= 25: one load covers all 16
    for (int j = 0; j < 4; ++j) {
      perm_idx[l * 4 + j] = static_cast<uint8_t>(byte + j);
    }
    shifts[l] = static_cast<uint32_t>(bit & 7);
  }
  const __m512i idx = _mm512_load_si512(perm_idx);
  const __m512i shift = _mm512_load_si512(shifts);
  const __m512i mask =
      _mm512_set1_epi32(static_cast<int>(LowBitsMask(w)));
  __m512i acc64 = _mm512_setzero_si512();
  size_t i = 0;
  const size_t vectorized = n & ~size_t{15};
  while (i < vectorized) {
    constexpr size_t kFlushIters = 64;  // 64 * (2^25 - 1) < 2^31: exact
    const size_t block_end = std::min(vectorized, i + 16 * kFlushIters);
    __m512i acc32 = _mm512_setzero_si512();
    for (; i < block_end; i += 16) {
      const __m512i raw =
          _mm512_loadu_si512(src + i * static_cast<size_t>(w) / 8);
      const __m512i windows = _mm512_permutexvar_epi8(idx, raw);
      acc32 = _mm512_add_epi32(
          acc32, _mm512_and_si512(_mm512_srlv_epi32(windows, shift), mask));
    }
    acc64 = _mm512_add_epi64(
        acc64, _mm512_cvtepu32_epi64(_mm512_castsi512_si256(acc32)));
    acc64 = _mm512_add_epi64(
        acc64, _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(acc32, 1)));
  }
  return _mm512_reduce_add_epi64(acc64) + SumScalarTail(src, i, n - i, w);
}

#endif  // __AVX512VBMI__

}  // namespace

bool SumBitPackedAvx512Available() {
#if defined(__AVX512VBMI__)
  static const bool ok = __builtin_cpu_supports("avx512vbmi") > 0;
  return ok;
#else
  return false;
#endif
}

uint64_t SumBitPackedAvx512(const uint8_t* packed, size_t start, size_t n,
                            int bit_width) {
#if defined(__AVX512VBMI__)
  BIPIE_DCHECK(bit_width <= 25);
  // Scalar prologue until value `start` sits on a byte boundary (8 values
  // of any width always span whole bytes).
  size_t prologue = (8 - (start & 7)) & 7;
  if (prologue > n) prologue = n;
  uint64_t total = SumScalarTail(packed, start, prologue, bit_width);
  start += prologue;
  n -= prologue;
  const uint8_t* base =
      packed + start * static_cast<uint64_t>(bit_width) / 8;
  total += bit_width <= 8 ? SumNarrowVbmi(base, n, bit_width)
                          : SumMidVbmi(base, n, bit_width);
  return total;
#else
  BIPIE_DCHECK(false);  // dispatcher checks SumBitPackedAvx512Available()
  return SumScalarTail(packed, start, n, bit_width);
#endif
}

}  // namespace bipie::internal
