// AVX-512 tier of in-register aggregation.
//
// Mask registers change the structure relative to AVX2:
//  * COUNT needs no lane accumulators at all — VPCMPEQB yields a 64-bit
//    mask whose population count goes straight into a 64-bit counter;
//  * SUM of bytes uses VPSADBW against zero, which horizontally sums the
//    masked bytes into 64-bit lanes — so accumulators never overflow and
//    no flush cadence is needed;
//  * SUM16/SUM32 keep the AVX2 structure at double width.
#include <immintrin.h>

#include <algorithm>
#include <bit>

#include "common/macros.h"
#include "vector/agg_inregister.h"

namespace bipie::internal {

namespace {

BIPIE_ALWAYS_INLINE uint64_t ReduceU32(__m512i v) {
  // Lanes are unsigned; widen then reduce.
  const __m512i lo = _mm512_cvtepu32_epi64(_mm512_castsi512_si256(v));
  const __m512i hi =
      _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(v, 1));
  return static_cast<uint64_t>(
      _mm512_reduce_add_epi64(_mm512_add_epi64(lo, hi)));
}

template <int N>
void CountImpl512(const uint8_t* groups, size_t n, uint64_t* counts) {
  const size_t vectors = n / 64;
  uint64_t local[N] = {};
  for (size_t v = 0; v < vectors; ++v) {
    const __m512i ids = _mm512_loadu_si512(groups + v * 64);
    for (int g = 0; g < N; ++g) {
      const __mmask64 match = _mm512_cmpeq_epi8_mask(
          ids, _mm512_set1_epi8(static_cast<char>(g)));
      local[g] += std::popcount(static_cast<uint64_t>(match));
    }
  }
  for (int g = 0; g < N; ++g) counts[g] += local[g];
  for (size_t i = vectors * 64; i < n; ++i) ++counts[groups[i]];
}

template <int N>
void Sum8Impl512(const uint8_t* groups, const uint8_t* values, size_t n,
                 uint64_t* sums) {
  const __m512i zero = _mm512_setzero_si512();
  const size_t vectors = n / 64;
  __m512i acc[N];
  for (int g = 0; g < N; ++g) acc[g] = zero;
  for (size_t v = 0; v < vectors; ++v) {
    const __m512i ids = _mm512_loadu_si512(groups + v * 64);
    const __m512i vals = _mm512_loadu_si512(values + v * 64);
    for (int g = 0; g < N; ++g) {
      const __mmask64 match = _mm512_cmpeq_epi8_mask(
          ids, _mm512_set1_epi8(static_cast<char>(g)));
      const __m512i masked = _mm512_maskz_mov_epi8(match, vals);
      acc[g] = _mm512_add_epi64(acc[g], _mm512_sad_epu8(masked, zero));
    }
  }
  for (int g = 0; g < N; ++g) {
    sums[g] += static_cast<uint64_t>(_mm512_reduce_add_epi64(acc[g]));
  }
  for (size_t i = vectors * 64; i < n; ++i) sums[groups[i]] += values[i];
}

// 32-bit pair accumulators as on the AVX2 tier: each vector adds < 2^16
// per lane, so 2^14 vectors stay within range.
constexpr size_t kSum16FlushVectors512 = size_t{1} << 14;

template <int N>
void Sum16Impl512(const uint8_t* groups, const uint16_t* values, size_t n,
                  uint64_t* sums) {
  const __m512i ones16 = _mm512_set1_epi16(1);
  const size_t vectors = n / 32;
  size_t v = 0;
  while (v < vectors) {
    const size_t chunk = std::min(vectors - v, kSum16FlushVectors512);
    __m512i acc[N];
    for (int g = 0; g < N; ++g) acc[g] = _mm512_setzero_si512();
    for (size_t k = 0; k < chunk; ++k, ++v) {
      const __m512i ids = _mm512_cvtepu8_epi16(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(groups + v * 32)));
      const __m512i vals = _mm512_loadu_si512(values + v * 32);
      for (int g = 0; g < N; ++g) {
        const __mmask32 match = _mm512_cmpeq_epi16_mask(
            ids, _mm512_set1_epi16(static_cast<short>(g)));
        const __m512i masked = _mm512_maskz_mov_epi16(match, vals);
        acc[g] = _mm512_add_epi32(acc[g],
                                  _mm512_madd_epi16(masked, ones16));
      }
    }
    for (int g = 0; g < N; ++g) sums[g] += ReduceU32(acc[g]);
  }
  for (size_t i = vectors * 32; i < n; ++i) sums[groups[i]] += values[i];
}

template <int N>
void Sum32Impl512(const uint8_t* groups, const uint32_t* values, size_t n,
                  size_t flush_vectors, uint64_t* sums) {
  const size_t vectors = n / 16;
  size_t v = 0;
  while (v < vectors) {
    const size_t chunk = std::min(vectors - v, flush_vectors);
    __m512i acc[N];
    for (int g = 0; g < N; ++g) acc[g] = _mm512_setzero_si512();
    for (size_t k = 0; k < chunk; ++k, ++v) {
      const __m512i ids = _mm512_cvtepu8_epi32(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(groups + v * 16)));
      const __m512i vals = _mm512_loadu_si512(values + v * 16);
      for (int g = 0; g < N; ++g) {
        const __mmask16 match =
            _mm512_cmpeq_epi32_mask(ids, _mm512_set1_epi32(g));
        acc[g] = _mm512_add_epi32(acc[g],
                                  _mm512_maskz_mov_epi32(match, vals));
      }
    }
    for (int g = 0; g < N; ++g) sums[g] += ReduceU32(acc[g]);
  }
  for (size_t i = vectors * 16; i < n; ++i) sums[groups[i]] += values[i];
}

#define BIPIE_TABLE32(F)                                                  \
  {nullptr, &F<1>,  &F<2>,  &F<3>,  &F<4>,  &F<5>,  &F<6>,  &F<7>,       \
   &F<8>,   &F<9>,  &F<10>, &F<11>, &F<12>, &F<13>, &F<14>, &F<15>,      \
   &F<16>,  &F<17>, &F<18>, &F<19>, &F<20>, &F<21>, &F<22>, &F<23>,      \
   &F<24>,  &F<25>, &F<26>, &F<27>, &F<28>, &F<29>, &F<30>, &F<31>,      \
   &F<32>}

}  // namespace

void InRegisterCountAvx512(const uint8_t* groups, size_t n, int num_groups,
                           uint64_t* counts) {
  using Fn = void (*)(const uint8_t*, size_t, uint64_t*);
  static constexpr Fn kTable[kMaxInRegisterGroups + 1] =
      BIPIE_TABLE32(CountImpl512);
  kTable[num_groups](groups, n, counts);
}

void InRegisterSum8Avx512(const uint8_t* groups, const uint8_t* values,
                          size_t n, int num_groups, uint64_t* sums) {
  using Fn = void (*)(const uint8_t*, const uint8_t*, size_t, uint64_t*);
  static constexpr Fn kTable[kMaxInRegisterGroups + 1] =
      BIPIE_TABLE32(Sum8Impl512);
  kTable[num_groups](groups, values, n, sums);
}

void InRegisterSum16Avx512(const uint8_t* groups, const uint16_t* values,
                           size_t n, int num_groups, uint64_t* sums) {
  using Fn = void (*)(const uint8_t*, const uint16_t*, size_t, uint64_t*);
  static constexpr Fn kTable[kMaxInRegisterGroups + 1] =
      BIPIE_TABLE32(Sum16Impl512);
  kTable[num_groups](groups, values, n, sums);
}

void InRegisterSum32Avx512(const uint8_t* groups, const uint32_t* values,
                           size_t n, int num_groups, uint64_t max_value,
                           uint64_t* sums) {
  size_t flush_vectors =
      max_value == 0 ? (size_t{1} << 30)
                     : static_cast<size_t>(0xFFFFFFFFULL / max_value);
  if (flush_vectors == 0) flush_vectors = 1;
  using Fn = void (*)(const uint8_t*, const uint32_t*, size_t, size_t,
                      uint64_t*);
  static constexpr Fn kTable[kMaxInRegisterGroups + 1] =
      BIPIE_TABLE32(Sum32Impl512);
  kTable[num_groups](groups, values, n, flush_vectors, sums);
}

#undef BIPIE_TABLE32

}  // namespace bipie::internal
