// Early-pruning predicate evaluation over byte-planar columns
// (DESIGN.md §16; the ByteSlice scan contract).
//
// A byteslice column stores frame-of-reference offsets as np byte planes,
// most-significant plane first, every value left-shifted so each plane byte
// carries full significance (encoding/byteslice.h). A comparison against a
// literal is then decided lexicographically, plane by plane:
//
//   per lane, after planes 0..p:  lt = decided "value < literal"
//                                 eq = still equal so far (undecided)
//
//   plane step:  lt |= eq & (x[p] <u lit[p]);  eq &= (x[p] == lit[p])
//
// Once `eq` is all-zero every lane is decided and the remaining planes are
// never read — the early-exit invariant that makes selective predicates on
// wide values touch ~1 plane instead of np. The final masks map to every
// CompareOp: kLt -> lt, kLe -> lt|eq, kEq -> eq, kNe -> ~eq, kGe -> ~lt,
// kGt -> ~(lt|eq). kBetween runs two chains (x < lo, x > hi) and exits
// when both equality masks die.
//
// Literals arrive pre-rebased to the offset domain and pre-shifted into the
// padded comparison domain (ByteSliceShift); callers handle the
// out-of-domain short-circuits (predicate.cc's RebaseLiteral).
//
// Output is the canonical selection byte vector: 0xFF selected, 0x00
// rejected. sel_out needs 64 writable bytes of slack past n (AlignedBuffer
// padding); plane tails may be over-read per the layout's padding contract.
#ifndef BIPIE_VECTOR_BYTESLICE_SCAN_H_
#define BIPIE_VECTOR_BYTESLICE_SCAN_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

enum class CompareOp;  // expr/predicate.h

// Evaluates `offset <op> literal` over rows [start, start + n) of the
// planes (plane-major, the given stride, num_planes planes). For kBetween,
// `literal` is the shifted lower bound and `literal2` the shifted upper
// bound (inclusive); otherwise literal2 is ignored. Dispatches to the best
// ISA tier at runtime.
void ByteSliceCompare(const uint8_t* planes, size_t plane_stride,
                      int num_planes, size_t start, size_t n, CompareOp op,
                      uint64_t literal, uint64_t literal2, uint8_t* sel_out);

namespace internal {

// Portable reference tier (also the dispatch target on kScalar).
void ByteSliceCompareScalar(const uint8_t* planes, size_t plane_stride,
                            int num_planes, size_t start, size_t n,
                            CompareOp op, uint64_t literal, uint64_t literal2,
                            uint8_t* sel_out);

// AVX2 tier: 32 lanes per step, defined in byteslice_scan_avx2.cc.
void ByteSliceCompareAvx2(const uint8_t* planes, size_t plane_stride,
                          int num_planes, size_t start, size_t n,
                          CompareOp op, uint64_t literal, uint64_t literal2,
                          uint8_t* sel_out);

// AVX-512 tier: 64 lanes per step with mask-register accumulators, defined
// in byteslice_scan_avx512.cc (compiled with AVX-512 flags).
void ByteSliceCompareAvx512(const uint8_t* planes, size_t plane_stride,
                            int num_planes, size_t start, size_t n,
                            CompareOp op, uint64_t literal, uint64_t literal2,
                            uint8_t* sel_out);

// Byte p (0-based from the most significant plane) of a shifted literal
// with num_planes planes.
inline uint8_t LiteralPlaneByte(uint64_t shifted, int num_planes, int p) {
  return static_cast<uint8_t>(shifted >> (8 * (num_planes - 1 - p)));
}

}  // namespace internal

}  // namespace bipie

#endif  // BIPIE_VECTOR_BYTESLICE_SCAN_H_
