#include "vector/compact.h"

#include <immintrin.h>

#include <bit>
#include <cstring>

#include "common/cpu.h"
#include "common/macros.h"
#include "vector/selection_vector.h"

namespace bipie {

namespace internal {

size_t CompactToIndexVectorScalar(const uint8_t* sel, size_t n, uint32_t base,
                                  uint32_t* out) {
  // Branch-free: always store, conditionally advance (§4.1 pseudocode).
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    out[count] = base + static_cast<uint32_t>(i);
    count += SelectionByteIsSet(sel[i]);
  }
  return count;
}

size_t CompactValuesScalar(const uint8_t* sel, const void* values, size_t n,
                           int elem_bytes, void* out) {
  size_t count = 0;
  switch (elem_bytes) {
    case 1: {
      const auto* v = static_cast<const uint8_t*>(values);
      auto* o = static_cast<uint8_t*>(out);
      for (size_t i = 0; i < n; ++i) {
        o[count] = v[i];
        count += SelectionByteIsSet(sel[i]);
      }
      return count;
    }
    case 2: {
      const auto* v = static_cast<const uint16_t*>(values);
      auto* o = static_cast<uint16_t*>(out);
      for (size_t i = 0; i < n; ++i) {
        o[count] = v[i];
        count += SelectionByteIsSet(sel[i]);
      }
      return count;
    }
    case 4: {
      const auto* v = static_cast<const uint32_t*>(values);
      auto* o = static_cast<uint32_t*>(out);
      for (size_t i = 0; i < n; ++i) {
        o[count] = v[i];
        count += SelectionByteIsSet(sel[i]);
      }
      return count;
    }
    case 8: {
      const auto* v = static_cast<const uint64_t*>(values);
      auto* o = static_cast<uint64_t*>(out);
      for (size_t i = 0; i < n; ++i) {
        o[count] = v[i];
        count += SelectionByteIsSet(sel[i]);
      }
      return count;
    }
    default:
      BIPIE_DCHECK(false);
      return 0;
  }
}

}  // namespace internal

namespace {

// perm32_[m] lists, as 32-bit lane ids, the positions of the set bits of the
// 8-bit mask m (remaining lanes repeat 0; they are overwritten by the next
// iteration's store).
struct CompactLut {
  alignas(32) uint32_t perm32[256][8];
};

CompactLut MakeCompactLut() {
  CompactLut lut{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if (m & (1 << bit)) lut.perm32[m][k++] = static_cast<uint32_t>(bit);
    }
    for (; k < 8; ++k) lut.perm32[m][k] = 0;
  }
  return lut;
}

const CompactLut& Lut() {
  static const CompactLut lut = MakeCompactLut();
  return lut;
}

// 8-bit selection mask for rows [i, i+8) of the byte vector.
BIPIE_ALWAYS_INLINE uint32_t Mask8(const uint8_t* sel) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(sel));
  return static_cast<uint32_t>(_mm_movemask_epi8(bytes)) & 0xFF;
}

size_t CompactToIndexVectorAvx2(const uint8_t* sel, size_t n, uint32_t base,
                                uint32_t* out) {
  const CompactLut& lut = Lut();
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint32_t m = Mask8(sel + i);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(lut.perm32[m]));
    // perm holds in-block offsets; add the block base to get row ids.
    const __m256i ids = _mm256_add_epi32(
        perm, _mm256_set1_epi32(static_cast<int>(base + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + count), ids);
    count += std::popcount(m);
  }
  for (; i < n; ++i) {
    out[count] = base + static_cast<uint32_t>(i);
    count += SelectionByteIsSet(sel[i]);
  }
  return count;
}

size_t CompactValues1Avx2(const uint8_t* sel, const uint8_t* values, size_t n,
                          uint8_t* out) {
  size_t count = 0;
  size_t i = 0;
  // BMI2 PEXT compacts 8 one-byte elements at once: the selection bytes are
  // already a full 0x00/0xFF per-byte mask.
  for (; i + 8 <= n; i += 8) {
    uint64_t mask, data;
    std::memcpy(&mask, sel + i, 8);
    std::memcpy(&data, values + i, 8);
    const uint64_t packed = _pext_u64(data, mask);
    std::memcpy(out + count, &packed, 8);
    count += static_cast<size_t>(std::popcount(mask)) / 8;
  }
  for (; i < n; ++i) {
    out[count] = values[i];
    count += SelectionByteIsSet(sel[i]);
  }
  return count;
}

size_t CompactValues2Avx2(const uint8_t* sel, const uint16_t* values,
                          size_t n, uint16_t* out) {
  auto* out_bytes = reinterpret_cast<uint8_t*>(out);
  size_t count = 0;
  size_t i = 0;
  // Double each selection byte to a 16-bit mask, then PEXT 4 elements per
  // 64-bit word.
  for (; i + 8 <= n; i += 8) {
    const __m128i s =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(sel + i));
    const __m128i doubled = _mm_unpacklo_epi8(s, s);
    alignas(16) uint64_t masks[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(masks), doubled);
    uint64_t data;
    std::memcpy(&data, values + i, 8);
    uint64_t packed = _pext_u64(data, masks[0]);
    std::memcpy(out_bytes + count * 2, &packed, 8);
    count += static_cast<size_t>(std::popcount(masks[0])) / 16;
    std::memcpy(&data, values + i + 4, 8);
    packed = _pext_u64(data, masks[1]);
    std::memcpy(out_bytes + count * 2, &packed, 8);
    count += static_cast<size_t>(std::popcount(masks[1])) / 16;
  }
  for (; i < n; ++i) {
    out[count] = values[i];
    count += SelectionByteIsSet(sel[i]);
  }
  return count;
}

size_t CompactValues4Avx2(const uint8_t* sel, const uint32_t* values,
                          size_t n, uint32_t* out) {
  const CompactLut& lut = Lut();
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint32_t m = Mask8(sel + i);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(lut.perm32[m]));
    const __m256i data =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i packed = _mm256_permutevar8x32_epi32(data, perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + count), packed);
    count += std::popcount(m);
  }
  for (; i < n; ++i) {
    out[count] = values[i];
    count += SelectionByteIsSet(sel[i]);
  }
  return count;
}

size_t CompactValues8Avx2(const uint8_t* sel, const uint64_t* values,
                          size_t n, uint64_t* out) {
  // 16-entry LUT over 4-bit masks; qwords moved as 32-bit lane pairs.
  alignas(32) static constexpr uint32_t kPerm64[16][8] = {
      {0, 1, 0, 1, 0, 1, 0, 1}, {0, 1, 0, 1, 0, 1, 0, 1},
      {2, 3, 0, 1, 0, 1, 0, 1}, {0, 1, 2, 3, 0, 1, 0, 1},
      {4, 5, 0, 1, 0, 1, 0, 1}, {0, 1, 4, 5, 0, 1, 0, 1},
      {2, 3, 4, 5, 0, 1, 0, 1}, {0, 1, 2, 3, 4, 5, 0, 1},
      {6, 7, 0, 1, 0, 1, 0, 1}, {0, 1, 6, 7, 0, 1, 0, 1},
      {2, 3, 6, 7, 0, 1, 0, 1}, {0, 1, 2, 3, 6, 7, 0, 1},
      {4, 5, 6, 7, 0, 1, 0, 1}, {0, 1, 4, 5, 6, 7, 0, 1},
      {2, 3, 4, 5, 6, 7, 0, 1}, {0, 1, 2, 3, 4, 5, 6, 7}};
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32_t m = 0;
    m |= static_cast<uint32_t>(SelectionByteIsSet(sel[i])) << 0;
    m |= static_cast<uint32_t>(SelectionByteIsSet(sel[i + 1])) << 1;
    m |= static_cast<uint32_t>(SelectionByteIsSet(sel[i + 2])) << 2;
    m |= static_cast<uint32_t>(SelectionByteIsSet(sel[i + 3])) << 3;
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPerm64[m]));
    const __m256i data =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i packed = _mm256_permutevar8x32_epi32(data, perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + count), packed);
    count += std::popcount(m);
  }
  for (; i < n; ++i) {
    out[count] = values[i];
    count += SelectionByteIsSet(sel[i]);
  }
  return count;
}

}  // namespace

size_t CompactToIndexVector(const uint8_t* sel, size_t n, uint32_t* out) {
  return CompactToIndexVector(sel, n, 0, out);
}

size_t CompactToIndexVector(const uint8_t* sel, size_t n, uint32_t base,
                            uint32_t* out) {
  BIPIE_DCHECK_SEL_CANONICAL(sel, n);
  const IsaTier tier = CurrentIsaTier();
  if (tier >= IsaTier::kAvx512) {
    return internal::CompactToIndexVectorAvx512(sel, n, base, out);
  }
  if (tier >= IsaTier::kAvx2) {
    return CompactToIndexVectorAvx2(sel, n, base, out);
  }
  return internal::CompactToIndexVectorScalar(sel, n, base, out);
}

size_t CompactValues(const uint8_t* sel, const void* values, size_t n,
                     int elem_bytes, void* out) {
  BIPIE_DCHECK_SEL_CANONICAL(sel, n);
  const IsaTier tier = CurrentIsaTier();
  if (tier >= IsaTier::kAvx512) {
    // 4- and 8-byte elements use compress-store; narrower elements would
    // need VBMI2, so they stay on the AVX2 PEXT kernels.
    if (elem_bytes == 4) {
      return internal::CompactValues4Avx512(
          sel, static_cast<const uint32_t*>(values), n,
          static_cast<uint32_t*>(out));
    }
    if (elem_bytes == 8) {
      return internal::CompactValues8Avx512(
          sel, static_cast<const uint64_t*>(values), n,
          static_cast<uint64_t*>(out));
    }
  }
  if (tier >= IsaTier::kAvx2) {
    switch (elem_bytes) {
      case 1:
        return CompactValues1Avx2(sel, static_cast<const uint8_t*>(values),
                                  n, static_cast<uint8_t*>(out));
      case 2:
        return CompactValues2Avx2(sel, static_cast<const uint16_t*>(values),
                                  n, static_cast<uint16_t*>(out));
      case 4:
        return CompactValues4Avx2(sel, static_cast<const uint32_t*>(values),
                                  n, static_cast<uint32_t*>(out));
      case 8:
        return CompactValues8Avx2(sel, static_cast<const uint64_t*>(values),
                                  n, static_cast<uint64_t*>(out));
      default:
        BIPIE_DCHECK(false);
    }
  }
  return internal::CompactValuesScalar(sel, values, n, elem_bytes, out);
}

}  // namespace bipie
