// Sort-Based SUM aggregation (§5.2).
//
// Row indices within a batch are bucket-sorted by group id; the sorted array
// is a concatenation of per-group sub-arrays. Sums are then computed one
// aggregate column and one group at a time by SIMD-gathering the (still
// bit-packed) aggregate values at the sorted indices. The counting pass of
// the bucket sort doubles as COUNT(*).
//
// Write conflicts on bucket cursors for adjacent rows are avoided with two
// cursors per bucket (even/odd rows), mirroring the paper's fix.
//
// The sort cost is fixed per batch regardless of how many aggregates follow,
// which is why this strategy wins with low selectivity and many aggregates.
#ifndef BIPIE_VECTOR_AGG_SORT_H_
#define BIPIE_VECTOR_AGG_SORT_H_

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"

namespace bipie {

// Reusable workspace for one batch of sorted indices.
class SortedBatch {
 public:
  SortedBatch() = default;

  // Sorts rows by group id. Inputs:
  //  * groups:  byte group ids, indexed by *row id*;
  //  * row_ids: optional selection index vector (ascending row ids). When
  //    null, rows 0..n-1 are used and `groups` is indexed directly.
  //  * n:       number of rows (length of row_ids when present).
  // Per-group counts land in counts() — the COUNT(*) byproduct.
  void Sort(const uint8_t* groups, const uint32_t* row_ids, size_t n,
            int num_groups);

  int num_groups() const { return num_groups_; }
  // Row ids of group g occupy indices [offset(g), offset(g+1)).
  const uint32_t* indices() const { return indices_.data_as<uint32_t>(); }
  uint32_t offset(int g) const { return offsets_[g]; }
  uint32_t count(int g) const { return offsets_[g + 1] - offsets_[g]; }

 private:
  AlignedBuffer indices_;
  std::vector<uint32_t> offsets_;  // num_groups + 1 entries
  int num_groups_ = 0;
};

// sums[g] += sum over group g of the bit-packed aggregate column, decoded
// on the fly ("decoding, selection, and aggregation ... in one optimized
// unit"). `packed` needs AlignedBuffer padding.
void SortedGatherSum(const uint8_t* packed, int bit_width,
                     const SortedBatch& batch, uint64_t* sums);

// Variant over an already-decoded int64 array (used for aggregate inputs
// that are expression results rather than raw columns).
void SortedSumDecoded(const int64_t* values, const SortedBatch& batch,
                      int64_t* sums);

}  // namespace bipie

#endif  // BIPIE_VECTOR_AGG_SORT_H_
