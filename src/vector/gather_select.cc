#include "vector/gather_select.h"

#include <immintrin.h>

#include "common/bits.h"
#include "common/cpu.h"
#include "common/macros.h"
#include "encoding/bitpack.h"

namespace bipie {

namespace internal {

// The scalar gather is load-latency bound: each selected index lands on an
// unpredictable packed byte, so without help every iteration eats a cache
// miss on sparse selections. Prefetching the byte 8 indices ahead keeps
// ~8 misses in flight, which covers DRAM latency at this loop's few-cycle
// body without prefetching past the indices the loop will actually touch.
inline constexpr size_t kGatherPrefetchDistance = 8;

BIPIE_ALWAYS_INLINE void PrefetchPackedAt(const uint8_t* packed,
                                          int bit_width,
                                          const uint32_t* indices, size_t i,
                                          size_t n) {
  if (i + kGatherPrefetchDistance < n) {
    __builtin_prefetch(
        packed + static_cast<uint64_t>(indices[i + kGatherPrefetchDistance]) *
                     static_cast<uint64_t>(bit_width) / 8);
  }
}

void GatherSelectScalar(const uint8_t* packed, int bit_width,
                        const uint32_t* indices, size_t n, void* out,
                        int word_bytes) {
  switch (word_bytes) {
    case 1: {
      auto* o = static_cast<uint8_t*>(out);
      for (size_t i = 0; i < n; ++i) {
        PrefetchPackedAt(packed, bit_width, indices, i, n);
        o[i] = static_cast<uint8_t>(
            BitUnpackOne(packed, indices[i], bit_width));
      }
      return;
    }
    case 2: {
      auto* o = static_cast<uint16_t*>(out);
      for (size_t i = 0; i < n; ++i) {
        PrefetchPackedAt(packed, bit_width, indices, i, n);
        o[i] = static_cast<uint16_t>(
            BitUnpackOne(packed, indices[i], bit_width));
      }
      return;
    }
    case 4: {
      auto* o = static_cast<uint32_t*>(out);
      for (size_t i = 0; i < n; ++i) {
        PrefetchPackedAt(packed, bit_width, indices, i, n);
        o[i] = static_cast<uint32_t>(
            BitUnpackOne(packed, indices[i], bit_width));
      }
      return;
    }
    case 8: {
      auto* o = static_cast<uint64_t*>(out);
      for (size_t i = 0; i < n; ++i) {
        PrefetchPackedAt(packed, bit_width, indices, i, n);
        o[i] = BitUnpackOne(packed, indices[i], bit_width);
      }
      return;
    }
    default:
      BIPIE_DCHECK(false);
  }
}

}  // namespace internal

namespace {

// 8 packed values at 8 arbitrary indices as uint32 lanes. Requires
// bit_width <= 25 and index * bit_width < 2^31 - 32 for every index.
BIPIE_ALWAYS_INLINE __m256i GatherAt8(const uint8_t* packed,
                                      const uint32_t* indices, __m256i vw,
                                      __m256i value_mask) {
  const __m256i idx =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(indices));
  const __m256i bits = _mm256_mullo_epi32(idx, vw);
  const __m256i byte_off = _mm256_srli_epi32(bits, 3);
  const __m256i shift = _mm256_and_si256(bits, _mm256_set1_epi32(7));
  __m256i words = _mm256_i32gather_epi32(
      reinterpret_cast<const int*>(packed), byte_off, 1);
  words = _mm256_srlv_epi32(words, shift);
  return _mm256_and_si256(words, value_mask);
}

// 4 packed values at 4 indices (uint32, widened) as uint64 lanes.
// Requires bit_width <= 57.
BIPIE_ALWAYS_INLINE __m256i GatherAt4(const uint8_t* packed,
                                      const uint32_t* indices, __m256i vw64,
                                      __m256i value_mask64) {
  const __m128i idx32 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(indices));
  const __m256i idx = _mm256_cvtepu32_epi64(idx32);
  const __m256i bits = _mm256_mul_epu32(
      _mm256_shuffle_epi32(idx, _MM_SHUFFLE(2, 2, 0, 0)), vw64);
  const __m256i byte_off = _mm256_srli_epi64(bits, 3);
  const __m256i shift = _mm256_and_si256(bits, _mm256_set1_epi64x(7));
  __m256i words = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(packed), byte_off, 1);
  words = _mm256_srlv_epi64(words, shift);
  return _mm256_and_si256(words, value_mask64);
}

void GatherNarrowAvx2(const uint8_t* packed, int w, const uint32_t* indices,
                      size_t n, void* out, int word_bytes) {
  const __m256i vw = _mm256_set1_epi32(w);
  const __m256i value_mask =
      _mm256_set1_epi32(static_cast<int>(LowBitsMask(w)));
  size_t i = 0;
  switch (word_bytes) {
    case 1: {
      auto* dst = static_cast<uint8_t*>(out);
      const __m256i fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
      for (; i + 32 <= n; i += 32) {
        const __m256i v0 = GatherAt8(packed, indices + i, vw, value_mask);
        const __m256i v1 = GatherAt8(packed, indices + i + 8, vw, value_mask);
        const __m256i v2 =
            GatherAt8(packed, indices + i + 16, vw, value_mask);
        const __m256i v3 =
            GatherAt8(packed, indices + i + 24, vw, value_mask);
        const __m256i p01 = _mm256_packus_epi32(v0, v1);
        const __m256i p23 = _mm256_packus_epi32(v2, v3);
        __m256i bytes = _mm256_packus_epi16(p01, p23);
        bytes = _mm256_permutevar8x32_epi32(bytes, fix);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), bytes);
      }
      internal::GatherSelectScalar(packed, w, indices + i, n - i, dst + i, 1);
      return;
    }
    case 2: {
      auto* dst = static_cast<uint16_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const __m256i v0 = GatherAt8(packed, indices + i, vw, value_mask);
        const __m256i v1 = GatherAt8(packed, indices + i + 8, vw, value_mask);
        __m256i p = _mm256_packus_epi32(v0, v1);
        p = _mm256_permute4x64_epi64(p, 0xD8);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), p);
      }
      internal::GatherSelectScalar(packed, w, indices + i, n - i, dst + i, 2);
      return;
    }
    case 4: {
      auto* dst = static_cast<uint32_t*>(out);
      for (; i + 8 <= n; i += 8) {
        const __m256i v = GatherAt8(packed, indices + i, vw, value_mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
      }
      internal::GatherSelectScalar(packed, w, indices + i, n - i, dst + i, 4);
      return;
    }
    case 8: {
      auto* dst = static_cast<uint64_t*>(out);
      for (; i + 8 <= n; i += 8) {
        const __m256i v = GatherAt8(packed, indices + i, vw, value_mask);
        const __m256i lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v));
        const __m256i hi =
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), hi);
      }
      internal::GatherSelectScalar(packed, w, indices + i, n - i, dst + i, 8);
      return;
    }
    default:
      BIPIE_DCHECK(false);
  }
}

void GatherWideAvx2(const uint8_t* packed, int w, const uint32_t* indices,
                    size_t n, void* out, int word_bytes) {
  const __m256i vw64 = _mm256_set1_epi64x(w);
  const __m256i value_mask64 =
      _mm256_set1_epi64x(static_cast<long long>(LowBitsMask(w)));
  size_t i = 0;
  if (word_bytes == 8) {
    auto* dst = static_cast<uint64_t*>(out);
    for (; i + 4 <= n; i += 4) {
      const __m256i v = GatherAt4(packed, indices + i, vw64, value_mask64);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    }
    internal::GatherSelectScalar(packed, w, indices + i, n - i, dst + i, 8);
  } else {
    BIPIE_DCHECK(word_bytes == 4);
    auto* dst = static_cast<uint32_t*>(out);
    const __m256i pick_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    for (; i + 4 <= n; i += 4) {
      const __m256i v = GatherAt4(packed, indices + i, vw64, value_mask64);
      const __m256i narrowed = _mm256_permutevar8x32_epi32(v, pick_even);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm256_castsi256_si128(narrowed));
    }
    internal::GatherSelectScalar(packed, w, indices + i, n - i, dst + i, 4);
  }
}

}  // namespace

void GatherSelect(const uint8_t* packed, int bit_width,
                  const uint32_t* indices, size_t n, void* out,
                  int word_bytes) {
  BIPIE_DCHECK(word_bytes >= SmallestWordBytes(bit_width));
  if (n == 0) return;
  if (CurrentIsaTier() >= IsaTier::kAvx512 &&
      internal::GatherSelectAvx512(packed, bit_width, indices, n, out,
                                   word_bytes)) {
    return;
  }
  if (CurrentIsaTier() >= IsaTier::kAvx2) {
    if (bit_width <= 25) {
      // The 32-bit lane math covers the largest index actually used; fall
      // through to the 64-bit path for oversized streams.
      const uint64_t max_index = indices[n - 1];  // callers pass sorted ids
      if ((max_index + 8) * static_cast<uint64_t>(bit_width) <
          (1ULL << 31)) {
        GatherNarrowAvx2(packed, bit_width, indices, n, out, word_bytes);
        return;
      }
    }
    if (bit_width <= 57) {
      GatherWideAvx2(packed, bit_width, indices, n, out, word_bytes);
      return;
    }
  }
  internal::GatherSelectScalar(packed, bit_width, indices, n, out,
                               word_bytes);
}

}  // namespace bipie
