#include "vector/toolbox.h"

#include <cstdio>

#include "common/cpu.h"

namespace bipie {

const char* ToolboxIsaDescription() {
  static char buf[64];
  std::snprintf(buf, sizeof(buf), "%s (detected %s)",
                IsaTierName(CurrentIsaTier()), IsaTierName(DetectIsaTier()));
  return buf;
}

}  // namespace bipie
