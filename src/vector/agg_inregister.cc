#include "vector/agg_inregister.h"

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <utility>

#include "common/cpu.h"
#include "common/macros.h"
#include "vector/agg_scalar.h"

namespace bipie {

namespace {

// --- shared helpers --------------------------------------------------------

BIPIE_ALWAYS_INLINE uint64_t HorizontalSumU64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum2 = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum2, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum2, 1));
}

// Sums 8 non-negative i32 lanes into a u64.
BIPIE_ALWAYS_INLINE uint64_t HorizontalSumI32(__m256i v) {
  const __m256i lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v));
  const __m256i hi =
      _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1));
  return HorizontalSumU64(_mm256_add_epi64(lo, hi));
}

// Scalar tails shared by all variants.
void ScalarCountTail(const uint8_t* groups, size_t n, uint64_t* counts) {
  for (size_t i = 0; i < n; ++i) ++counts[groups[i]];
}

template <typename V>
void ScalarSumTail(const uint8_t* groups, const V* values, size_t n,
                   uint64_t* sums) {
  for (size_t i = 0; i < n; ++i) sums[groups[i]] += values[i];
}

// --- COUNT(*) --------------------------------------------------------------

// Lane accumulators are 8-bit negated counts; a lane gains at most 1 per
// vector, so flushing every 255 vectors is safe.
constexpr size_t kCountFlushVectors = 255;

template <int N>
void CountImpl(const uint8_t* groups, size_t n, uint64_t* counts) {
  const size_t vectors = n / 32;
  size_t v = 0;
  while (v < vectors) {
    const size_t chunk = std::min(vectors - v, kCountFlushVectors);
    __m256i acc[N];
    for (int g = 0; g < N; ++g) acc[g] = _mm256_setzero_si256();
    for (size_t k = 0; k < chunk; ++k, ++v) {
      const __m256i ids = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(groups + v * 32));
      for (int g = 0; g < N; ++g) {
        const __m256i mask =
            _mm256_cmpeq_epi8(ids, _mm256_set1_epi8(static_cast<char>(g)));
        acc[g] = _mm256_add_epi8(acc[g], mask);  // mask == -1 per match
      }
    }
    const __m256i zero = _mm256_setzero_si256();
    for (int g = 0; g < N; ++g) {
      const __m256i pos = _mm256_sub_epi8(zero, acc[g]);
      counts[g] += HorizontalSumU64(_mm256_sad_epu8(pos, zero));
    }
  }
  ScalarCountTail(groups + vectors * 32, n - vectors * 32, counts);
}

// --- SUM of 1-byte values ----------------------------------------------------

// Lane accumulators are 16-bit sums of byte pairs: each vector adds at most
// 2*255 = 510 per lane, so 64 vectors stay below the signed-16 limit.
constexpr size_t kSum8FlushVectors = 64;

template <int N>
void Sum8Impl(const uint8_t* groups, const uint8_t* values, size_t n,
              uint64_t* sums) {
  const __m256i ones8 = _mm256_set1_epi8(1);
  const __m256i ones16 = _mm256_set1_epi16(1);
  const size_t vectors = n / 32;
  size_t v = 0;
  while (v < vectors) {
    const size_t chunk = std::min(vectors - v, kSum8FlushVectors);
    __m256i acc[N];
    for (int g = 0; g < N; ++g) acc[g] = _mm256_setzero_si256();
    for (size_t k = 0; k < chunk; ++k, ++v) {
      const __m256i ids = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(groups + v * 32));
      const __m256i vals = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + v * 32));
      for (int g = 0; g < N; ++g) {
        const __m256i mask =
            _mm256_cmpeq_epi8(ids, _mm256_set1_epi8(static_cast<char>(g)));
        const __m256i masked = _mm256_and_si256(vals, mask);
        // maddubs: unsigned bytes * signed 1, horizontally added in pairs.
        acc[g] = _mm256_add_epi16(acc[g],
                                  _mm256_maddubs_epi16(masked, ones8));
      }
    }
    for (int g = 0; g < N; ++g) {
      const __m256i wide = _mm256_madd_epi16(acc[g], ones16);
      sums[g] += HorizontalSumI32(wide);
    }
  }
  ScalarSumTail(groups + vectors * 32, values + vectors * 32,
                n - vectors * 32, sums);
}

// --- SUM of 2-byte values ----------------------------------------------------

// Lane accumulators are 32-bit sums of 16-bit pairs (values < 2^15): each
// vector adds < 2^16 per lane; 2^14 vectors stay within signed-32 range.
constexpr size_t kSum16FlushVectors = size_t{1} << 14;

template <int N>
void Sum16Impl(const uint8_t* groups, const uint16_t* values, size_t n,
               uint64_t* sums) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  const size_t vectors = n / 16;
  size_t v = 0;
  while (v < vectors) {
    const size_t chunk = std::min(vectors - v, kSum16FlushVectors);
    __m256i acc[N];
    for (int g = 0; g < N; ++g) acc[g] = _mm256_setzero_si256();
    for (size_t k = 0; k < chunk; ++k, ++v) {
      const __m128i ids8 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(groups + v * 16));
      const __m256i ids = _mm256_cvtepu8_epi16(ids8);
      const __m256i vals = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + v * 16));
      for (int g = 0; g < N; ++g) {
        const __m256i mask =
            _mm256_cmpeq_epi16(ids, _mm256_set1_epi16(static_cast<short>(g)));
        const __m256i masked = _mm256_and_si256(vals, mask);
        acc[g] = _mm256_add_epi32(acc[g],
                                  _mm256_madd_epi16(masked, ones16));
      }
    }
    for (int g = 0; g < N; ++g) {
      sums[g] += HorizontalSumI32(acc[g]);
    }
  }
  ScalarSumTail(groups + vectors * 16, values + vectors * 16,
                n - vectors * 16, sums);
}

// --- SUM of 4-byte values ----------------------------------------------------

template <int N>
void Sum32Impl(const uint8_t* groups, const uint32_t* values, size_t n,
               size_t flush_vectors, uint64_t* sums) {
  const size_t vectors = n / 8;
  size_t v = 0;
  while (v < vectors) {
    const size_t chunk = std::min(vectors - v, flush_vectors);
    __m256i acc[N];
    for (int g = 0; g < N; ++g) acc[g] = _mm256_setzero_si256();
    for (size_t k = 0; k < chunk; ++k, ++v) {
      const __m128i ids8 = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(groups + v * 8));
      const __m256i ids = _mm256_cvtepu8_epi32(ids8);
      const __m256i vals = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + v * 8));
      for (int g = 0; g < N; ++g) {
        const __m256i mask =
            _mm256_cmpeq_epi32(ids, _mm256_set1_epi32(g));
        const __m256i masked = _mm256_and_si256(vals, mask);
        acc[g] = _mm256_add_epi32(acc[g], masked);
      }
    }
    for (int g = 0; g < N; ++g) {
      sums[g] += HorizontalSumI32(acc[g]);
    }
  }
  ScalarSumTail(groups + vectors * 8, values + vectors * 8, n - vectors * 8,
                sums);
}

// --- dispatch tables ---------------------------------------------------------

using CountFn = void (*)(const uint8_t*, size_t, uint64_t*);
using Sum8Fn = void (*)(const uint8_t*, const uint8_t*, size_t, uint64_t*);
using Sum16Fn = void (*)(const uint8_t*, const uint16_t*, size_t, uint64_t*);
using Sum32Fn = void (*)(const uint8_t*, const uint32_t*, size_t, size_t,
                         uint64_t*);

}  // namespace

void InRegisterCount(const uint8_t* groups, size_t n, int num_groups,
                     uint64_t* counts) {
  BIPIE_DCHECK(num_groups >= 1 && num_groups <= kMaxInRegisterGroups);
  if (CurrentIsaTier() < IsaTier::kAvx2) {
    ScalarCountMultiArray(groups, n, num_groups, counts);
    return;
  }
  if (CurrentIsaTier() >= IsaTier::kAvx512) {
    internal::InRegisterCountAvx512(groups, n, num_groups, counts);
    return;
  }
  static constexpr CountFn kTable[kMaxInRegisterGroups + 1] = {
      nullptr,       &CountImpl<1>,  &CountImpl<2>,  &CountImpl<3>,
      &CountImpl<4>, &CountImpl<5>,  &CountImpl<6>,  &CountImpl<7>,
      &CountImpl<8>, &CountImpl<9>,  &CountImpl<10>, &CountImpl<11>,
      &CountImpl<12>, &CountImpl<13>, &CountImpl<14>, &CountImpl<15>,
      &CountImpl<16>, &CountImpl<17>, &CountImpl<18>, &CountImpl<19>,
      &CountImpl<20>, &CountImpl<21>, &CountImpl<22>, &CountImpl<23>,
      &CountImpl<24>, &CountImpl<25>, &CountImpl<26>, &CountImpl<27>,
      &CountImpl<28>, &CountImpl<29>, &CountImpl<30>, &CountImpl<31>,
      &CountImpl<32>};
  kTable[num_groups](groups, n, counts);
}

void InRegisterSum8(const uint8_t* groups, const uint8_t* values, size_t n,
                    int num_groups, uint64_t* sums) {
  BIPIE_DCHECK(num_groups >= 1 && num_groups <= kMaxInRegisterGroups);
  if (CurrentIsaTier() < IsaTier::kAvx2) {
    for (size_t i = 0; i < n; ++i) sums[groups[i]] += values[i];
    return;
  }
  if (CurrentIsaTier() >= IsaTier::kAvx512) {
    internal::InRegisterSum8Avx512(groups, values, n, num_groups, sums);
    return;
  }
  static constexpr Sum8Fn kTable[kMaxInRegisterGroups + 1] = {
      nullptr,      &Sum8Impl<1>,  &Sum8Impl<2>,  &Sum8Impl<3>,
      &Sum8Impl<4>, &Sum8Impl<5>,  &Sum8Impl<6>,  &Sum8Impl<7>,
      &Sum8Impl<8>, &Sum8Impl<9>,  &Sum8Impl<10>, &Sum8Impl<11>,
      &Sum8Impl<12>, &Sum8Impl<13>, &Sum8Impl<14>, &Sum8Impl<15>,
      &Sum8Impl<16>, &Sum8Impl<17>, &Sum8Impl<18>, &Sum8Impl<19>,
      &Sum8Impl<20>, &Sum8Impl<21>, &Sum8Impl<22>, &Sum8Impl<23>,
      &Sum8Impl<24>, &Sum8Impl<25>, &Sum8Impl<26>, &Sum8Impl<27>,
      &Sum8Impl<28>, &Sum8Impl<29>, &Sum8Impl<30>, &Sum8Impl<31>,
      &Sum8Impl<32>};
  kTable[num_groups](groups, values, n, sums);
}

void InRegisterSum16(const uint8_t* groups, const uint16_t* values, size_t n,
                     int num_groups, uint64_t* sums) {
  BIPIE_DCHECK(num_groups >= 1 && num_groups <= kMaxInRegisterGroups);
  if (CurrentIsaTier() < IsaTier::kAvx2) {
    for (size_t i = 0; i < n; ++i) sums[groups[i]] += values[i];
    return;
  }
  if (CurrentIsaTier() >= IsaTier::kAvx512) {
    internal::InRegisterSum16Avx512(groups, values, n, num_groups, sums);
    return;
  }
  static constexpr Sum16Fn kTable[kMaxInRegisterGroups + 1] = {
      nullptr,       &Sum16Impl<1>,  &Sum16Impl<2>,  &Sum16Impl<3>,
      &Sum16Impl<4>, &Sum16Impl<5>,  &Sum16Impl<6>,  &Sum16Impl<7>,
      &Sum16Impl<8>, &Sum16Impl<9>,  &Sum16Impl<10>, &Sum16Impl<11>,
      &Sum16Impl<12>, &Sum16Impl<13>, &Sum16Impl<14>, &Sum16Impl<15>,
      &Sum16Impl<16>, &Sum16Impl<17>, &Sum16Impl<18>, &Sum16Impl<19>,
      &Sum16Impl<20>, &Sum16Impl<21>, &Sum16Impl<22>, &Sum16Impl<23>,
      &Sum16Impl<24>, &Sum16Impl<25>, &Sum16Impl<26>, &Sum16Impl<27>,
      &Sum16Impl<28>, &Sum16Impl<29>, &Sum16Impl<30>, &Sum16Impl<31>,
      &Sum16Impl<32>};
  kTable[num_groups](groups, values, n, sums);
}

void InRegisterSum32(const uint8_t* groups, const uint32_t* values, size_t n,
                     int num_groups, uint64_t max_value, uint64_t* sums) {
  BIPIE_DCHECK(num_groups >= 1 && num_groups <= kMaxInRegisterGroups);
  if (CurrentIsaTier() < IsaTier::kAvx2) {
    for (size_t i = 0; i < n; ++i) sums[groups[i]] += values[i];
    return;
  }
  if (CurrentIsaTier() >= IsaTier::kAvx512) {
    internal::InRegisterSum32Avx512(groups, values, n, num_groups, max_value,
                                    sums);
    return;
  }
  // A 32-bit lane tolerates floor((2^32 - 1) / max_value) additions before
  // it could wrap.
  size_t flush_vectors =
      max_value == 0 ? (size_t{1} << 30)
                     : static_cast<size_t>(0xFFFFFFFFULL / max_value);
  if (flush_vectors == 0) flush_vectors = 1;
  static constexpr Sum32Fn kTable[kMaxInRegisterGroups + 1] = {
      nullptr,       &Sum32Impl<1>,  &Sum32Impl<2>,  &Sum32Impl<3>,
      &Sum32Impl<4>, &Sum32Impl<5>,  &Sum32Impl<6>,  &Sum32Impl<7>,
      &Sum32Impl<8>, &Sum32Impl<9>,  &Sum32Impl<10>, &Sum32Impl<11>,
      &Sum32Impl<12>, &Sum32Impl<13>, &Sum32Impl<14>, &Sum32Impl<15>,
      &Sum32Impl<16>, &Sum32Impl<17>, &Sum32Impl<18>, &Sum32Impl<19>,
      &Sum32Impl<20>, &Sum32Impl<21>, &Sum32Impl<22>, &Sum32Impl<23>,
      &Sum32Impl<24>, &Sum32Impl<25>, &Sum32Impl<26>, &Sum32Impl<27>,
      &Sum32Impl<28>, &Sum32Impl<29>, &Sum32Impl<30>, &Sum32Impl<31>,
      &Sum32Impl<32>};
  kTable[num_groups](groups, values, n, flush_vectors, sums);
}

InRegisterInstructionCounts GetInRegisterInstructionCounts() {
  // Inner-loop SIMD instructions issued per group, normalized to 32 input
  // values (Table 3's unit):
  //  COUNT: cmpeq + add            = 2 per 32-value vector.
  //  SUM8:  cmpeq + and + maddubs + add = 4 per 32-value vector.
  //  SUM16: (cmpeq + and + madd + add) per 16 values = 8 per 32.
  //  SUM32: (cmpeq + and + add) per 8 values = 12 per 32.
  return InRegisterInstructionCounts{2.0, 4.0, 8.0, 12.0};
}

}  // namespace bipie
