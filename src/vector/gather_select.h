// Gather selection (§4.2).
//
// Given a selection index vector and a bit-packed column, fetches and
// unpacks *only the selected* values: for each index the SIMD gather
// instruction loads the word containing the packed value, which is then
// shifted and masked into place. In contrast, physical compaction requires
// the entire column to be unpacked first — gather selection wins at low
// selectivity for exactly that reason.
#ifndef BIPIE_VECTOR_GATHER_SELECT_H_
#define BIPIE_VECTOR_GATHER_SELECT_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

// Unpacks packed values at the given row ids into `out`, one element of
// `word_bytes` (1/2/4/8, >= smallest word for bit_width) per index.
// `indices` must be ascending (the compacting operator emits them that way).
// `packed` must carry AlignedBuffer padding. Output needs 32 bytes of slack
// past the last element.
void GatherSelect(const uint8_t* packed, int bit_width,
                  const uint32_t* indices, size_t n, void* out,
                  int word_bytes);

namespace internal {
void GatherSelectScalar(const uint8_t* packed, int bit_width,
                        const uint32_t* indices, size_t n, void* out,
                        int word_bytes);
// AVX-512 tier (16-lane gathers), defined in gather_select_avx512.cc.
// Handles bit_width <= 25 with in-range offsets; returns false when the
// caller should use another tier.
bool GatherSelectAvx512(const uint8_t* packed, int bit_width,
                        const uint32_t* indices, size_t n, void* out,
                        int word_bytes);
}  // namespace internal

}  // namespace bipie

#endif  // BIPIE_VECTOR_GATHER_SELECT_H_
