// Selection vector representations (§4).
//
// A *selection byte vector* has one byte per row: 0x00 marks a rejected row,
// 0xFF a selected one — exactly the layout AVX2 byte comparisons produce, so
// filter evaluation writes it for free. A *selection index vector* lists the
// ordinal positions of qualifying rows as uint32.
#ifndef BIPIE_VECTOR_SELECTION_VECTOR_H_
#define BIPIE_VECTOR_SELECTION_VECTOR_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

inline constexpr uint8_t kRowSelected = 0xFF;
inline constexpr uint8_t kRowRejected = 0x00;

// Number of selected rows in a byte vector. SIMD on the AVX2 tier.
size_t CountSelected(const uint8_t* sel, size_t n);

// dst[i] = a[i] & b[i] — merges two byte vectors, e.g. a filter result with
// the segment's deleted-row liveness mask (§4: "we write a zero in the
// selection byte vector position for each deleted record").
void AndSelection(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* dst);

}  // namespace bipie

#endif  // BIPIE_VECTOR_SELECTION_VECTOR_H_
