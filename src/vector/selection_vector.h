// Selection vector representations (§4).
//
// A *selection byte vector* has one byte per row. The canonical encoding is
//   0x00  — rejected row
//   0xFF  — selected row
// and no other value is legal. This is exactly the layout AVX2/AVX-512 byte
// comparisons produce, so filter evaluation writes it for free — and it is
// the only encoding on which every kernel tier agrees:
//
//   * the scalar tails test the sign bit (`sel[i] >> 7`),
//   * the AVX2 kernels read the sign bit via VPMOVMSKB,
//   * the AVX2 PEXT kernels consume the *full* byte as an 8-bit lane mask,
//   * the AVX-512 kernels derive lane masks with VPTESTMB (byte != 0).
//
// A byte like 0x01 would be "selected" to VPTESTMB but "rejected" to
// VPMOVMSKB; 0x80 would satisfy VPMOVMSKB but corrupt a PEXT compaction.
// Every producer (predicate evaluation, the deleted-row liveness mask,
// AndSelection merges) must therefore emit full 0x00/0xFF bytes; builds with
// BIPIE_VALIDATE_SELECTION defined verify this at every kernel boundary.
//
// A *selection index vector* lists the ordinal positions of qualifying rows
// as uint32.
#ifndef BIPIE_VECTOR_SELECTION_VECTOR_H_
#define BIPIE_VECTOR_SELECTION_VECTOR_H_

#include <cstddef>
#include <cstdint>

#include "common/macros.h"

namespace bipie {

inline constexpr uint8_t kRowSelected = 0xFF;
inline constexpr uint8_t kRowRejected = 0x00;

// 1 when the selection byte marks a selected row, else 0. Scalar kernels
// must use this instead of ad-hoc bit tests so they share the sign-bit
// semantics of the SIMD movemask tiers for any (even non-canonical) input.
BIPIE_ALWAYS_INLINE uint8_t SelectionByteIsSet(uint8_t b) { return b >> 7; }

// True when every byte of `sel` is canonical (0x00 or 0xFF). O(n); meant
// for validation, not hot paths.
bool SelectionBytesAreCanonical(const uint8_t* sel, size_t n);

// Aborts (via BIPIE_DCHECK) when a selection byte vector violates the
// canonical 0x00/0xFF convention. Compiled in only when
// BIPIE_VALIDATE_SELECTION is defined (debug and sanitizer presets); the
// release hot path pays nothing.
#ifdef BIPIE_VALIDATE_SELECTION
#define BIPIE_DCHECK_SEL_CANONICAL(sel, n)                                \
  do {                                                                    \
    if ((sel) != nullptr) {                                               \
      BIPIE_DCHECK(::bipie::SelectionBytesAreCanonical((sel), (n)));      \
    }                                                                     \
  } while (0)
#else
#define BIPIE_DCHECK_SEL_CANONICAL(sel, n) \
  do {                                     \
  } while (0)
#endif

// Number of selected rows in a byte vector. SIMD on the AVX2 tier.
size_t CountSelected(const uint8_t* sel, size_t n);

// dst[i] = a[i] & b[i] — merges two byte vectors, e.g. a filter result with
// the segment's deleted-row liveness mask (§4: "we write a zero in the
// selection byte vector position for each deleted record"). Canonical inputs
// yield canonical output.
void AndSelection(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* dst);

}  // namespace bipie

#endif  // BIPIE_VECTOR_SELECTION_VECTOR_H_
