// The compacting operator (§4.1).
//
// Takes a selection byte vector plus an input and removes unselected
// positions without conditional branches on the filter result. Two modes:
//
//  * index vector mode   — emits the ordinal positions of selected rows;
//  * physical compaction — emits the selected values of an unpacked input
//                          vector (element sizes must be powers of two).
//
// Both modes write full SIMD registers and advance the output cursor by the
// selected count, so output buffers must tolerate writes up to 32 bytes past
// the returned count (AlignedBuffer's padding satisfies this).
#ifndef BIPIE_VECTOR_COMPACT_H_
#define BIPIE_VECTOR_COMPACT_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

// Index vector mode: writes the positions (0-based, as uint32) of selected
// rows to `out`; returns how many were selected.
size_t CompactToIndexVector(const uint8_t* sel, size_t n, uint32_t* out);

// As above but offsets every emitted position by `base` (used when chaining
// batch-local selection into segment-absolute row ids).
size_t CompactToIndexVector(const uint8_t* sel, size_t n, uint32_t base,
                            uint32_t* out);

// Physical compaction mode: copies values[i] for every selected i to `out`.
// elem_bytes must be 1, 2, 4 or 8 and `values` must be an unpacked array of
// that element width. Returns the selected count.
size_t CompactValues(const uint8_t* sel, const void* values, size_t n,
                     int elem_bytes, void* out);

namespace internal {
// Scalar reference implementations (used on the scalar tier and by tests).
size_t CompactToIndexVectorScalar(const uint8_t* sel, size_t n, uint32_t base,
                                  uint32_t* out);
size_t CompactValuesScalar(const uint8_t* sel, const void* values, size_t n,
                           int elem_bytes, void* out);

// AVX-512 tier (compress-store based), defined in compact_avx512.cc.
size_t CompactToIndexVectorAvx512(const uint8_t* sel, size_t n,
                                  uint32_t base, uint32_t* out);
size_t CompactValues4Avx512(const uint8_t* sel, const uint32_t* values,
                            size_t n, uint32_t* out);
size_t CompactValues8Avx512(const uint8_t* sel, const uint64_t* values,
                            size_t n, uint64_t* out);
}  // namespace internal

}  // namespace bipie

#endif  // BIPIE_VECTOR_COMPACT_H_
