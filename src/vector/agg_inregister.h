// In-Register aggregation (§5.3).
//
// Intermediate results are kept entirely in SIMD registers: one accumulator
// register per group holds that group's "virtual array", with lane i of
// every register dedicated to the i-th row of the current input vector. Per
// input vector, each group executes compare(group_ids, g) → mask, then a
// masked add — so cost grows linearly with the group count, and the method
// is limited to few groups (<= 32 on AVX2-era hardware).
//
// COUNT exploits the mask-is-minus-one trick: adding the 0xFF comparison
// mask is adding -1, so lanes hold negated counts until the flush.
//
// Kernels accumulate into caller-zeroed uint64 outputs. Group ids are one
// byte each and must be < num_groups. Value-width variants require values
// strictly below the documented bound so lane arithmetic cannot overflow
// between flushes; the Aggregate Processor guarantees this from segment
// metadata.
#ifndef BIPIE_VECTOR_AGG_INREGISTER_H_
#define BIPIE_VECTOR_AGG_INREGISTER_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

inline constexpr int kMaxInRegisterGroups = 32;

// counts[g] += per-group row counts.
void InRegisterCount(const uint8_t* groups, size_t n, int num_groups,
                     uint64_t* counts);

// 1-byte values (any value 0..255).
void InRegisterSum8(const uint8_t* groups, const uint8_t* values, size_t n,
                    int num_groups, uint64_t* sums);

// 2-byte values; every value must be < 2^15 (the 16-bit multiply-add path
// is signed). Wider values go through InRegisterSum32.
void InRegisterSum16(const uint8_t* groups, const uint16_t* values, size_t n,
                     int num_groups, uint64_t* sums);

// 4-byte values with 32-bit lane accumulators flushed based on
// `max_value` (an inclusive upper bound on any input value, from segment
// metadata). Any max_value up to 2^32 - 1 is handled; tighter bounds mean
// rarer flushes.
void InRegisterSum32(const uint8_t* groups, const uint32_t* values, size_t n,
                     int num_groups, uint64_t max_value, uint64_t* sums);

namespace internal {
// AVX-512 tier: mask-register compares and SAD-based byte sums; defined in
// agg_inregister_avx512.cc.
void InRegisterCountAvx512(const uint8_t* groups, size_t n, int num_groups,
                           uint64_t* counts);
void InRegisterSum8Avx512(const uint8_t* groups, const uint8_t* values,
                          size_t n, int num_groups, uint64_t* sums);
void InRegisterSum16Avx512(const uint8_t* groups, const uint16_t* values,
                           size_t n, int num_groups, uint64_t* sums);
void InRegisterSum32Avx512(const uint8_t* groups, const uint32_t* values,
                           size_t n, int num_groups, uint64_t max_value,
                           uint64_t* sums);
}  // namespace internal

// Documented instruction counts per group per 32 input values for Table 3
// of the paper (what our implementation's inner loop issues).
struct InRegisterInstructionCounts {
  double count_star;
  double sum8;
  double sum16;
  double sum32;
};
InRegisterInstructionCounts GetInRegisterInstructionCounts();

}  // namespace bipie

#endif  // BIPIE_VECTOR_AGG_INREGISTER_H_
