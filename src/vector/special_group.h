// Selection by Special Group Assignment (§4.3).
//
// Instead of removing filtered-out rows, assign them a dedicated, otherwise
// unused group id and let the aggregation strategy process every row; the
// special group's results are discarded when the output is produced. This
// keeps the scan perfectly sequential — no index-driven fetches — which is
// why it wins at high selectivity.
#ifndef BIPIE_VECTOR_SPECIAL_GROUP_H_
#define BIPIE_VECTOR_SPECIAL_GROUP_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

// out[i] = sel[i] ? group_ids[i] : special_group. `out` may alias
// `group_ids` for in-place operation. Group ids and the special id are
// single bytes (group count <= 255 after adding the special group).
void ApplySpecialGroup(const uint8_t* group_ids, const uint8_t* sel,
                       size_t n, uint8_t special_group, uint8_t* out);

namespace internal {
void ApplySpecialGroupScalar(const uint8_t* group_ids, const uint8_t* sel,
                             size_t n, uint8_t special_group, uint8_t* out);
// AVX-512 tier (64-byte mask blend), defined in special_group_avx512.cc.
void ApplySpecialGroupAvx512(const uint8_t* group_ids, const uint8_t* sel,
                             size_t n, uint8_t special_group, uint8_t* out);
}  // namespace internal

}  // namespace bipie

#endif  // BIPIE_VECTOR_SPECIAL_GROUP_H_
