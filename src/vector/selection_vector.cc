#include "vector/selection_vector.h"

#include <immintrin.h>

#include <bit>

#include "common/cpu.h"
#include "common/macros.h"

namespace bipie {

bool SelectionBytesAreCanonical(const uint8_t* sel, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (sel[i] != kRowSelected && sel[i] != kRowRejected) return false;
  }
  return true;
}

size_t CountSelected(const uint8_t* sel, size_t n) {
  BIPIE_DCHECK_SEL_CANONICAL(sel, n);
  size_t count = 0;
  size_t i = 0;
  if (CurrentIsaTier() >= IsaTier::kAvx2) {
    for (; i + 32 <= n; i += 32) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(sel + i));
      count += std::popcount(
          static_cast<uint32_t>(_mm256_movemask_epi8(v)));
    }
  }
  for (; i < n; ++i) count += SelectionByteIsSet(sel[i]);
  return count;
}

void AndSelection(const uint8_t* a, const uint8_t* b, size_t n,
                  uint8_t* dst) {
  size_t i = 0;
  if (CurrentIsaTier() >= IsaTier::kAvx2) {
    for (; i + 32 <= n; i += 32) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_and_si256(va, vb));
    }
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

}  // namespace bipie
