#include "vector/agg_sort.h"

#include <cstring>

#include "common/bits.h"
#include "common/cpu.h"
#include "common/macros.h"
#include "encoding/bitpack.h"
#include "vector/simd_util.h"

namespace bipie {

namespace {

constexpr int kMaxSortGroups = 256;

}  // namespace

void SortedBatch::Sort(const uint8_t* groups, const uint32_t* row_ids,
                       size_t n, int num_groups) {
  BIPIE_DCHECK(num_groups >= 1 && num_groups <= kMaxSortGroups);
  num_groups_ = num_groups;
  indices_.Resize(n * sizeof(uint32_t));
  offsets_.assign(static_cast<size_t>(num_groups) + 1, 0);

  // Counting pass with separate even/odd-row counters to avoid back-to-back
  // increments of the same address (§5.2).
  uint32_t cnt[2][kMaxSortGroups];
  std::memset(cnt, 0, sizeof(cnt));
  if (row_ids == nullptr) {
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      ++cnt[0][groups[i]];
      ++cnt[1][groups[i + 1]];
    }
    if (i < n) ++cnt[0][groups[i]];
  } else {
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      ++cnt[0][groups[row_ids[i]]];
      ++cnt[1][groups[row_ids[i + 1]]];
    }
    if (i < n) ++cnt[0][groups[row_ids[i]]];
  }

  // Region layout: group g owns [offsets_[g], offsets_[g+1]); within it the
  // even-row indices come first, then the odd-row indices.
  uint32_t running = 0;
  for (int g = 0; g < num_groups; ++g) {
    offsets_[g] = running;
    running += cnt[0][g] + cnt[1][g];
  }
  offsets_[num_groups] = running;
  BIPIE_DCHECK(running == n);

  uint32_t pos[2][kMaxSortGroups];
  for (int g = 0; g < num_groups; ++g) {
    pos[0][g] = offsets_[g];
    pos[1][g] = offsets_[g] + cnt[0][g];
  }

  auto* out = indices_.data_as<uint32_t>();
  if (row_ids == nullptr) {
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      out[pos[0][groups[i]]++] = static_cast<uint32_t>(i);
      out[pos[1][groups[i + 1]]++] = static_cast<uint32_t>(i + 1);
    }
    if (i < n) out[pos[0][groups[i]]++] = static_cast<uint32_t>(i);
  } else {
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      out[pos[0][groups[row_ids[i]]]++] = row_ids[i];
      out[pos[1][groups[row_ids[i + 1]]]++] = row_ids[i + 1];
    }
    if (i < n) out[pos[0][groups[row_ids[i]]]++] = row_ids[i];
  }
}

void SortedGatherSum(const uint8_t* packed, int bit_width,
                     const SortedBatch& batch, uint64_t* sums) {
  const uint32_t* idx = batch.indices();
  const bool use_avx2 = CurrentIsaTier() >= IsaTier::kAvx2;
  for (int g = 0; g < batch.num_groups(); ++g) {
    const uint32_t begin = batch.offset(g);
    const uint32_t end = batch.offset(g + 1);
    uint64_t sum = 0;
    uint32_t i = begin;
    if (use_avx2 && bit_width <= 25) {
      const __m256i vw = _mm256_set1_epi32(bit_width);
      const __m256i value_mask =
          _mm256_set1_epi32(static_cast<int>(LowBitsMask(bit_width)));
      __m256i acc = _mm256_setzero_si256();
      // u32 lanes are flushed before they could wrap: each add is
      // < 2^bit_width <= 2^25, so ~2^7 adds are always safe and larger
      // widths allow fewer adds per flush.
      const uint32_t flush = 0xFFFFFFFFu >> bit_width;
      uint32_t since_flush = 0;
      for (; i + 8 <= end; i += 8) {
        const __m256i v =
            simd::GatherPacked8(packed, idx + i, vw, value_mask);
        acc = _mm256_add_epi32(acc, v);
        if (++since_flush >= flush) {
          sum += simd::HorizontalSumU32(acc);
          acc = _mm256_setzero_si256();
          since_flush = 0;
        }
      }
      sum += simd::HorizontalSumU32(acc);
    } else if (use_avx2 && bit_width <= 57) {
      const __m256i vw64 = _mm256_set1_epi64x(bit_width);
      const __m256i value_mask64 =
          _mm256_set1_epi64x(static_cast<long long>(LowBitsMask(bit_width)));
      __m256i acc = _mm256_setzero_si256();
      for (; i + 4 <= end; i += 4) {
        const __m256i v =
            simd::GatherPacked4(packed, idx + i, vw64, value_mask64);
        acc = _mm256_add_epi64(acc, v);
      }
      sum += simd::HorizontalSumU64(acc);
    }
    for (; i < end; ++i) {
      sum += BitUnpackOne(packed, idx[i], bit_width);
    }
    sums[g] += sum;
  }
}

void SortedSumDecoded(const int64_t* values, const SortedBatch& batch,
                      int64_t* sums) {
  const uint32_t* idx = batch.indices();
  for (int g = 0; g < batch.num_groups(); ++g) {
    const uint32_t begin = batch.offset(g);
    const uint32_t end = batch.offset(g + 1);
    int64_t sum = 0;
    uint32_t i = begin;
    if (CurrentIsaTier() >= IsaTier::kAvx2) {
      __m256i acc = _mm256_setzero_si256();
      for (; i + 4 <= end; i += 4) {
        const __m128i idx32 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
        const __m256i v = _mm256_i32gather_epi64(
            reinterpret_cast<const long long*>(values), idx32, 8);
        acc = _mm256_add_epi64(acc, v);
      }
      sum += static_cast<int64_t>(simd::HorizontalSumU64(acc));
    }
    for (; i < end; ++i) {
      sum += values[idx[i]];
    }
    sums[g] += sum;
  }
}

}  // namespace bipie
