#include "vector/run_agg.h"

#include <immintrin.h>

#include <algorithm>

#include "common/cpu.h"
#include "common/macros.h"
#include "encoding/bitpack.h"

namespace bipie {

namespace internal {

uint64_t HorizontalSumWordsScalar(const void* values, size_t n,
                                  int word_bytes) {
  uint64_t total = 0;
  switch (word_bytes) {
    case 1: {
      const auto* v = static_cast<const uint8_t*>(values);
      for (size_t i = 0; i < n; ++i) total += v[i];
      return total;
    }
    case 2: {
      const auto* v = static_cast<const uint16_t*>(values);
      for (size_t i = 0; i < n; ++i) total += v[i];
      return total;
    }
    case 4: {
      const auto* v = static_cast<const uint32_t*>(values);
      for (size_t i = 0; i < n; ++i) total += v[i];
      return total;
    }
    case 8: {
      const auto* v = static_cast<const uint64_t*>(values);
      for (size_t i = 0; i < n; ++i) total += v[i];
      return total;
    }
    default:
      BIPIE_DCHECK(false);
      return 0;
  }
}

uint64_t SumBitPackedRangeScalar(const uint8_t* packed, size_t start,
                                 size_t n, int bit_width) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += BitUnpackOne(packed, start + i, bit_width);
  }
  return total;
}

}  // namespace internal

namespace {

BIPIE_ALWAYS_INLINE uint64_t HSum64(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

uint64_t SumU8Avx2(const uint8_t* v, size_t n) {
  // SAD against zero folds 32 bytes into 4 u64 lanes per instruction; the
  // u64 accumulator cannot overflow before ~2^56 input bytes.
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(x, zero));
  }
  uint64_t total = HSum64(acc);
  for (; i < n; ++i) total += v[i];
  return total;
}

uint64_t SumU16Avx2(const uint16_t* v, size_t n) {
  // Each 256-bit vector is summed as 8 u32 lanes (low half + high half of
  // each dword), adding at most 2 * 0xFFFF per lane per iteration; flushing
  // the u32 accumulator to u64 lanes every kBlockIters keeps it exact.
  constexpr size_t kBlockIters = 32000;  // < 0xFFFFFFFF / (2 * 0xFFFF)
  const __m256i lo_mask = _mm256_set1_epi32(0xFFFF);
  __m256i acc64 = _mm256_setzero_si256();
  size_t i = 0;
  while (i + 16 <= n) {
    __m256i acc32 = _mm256_setzero_si256();
    const size_t block_end = std::min(n, i + 16 * kBlockIters);
    for (; i + 16 <= block_end; i += 16) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
      acc32 = _mm256_add_epi32(
          acc32, _mm256_add_epi32(_mm256_and_si256(x, lo_mask),
                                  _mm256_srli_epi32(x, 16)));
    }
    acc64 = _mm256_add_epi64(
        acc64, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(acc32)));
    acc64 = _mm256_add_epi64(
        acc64, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(acc32, 1)));
  }
  uint64_t total = HSum64(acc64);
  for (; i < n; ++i) total += v[i];
  return total;
}

uint64_t SumU32Avx2(const uint32_t* v, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    acc = _mm256_add_epi64(acc,
                           _mm256_cvtepu32_epi64(_mm256_castsi256_si128(x)));
    acc = _mm256_add_epi64(
        acc, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(x, 1)));
  }
  uint64_t total = HSum64(acc);
  for (; i < n; ++i) total += v[i];
  return total;
}

uint64_t SumU64Avx2(const uint64_t* v, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  uint64_t total = HSum64(acc);
  for (; i < n; ++i) total += v[i];
  return total;
}

}  // namespace

uint64_t HorizontalSumWords(const void* values, size_t n, int word_bytes) {
  if (n == 0) return 0;
  if (CurrentIsaTier() >= IsaTier::kAvx2) {
    switch (word_bytes) {
      case 1:
        return SumU8Avx2(static_cast<const uint8_t*>(values), n);
      case 2:
        return SumU16Avx2(static_cast<const uint16_t*>(values), n);
      case 4:
        return SumU32Avx2(static_cast<const uint32_t*>(values), n);
      case 8:
        return SumU64Avx2(static_cast<const uint64_t*>(values), n);
      default:
        break;
    }
  }
  return internal::HorizontalSumWordsScalar(values, n, word_bytes);
}

uint64_t SumBitPackedRange(const uint8_t* packed, size_t start, size_t n,
                           int bit_width) {
  if (n == 0) return 0;
  if (bit_width <= 25 && CurrentIsaTier() >= IsaTier::kAvx512 &&
      internal::SumBitPackedAvx512Available()) {
    return internal::SumBitPackedAvx512(packed, start, n, bit_width);
  }
  // Unpack in L1-resident chunks at the smallest word width and reduce each
  // chunk; both halves dispatch to their own best tier internally. The
  // extra 64 trailing bytes absorb any vector-lane store rounding.
  const int word = SmallestWordBytes(bit_width);
  constexpr size_t kChunkBytes = size_t{16} << 10;
  alignas(64) uint8_t buf[kChunkBytes + 64];
  const size_t chunk = kChunkBytes / static_cast<size_t>(word);
  uint64_t total = 0;
  for (size_t pos = 0; pos < n;) {
    const size_t m = std::min(chunk, n - pos);
    BitUnpackToWord(packed, start + pos, m, bit_width, buf, word);
    total += HorizontalSumWords(buf, m, word);
    pos += m;
  }
  return total;
}

}  // namespace bipie
