#include "vector/agg_minmax.h"

#include <immintrin.h>

#include <algorithm>

#include "common/cpu.h"
#include "common/macros.h"

namespace bipie {

namespace internal {

namespace {

template <typename T, bool kIsMin>
void ScalarImpl(const uint8_t* groups, const T* values, size_t n,
                uint64_t* extrema) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = values[i];
    uint64_t& e = extrema[groups[i]];
    if (kIsMin ? v < e : v > e) e = v;
  }
}

template <bool kIsMin>
void ScalarDispatch(const uint8_t* groups, const void* values,
                    int word_bytes, size_t n, uint64_t* extrema) {
  switch (word_bytes) {
    case 1:
      ScalarImpl<uint8_t, kIsMin>(groups, static_cast<const uint8_t*>(values),
                                  n, extrema);
      return;
    case 2:
      ScalarImpl<uint16_t, kIsMin>(
          groups, static_cast<const uint16_t*>(values), n, extrema);
      return;
    case 4:
      ScalarImpl<uint32_t, kIsMin>(
          groups, static_cast<const uint32_t*>(values), n, extrema);
      return;
    default:
      BIPIE_DCHECK(false);
  }
}

}  // namespace

void GroupedMinUScalar(const uint8_t* groups, const void* values,
                       int word_bytes, size_t n, uint64_t* extrema) {
  ScalarDispatch<true>(groups, values, word_bytes, n, extrema);
}

void GroupedMaxUScalar(const uint8_t* groups, const void* values,
                       int word_bytes, size_t n, uint64_t* extrema) {
  ScalarDispatch<false>(groups, values, word_bytes, n, extrema);
}

}  // namespace internal

namespace {

constexpr int kMaxSimdMinMaxGroups = 32;

// In-register grouped min/max over unsigned bytes: one extremum register
// per group; candidates from other groups are replaced by the neutral
// element via the compare mask before the lane-wise min/max.
template <bool kIsMin>
void MinMaxU8Avx2(const uint8_t* groups, const uint8_t* values, size_t n,
                  int num_groups, uint64_t* extrema) {
  const __m256i neutral =
      kIsMin ? _mm256_set1_epi8(static_cast<char>(0xFF))
             : _mm256_setzero_si256();
  __m256i acc[kMaxSimdMinMaxGroups];
  for (int g = 0; g < num_groups; ++g) acc[g] = neutral;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i ids =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(groups + i));
    const __m256i vals =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    for (int g = 0; g < num_groups; ++g) {
      const __m256i mask =
          _mm256_cmpeq_epi8(ids, _mm256_set1_epi8(static_cast<char>(g)));
      const __m256i candidate = _mm256_blendv_epi8(neutral, vals, mask);
      acc[g] = kIsMin ? _mm256_min_epu8(acc[g], candidate)
                      : _mm256_max_epu8(acc[g], candidate);
    }
  }
  for (int g = 0; g < num_groups; ++g) {
    alignas(32) uint8_t lanes[32];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[g]);
    uint64_t e = extrema[g];
    for (uint8_t lane : lanes) {
      if (kIsMin ? lane < e : lane > e) e = lane;
    }
    extrema[g] = e;
  }
  internal::ScalarDispatch<kIsMin>(groups + i, values + i, 1, n - i,
                                   extrema);
}

template <bool kIsMin>
void MinMaxU16Avx2(const uint8_t* groups, const uint16_t* values, size_t n,
                   int num_groups, uint64_t* extrema) {
  const __m256i neutral = kIsMin
                              ? _mm256_set1_epi16(static_cast<short>(0xFFFF))
                              : _mm256_setzero_si256();
  __m256i acc[kMaxSimdMinMaxGroups];
  for (int g = 0; g < num_groups; ++g) acc[g] = neutral;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i ids = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(groups + i)));
    const __m256i vals =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    for (int g = 0; g < num_groups; ++g) {
      const __m256i mask = _mm256_cmpeq_epi16(
          ids, _mm256_set1_epi16(static_cast<short>(g)));
      const __m256i candidate = _mm256_blendv_epi8(neutral, vals, mask);
      acc[g] = kIsMin ? _mm256_min_epu16(acc[g], candidate)
                      : _mm256_max_epu16(acc[g], candidate);
    }
  }
  for (int g = 0; g < num_groups; ++g) {
    alignas(32) uint16_t lanes[16];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[g]);
    uint64_t e = extrema[g];
    for (uint16_t lane : lanes) {
      if (kIsMin ? lane < e : lane > e) e = lane;
    }
    extrema[g] = e;
  }
  internal::ScalarDispatch<kIsMin>(groups + i, values + i, 2, n - i,
                                   extrema);
}

template <bool kIsMin>
void MinMaxU32Avx2(const uint8_t* groups, const uint32_t* values, size_t n,
                   int num_groups, uint64_t* extrema) {
  const __m256i neutral =
      kIsMin ? _mm256_set1_epi32(-1) : _mm256_setzero_si256();
  __m256i acc[kMaxSimdMinMaxGroups];
  for (int g = 0; g < num_groups; ++g) acc[g] = neutral;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i ids = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(groups + i)));
    const __m256i vals =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    for (int g = 0; g < num_groups; ++g) {
      const __m256i mask = _mm256_cmpeq_epi32(ids, _mm256_set1_epi32(g));
      const __m256i candidate = _mm256_blendv_epi8(neutral, vals, mask);
      acc[g] = kIsMin ? _mm256_min_epu32(acc[g], candidate)
                      : _mm256_max_epu32(acc[g], candidate);
    }
  }
  for (int g = 0; g < num_groups; ++g) {
    alignas(32) uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[g]);
    uint64_t e = extrema[g];
    for (uint32_t lane : lanes) {
      if (kIsMin ? lane < e : lane > e) e = lane;
    }
    extrema[g] = e;
  }
  internal::ScalarDispatch<kIsMin>(groups + i, values + i, 4, n - i,
                                   extrema);
}

template <bool kIsMin>
void Dispatch(const uint8_t* groups, const void* values, int word_bytes,
              size_t n, int num_groups, uint64_t* extrema) {
  if (CurrentIsaTier() >= IsaTier::kAvx2 &&
      num_groups <= kMaxSimdMinMaxGroups) {
    switch (word_bytes) {
      case 1:
        MinMaxU8Avx2<kIsMin>(groups, static_cast<const uint8_t*>(values), n,
                             num_groups, extrema);
        return;
      case 2:
        MinMaxU16Avx2<kIsMin>(groups, static_cast<const uint16_t*>(values),
                              n, num_groups, extrema);
        return;
      case 4:
        MinMaxU32Avx2<kIsMin>(groups, static_cast<const uint32_t*>(values),
                              n, num_groups, extrema);
        return;
      default:
        break;
    }
  }
  internal::ScalarDispatch<kIsMin>(groups, values, word_bytes, n, extrema);
}

}  // namespace

void GroupedMinU(const uint8_t* groups, const void* values, int word_bytes,
                 size_t n, int num_groups, uint64_t* extrema) {
  BIPIE_DCHECK(num_groups >= 1 && num_groups <= 256);
  Dispatch<true>(groups, values, word_bytes, n, num_groups, extrema);
}

void GroupedMaxU(const uint8_t* groups, const void* values, int word_bytes,
                 size_t n, int num_groups, uint64_t* extrema) {
  BIPIE_DCHECK(num_groups >= 1 && num_groups <= 256);
  Dispatch<false>(groups, values, word_bytes, n, num_groups, extrema);
}

void GroupedMinI64(const uint8_t* groups, const int64_t* values, size_t n,
                   int num_groups, int64_t* extrema) {
  BIPIE_DCHECK(num_groups >= 1 && num_groups <= 256);
  for (size_t i = 0; i < n; ++i) {
    extrema[groups[i]] = std::min(extrema[groups[i]], values[i]);
  }
}

void GroupedMaxI64(const uint8_t* groups, const int64_t* values, size_t n,
                   int num_groups, int64_t* extrema) {
  BIPIE_DCHECK(num_groups >= 1 && num_groups <= 256);
  for (size_t i = 0; i < n; ++i) {
    extrema[groups[i]] = std::max(extrema[groups[i]], values[i]);
  }
}

}  // namespace bipie
