// AVX-512 tier of gather selection: 16 packed values fetched per 512-bit
// dword gather, narrowed with single VPMOV instructions.
#include <immintrin.h>

#include "common/bits.h"
#include "common/macros.h"
#include "vector/gather_select.h"

namespace bipie::internal {

namespace {

BIPIE_ALWAYS_INLINE __m512i GatherAt16(const uint8_t* packed,
                                       const uint32_t* indices, __m512i vw,
                                       __m512i value_mask) {
  const __m512i idx = _mm512_loadu_si512(indices);
  const __m512i bits = _mm512_mullo_epi32(idx, vw);
  const __m512i byte_off = _mm512_srli_epi32(bits, 3);
  const __m512i shift = _mm512_and_si512(bits, _mm512_set1_epi32(7));
  __m512i words = _mm512_i32gather_epi32(byte_off, packed, 1);
  words = _mm512_srlv_epi32(words, shift);
  return _mm512_and_si512(words, value_mask);
}

}  // namespace

bool GatherSelectAvx512(const uint8_t* packed, int bit_width,
                        const uint32_t* indices, size_t n, void* out,
                        int word_bytes) {
  if (bit_width > 25 || n == 0) return false;
  // 32-bit lane offset math must not overflow (indices ascend).
  if ((static_cast<uint64_t>(indices[n - 1]) + 16) *
          static_cast<uint64_t>(bit_width) >=
      (1ULL << 31)) {
    return false;
  }
  const __m512i vw = _mm512_set1_epi32(bit_width);
  const __m512i value_mask =
      _mm512_set1_epi32(static_cast<int>(LowBitsMask(bit_width)));
  size_t i = 0;
  switch (word_bytes) {
    case 1: {
      auto* dst = static_cast<uint8_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const __m512i v = GatherAt16(packed, indices + i, vw, value_mask);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm512_cvtepi32_epi8(v));
      }
      GatherSelectScalar(packed, bit_width, indices + i, n - i, dst + i, 1);
      return true;
    }
    case 2: {
      auto* dst = static_cast<uint16_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const __m512i v = GatherAt16(packed, indices + i, vw, value_mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm512_cvtepi32_epi16(v));
      }
      GatherSelectScalar(packed, bit_width, indices + i, n - i, dst + i, 2);
      return true;
    }
    case 4: {
      auto* dst = static_cast<uint32_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const __m512i v = GatherAt16(packed, indices + i, vw, value_mask);
        _mm512_storeu_si512(dst + i, v);
      }
      GatherSelectScalar(packed, bit_width, indices + i, n - i, dst + i, 4);
      return true;
    }
    case 8: {
      auto* dst = static_cast<uint64_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const __m512i v = GatherAt16(packed, indices + i, vw, value_mask);
        _mm512_storeu_si512(
            dst + i, _mm512_cvtepu32_epi64(_mm512_castsi512_si256(v)));
        _mm512_storeu_si512(
            dst + i + 8,
            _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(v, 1)));
      }
      GatherSelectScalar(packed, bit_width, indices + i, n - i, dst + i, 8);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace bipie::internal
