// Run-span aggregation kernels (run-level execution, DESIGN.md §11).
//
// The run pipeline aggregates contiguous (group, row-range) spans instead
// of per-row (group, value) pairs, so its SUM kernel is a plain horizontal
// reduction: unpack the span's bit-packed offsets at the smallest word
// width, then sum them with the widest horizontal-add the ISA offers
// (_mm256_sad_epu8 for bytes, widening adds above). No group indirection,
// no selection bytes — the span boundaries already encode both.
//
// Sums are computed in the unsigned offset domain and compensated by the
// caller (sum + base * count), exactly like the per-row strategies.
#ifndef BIPIE_VECTOR_RUN_AGG_H_
#define BIPIE_VECTOR_RUN_AGG_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

// Sum of n unsigned words of `word_bytes` in {1, 2, 4, 8}. The result is
// exact whenever it fits uint64 (the scan's overflow proof guarantees the
// offset-domain total does); otherwise it wraps mod 2^64 like any uint64
// accumulation. Dispatches to the best ISA tier at runtime.
uint64_t HorizontalSumWords(const void* values, size_t n, int word_bytes);

// Sum of packed values [start, start + n) of a bit-packed stream, in the
// unsigned offset domain, without materializing the unpacked words when the
// ISA allows it. On AVX-512 VBMI hardware, widths <= 25 use a fused
// shuffle-extract-accumulate kernel (VPERMB window placement instead of the
// unpack tier's dword gathers); other tiers and widths unpack in
// L1-resident chunks and reduce with HorizontalSumWords. The packed buffer
// must carry AlignedBuffer::kPaddingBytes of readable padding.
uint64_t SumBitPackedRange(const uint8_t* packed, size_t start, size_t n,
                           int bit_width);

namespace internal {

// Portable reference implementations (always available; also the dispatch
// target on the scalar tier). Exposed for differential kernel tests.
uint64_t HorizontalSumWordsScalar(const void* values, size_t n,
                                  int word_bytes);
uint64_t SumBitPackedRangeScalar(const uint8_t* packed, size_t start,
                                 size_t n, int bit_width);

// AVX-512 VBMI tier, defined in run_agg_avx512.cc. Available() is false
// when the binary was built without VBMI support or the CPU lacks it; the
// kernel requires bit_width <= 25 and Available() == true.
bool SumBitPackedAvx512Available();
uint64_t SumBitPackedAvx512(const uint8_t* packed, size_t start, size_t n,
                            int bit_width);

}  // namespace internal

}  // namespace bipie

#endif  // BIPIE_VECTOR_RUN_AGG_H_
