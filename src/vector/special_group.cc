#include "vector/special_group.h"

#include <immintrin.h>

#include "common/cpu.h"
#include "vector/selection_vector.h"

namespace bipie {

namespace internal {

void ApplySpecialGroupScalar(const uint8_t* group_ids, const uint8_t* sel,
                             size_t n, uint8_t special_group, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    // Branch-free select: sel is 0x00 or 0xFF.
    out[i] = static_cast<uint8_t>((group_ids[i] & sel[i]) |
                                  (special_group & ~sel[i]));
  }
}

}  // namespace internal

void ApplySpecialGroup(const uint8_t* group_ids, const uint8_t* sel,
                       size_t n, uint8_t special_group, uint8_t* out) {
  // The branch-free scalar select and the AVX2 blendv both require canonical
  // full-byte masks; 0x01 would merge garbage group ids.
  BIPIE_DCHECK_SEL_CANONICAL(sel, n);
  if (CurrentIsaTier() >= IsaTier::kAvx512) {
    internal::ApplySpecialGroupAvx512(group_ids, sel, n, special_group, out);
    return;
  }
  size_t i = 0;
  if (CurrentIsaTier() >= IsaTier::kAvx2) {
    const __m256i special = _mm256_set1_epi8(static_cast<char>(special_group));
    for (; i + 32 <= n; i += 32) {
      const __m256i g = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(group_ids + i));
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
      // blendv picks from the second operand where the mask byte's high bit
      // is set — i.e. keeps the group id for selected rows.
      const __m256i merged = _mm256_blendv_epi8(special, g, s);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), merged);
    }
  }
  internal::ApplySpecialGroupScalar(group_ids + i, sel + i, n - i,
                                    special_group, out + i);
}

}  // namespace bipie
