// Grouped MIN / MAX aggregation.
//
// The paper's evaluation focuses on COUNT and SUM, but its framework
// ("compare against each group id, combine with a lane-wise operation")
// extends mechanically to MIN and MAX — the §2.2 remark about mechanical
// extensions made concrete. The in-register variant keeps one extremum
// register per group: compare-mask, blend the candidate lanes in, lane-wise
// min/max. Kernels accumulate into caller-initialized arrays (+inf / -inf
// sentinels), so batches chain like the other strategies.
#ifndef BIPIE_VECTOR_AGG_MINMAX_H_
#define BIPIE_VECTOR_AGG_MINMAX_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

// extrema[g] = min(extrema[g], min over rows of group g). Values are
// unsigned words of `word_bytes` in {1, 2, 4}; group ids are bytes below
// num_groups (<= 256). int64 value arrays use the I64 variants.
void GroupedMinU(const uint8_t* groups, const void* values, int word_bytes,
                 size_t n, int num_groups, uint64_t* extrema);
void GroupedMaxU(const uint8_t* groups, const void* values, int word_bytes,
                 size_t n, int num_groups, uint64_t* extrema);

void GroupedMinI64(const uint8_t* groups, const int64_t* values, size_t n,
                   int num_groups, int64_t* extrema);
void GroupedMaxI64(const uint8_t* groups, const int64_t* values, size_t n,
                   int num_groups, int64_t* extrema);

namespace internal {
void GroupedMinUScalar(const uint8_t* groups, const void* values,
                       int word_bytes, size_t n, uint64_t* extrema);
void GroupedMaxUScalar(const uint8_t* groups, const void* values,
                       int word_bytes, size_t n, uint64_t* extrema);
}  // namespace internal

}  // namespace bipie

#endif  // BIPIE_VECTOR_AGG_MINMAX_H_
