#include "vector/agg_scalar.h"

#include <cstring>

#include "common/macros.h"

namespace bipie {

void ScalarCountSingleArray(const uint8_t* groups, size_t n,
                            uint64_t* counts) {
  for (size_t i = 0; i < n; ++i) {
    ++counts[groups[i]];
  }
}

void ScalarCountMultiArray(const uint8_t* groups, size_t n, int num_groups,
                           uint64_t* counts) {
  BIPIE_DCHECK(num_groups <= kMaxScalarGroups);
  // Two interleaved accumulator arrays so consecutive rows hitting the same
  // group write to different addresses.
  uint64_t partial[2][kMaxScalarGroups];
  std::memset(partial, 0, sizeof(partial));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    ++partial[0][groups[i]];
    ++partial[1][groups[i + 1]];
  }
  if (i < n) ++partial[0][groups[i]];
  for (int g = 0; g < num_groups; ++g) {
    counts[g] += partial[0][g] + partial[1][g];
  }
}

void ScalarSumSingleArray(const uint8_t* groups, const int64_t* values,
                          size_t n, int64_t* sums) {
  for (size_t i = 0; i < n; ++i) {
    sums[groups[i]] += values[i];
  }
}

void ScalarSumMultiArray(const uint8_t* groups, const int64_t* values,
                         size_t n, int num_groups, int64_t* sums) {
  BIPIE_DCHECK(num_groups <= kMaxScalarGroups);
  int64_t partial[2][kMaxScalarGroups];
  std::memset(partial, 0, sizeof(partial));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    partial[0][groups[i]] += values[i];
    partial[1][groups[i + 1]] += values[i + 1];
  }
  if (i < n) partial[0][groups[i]] += values[i];
  for (int g = 0; g < num_groups; ++g) {
    sums[g] += partial[0][g] + partial[1][g];
  }
}

void ScalarSumColumnAtATime(const uint8_t* groups,
                            const int64_t* const* cols, int num_cols,
                            size_t n, int64_t* sums) {
  for (int c = 0; c < num_cols; ++c) {
    const int64_t* values = cols[c];
    for (size_t i = 0; i < n; ++i) {
      sums[groups[i] * static_cast<size_t>(num_cols) + c] += values[i];
    }
  }
}

void ScalarSumRowAtATime(const uint8_t* groups, const int64_t* const* cols,
                         int num_cols, size_t n, int64_t* sums) {
  for (size_t i = 0; i < n; ++i) {
    int64_t* row = sums + groups[i] * static_cast<size_t>(num_cols);
    for (int c = 0; c < num_cols; ++c) {
      row[c] += cols[c][i];
    }
  }
}

namespace {

template <int kCols>
void RowAtATimeUnrolledImpl(const uint8_t* groups,
                            const int64_t* const* cols, size_t n,
                            int64_t* sums) {
  for (size_t i = 0; i < n; ++i) {
    int64_t* row = sums + groups[i] * static_cast<size_t>(kCols);
    // Fixed trip count: the compiler fully unrolls this loop.
    for (int c = 0; c < kCols; ++c) {
      row[c] += cols[c][i];
    }
  }
}

}  // namespace

void ScalarSumRowAtATimeUnrolled(const uint8_t* groups,
                                 const int64_t* const* cols, int num_cols,
                                 size_t n, int64_t* sums) {
  switch (num_cols) {
    case 1:
      RowAtATimeUnrolledImpl<1>(groups, cols, n, sums);
      return;
    case 2:
      RowAtATimeUnrolledImpl<2>(groups, cols, n, sums);
      return;
    case 3:
      RowAtATimeUnrolledImpl<3>(groups, cols, n, sums);
      return;
    case 4:
      RowAtATimeUnrolledImpl<4>(groups, cols, n, sums);
      return;
    case 5:
      RowAtATimeUnrolledImpl<5>(groups, cols, n, sums);
      return;
    case 6:
      RowAtATimeUnrolledImpl<6>(groups, cols, n, sums);
      return;
    case 7:
      RowAtATimeUnrolledImpl<7>(groups, cols, n, sums);
      return;
    case 8:
      RowAtATimeUnrolledImpl<8>(groups, cols, n, sums);
      return;
    default:
      ScalarSumRowAtATime(groups, cols, num_cols, n, sums);
      return;
  }
}

}  // namespace bipie
