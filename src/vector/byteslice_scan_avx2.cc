// AVX2 tier of the byteslice predicate kernels: 32 lanes per step, byte
// vectors as the decided/undecided masks, sign-bias trick for unsigned
// byte compares (AVX2 has no unsigned cmpgt).
#include <immintrin.h>

#include "common/macros.h"
#include "expr/predicate.h"
#include "vector/byteslice_scan.h"

namespace bipie::internal {

namespace {

constexpr size_t kLanes = 32;

struct LiteralPlanes {
  __m256i raw[8];     // splatted plane byte, for equality
  __m256i biased[8];  // sign-biased, for unsigned less-than via cmpgt_epi8
};

LiteralPlanes SplatLiteral(uint64_t shifted, int num_planes) {
  LiteralPlanes lit;
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  for (int p = 0; p < num_planes; ++p) {
    lit.raw[p] = _mm256_set1_epi8(
        static_cast<char>(LiteralPlaneByte(shifted, num_planes, p)));
    lit.biased[p] = _mm256_xor_si256(lit.raw[p], bias);
  }
  return lit;
}

// One 32-lane block of the single-literal chain: on return `*lt` holds the
// decided x < literal lanes and `*eq` the x == literal lanes. Reads plane p
// only while some lane is still undecided after planes 0..p-1.
BIPIE_ALWAYS_INLINE void CompareBlock(const uint8_t* planes,
                                      size_t plane_stride, int num_planes,
                                      size_t row, const LiteralPlanes& lit,
                                      __m256i* lt, __m256i* eq) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  __m256i m_lt = _mm256_setzero_si256();
  __m256i m_eq = _mm256_set1_epi8(static_cast<char>(0xFF));
  for (int p = 0; p < num_planes; ++p) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        planes + static_cast<size_t>(p) * plane_stride + row));
    const __m256i is_lt =
        _mm256_cmpgt_epi8(lit.biased[p], _mm256_xor_si256(x, bias));
    const __m256i is_eq = _mm256_cmpeq_epi8(x, lit.raw[p]);
    m_lt = _mm256_or_si256(m_lt, _mm256_and_si256(m_eq, is_lt));
    m_eq = _mm256_and_si256(m_eq, is_eq);
    // Early exit: every lane decided, the remaining planes cannot change
    // the verdict and are never read.
    if (p + 1 < num_planes && _mm256_testz_si256(m_eq, m_eq)) break;
  }
  *lt = m_lt;
  *eq = m_eq;
}

// Dual chain for kBetween: decided x < lo and x > hi lanes.
BIPIE_ALWAYS_INLINE void CompareBlockRange(const uint8_t* planes,
                                           size_t plane_stride,
                                           int num_planes, size_t row,
                                           const LiteralPlanes& lo,
                                           const LiteralPlanes& hi,
                                           __m256i* lt_lo, __m256i* gt_hi) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  __m256i m_lt = _mm256_setzero_si256();
  __m256i m_gt = _mm256_setzero_si256();
  __m256i eq_lo = _mm256_set1_epi8(static_cast<char>(0xFF));
  __m256i eq_hi = eq_lo;
  for (int p = 0; p < num_planes; ++p) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        planes + static_cast<size_t>(p) * plane_stride + row));
    const __m256i xb = _mm256_xor_si256(x, bias);
    m_lt = _mm256_or_si256(
        m_lt, _mm256_and_si256(eq_lo, _mm256_cmpgt_epi8(lo.biased[p], xb)));
    eq_lo = _mm256_and_si256(eq_lo, _mm256_cmpeq_epi8(x, lo.raw[p]));
    m_gt = _mm256_or_si256(
        m_gt, _mm256_and_si256(eq_hi, _mm256_cmpgt_epi8(xb, hi.biased[p])));
    eq_hi = _mm256_and_si256(eq_hi, _mm256_cmpeq_epi8(x, hi.raw[p]));
    if (p + 1 < num_planes &&
        _mm256_testz_si256(_mm256_or_si256(eq_lo, eq_hi),
                           _mm256_or_si256(eq_lo, eq_hi))) {
      break;
    }
  }
  *lt_lo = m_lt;
  *gt_hi = m_gt;
}

BIPIE_ALWAYS_INLINE __m256i FinalizeOp(CompareOp op, __m256i lt, __m256i eq) {
  const __m256i ones = _mm256_set1_epi8(static_cast<char>(0xFF));
  switch (op) {
    case CompareOp::kLt:
      return lt;
    case CompareOp::kLe:
      return _mm256_or_si256(lt, eq);
    case CompareOp::kEq:
      return eq;
    case CompareOp::kNe:
      return _mm256_xor_si256(eq, ones);
    case CompareOp::kGt:
      return _mm256_xor_si256(_mm256_or_si256(lt, eq), ones);
    case CompareOp::kGe:
      return _mm256_xor_si256(lt, ones);
    case CompareOp::kBetween:
      break;  // never reaches FinalizeOp
  }
  return ones;
}

}  // namespace

void ByteSliceCompareAvx2(const uint8_t* planes, size_t plane_stride,
                          int num_planes, size_t start, size_t n,
                          CompareOp op, uint64_t literal, uint64_t literal2,
                          uint8_t* sel_out) {
#if defined(__AVX2__)
  const LiteralPlanes lo = SplatLiteral(literal, num_planes);
  const LiteralPlanes hi = op == CompareOp::kBetween
                               ? SplatLiteral(literal2, num_planes)
                               : LiteralPlanes{};
  const __m256i ones = _mm256_set1_epi8(static_cast<char>(0xFF));
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m256i sel;
    if (op == CompareOp::kBetween) {
      __m256i lt_lo, gt_hi;
      CompareBlockRange(planes, plane_stride, num_planes, start + i, lo, hi,
                        &lt_lo, &gt_hi);
      sel = _mm256_xor_si256(_mm256_or_si256(lt_lo, gt_hi), ones);
    } else {
      __m256i lt, eq;
      CompareBlock(planes, plane_stride, num_planes, start + i, lo, &lt, &eq);
      sel = FinalizeOp(op, lt, eq);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel_out + i), sel);
  }
  if (i < n) {
    // Scalar tail keeps writes inside the documented 32-byte slack.
    ByteSliceCompareScalar(planes, plane_stride, num_planes, start + i,
                           n - i, op, literal, literal2, sel_out + i);
  }
#else
  ByteSliceCompareScalar(planes, plane_stride, num_planes, start, n, op,
                         literal, literal2, sel_out);
#endif
}

}  // namespace bipie::internal
