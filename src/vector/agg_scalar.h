// Scalar (non-SIMD) grouped aggregation (§5.1).
//
// These are both the paper's baseline and the reference implementations the
// SIMD strategies are tested against. The multi-array variants demonstrate
// the fix for CPU pipeline stalls caused by adjacent rows updating the same
// accumulator address (few groups, or skewed/partially-sorted group
// columns): round-robin between several accumulator arrays and merge at the
// end.
//
// All kernels accumulate into caller-zeroed output arrays, so one batch at a
// time can be streamed through them.
#ifndef BIPIE_VECTOR_AGG_SCALAR_H_
#define BIPIE_VECTOR_AGG_SCALAR_H_

#include <cstddef>
#include <cstdint>

namespace bipie {

// counts[g] += |{i : groups[i] == g}| using a single accumulator array.
void ScalarCountSingleArray(const uint8_t* groups, size_t n,
                            uint64_t* counts);

// Same, alternating between `kScalarAccumArrays` internal arrays.
void ScalarCountMultiArray(const uint8_t* groups, size_t n, int num_groups,
                           uint64_t* counts);

inline constexpr int kScalarAccumArrays = 2;
inline constexpr int kMaxScalarGroups = 256;

// sums[g] += sum of values[i] with groups[i] == g (single array).
void ScalarSumSingleArray(const uint8_t* groups, const int64_t* values,
                          size_t n, int64_t* sums);

// Same with round-robin accumulator arrays.
void ScalarSumMultiArray(const uint8_t* groups, const int64_t* values,
                         size_t n, int num_groups, int64_t* sums);

// Multiple sums, column-at-a-time: processes each aggregate column fully
// before the next one. sums layout: sums[g * num_cols + c].
void ScalarSumColumnAtATime(const uint8_t* groups,
                            const int64_t* const* cols, int num_cols,
                            size_t n, int64_t* sums);

// Multiple sums, row-at-a-time: updates every aggregate of a row before
// moving to the next row (row-major accumulator layout — the faster variant
// per Figure 3).
void ScalarSumRowAtATime(const uint8_t* groups, const int64_t* const* cols,
                         int num_cols, size_t n, int64_t* sums);

// Row-at-a-time with the inner per-column loop unrolled (num_cols <= 8
// takes a specialized path).
void ScalarSumRowAtATimeUnrolled(const uint8_t* groups,
                                 const int64_t* const* cols, int num_cols,
                                 size_t n, int64_t* sums);

}  // namespace bipie

#endif  // BIPIE_VECTOR_AGG_SCALAR_H_
