// AVX-512 tier of the compacting operator.
//
// The selection byte vector converts to a lane mask with one VPTESTMB, and
// VPCOMPRESSD / VPCOMPRESSQ write only the selected lanes — no permutation
// lookup tables needed.
#include <immintrin.h>

#include <bit>

#include "common/macros.h"
#include "vector/compact.h"
#include "vector/selection_vector.h"

namespace bipie::internal {

size_t CompactToIndexVectorAvx512(const uint8_t* sel, size_t n,
                                  uint32_t base, uint32_t* out) {
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11, 12, 13, 14, 15);
  size_t count = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    const __mmask16 m = _mm_test_epi8_mask(bytes, bytes);
    const __m512i ids = _mm512_add_epi32(
        iota, _mm512_set1_epi32(static_cast<int>(base + i)));
    _mm512_mask_compressstoreu_epi32(out + count, m, ids);
    count += std::popcount(static_cast<uint32_t>(m));
  }
  for (; i < n; ++i) {
    out[count] = base + static_cast<uint32_t>(i);
    count += SelectionByteIsSet(sel[i]);
  }
  return count;
}

size_t CompactValues4Avx512(const uint8_t* sel, const uint32_t* values,
                            size_t n, uint32_t* out) {
  size_t count = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    const __mmask16 m = _mm_test_epi8_mask(bytes, bytes);
    const __m512i data = _mm512_loadu_si512(values + i);
    _mm512_mask_compressstoreu_epi32(out + count, m, data);
    count += std::popcount(static_cast<uint32_t>(m));
  }
  for (; i < n; ++i) {
    out[count] = values[i];
    count += SelectionByteIsSet(sel[i]);
  }
  return count;
}

size_t CompactValues8Avx512(const uint8_t* sel, const uint64_t* values,
                            size_t n, uint64_t* out) {
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(sel + i));
    const __mmask16 m16 = _mm_test_epi8_mask(bytes, bytes);
    const __mmask8 m = static_cast<__mmask8>(m16);
    const __m512i data = _mm512_loadu_si512(values + i);
    _mm512_mask_compressstoreu_epi64(out + count, m, data);
    count += std::popcount(static_cast<uint32_t>(m));
  }
  for (; i < n; ++i) {
    out[count] = values[i];
    count += SelectionByteIsSet(sel[i]);
  }
  return count;
}

}  // namespace bipie::internal
