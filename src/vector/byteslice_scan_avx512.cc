// AVX-512 tier of the byteslice predicate kernels: 64 lanes per step with
// the decided/undecided state held in mask registers (kortest gives the
// early-exit test for free) and native unsigned byte compares.
#include <immintrin.h>

#include "common/macros.h"
#include "expr/predicate.h"
#include "vector/byteslice_scan.h"

namespace bipie::internal {

#if defined(__AVX512F__) && defined(__AVX512BW__)

namespace {

constexpr size_t kLanes = 64;

struct LiteralPlanes {
  __m512i raw[8];
};

LiteralPlanes SplatLiteral(uint64_t shifted, int num_planes) {
  LiteralPlanes lit;
  for (int p = 0; p < num_planes; ++p) {
    lit.raw[p] = _mm512_set1_epi8(
        static_cast<char>(LiteralPlaneByte(shifted, num_planes, p)));
  }
  return lit;
}

// One 64-lane block of the single-literal chain. `valid` masks the loads of
// a partial tail block (invalid lanes read as zero and are ignored by the
// caller's store mask).
BIPIE_ALWAYS_INLINE void CompareBlock(const uint8_t* planes,
                                      size_t plane_stride, int num_planes,
                                      size_t row, __mmask64 valid,
                                      const LiteralPlanes& lit,
                                      __mmask64* lt, __mmask64* eq) {
  __mmask64 m_lt = 0;
  __mmask64 m_eq = valid;
  for (int p = 0; p < num_planes; ++p) {
    const __m512i x = _mm512_maskz_loadu_epi8(
        valid, planes + static_cast<size_t>(p) * plane_stride + row);
    m_lt |= m_eq & _mm512_cmp_epu8_mask(x, lit.raw[p], _MM_CMPINT_LT);
    m_eq &= _mm512_cmpeq_epu8_mask(x, lit.raw[p]);
    if (m_eq == 0) break;  // every lane decided: skip the remaining planes
  }
  *lt = m_lt;
  *eq = m_eq;
}

BIPIE_ALWAYS_INLINE void CompareBlockRange(const uint8_t* planes,
                                           size_t plane_stride,
                                           int num_planes, size_t row,
                                           __mmask64 valid,
                                           const LiteralPlanes& lo,
                                           const LiteralPlanes& hi,
                                           __mmask64* lt_lo,
                                           __mmask64* gt_hi) {
  __mmask64 m_lt = 0;
  __mmask64 m_gt = 0;
  __mmask64 eq_lo = valid;
  __mmask64 eq_hi = valid;
  for (int p = 0; p < num_planes; ++p) {
    const __m512i x = _mm512_maskz_loadu_epi8(
        valid, planes + static_cast<size_t>(p) * plane_stride + row);
    m_lt |= eq_lo & _mm512_cmp_epu8_mask(x, lo.raw[p], _MM_CMPINT_LT);
    eq_lo &= _mm512_cmpeq_epu8_mask(x, lo.raw[p]);
    m_gt |= eq_hi & _mm512_cmp_epu8_mask(x, hi.raw[p], _MM_CMPINT_NLE);
    eq_hi &= _mm512_cmpeq_epu8_mask(x, hi.raw[p]);
    if ((eq_lo | eq_hi) == 0) break;
  }
  *lt_lo = m_lt;
  *gt_hi = m_gt;
}

BIPIE_ALWAYS_INLINE __mmask64 FinalizeOp(CompareOp op, __mmask64 lt,
                                         __mmask64 eq) {
  switch (op) {
    case CompareOp::kLt:
      return lt;
    case CompareOp::kLe:
      return lt | eq;
    case CompareOp::kEq:
      return eq;
    case CompareOp::kNe:
      return ~eq;
    case CompareOp::kGt:
      return ~(lt | eq);
    case CompareOp::kGe:
      return ~lt;
    case CompareOp::kBetween:
      break;  // never reaches FinalizeOp
  }
  return ~__mmask64{0};
}

}  // namespace

void ByteSliceCompareAvx512(const uint8_t* planes, size_t plane_stride,
                            int num_planes, size_t start, size_t n,
                            CompareOp op, uint64_t literal, uint64_t literal2,
                            uint8_t* sel_out) {
  const LiteralPlanes lo = SplatLiteral(literal, num_planes);
  const LiteralPlanes hi = op == CompareOp::kBetween
                               ? SplatLiteral(literal2, num_planes)
                               : LiteralPlanes{};
  for (size_t i = 0; i < n; i += kLanes) {
    const size_t chunk = n - i < kLanes ? n - i : kLanes;
    const __mmask64 valid =
        chunk == kLanes ? ~__mmask64{0}
                        : (__mmask64{1} << chunk) - 1;
    __mmask64 sel;
    if (op == CompareOp::kBetween) {
      __mmask64 lt_lo, gt_hi;
      CompareBlockRange(planes, plane_stride, num_planes, start + i, valid,
                        lo, hi, &lt_lo, &gt_hi);
      sel = ~(lt_lo | gt_hi);
    } else {
      __mmask64 lt, eq;
      CompareBlock(planes, plane_stride, num_planes, start + i, valid, lo,
                   &lt, &eq);
      sel = FinalizeOp(op, lt, eq);
    }
    // Masked store: a partial tail writes only its rows, keeping the kernel
    // inside the caller's selection buffer whatever its slack.
    _mm512_mask_storeu_epi8(sel_out + i, valid, _mm512_movm_epi8(sel));
  }
}

#else  // !(__AVX512F__ && __AVX512BW__)

void ByteSliceCompareAvx512(const uint8_t* planes, size_t plane_stride,
                            int num_planes, size_t start, size_t n,
                            CompareOp op, uint64_t literal, uint64_t literal2,
                            uint8_t* sel_out) {
  ByteSliceCompareScalar(planes, plane_stride, num_planes, start, n, op,
                         literal, literal2, sel_out);
}

#endif

}  // namespace bipie::internal
