#include "vector/agg_multi.h"

#include <algorithm>
#include <cstring>

#include "common/cpu.h"
#include "common/macros.h"

namespace bipie {

namespace {

// SIMD accumulator lanes holding sums of values < 2^16 wrap only after
// 65536 additions; drain at that cadence (§5.4's 65536-row guarantee).
constexpr size_t kDrainRows = 65536;

// Accumulates `n` rows (n % 4 == 0) with N64 full qword columns and NP
// 32-bit pairs. acc holds one 256-bit accumulator per group.
template <int N64, int NP>
void ProcessChunk(const int64_t* const* cols64, const uint32_t* const* pair_a,
                  const uint32_t* const* pair_b, const uint8_t* groups,
                  size_t base, size_t n, __m256i* acc) {
  for (size_t i = base; i + 4 <= base + n; i += 4) {
    __m256i q[4];
    int s = 0;
    for (int j = 0; j < N64; ++j, ++s) {
      q[s] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cols64[j] + i));
    }
    for (int j = 0; j < NP; ++j, ++s) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(pair_a[j] + i));
      const __m128i b = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(pair_b[j] + i));
      // Interleave the two 32-bit columns into one pseudo-64-bit column.
      const __m128i lo = _mm_unpacklo_epi32(a, b);
      const __m128i hi = _mm_unpackhi_epi32(a, b);
      q[s] = _mm256_set_m128i(hi, lo);
    }
    for (; s < 4; ++s) q[s] = _mm256_setzero_si256();

    // 4x4 qword transpose: q[s] lane r -> row r lane s.
    const __m256i t0 = _mm256_unpacklo_epi64(q[0], q[1]);
    const __m256i t1 = _mm256_unpackhi_epi64(q[0], q[1]);
    const __m256i t2 = _mm256_unpacklo_epi64(q[2], q[3]);
    const __m256i t3 = _mm256_unpackhi_epi64(q[2], q[3]);
    const __m256i r0 = _mm256_permute2x128_si256(t0, t2, 0x20);
    const __m256i r1 = _mm256_permute2x128_si256(t1, t3, 0x20);
    const __m256i r2 = _mm256_permute2x128_si256(t0, t2, 0x31);
    const __m256i r3 = _mm256_permute2x128_si256(t1, t3, 0x31);

    // One load-add-store per row updates every sum (the paper's pitch).
    __m256i* a0 = acc + groups[i];
    *a0 = _mm256_add_epi64(*a0, r0);
    __m256i* a1 = acc + groups[i + 1];
    *a1 = _mm256_add_epi64(*a1, r1);
    __m256i* a2 = acc + groups[i + 2];
    *a2 = _mm256_add_epi64(*a2, r2);
    __m256i* a3 = acc + groups[i + 3];
    *a3 = _mm256_add_epi64(*a3, r3);
  }
}

using ChunkFn = void (*)(const int64_t* const*, const uint32_t* const*,
                         const uint32_t* const*, const uint8_t*, size_t,
                         size_t, __m256i*);

ChunkFn ResolveChunkFn(int n64, int np) {
  switch (n64 * 8 + np) {
    case 0 * 8 + 1: return &ProcessChunk<0, 1>;
    case 0 * 8 + 2: return &ProcessChunk<0, 2>;
    case 0 * 8 + 3: return &ProcessChunk<0, 3>;
    case 0 * 8 + 4: return &ProcessChunk<0, 4>;
    case 1 * 8 + 0: return &ProcessChunk<1, 0>;
    case 1 * 8 + 1: return &ProcessChunk<1, 1>;
    case 1 * 8 + 2: return &ProcessChunk<1, 2>;
    case 1 * 8 + 3: return &ProcessChunk<1, 3>;
    case 2 * 8 + 0: return &ProcessChunk<2, 0>;
    case 2 * 8 + 1: return &ProcessChunk<2, 1>;
    case 2 * 8 + 2: return &ProcessChunk<2, 2>;
    case 3 * 8 + 0: return &ProcessChunk<3, 0>;
    case 3 * 8 + 1: return &ProcessChunk<3, 1>;
    case 4 * 8 + 0: return &ProcessChunk<4, 0>;
    default:
      BIPIE_DCHECK(false);
      return nullptr;
  }
}

}  // namespace

Status MultiAggregator::Configure(const std::vector<ColumnDesc>& columns,
                                  int num_groups) {
  if (columns.empty()) {
    return Status::InvalidArgument("multi-aggregate needs >= 1 column");
  }
  if (num_groups < 1 || num_groups > kMaxGroups) {
    return Status::InvalidArgument("multi-aggregate group count out of range");
  }
  columns_ = columns;
  num_groups_ = num_groups;
  qword_cols_.clear();
  pairs_.clear();

  std::vector<int> narrow_cols;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].input_bytes == 8) {
      qword_cols_.push_back(static_cast<int>(c));
    } else if (columns[c].input_bytes == 4) {
      narrow_cols.push_back(static_cast<int>(c));
    } else {
      return Status::InvalidArgument(
          "multi-aggregate input arrays must be 4 or 8 bytes per element");
    }
  }
  for (size_t i = 0; i < narrow_cols.size(); i += 2) {
    Pair p;
    p.col_a = narrow_cols[i];
    p.col_b = i + 1 < narrow_cols.size() ? narrow_cols[i + 1] : -1;
    pairs_.push_back(p);
  }
  num_qword_slots_ = static_cast<int>(qword_cols_.size());
  num_pairs_ = static_cast<int>(pairs_.size());
  if (num_qword_slots_ + num_pairs_ > 4) {
    return Status::NotSupported(
        "expanded aggregate row exceeds one 256-bit register");
  }

  acc_.Resize(static_cast<size_t>(num_groups_) * sizeof(__m256i));
  acc_.ZeroFill();
  partials_.assign(static_cast<size_t>(num_groups_) * columns_.size(), 0);
  rows_since_drain_ = 0;
  return Status::OK();
}

void MultiAggregator::Process(const uint8_t* groups,
                              const void* const* col_data, size_t n) {
  const size_t ncols = columns_.size();
  if (CurrentIsaTier() < IsaTier::kAvx2) {
    for (size_t i = 0; i < n; ++i) {
      int64_t* row = partials_.data() + groups[i] * ncols;
      for (size_t c = 0; c < ncols; ++c) {
        row[c] += columns_[c].input_bytes == 8
                      ? static_cast<const int64_t*>(col_data[c])[i]
                      : static_cast<const uint32_t*>(col_data[c])[i];
      }
    }
    return;
  }

  // Resolve typed pointer arrays once per call.
  const int64_t* cols64[4];
  const uint32_t* pair_a[4];
  const uint32_t* pair_b[4];
  for (int j = 0; j < num_qword_slots_; ++j) {
    cols64[j] = static_cast<const int64_t*>(col_data[qword_cols_[j]]);
  }
  for (int j = 0; j < num_pairs_; ++j) {
    pair_a[j] = static_cast<const uint32_t*>(col_data[pairs_[j].col_a]);
    // A dummy half duplicates col_a; its lane is discarded at drain time.
    pair_b[j] = pairs_[j].col_b >= 0
                    ? static_cast<const uint32_t*>(col_data[pairs_[j].col_b])
                    : pair_a[j];
  }
  const ChunkFn chunk_fn = ResolveChunkFn(num_qword_slots_, num_pairs_);
  auto* acc = acc_.data_as<__m256i>();

  size_t i = 0;
  while (i + 4 <= n) {
    const size_t room = kDrainRows - rows_since_drain_;
    const size_t m = std::min((n - i) & ~size_t{3}, room);
    chunk_fn(cols64, pair_a, pair_b, groups, i, m, acc);
    i += m;
    rows_since_drain_ += m;
    if (rows_since_drain_ >= kDrainRows) DrainSimdAccumulators();
  }
  // Scalar tail goes straight to the 64-bit partials.
  for (; i < n; ++i) {
    int64_t* row = partials_.data() + groups[i] * ncols;
    for (size_t c = 0; c < ncols; ++c) {
      row[c] += columns_[c].input_bytes == 8
                    ? static_cast<const int64_t*>(col_data[c])[i]
                    : static_cast<const uint32_t*>(col_data[c])[i];
    }
  }
}

void MultiAggregator::DrainSimdAccumulators() {
  const size_t ncols = columns_.size();
  auto* acc = acc_.data_as<__m256i>();
  for (int g = 0; g < num_groups_; ++g) {
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[g]);
    acc[g] = _mm256_setzero_si256();
    int64_t* row = partials_.data() + static_cast<size_t>(g) * ncols;
    for (int j = 0; j < num_qword_slots_; ++j) {
      row[qword_cols_[j]] += static_cast<int64_t>(lanes[j]);
    }
    for (int j = 0; j < num_pairs_; ++j) {
      const uint64_t lane = lanes[num_qword_slots_ + j];
      row[pairs_[j].col_a] += static_cast<int64_t>(lane & 0xFFFFFFFFULL);
      if (pairs_[j].col_b >= 0) {
        row[pairs_[j].col_b] += static_cast<int64_t>(lane >> 32);
      }
    }
  }
  rows_since_drain_ = 0;
}

void MultiAggregator::Flush(int64_t* sums) {
  if (CurrentIsaTier() >= IsaTier::kAvx2) DrainSimdAccumulators();
  const size_t total = partials_.size();
  for (size_t i = 0; i < total; ++i) {
    sums[i] += partials_[i];
    partials_[i] = 0;
  }
}

}  // namespace bipie
