// Internal SIMD helpers shared by Vector Toolbox kernels. Not part of the
// public API.
#ifndef BIPIE_VECTOR_SIMD_UTIL_H_
#define BIPIE_VECTOR_SIMD_UTIL_H_

#include <immintrin.h>

#include <cstdint>

#include "common/macros.h"

namespace bipie::simd {

// Sum of the four u64 lanes.
BIPIE_ALWAYS_INLINE uint64_t HorizontalSumU64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum2 = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum2, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum2, 1));
}

// Sum of eight u32 lanes, zero-extended.
BIPIE_ALWAYS_INLINE uint64_t HorizontalSumU32(__m256i v) {
  const __m256i lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v));
  const __m256i hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1));
  return HorizontalSumU64(_mm256_add_epi64(lo, hi));
}

// Eight packed values of width w (<= 25) at eight arbitrary row indices,
// as zero-extended u32 lanes. Every index * w must stay below 2^31 - 256.
// vw = set1_epi32(w); value_mask = set1_epi32((1 << w) - 1).
BIPIE_ALWAYS_INLINE __m256i GatherPacked8(const uint8_t* packed,
                                          const uint32_t* indices,
                                          __m256i vw, __m256i value_mask) {
  const __m256i idx =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(indices));
  const __m256i bits = _mm256_mullo_epi32(idx, vw);
  const __m256i byte_off = _mm256_srli_epi32(bits, 3);
  const __m256i shift = _mm256_and_si256(bits, _mm256_set1_epi32(7));
  __m256i words =
      _mm256_i32gather_epi32(reinterpret_cast<const int*>(packed), byte_off, 1);
  words = _mm256_srlv_epi32(words, shift);
  return _mm256_and_si256(words, value_mask);
}

// Four packed values of width w (<= 57) at four row indices, as u64 lanes.
// vw64 = set1_epi64x(w); value_mask64 = set1_epi64x(mask).
BIPIE_ALWAYS_INLINE __m256i GatherPacked4(const uint8_t* packed,
                                          const uint32_t* indices,
                                          __m256i vw64,
                                          __m256i value_mask64) {
  const __m128i idx32 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(indices));
  const __m256i idx = _mm256_cvtepu32_epi64(idx32);
  // Full 64-bit products of 32-bit indices and width.
  const __m256i bits = _mm256_mul_epu32(
      _mm256_shuffle_epi32(idx, _MM_SHUFFLE(2, 2, 0, 0)), vw64);
  const __m256i byte_off = _mm256_srli_epi64(bits, 3);
  const __m256i shift = _mm256_and_si256(bits, _mm256_set1_epi64x(7));
  __m256i words = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(packed), byte_off, 1);
  words = _mm256_srlv_epi64(words, shift);
  return _mm256_and_si256(words, value_mask64);
}

}  // namespace bipie::simd

#endif  // BIPIE_VECTOR_SIMD_UTIL_H_
