// Multi-Aggregate SUM aggregation (§5.4).
//
// Uses data-level parallelism *horizontally*: the values of several
// aggregate columns for the same row are transposed into one 256-bit
// register, so a single load-add-store updates every sum for that row.
//
// Packing rules follow the paper: inputs of 1–2 bytes are expanded to
// 32-bit slots, anything larger to 64-bit slots; 32-bit slots are paired
// into aligned 64-bit lanes. The whole packed row is accumulated with one
// 64-bit SIMD addition — a 32-bit lane holding sums of values < 2^16 cannot
// carry into its neighbor within 65536 rows, which is the flush cadence.
//
// Column-major inputs become row-major via a 4x4 64-bit SIMD transpose
// (pairs of 32-bit columns are first interleaved into pseudo-64-bit
// columns with PUNPCKL/HDQ, the paper's Figure 6 layout).
#ifndef BIPIE_VECTOR_AGG_MULTI_H_
#define BIPIE_VECTOR_AGG_MULTI_H_

#include <immintrin.h>

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"

namespace bipie {

class MultiAggregator {
 public:
  // One aggregate input column.
  struct ColumnDesc {
    // Width of the *decoded* input array elements: 4 => uint32_t values
    // strictly below 2^16 (expanded from 1–2 byte inputs); 8 => int64
    // values (4–8 byte inputs and expression results).
    int input_bytes = 8;
  };

  static constexpr int kMaxGroups = 256;

  MultiAggregator() = default;

  // Plans the register layout. Fails with OverflowRisk-free NotSupported if
  // the expanded row does not fit a 256-bit register (more than four 64-bit
  // lanes).
  Status Configure(const std::vector<ColumnDesc>& columns, int num_groups);

  // Accumulates n rows. groups[i] < num_groups. col_data[c] must point to
  // the decoded array for column c with the configured element width, with
  // 32 bytes of read slack past the end.
  void Process(const uint8_t* groups, const void* const* col_data, size_t n);

  // Adds the accumulated per-group per-column sums into
  // sums[g * num_columns + c] and resets the accumulators.
  void Flush(int64_t* sums);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int num_groups() const { return num_groups_; }
  // Bytes of one packed row after expansion (diagnostics / tests).
  int packed_row_bytes() const { return 8 * (num_qword_slots_ + num_pairs_); }

 private:
  struct Pair {
    int col_a = -1;
    int col_b = -1;  // -1: dummy half (duplicates col_a, discarded at flush)
  };

  void DrainSimdAccumulators();

  std::vector<ColumnDesc> columns_;
  int num_groups_ = 0;
  std::vector<int> qword_cols_;  // columns owning full 64-bit lanes
  std::vector<Pair> pairs_;      // paired 32-bit lanes
  int num_qword_slots_ = 0;
  int num_pairs_ = 0;

  AlignedBuffer acc_;               // one __m256i per group
  std::vector<int64_t> partials_;   // [group][column] drained sums
  size_t rows_since_drain_ = 0;
};

}  // namespace bipie

#endif  // BIPIE_VECTOR_AGG_MULTI_H_
