// Dictionary encoding (§2.1).
//
// Dictionary encoding has two components: a dictionary containing all
// distinct values, and a bit-packed sequence of integer ids identifying
// elements of that dictionary. Ids are assigned consecutively from 0, which
// makes the id stream an injective mapping from column values to small
// integers — the "perfect hashing" that the Group ID Mapper exploits (§3).
#ifndef BIPIE_ENCODING_DICTIONARY_H_
#define BIPIE_ENCODING_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace bipie {

// Dictionary over int64 values. Ids are assigned in first-insertion order.
class IntDictionary {
 public:
  IntDictionary() = default;

  // Returns the id for `value`, inserting it if new.
  uint32_t GetOrInsert(int64_t value);

  // Returns the id for `value` or -1 if absent.
  int64_t Find(int64_t value) const;

  int64_t value(uint32_t id) const {
    BIPIE_DCHECK(id < values_.size());
    return values_[id];
  }
  size_t size() const { return values_.size(); }
  const std::vector<int64_t>& values() const { return values_; }

 private:
  std::vector<int64_t> values_;
  std::unordered_map<int64_t, uint32_t> index_;
};

// Dictionary over strings, e.g. TPC-H l_returnflag / l_linestatus.
class StringDictionary {
 public:
  StringDictionary() = default;

  uint32_t GetOrInsert(const std::string& value);
  int64_t Find(const std::string& value) const;

  const std::string& value(uint32_t id) const {
    BIPIE_DCHECK(id < values_.size());
    return values_[id];
  }
  size_t size() const { return values_.size(); }
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace bipie

#endif  // BIPIE_ENCODING_DICTIONARY_H_
