#include "encoding/dictionary.h"

namespace bipie {

uint32_t IntDictionary::GetOrInsert(int64_t value) {
  auto [it, inserted] =
      index_.emplace(value, static_cast<uint32_t>(values_.size()));
  if (inserted) values_.push_back(value);
  return it->second;
}

int64_t IntDictionary::Find(int64_t value) const {
  auto it = index_.find(value);
  return it == index_.end() ? -1 : static_cast<int64_t>(it->second);
}

uint32_t StringDictionary::GetOrInsert(const std::string& value) {
  auto [it, inserted] =
      index_.emplace(value, static_cast<uint32_t>(values_.size()));
  if (inserted) values_.push_back(value);
  return it->second;
}

int64_t StringDictionary::Find(const std::string& value) const {
  auto it = index_.find(value);
  return it == index_.end() ? -1 : static_cast<int64_t>(it->second);
}

}  // namespace bipie
