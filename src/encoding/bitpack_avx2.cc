// AVX2 tier of the bit-unpacking kernels.
//
// Strategy (§4.2 of the paper, applied to full-stream unpacking): compute
// per-lane bit offsets, gather the machine words containing each packed
// value, variable-shift the value into place and mask. Widths <= 25 bits fit
// a 32-bit gather lane even at the worst 7-bit intra-byte shift; widths
// 26..57 use 64-bit gathers; wider values fall back to scalar.
#include <immintrin.h>

#include "encoding/bitpack.h"

namespace bipie::internal {

namespace {

// 8 consecutive packed values starting at index such that base_bit =
// index * w, as 8 zero-extended uint32 lanes. Requires w <= 25 and
// base_bit + 8w < 2^31.
BIPIE_ALWAYS_INLINE __m256i Gather8(const uint8_t* src, uint32_t base_bit,
                                    __m256i lane_bits, __m256i value_mask) {
  const __m256i bits =
      _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(base_bit)),
                       lane_bits);
  const __m256i byte_off = _mm256_srli_epi32(bits, 3);
  const __m256i shift = _mm256_and_si256(bits, _mm256_set1_epi32(7));
  __m256i words = _mm256_i32gather_epi32(
      reinterpret_cast<const int*>(src), byte_off, 1);
  words = _mm256_srlv_epi32(words, shift);
  return _mm256_and_si256(words, value_mask);
}

// 4 consecutive packed values as 4 uint64 lanes. Requires w <= 57.
BIPIE_ALWAYS_INLINE __m256i Gather4(const uint8_t* src, uint64_t base_bit,
                                    __m256i lane_bits, __m256i value_mask) {
  const __m256i bits = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(base_bit)), lane_bits);
  const __m256i byte_off = _mm256_srli_epi64(bits, 3);
  const __m256i shift = _mm256_and_si256(bits, _mm256_set1_epi64x(7));
  __m256i words = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(src), byte_off, 1);
  words = _mm256_srlv_epi64(words, shift);
  return _mm256_and_si256(words, value_mask);
}

void UnpackNarrow(const uint8_t* src, size_t start, size_t n, int w,
                  void* out, int word_bytes) {
  const __m256i lane_bits = _mm256_setr_epi32(0, w, 2 * w, 3 * w, 4 * w,
                                              5 * w, 6 * w, 7 * w);
  const __m256i value_mask =
      _mm256_set1_epi32(static_cast<int>(LowBitsMask(w)));
  const uint32_t wu = static_cast<uint32_t>(w);
  size_t i = 0;
  switch (word_bytes) {
    case 1: {
      auto* dst = static_cast<uint8_t*>(out);
      const __m256i fix =
          _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
      for (; i + 32 <= n; i += 32) {
        const uint32_t b = static_cast<uint32_t>(start + i) * wu;
        const __m256i v0 = Gather8(src, b, lane_bits, value_mask);
        const __m256i v1 = Gather8(src, b + 8 * wu, lane_bits, value_mask);
        const __m256i v2 = Gather8(src, b + 16 * wu, lane_bits, value_mask);
        const __m256i v3 = Gather8(src, b + 24 * wu, lane_bits, value_mask);
        const __m256i p01 = _mm256_packus_epi32(v0, v1);
        const __m256i p23 = _mm256_packus_epi32(v2, v3);
        __m256i bytes = _mm256_packus_epi16(p01, p23);
        bytes = _mm256_permutevar8x32_epi32(bytes, fix);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), bytes);
      }
      BitUnpackScalar(src, start + i, n - i, w, dst + i);
      return;
    }
    case 2: {
      auto* dst = static_cast<uint16_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const uint32_t b = static_cast<uint32_t>(start + i) * wu;
        const __m256i v0 = Gather8(src, b, lane_bits, value_mask);
        const __m256i v1 = Gather8(src, b + 8 * wu, lane_bits, value_mask);
        __m256i p = _mm256_packus_epi32(v0, v1);
        p = _mm256_permute4x64_epi64(p, 0xD8);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), p);
      }
      BitUnpackScalar(src, start + i, n - i, w, dst + i);
      return;
    }
    case 4: {
      auto* dst = static_cast<uint32_t*>(out);
      for (; i + 8 <= n; i += 8) {
        const uint32_t b = static_cast<uint32_t>(start + i) * wu;
        const __m256i v = Gather8(src, b, lane_bits, value_mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
      }
      BitUnpackScalar(src, start + i, n - i, w, dst + i);
      return;
    }
    case 8: {
      auto* dst = static_cast<uint64_t*>(out);
      for (; i + 8 <= n; i += 8) {
        const uint32_t b = static_cast<uint32_t>(start + i) * wu;
        const __m256i v = Gather8(src, b, lane_bits, value_mask);
        const __m256i lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v));
        const __m256i hi =
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), hi);
      }
      BitUnpackScalar(src, start + i, n - i, w, dst + i);
      return;
    }
    default:
      BIPIE_DCHECK(false);
  }
}

void UnpackWide(const uint8_t* src, size_t start, size_t n, int w, void* out,
                int word_bytes) {
  const __m256i lane_bits = _mm256_setr_epi64x(0, w, 2 * w, 3 * w);
  const __m256i value_mask =
      _mm256_set1_epi64x(static_cast<long long>(LowBitsMask(w)));
  const uint64_t wu = static_cast<uint64_t>(w);
  size_t i = 0;
  if (word_bytes == 4) {
    auto* dst = static_cast<uint32_t*>(out);
    const __m256i pick_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    for (; i + 4 <= n; i += 4) {
      const __m256i v = Gather4(src, (start + i) * wu, lane_bits, value_mask);
      const __m256i narrowed = _mm256_permutevar8x32_epi32(v, pick_even);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm256_castsi256_si128(narrowed));
    }
    BitUnpackScalar(src, start + i, n - i, w, dst + i);
  } else {
    BIPIE_DCHECK(word_bytes == 8);
    auto* dst = static_cast<uint64_t*>(out);
    for (; i + 4 <= n; i += 4) {
      const __m256i v = Gather4(src, (start + i) * wu, lane_bits, value_mask);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    }
    BitUnpackScalar(src, start + i, n - i, w, dst + i);
  }
}

void UnpackScalarDispatch(const uint8_t* src, size_t start, size_t n, int w,
                          void* out, int word_bytes) {
  switch (word_bytes) {
    case 1:
      BitUnpackScalar(src, start, n, w, static_cast<uint8_t*>(out));
      break;
    case 2:
      BitUnpackScalar(src, start, n, w, static_cast<uint16_t*>(out));
      break;
    case 4:
      BitUnpackScalar(src, start, n, w, static_cast<uint32_t*>(out));
      break;
    case 8:
      BitUnpackScalar(src, start, n, w, static_cast<uint64_t*>(out));
      break;
    default:
      BIPIE_DCHECK(false);
  }
}

}  // namespace

void BitUnpackAvx2(const uint8_t* src, size_t start, size_t n, int bit_width,
                   void* out, int word_bytes) {
  if (bit_width > 57) {
    UnpackScalarDispatch(src, start, n, bit_width, out, word_bytes);
    return;
  }
  if (bit_width > 25) {
    // 64-bit offset math throughout; no overflow concerns.
    UnpackWide(src, start, n, bit_width, out, word_bytes);
    return;
  }
  // The 32-bit gather index math requires bit offsets to fit in int32, so
  // huge streams are processed in rebased chunks. Rebasing needs the chunk
  // start to fall on a byte boundary, which an index divisible by 8
  // guarantees for any bit width; a short scalar prologue aligns `start`.
  auto* dst = static_cast<uint8_t*>(out);
  size_t prologue = (8 - (start & 7)) & 7;
  if (prologue > n) prologue = n;
  if (prologue > 0) {
    UnpackScalarDispatch(src, start, prologue, bit_width, dst, word_bytes);
    start += prologue;
    n -= prologue;
    dst += prologue * word_bytes;
  }
  src += start * static_cast<uint64_t>(bit_width) / 8;
  // Values per chunk: keeps every intra-chunk bit offset below 2^30 and is a
  // multiple of 8 so each chunk start stays byte aligned.
  const size_t chunk_values =
      ((size_t{1} << 30) / static_cast<size_t>(bit_width)) & ~size_t{7};
  while (n > 0) {
    const size_t m = n < chunk_values ? n : chunk_values;
    UnpackNarrow(src, 0, m, bit_width, dst, word_bytes);
    src += m * static_cast<uint64_t>(bit_width) / 8;
    dst += m * word_bytes;
    n -= m;
  }
}

}  // namespace bipie::internal
