#include "encoding/bitpack.h"

#include <cstring>

#include "common/cpu.h"

namespace bipie {

void BitPack(const uint64_t* values, size_t n, int bit_width, uint8_t* dst) {
  BIPIE_DCHECK(bit_width >= 1 && bit_width <= 64);
  const uint64_t mask = LowBitsMask(bit_width);
  std::memset(dst, 0, BitPackedBytes(n, bit_width) + 8);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = values[i];
    BIPIE_DCHECK((v & ~mask) == 0);
    const uint64_t bit_off = i * static_cast<uint64_t>(bit_width);
    uint8_t* p = dst + (bit_off >> 3);
    const int shift = static_cast<int>(bit_off & 7);
    if (bit_width + shift <= 64) {
      uint64_t word;
      __builtin_memcpy(&word, p, sizeof(word));
      word |= v << shift;
      __builtin_memcpy(p, &word, sizeof(word));
    } else {
      uint64_t lo;
      __builtin_memcpy(&lo, p, sizeof(lo));
      lo |= v << shift;
      __builtin_memcpy(p, &lo, sizeof(lo));
      p[8] = static_cast<uint8_t>(p[8] | (v >> (64 - shift)));
    }
  }
}

void BitUnpack(const uint8_t* src, size_t start, size_t n, int bit_width,
               void* out) {
  BitUnpackToWord(src, start, n, bit_width, out,
                  SmallestWordBytes(bit_width));
}

void BitUnpackToWord(const uint8_t* src, size_t start, size_t n,
                     int bit_width, void* out, int word_bytes) {
  BIPIE_DCHECK(word_bytes >= SmallestWordBytes(bit_width));
  if (n == 0) return;
  const IsaTier tier = CurrentIsaTier();
  if (tier >= IsaTier::kAvx512) {
    internal::BitUnpackAvx512(src, start, n, bit_width, out, word_bytes);
    return;
  }
  if (tier >= IsaTier::kAvx2) {
    internal::BitUnpackAvx2(src, start, n, bit_width, out, word_bytes);
    return;
  }
  switch (word_bytes) {
    case 1:
      internal::BitUnpackScalar(src, start, n, bit_width,
                                static_cast<uint8_t*>(out));
      break;
    case 2:
      internal::BitUnpackScalar(src, start, n, bit_width,
                                static_cast<uint16_t*>(out));
      break;
    case 4:
      internal::BitUnpackScalar(src, start, n, bit_width,
                                static_cast<uint32_t*>(out));
      break;
    case 8:
      internal::BitUnpackScalar(src, start, n, bit_width,
                                static_cast<uint64_t*>(out));
      break;
    default:
      BIPIE_DCHECK(false);
  }
}

}  // namespace bipie
