// AVX-512 tier of the bit-unpacking kernels.
//
// Same gather/shift/mask strategy as the AVX2 tier, but 16 values per
// iteration via 512-bit dword gathers, with single-instruction narrowing
// (VPMOVDB / VPMOVDW) instead of the pack-and-permute dance. Widths above
// 25 bits delegate to the AVX2 tier's 64-bit path.
#include <immintrin.h>

#include "encoding/bitpack.h"

namespace bipie::internal {

namespace {

// 16 consecutive packed values starting at base_bit as zero-extended u32
// lanes. Requires w <= 25 and base_bit + 16w < 2^31.
BIPIE_ALWAYS_INLINE __m512i Gather16(const uint8_t* src, uint32_t base_bit,
                                     __m512i lane_bits, __m512i value_mask) {
  const __m512i bits = _mm512_add_epi32(
      _mm512_set1_epi32(static_cast<int>(base_bit)), lane_bits);
  const __m512i byte_off = _mm512_srli_epi32(bits, 3);
  const __m512i shift = _mm512_and_si512(bits, _mm512_set1_epi32(7));
  __m512i words = _mm512_i32gather_epi32(byte_off, src, 1);
  words = _mm512_srlv_epi32(words, shift);
  return _mm512_and_si512(words, value_mask);
}

__m512i MakeLaneBits(int w) {
  alignas(64) int lanes[16];
  for (int i = 0; i < 16; ++i) lanes[i] = i * w;
  return _mm512_load_si512(lanes);
}

void UnpackNarrow512(const uint8_t* src, size_t n, int w, void* out,
                     int word_bytes) {
  const __m512i lane_bits = MakeLaneBits(w);
  const __m512i value_mask =
      _mm512_set1_epi32(static_cast<int>(LowBitsMask(w)));
  const uint32_t wu = static_cast<uint32_t>(w);
  size_t i = 0;
  switch (word_bytes) {
    case 1: {
      auto* dst = static_cast<uint8_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const __m512i v =
            Gather16(src, static_cast<uint32_t>(i) * wu, lane_bits,
                     value_mask);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm512_cvtepi32_epi8(v));
      }
      BitUnpackScalar(src, i, n - i, w, dst + i);
      return;
    }
    case 2: {
      auto* dst = static_cast<uint16_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const __m512i v =
            Gather16(src, static_cast<uint32_t>(i) * wu, lane_bits,
                     value_mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm512_cvtepi32_epi16(v));
      }
      BitUnpackScalar(src, i, n - i, w, dst + i);
      return;
    }
    case 4: {
      auto* dst = static_cast<uint32_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const __m512i v =
            Gather16(src, static_cast<uint32_t>(i) * wu, lane_bits,
                     value_mask);
        _mm512_storeu_si512(dst + i, v);
      }
      BitUnpackScalar(src, i, n - i, w, dst + i);
      return;
    }
    case 8: {
      auto* dst = static_cast<uint64_t*>(out);
      for (; i + 16 <= n; i += 16) {
        const __m512i v =
            Gather16(src, static_cast<uint32_t>(i) * wu, lane_bits,
                     value_mask);
        const __m512i lo = _mm512_cvtepu32_epi64(_mm512_castsi512_si256(v));
        const __m512i hi =
            _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(v, 1));
        _mm512_storeu_si512(dst + i, lo);
        _mm512_storeu_si512(dst + i + 8, hi);
      }
      BitUnpackScalar(src, i, n - i, w, dst + i);
      return;
    }
    default:
      BIPIE_DCHECK(false);
  }
}

void UnpackScalarDispatch512(const uint8_t* src, size_t start, size_t n,
                             int w, void* out, int word_bytes) {
  switch (word_bytes) {
    case 1:
      BitUnpackScalar(src, start, n, w, static_cast<uint8_t*>(out));
      break;
    case 2:
      BitUnpackScalar(src, start, n, w, static_cast<uint16_t*>(out));
      break;
    case 4:
      BitUnpackScalar(src, start, n, w, static_cast<uint32_t*>(out));
      break;
    case 8:
      BitUnpackScalar(src, start, n, w, static_cast<uint64_t*>(out));
      break;
    default:
      BIPIE_DCHECK(false);
  }
}

}  // namespace

void BitUnpackAvx512(const uint8_t* src, size_t start, size_t n,
                     int bit_width, void* out, int word_bytes) {
  if (bit_width > 25) {
    // The AVX2 tier's 64-bit gather path already saturates these widths.
    BitUnpackAvx2(src, start, n, bit_width, out, word_bytes);
    return;
  }
  // Same prologue/rebase discipline as the AVX2 tier: align start to a
  // multiple of 8 so chunk starts fall on byte boundaries, then process in
  // offset-bounded chunks.
  auto* dst = static_cast<uint8_t*>(out);
  size_t prologue = (8 - (start & 7)) & 7;
  if (prologue > n) prologue = n;
  if (prologue > 0) {
    UnpackScalarDispatch512(src, start, prologue, bit_width, dst,
                            word_bytes);
    start += prologue;
    n -= prologue;
    dst += prologue * word_bytes;
  }
  src += start * static_cast<uint64_t>(bit_width) / 8;
  const size_t chunk_values =
      ((size_t{1} << 30) / static_cast<size_t>(bit_width)) & ~size_t{7};
  while (n > 0) {
    const size_t m = n < chunk_values ? n : chunk_values;
    UnpackNarrow512(src, m, bit_width, dst, word_bytes);
    src += m * static_cast<uint64_t>(bit_width) / 8;
    dst += m * word_bytes;
    n -= m;
  }
}

}  // namespace bipie::internal
