// Run-length encoding (§2.1).
//
// An encoded RLE stream is a sequence of (value, count) pairs: the value is
// the uncompressed value and count says how many consecutive rows repeat it.
// MemSQL picks RLE when consecutive repetition is common; bipie's column
// builder does the same based on measured run structure.
#ifndef BIPIE_ENCODING_RLE_H_
#define BIPIE_ENCODING_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bipie {

struct RleRun {
  uint64_t value;
  uint32_t count;

  bool operator==(const RleRun&) const = default;
};

// Encodes `n` values into runs.
std::vector<RleRun> RleEncode(const uint64_t* values, size_t n);

// Total row count across runs.
size_t RleRowCount(const std::vector<RleRun>& runs);

// Decodes all runs into `out` (must hold RleRowCount(runs) elements).
void RleDecode(const std::vector<RleRun>& runs, uint64_t* out);

// Decodes rows [start, start + n) into `out`. Runs are walked with a cached
// cursor-free binary search over cumulative counts.
void RleDecodeRange(const std::vector<RleRun>& runs, size_t start, size_t n,
                    uint64_t* out);

}  // namespace bipie

#endif  // BIPIE_ENCODING_RLE_H_
