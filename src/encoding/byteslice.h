// Byte-planar (ByteSlice) codec (DESIGN.md §16).
//
// A column of offsets with bit width w (frame-of-reference, like the
// bit-packed tier) is stored as np = ceil(w/8) byte *planes*. Offsets are
// left-shifted by pad = 8*np - w so the significant bits sit at the top of
// the np-byte window ("pad right"); plane p (0-based) then stores byte
// np-1-p of the shifted value — plane 0 is the most significant byte.
//
// Why pad right: an unsigned comparison of the shifted values decides
// exactly like a comparison of the raw offsets (the shift is monotone and
// injective — the vacated low bits are zero), and the byte of *every* plane
// is a full 8 significant bits except for the guaranteed-zero pad in the
// last plane. Predicates therefore evaluate plane 0 first over SIMD lanes
// and short-circuit the remaining planes once the comparison of every lane
// is decided (see vector/byteslice_scan.h), touching 1/np of the data for
// selective filters on wide values.
//
// Planes are stored plane-major and contiguously with a stride of exactly
// num_rows bytes — no inter-plane padding. Vector kernels that over-read a
// plane's tail land in the next plane (or, for the last plane, in the
// owning AlignedBuffer's kPaddingBytes), which is always readable.
#ifndef BIPIE_ENCODING_BYTESLICE_H_
#define BIPIE_ENCODING_BYTESLICE_H_

#include <cstddef>
#include <cstdint>

#include "common/macros.h"

namespace bipie {

// Planes needed for offsets of `bit_width` bits (1..64).
inline constexpr int ByteSlicePlanes(int bit_width) {
  return (bit_width + 7) / 8;
}

// Zero low bits of every shifted value: 8 * planes - bit_width, in [0, 7].
inline constexpr int ByteSlicePadBits(int bit_width) {
  return 8 * ByteSlicePlanes(bit_width) - bit_width;
}

// Bytes of plane storage for n rows (excluding AlignedBuffer padding).
inline size_t ByteSliceBytes(size_t n, int bit_width) {
  return n * static_cast<size_t>(ByteSlicePlanes(bit_width));
}

// An offset mapped into the padded comparison domain. Comparisons of
// shifted values agree with comparisons of offsets for every CompareOp,
// including equality (the pad bits of stored values are always zero).
BIPIE_ALWAYS_INLINE uint64_t ByteSliceShift(uint64_t offset, int bit_width) {
  return offset << ByteSlicePadBits(bit_width);
}

// Splits n offsets (each < 2^bit_width) into byte planes at dst, plane-major
// with stride n: dst[p * n + i] holds byte np-1-p of ByteSliceShift(
// values[i]). dst must hold ByteSliceBytes(n, bit_width) writable bytes.
void ByteSlicePack(const uint64_t* values, size_t n, int bit_width,
                   uint8_t* dst);

// Reads back the single offset at `index` from planes with the given stride.
BIPIE_ALWAYS_INLINE uint64_t ByteSliceAssembleOne(const uint8_t* planes,
                                                  size_t plane_stride,
                                                  int bit_width,
                                                  size_t index) {
  const int np = ByteSlicePlanes(bit_width);
  uint64_t shifted = 0;
  for (int p = 0; p < np; ++p) {
    shifted = (shifted << 8) | planes[p * plane_stride + index];
  }
  return shifted >> ByteSlicePadBits(bit_width);
}

// Assembles offsets [start, start + n) into `out` of element width
// word_bytes (1, 2, 4 or 8; must fit bit_width). The inverse of
// ByteSlicePack, restricted to a window.
void ByteSliceAssemble(const uint8_t* planes, size_t plane_stride,
                       int bit_width, size_t start, size_t n, void* out,
                       int word_bytes);

}  // namespace bipie

#endif  // BIPIE_ENCODING_BYTESLICE_H_
