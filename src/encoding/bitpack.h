// Integer bit-packing codec (§2.1).
//
// Bit packing represents every value of a sequence with the same fixed
// number of bits, concatenated LSB-first into one gap-free bit vector inside
// little-endian bytes. Value i occupies bits [i*w, (i+1)*w) of the stream.
//
// Unpacking always emits elements of the smallest power-of-two byte width
// (1, 2, 4 or 8) that fits the bit width — the "smallest word" rule of §2.2.
//
// The AVX2 unpack kernels may read up to 8 bytes past the last touched
// packed byte; packed buffers must provide AlignedBuffer::kPaddingBytes of
// readable padding.
#ifndef BIPIE_ENCODING_BITPACK_H_
#define BIPIE_ENCODING_BITPACK_H_

#include <cstddef>
#include <cstdint>

#include "common/bits.h"
#include "common/macros.h"

namespace bipie {

// Bytes needed to hold `n` packed values of `bit_width` bits (excluding any
// safety padding).
inline size_t BitPackedBytes(size_t n, int bit_width) {
  return static_cast<size_t>(CeilDiv(n * static_cast<uint64_t>(bit_width), 8));
}

// Packs n values into dst. Each value must fit in bit_width bits
// (checked). dst must hold BitPackedBytes(n, bit_width) + 8 writable bytes.
void BitPack(const uint64_t* values, size_t n, int bit_width, uint8_t* dst);

// Reads the single packed value at `index`. Scalar; used by gather kernels'
// fallbacks and by tests.
BIPIE_ALWAYS_INLINE uint64_t BitUnpackOne(const uint8_t* src, size_t index,
                                          int bit_width) {
  const uint64_t bit_off = index * static_cast<uint64_t>(bit_width);
  const uint8_t* p = src + (bit_off >> 3);
  const int shift = static_cast<int>(bit_off & 7);
  // A value of width <= 57 plus a shift of <= 7 fits one unaligned u64 load.
  if (bit_width + shift <= 64) {
    uint64_t word;
    __builtin_memcpy(&word, p, sizeof(word));
    return (word >> shift) & LowBitsMask(bit_width);
  }
  // Widths 58..64 can straddle 9 bytes.
  uint64_t lo;
  __builtin_memcpy(&lo, p, sizeof(lo));
  const uint64_t hi = p[8];
  const uint64_t value = (lo >> shift) | (hi << (64 - shift));
  return value & LowBitsMask(bit_width);
}

// Unpacks values [start, start + n) of the stream into `out`, whose element
// type is the smallest power-of-two word for bit_width (uint8_t for w<=8,
// uint16_t for w<=16, uint32_t for w<=32, uint64_t otherwise). Dispatches to
// the best ISA tier at runtime.
void BitUnpack(const uint8_t* src, size_t start, size_t n, int bit_width,
               void* out);

// As BitUnpack but into a caller-chosen word width (must be >= the smallest
// word for bit_width). Used when a consumer wants pre-widened values, e.g.
// multi-aggregate slots.
void BitUnpackToWord(const uint8_t* src, size_t start, size_t n,
                     int bit_width, void* out, int word_bytes);

namespace internal {

// Portable reference implementations (always available; also the dispatch
// target on the scalar tier).
template <typename Word>
void BitUnpackScalar(const uint8_t* src, size_t start, size_t n,
                     int bit_width, Word* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<Word>(BitUnpackOne(src, start + i, bit_width));
  }
}

// AVX2 tier entry point, defined in bitpack_avx2.cc. word_bytes in {1,2,4,8}.
void BitUnpackAvx2(const uint8_t* src, size_t start, size_t n, int bit_width,
                   void* out, int word_bytes);

// AVX-512 tier entry point, defined in bitpack_avx512.cc (compiled with
// AVX-512 flags). Falls through to the AVX2 kernels for widths its 16-lane
// dword gathers cannot cover.
void BitUnpackAvx512(const uint8_t* src, size_t start, size_t n,
                     int bit_width, void* out, int word_bytes);

}  // namespace internal

}  // namespace bipie

#endif  // BIPIE_ENCODING_BITPACK_H_
