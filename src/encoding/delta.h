// Frame-of-reference and delta encodings (§2.1).
//
// Frame of reference stores `base = min(values)` plus bit-packed unsigned
// offsets `value - base`. It is how bipie packs signed or large-magnitude
// integer columns: the offsets get the small bit width, and the base is part
// of the column metadata. Delta encoding stores consecutive differences and
// suits monotonically increasing columns (e.g. timestamps).
#ifndef BIPIE_ENCODING_DELTA_H_
#define BIPIE_ENCODING_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"

namespace bipie {

struct ForEncoded {
  int64_t base = 0;           // minimum input value
  int bit_width = 1;          // width of each packed offset
  size_t num_values = 0;
  AlignedBuffer packed;       // bit-packed (value - base) stream
};

// Frame-of-reference encodes `n` signed values.
ForEncoded ForEncode(const int64_t* values, size_t n);

// Decodes values [start, start + n) back to int64.
void ForDecode(const ForEncoded& enc, size_t start, size_t n, int64_t* out);

struct DeltaEncoded {
  int64_t first = 0;          // first value, stored verbatim
  int64_t min_delta = 0;      // frame of reference for the deltas
  int bit_width = 1;
  size_t num_values = 0;
  AlignedBuffer packed;       // bit-packed (delta[i] - min_delta), n-1 entries
};

// Delta encodes `n` signed values (n >= 1).
DeltaEncoded DeltaEncode(const int64_t* values, size_t n);

// Decodes the full stream (delta decoding is inherently sequential).
void DeltaDecode(const DeltaEncoded& enc, int64_t* out);

}  // namespace bipie

#endif  // BIPIE_ENCODING_DELTA_H_
