#include "encoding/byteslice.h"

#include "common/bits.h"

namespace bipie {

void ByteSlicePack(const uint64_t* values, size_t n, int bit_width,
                   uint8_t* dst) {
  const int np = ByteSlicePlanes(bit_width);
  const int pad = ByteSlicePadBits(bit_width);
  for (size_t i = 0; i < n; ++i) {
    BIPIE_DCHECK(bit_width == 64 || values[i] < (uint64_t{1} << bit_width));
    const uint64_t shifted = values[i] << pad;
    for (int p = 0; p < np; ++p) {
      dst[static_cast<size_t>(p) * n + i] =
          static_cast<uint8_t>(shifted >> (8 * (np - 1 - p)));
    }
  }
}

namespace {

template <typename Word>
void AssembleWords(const uint8_t* planes, size_t plane_stride, int bit_width,
                   size_t start, size_t n, Word* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<Word>(
        ByteSliceAssembleOne(planes, plane_stride, bit_width, start + i));
  }
}

}  // namespace

void ByteSliceAssemble(const uint8_t* planes, size_t plane_stride,
                       int bit_width, size_t start, size_t n, void* out,
                       int word_bytes) {
  switch (word_bytes) {
    case 1:
      AssembleWords(planes, plane_stride, bit_width, start, n,
                    static_cast<uint8_t*>(out));
      break;
    case 2:
      AssembleWords(planes, plane_stride, bit_width, start, n,
                    static_cast<uint16_t*>(out));
      break;
    case 4:
      AssembleWords(planes, plane_stride, bit_width, start, n,
                    static_cast<uint32_t*>(out));
      break;
    default:
      BIPIE_DCHECK(word_bytes == 8);
      AssembleWords(planes, plane_stride, bit_width, start, n,
                    static_cast<uint64_t*>(out));
      break;
  }
}

}  // namespace bipie
