#include "encoding/delta.h"

#include <algorithm>
#include <vector>

#include "common/bits.h"
#include "common/macros.h"
#include "encoding/bitpack.h"

namespace bipie {

ForEncoded ForEncode(const int64_t* values, size_t n) {
  ForEncoded enc;
  enc.num_values = n;
  if (n == 0) {
    enc.packed.Resize(0);
    return enc;
  }
  const auto [min_it, max_it] = std::minmax_element(values, values + n);
  enc.base = *min_it;
  // Offsets are non-negative; the spread determines the bit width. A spread
  // that does not fit in uint64 (min<0 and max huge) cannot occur for int64
  // inputs because max - min of two int64s fits in uint64 arithmetic.
  const uint64_t spread =
      static_cast<uint64_t>(*max_it) - static_cast<uint64_t>(enc.base);
  enc.bit_width = BitsRequired(spread);
  std::vector<uint64_t> offsets(n);
  for (size_t i = 0; i < n; ++i) {
    offsets[i] =
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(enc.base);
  }
  enc.packed.Resize(BitPackedBytes(n, enc.bit_width) + 8);
  BitPack(offsets.data(), n, enc.bit_width, enc.packed.data());
  return enc;
}

void ForDecode(const ForEncoded& enc, size_t start, size_t n, int64_t* out) {
  BIPIE_DCHECK(start + n <= enc.num_values);
  std::vector<uint64_t> offsets(n);
  BitUnpackToWord(enc.packed.data(), start, n, enc.bit_width, offsets.data(),
                  8);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(enc.base) +
                                  offsets[i]);
  }
}

DeltaEncoded DeltaEncode(const int64_t* values, size_t n) {
  BIPIE_DCHECK(n >= 1);
  DeltaEncoded enc;
  enc.num_values = n;
  enc.first = values[0];
  if (n == 1) {
    enc.packed.Resize(0);
    return enc;
  }
  std::vector<int64_t> deltas(n - 1);
  for (size_t i = 1; i < n; ++i) deltas[i - 1] = values[i] - values[i - 1];
  const auto [min_it, max_it] =
      std::minmax_element(deltas.begin(), deltas.end());
  enc.min_delta = *min_it;
  const uint64_t spread =
      static_cast<uint64_t>(*max_it) - static_cast<uint64_t>(enc.min_delta);
  enc.bit_width = BitsRequired(spread);
  std::vector<uint64_t> offsets(n - 1);
  for (size_t i = 0; i < n - 1; ++i) {
    offsets[i] = static_cast<uint64_t>(deltas[i]) -
                 static_cast<uint64_t>(enc.min_delta);
  }
  enc.packed.Resize(BitPackedBytes(n - 1, enc.bit_width) + 8);
  BitPack(offsets.data(), n - 1, enc.bit_width, enc.packed.data());
  return enc;
}

void DeltaDecode(const DeltaEncoded& enc, int64_t* out) {
  out[0] = enc.first;
  if (enc.num_values == 1) return;
  const size_t n = enc.num_values - 1;
  std::vector<uint64_t> offsets(n);
  BitUnpackToWord(enc.packed.data(), 0, n, enc.bit_width, offsets.data(), 8);
  for (size_t i = 0; i < n; ++i) {
    out[i + 1] = out[i] + enc.min_delta + static_cast<int64_t>(offsets[i]);
  }
}

}  // namespace bipie
