#include "encoding/rle.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace bipie {

std::vector<RleRun> RleEncode(const uint64_t* values, size_t n) {
  std::vector<RleRun> runs;
  size_t i = 0;
  while (i < n) {
    const uint64_t v = values[i];
    size_t j = i + 1;
    while (j < n && values[j] == v &&
           j - i < std::numeric_limits<uint32_t>::max()) {
      ++j;
    }
    runs.push_back(RleRun{v, static_cast<uint32_t>(j - i)});
    i = j;
  }
  return runs;
}

size_t RleRowCount(const std::vector<RleRun>& runs) {
  size_t total = 0;
  for (const RleRun& r : runs) total += r.count;
  return total;
}

void RleDecode(const std::vector<RleRun>& runs, uint64_t* out) {
  for (const RleRun& r : runs) {
    std::fill(out, out + r.count, r.value);
    out += r.count;
  }
}

void RleDecodeRange(const std::vector<RleRun>& runs, size_t start, size_t n,
                    uint64_t* out) {
  size_t pos = 0;
  size_t run_idx = 0;
  // Skip whole runs before `start`.
  while (run_idx < runs.size() && pos + runs[run_idx].count <= start) {
    pos += runs[run_idx].count;
    ++run_idx;
  }
  size_t produced = 0;
  while (produced < n) {
    BIPIE_DCHECK(run_idx < runs.size());
    const RleRun& r = runs[run_idx];
    const size_t offset_in_run = start + produced - pos;
    const size_t available = r.count - offset_in_run;
    const size_t take = std::min(available, n - produced);
    std::fill(out + produced, out + produced + take, r.value);
    produced += take;
    if (take == available) {
      pos += r.count;
      ++run_idx;
    }
  }
}

}  // namespace bipie
