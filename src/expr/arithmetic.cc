#include "expr/arithmetic.h"

#include <algorithm>
#include <limits>

#include "common/aligned_buffer.h"
#include "common/macros.h"

namespace bipie {

namespace {

bool FitsInt64(__int128 v) {
  return v >= std::numeric_limits<int64_t>::min() &&
         v <= std::numeric_limits<int64_t>::max();
}

}  // namespace

ExprPtr Expr::Column(int column_index) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->column_index_ = column_index;
  return e;
}

ExprPtr Expr::Constant(int64_t value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kConstant;
  e->constant_ = value;
  return e;
}

ExprPtr Expr::Add(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAdd;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Sub(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kSub;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Mul(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kMul;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

void Expr::CollectColumns(std::vector<int>* out) const {
  switch (kind_) {
    case ExprKind::kColumn:
      if (std::find(out->begin(), out->end(), column_index_) == out->end()) {
        out->push_back(column_index_);
      }
      return;
    case ExprKind::kConstant:
      return;
    default:
      lhs_->CollectColumns(out);
      rhs_->CollectColumns(out);
      return;
  }
}

void Expr::Evaluate(const int64_t* const* columns, size_t n, int64_t* out,
                    const ExprCache* cache) const {
  switch (kind_) {
    case ExprKind::kColumn: {
      const int64_t* src = columns[column_index_];
      std::copy(src, src + n, out);
      return;
    }
    case ExprKind::kConstant: {
      std::fill(out, out + n, constant_);
      return;
    }
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul: {
      // Operand resolution order: column leaf (zero copy), cached subtree
      // result (zero recompute), else recurse into a per-level buffer.
      AlignedBuffer lhs_local;
      const int64_t* a;
      if (lhs_->kind_ == ExprKind::kColumn) {
        a = columns[lhs_->column_index_];
      } else if (cache != nullptr && cache->Find(lhs_.get()) != nullptr) {
        a = cache->Find(lhs_.get());
      } else {
        lhs_local.Resize(n * sizeof(int64_t));
        lhs_->Evaluate(columns, n, lhs_local.data_as<int64_t>(), cache);
        a = lhs_local.data_as<int64_t>();
      }
      // Fused forms: MemSQL's generated code compiles a whole expression
      // into one loop; mirror that for the ubiquitous a * (c ± col) shape
      // (TPC-H Q1's discount and tax factors) instead of materializing the
      // inner operand.
      if (kind_ == ExprKind::kMul &&
          (rhs_->kind_ == ExprKind::kAdd || rhs_->kind_ == ExprKind::kSub) &&
          rhs_->lhs_->kind_ == ExprKind::kConstant &&
          rhs_->rhs_->kind_ == ExprKind::kColumn) {
        const int64_t c = rhs_->lhs_->constant_;
        const int64_t* col = columns[rhs_->rhs_->column_index_];
        if (rhs_->kind_ == ExprKind::kSub) {
          for (size_t i = 0; i < n; ++i) out[i] = a[i] * (c - col[i]);
        } else {
          for (size_t i = 0; i < n; ++i) out[i] = a[i] * (c + col[i]);
        }
        return;
      }
      AlignedBuffer rhs_local;
      const int64_t* b = nullptr;
      int64_t b_const = 0;
      bool rhs_is_const = false;
      if (rhs_->kind_ == ExprKind::kColumn) {
        b = columns[rhs_->column_index_];
      } else if (rhs_->kind_ == ExprKind::kConstant) {
        rhs_is_const = true;
        b_const = rhs_->constant_;
      } else if (cache != nullptr && cache->Find(rhs_.get()) != nullptr) {
        b = cache->Find(rhs_.get());
      } else {
        rhs_local.Resize(n * sizeof(int64_t));
        rhs_->Evaluate(columns, n, rhs_local.data_as<int64_t>(), cache);
        b = rhs_local.data_as<int64_t>();
      }
      if (rhs_is_const) {
        switch (kind_) {
          case ExprKind::kAdd:
            for (size_t i = 0; i < n; ++i) out[i] = a[i] + b_const;
            return;
          case ExprKind::kSub:
            for (size_t i = 0; i < n; ++i) out[i] = a[i] - b_const;
            return;
          default:
            for (size_t i = 0; i < n; ++i) out[i] = a[i] * b_const;
            return;
        }
      }
      switch (kind_) {
        case ExprKind::kAdd:
          for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
          return;
        case ExprKind::kSub:
          for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
          return;
        default:
          for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
          return;
      }
    }
  }
}

Result<ValueBounds> Expr::EvalBounds(
    const std::vector<ValueBounds>& column_bounds) const {
  switch (kind_) {
    case ExprKind::kColumn:
      if (column_index_ < 0 ||
          static_cast<size_t>(column_index_) >= column_bounds.size()) {
        return Status::InvalidArgument("column index out of bounds");
      }
      return column_bounds[column_index_];
    case ExprKind::kConstant:
      return ValueBounds{constant_, constant_};
    default:
      break;
  }
  Result<ValueBounds> lhs = lhs_->EvalBounds(column_bounds);
  if (!lhs.ok()) return lhs.status();
  Result<ValueBounds> rhs = rhs_->EvalBounds(column_bounds);
  if (!rhs.ok()) return rhs.status();
  const __int128 al = lhs.value().min, ah = lhs.value().max;
  const __int128 bl = rhs.value().min, bh = rhs.value().max;
  __int128 lo, hi;
  switch (kind_) {
    case ExprKind::kAdd:
      lo = al + bl;
      hi = ah + bh;
      break;
    case ExprKind::kSub:
      lo = al - bh;
      hi = ah - bl;
      break;
    case ExprKind::kMul: {
      const __int128 candidates[4] = {al * bl, al * bh, ah * bl, ah * bh};
      lo = *std::min_element(candidates, candidates + 4);
      hi = *std::max_element(candidates, candidates + 4);
      break;
    }
    default:
      return Status::Internal("unreachable expr kind");
  }
  if (!FitsInt64(lo) || !FitsInt64(hi)) {
    return Status::OverflowRisk("expression may overflow int64");
  }
  return ValueBounds{static_cast<int64_t>(lo), static_cast<int64_t>(hi)};
}

}  // namespace bipie
