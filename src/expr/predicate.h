// Filter evaluation (§3, "Filter" component).
//
// Evaluates `column <op> literal` (and conjunctions thereof, via
// AndSelection) over a window of an encoded column, producing a selection
// byte vector — 0xFF selected / 0x00 rejected, the layout SIMD comparisons
// emit natively.
//
// Predicates are evaluated *in the encoded domain* where possible:
//  * bit-packed columns compare unpacked offsets against the literal
//    rebased by the frame-of-reference (no full decode to int64);
//  * dictionary columns precompute a per-id verdict table once and map the
//    id stream through it;
//  * RLE columns evaluate once per run.
#ifndef BIPIE_EXPR_PREDICATE_H_
#define BIPIE_EXPR_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/encoded_column.h"

namespace bipie {

// A maximal contiguous row range with one selection verdict — the run-level
// dual of the selection byte vector (DESIGN.md §11). Rows are absolute
// segment row numbers.
struct SelInterval {
  size_t start = 0;
  size_t len = 0;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kBetween };

// Scalar verdict, used for dictionary tables and RLE runs. For kBetween,
// `literal` is the inclusive lower bound and `literal2` the inclusive upper.
bool CompareInt64(int64_t value, CompareOp op, int64_t literal,
                  int64_t literal2 = 0);

// A compiled predicate bound to one column. Reusable across batches and
// segments (per-segment state is rebuilt lazily).
class ColumnPredicate {
 public:
  ColumnPredicate(std::string column_name, CompareOp op, int64_t literal)
      : column_(std::move(column_name)), op_(op), literal_(literal) {}

  // col BETWEEN lo AND hi (inclusive): one decode pass instead of two
  // stacked comparisons.
  static ColumnPredicate Between(std::string column_name, int64_t lo,
                                 int64_t hi) {
    ColumnPredicate p(std::move(column_name), CompareOp::kBetween, lo);
    p.literal2_ = hi;
    return p;
  }

  // String literal form for dictionary-encoded string columns; the literal
  // is resolved against each segment's dictionary.
  ColumnPredicate(std::string column_name, CompareOp op,
                  std::string string_literal)
      : column_(std::move(column_name)),
        op_(op),
        literal_(0),
        string_literal_(std::move(string_literal)),
        is_string_(true) {}

  const std::string& column_name() const { return column_; }
  CompareOp op() const { return op_; }
  const std::string& string_literal() const { return string_literal_; }
  int64_t literal() const { return literal_; }
  int64_t literal2() const { return literal2_; }

  // Evaluates rows [start, start + n) of `col`, writing n selection bytes.
  // sel_out needs 32 bytes of write slack (AlignedBuffer padding).
  //
  // For kByteSliced columns, `use_byteslice_kernel` selects between the
  // early-pruning plane kernels (vector/byteslice_scan.h) and the
  // assemble-then-compare fallback — the strategy layer's admission
  // decision (DESIGN.md §16). Both produce identical bytes; callers that
  // never see byteslice columns (or want the reference path, like the
  // differential oracle) keep the default.
  Status Evaluate(const EncodedColumn& col, size_t start, size_t n,
                  uint8_t* sel_out, bool use_byteslice_kernel = false) const;

  // True when the segment's metadata proves every row fails the predicate.
  bool EliminatesSegment(const EncodedColumn& col) const;

  // Metadata dual of EliminatesSegment: true when min/max prove every row
  // of `col` satisfies the predicate, so run-level execution can drop the
  // filter without touching a single encoded byte.
  bool MatchesAllRows(const EncodedColumn& col) const;

  // Run verdicts instead of bytes: for an RLE column, appends the selected
  // row intervals of rows [start, start + n) to `out` (clipped to the
  // window, ascending, non-overlapping, adjacent intervals merged). One
  // CompareInt64 per overlapping run, zero per-row work. Returns
  // kNotSupported for non-RLE encodings and string literals — callers fall
  // back to the byte-vector Evaluate path.
  Status EvaluateRuns(const EncodedColumn& col, size_t start, size_t n,
                      std::vector<SelInterval>* out) const;

 private:
  std::string column_;
  CompareOp op_;
  int64_t literal_;
  int64_t literal2_ = 0;  // kBetween upper bound
  std::string string_literal_;
  bool is_string_ = false;
};

namespace internal {
// Compares unpacked unsigned words against a literal; used by the
// bit-packed fast path and exposed for tests. word_bytes in {1,2,4,8}.
// literal_in_domain must already be clamped into the unsigned offset domain.
// kBetween is not accepted here; use CompareUnsignedWordsRange.
void CompareUnsignedWords(const void* values, size_t n, int word_bytes,
                          CompareOp op, uint64_t literal, uint8_t* sel_out);

// sel_out[i] = lo <= values[i] <= hi (inclusive, unsigned domain).
void CompareUnsignedWordsRange(const void* values, size_t n, int word_bytes,
                               uint64_t lo, uint64_t hi, uint8_t* sel_out);
}  // namespace internal

}  // namespace bipie

#endif  // BIPIE_EXPR_PREDICATE_H_
