// Scalar-expression evaluation over decoded batches.
//
// This layer stands in for MemSQL's LLVM-generated code: per §3 "generated
// functions always operate on decompressed column data", and per §6.3 "the
// code generated at runtime does not use SIMD". bipie keeps both contracts:
// expressions are evaluated by statically compiled scalar loops over decoded
// int64 arrays, one batch at a time, producing decoded int64 outputs that
// feed the aggregation strategies.
//
// Expressions also carry interval arithmetic (EvalBounds) so the scan can
// prove, from segment metadata, that sums cannot overflow int64 — the §2.1
// overflow-check elision.
#ifndef BIPIE_EXPR_ARITHMETIC_H_
#define BIPIE_EXPR_ARITHMETIC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace bipie {

enum class ExprKind { kColumn, kConstant, kAdd, kSub, kMul };

// Inclusive value interval, used for overflow proofs.
struct ValueBounds {
  int64_t min = 0;
  int64_t max = 0;
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// Batch-scoped memoization of evaluated subtrees, keyed by node identity.
// Queries often share subtrees across aggregates (e.g. TPC-H Q1's charge
// contains disc_price); registering each evaluated aggregate expression
// lets later evaluations consume the cached array instead of recomputing.
// Entries must stay valid for the lifetime of the batch.
class ExprCache {
 public:
  void Clear() { entries_.clear(); }
  void Put(const Expr* node, const int64_t* values) {
    entries_.emplace_back(node, values);
  }
  const int64_t* Find(const Expr* node) const {
    for (const auto& [k, v] : entries_) {
      if (k == node) return v;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<const Expr*, const int64_t*>> entries_;
};

// An immutable arithmetic expression tree over table columns.
class Expr {
 public:
  static ExprPtr Column(int column_index);
  static ExprPtr Constant(int64_t value);
  static ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);

  ExprKind kind() const { return kind_; }
  int column_index() const { return column_index_; }
  int64_t constant() const { return constant_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  // All column indices referenced by this tree (deduplicated).
  void CollectColumns(std::vector<int>* out) const;

  // Evaluates over a batch. columns[idx] must be a decoded int64 array for
  // every referenced column index. Scalar loops by design (see above).
  // `cache` (optional) supplies already-evaluated subtree results by node
  // identity; operands found there are consumed directly.
  void Evaluate(const int64_t* const* columns, size_t n, int64_t* out,
                const ExprCache* cache = nullptr) const;

  // Interval arithmetic: given per-column bounds, computes the result
  // bounds. Fails with OverflowRisk if any intermediate can exceed int64.
  Result<ValueBounds> EvalBounds(
      const std::vector<ValueBounds>& column_bounds) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kConstant;
  int column_index_ = -1;
  int64_t constant_ = 0;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

}  // namespace bipie

#endif  // BIPIE_EXPR_ARITHMETIC_H_
