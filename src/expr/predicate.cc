#include "expr/predicate.h"

#include <immintrin.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/failpoint.h"
#include "common/memory_tracker.h"
#include "common/cpu.h"
#include "encoding/bitpack.h"
#include "encoding/byteslice.h"
#include "vector/byteslice_scan.h"
#include "vector/selection_vector.h"

namespace bipie {

bool CompareInt64(int64_t value, CompareOp op, int64_t literal,
                  int64_t literal2) {
  switch (op) {
    case CompareOp::kBetween:
      return value >= literal && value <= literal2;
    case CompareOp::kEq:
      return value == literal;
    case CompareOp::kNe:
      return value != literal;
    case CompareOp::kLt:
      return value < literal;
    case CompareOp::kLe:
      return value <= literal;
    case CompareOp::kGt:
      return value > literal;
    case CompareOp::kGe:
      return value >= literal;
  }
  return false;
}

namespace internal {

namespace {

template <typename T>
void CompareScalar(const T* values, size_t n, CompareOp op, uint64_t literal,
                   uint8_t* sel) {
  const uint64_t lit = literal;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = values[i];
    bool hit = false;
    switch (op) {
      case CompareOp::kEq: hit = v == lit; break;
      case CompareOp::kNe: hit = v != lit; break;
      case CompareOp::kLt: hit = v < lit; break;
      case CompareOp::kLe: hit = v <= lit; break;
      case CompareOp::kGt: hit = v > lit; break;
      case CompareOp::kGe: hit = v >= lit; break;
      case CompareOp::kBetween: break;  // unreachable (range kernel)
    }
    sel[i] = hit ? kRowSelected : kRowRejected;
  }
}

// Unsigned comparison masks via the sign-bias trick (AVX2 only has signed
// compares). Returns lanes of all-ones where values[lane] `op` literal.
BIPIE_ALWAYS_INLINE __m256i MaskU8(__m256i x, __m256i lit_biased,
                                   __m256i lit_raw, CompareOp op) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i xb = _mm256_xor_si256(x, bias);
  switch (op) {
    case CompareOp::kEq:
      return _mm256_cmpeq_epi8(x, lit_raw);
    case CompareOp::kNe:
      return _mm256_xor_si256(_mm256_cmpeq_epi8(x, lit_raw),
                              _mm256_set1_epi8(-1));
    case CompareOp::kGt:
      return _mm256_cmpgt_epi8(xb, lit_biased);
    case CompareOp::kLe:
      return _mm256_xor_si256(_mm256_cmpgt_epi8(xb, lit_biased),
                              _mm256_set1_epi8(-1));
    case CompareOp::kLt:
      return _mm256_cmpgt_epi8(lit_biased, xb);
    case CompareOp::kGe:
      return _mm256_xor_si256(_mm256_cmpgt_epi8(lit_biased, xb),
                              _mm256_set1_epi8(-1));
    case CompareOp::kBetween:
      break;  // unreachable (range kernel)
  }
  return _mm256_setzero_si256();
}

BIPIE_ALWAYS_INLINE __m256i MaskU16(__m256i x, __m256i lit_biased,
                                    __m256i lit_raw, CompareOp op) {
  const __m256i bias = _mm256_set1_epi16(static_cast<short>(0x8000));
  const __m256i xb = _mm256_xor_si256(x, bias);
  switch (op) {
    case CompareOp::kEq:
      return _mm256_cmpeq_epi16(x, lit_raw);
    case CompareOp::kNe:
      return _mm256_xor_si256(_mm256_cmpeq_epi16(x, lit_raw),
                              _mm256_set1_epi8(-1));
    case CompareOp::kGt:
      return _mm256_cmpgt_epi16(xb, lit_biased);
    case CompareOp::kLe:
      return _mm256_xor_si256(_mm256_cmpgt_epi16(xb, lit_biased),
                              _mm256_set1_epi8(-1));
    case CompareOp::kLt:
      return _mm256_cmpgt_epi16(lit_biased, xb);
    case CompareOp::kGe:
      return _mm256_xor_si256(_mm256_cmpgt_epi16(lit_biased, xb),
                              _mm256_set1_epi8(-1));
    case CompareOp::kBetween:
      break;  // unreachable (range kernel)
  }
  return _mm256_setzero_si256();
}

BIPIE_ALWAYS_INLINE __m256i MaskU32(__m256i x, __m256i lit_biased,
                                    __m256i lit_raw, CompareOp op) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i xb = _mm256_xor_si256(x, bias);
  switch (op) {
    case CompareOp::kEq:
      return _mm256_cmpeq_epi32(x, lit_raw);
    case CompareOp::kNe:
      return _mm256_xor_si256(_mm256_cmpeq_epi32(x, lit_raw),
                              _mm256_set1_epi8(-1));
    case CompareOp::kGt:
      return _mm256_cmpgt_epi32(xb, lit_biased);
    case CompareOp::kLe:
      return _mm256_xor_si256(_mm256_cmpgt_epi32(xb, lit_biased),
                              _mm256_set1_epi8(-1));
    case CompareOp::kLt:
      return _mm256_cmpgt_epi32(lit_biased, xb);
    case CompareOp::kGe:
      return _mm256_xor_si256(_mm256_cmpgt_epi32(lit_biased, xb),
                              _mm256_set1_epi8(-1));
    case CompareOp::kBetween:
      break;  // unreachable (range kernel)
  }
  return _mm256_setzero_si256();
}

void CompareU8Avx2(const uint8_t* values, size_t n, CompareOp op,
                   uint64_t literal, uint8_t* sel) {
  const __m256i lit_raw = _mm256_set1_epi8(static_cast<char>(literal));
  const __m256i lit_biased =
      _mm256_xor_si256(lit_raw, _mm256_set1_epi8(static_cast<char>(0x80)));
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel + i),
                        MaskU8(x, lit_biased, lit_raw, op));
  }
  CompareScalar(values + i, n - i, op, literal, sel + i);
}

void CompareU16Avx2(const uint16_t* values, size_t n, CompareOp op,
                    uint64_t literal, uint8_t* sel) {
  const __m256i lit_raw = _mm256_set1_epi16(static_cast<short>(literal));
  const __m256i lit_biased = _mm256_xor_si256(
      lit_raw, _mm256_set1_epi16(static_cast<short>(0x8000)));
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i m0 =
        MaskU16(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + i)),
                lit_biased, lit_raw, op);
    const __m256i m1 =
        MaskU16(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + i + 16)),
                lit_biased, lit_raw, op);
    // packs keeps 0x0000/0xFFFF masks intact as 0x00/0xFF bytes.
    __m256i bytes = _mm256_packs_epi16(m0, m1);
    bytes = _mm256_permute4x64_epi64(bytes, 0xD8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel + i), bytes);
  }
  CompareScalar(values + i, n - i, op, literal, sel + i);
}

void CompareU32Avx2(const uint32_t* values, size_t n, CompareOp op,
                    uint64_t literal, uint8_t* sel) {
  const __m256i lit_raw = _mm256_set1_epi32(static_cast<int>(literal));
  const __m256i lit_biased = _mm256_xor_si256(
      lit_raw, _mm256_set1_epi32(static_cast<int>(0x80000000u)));
  const __m256i fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i m[4];
    for (int k = 0; k < 4; ++k) {
      m[k] = MaskU32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                         values + i + 8 * k)),
                     lit_biased, lit_raw, op);
    }
    const __m256i p01 = _mm256_packs_epi32(m[0], m[1]);
    const __m256i p23 = _mm256_packs_epi32(m[2], m[3]);
    __m256i bytes = _mm256_packs_epi16(p01, p23);
    bytes = _mm256_permutevar8x32_epi32(bytes, fix);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel + i), bytes);
  }
  CompareScalar(values + i, n - i, op, literal, sel + i);
}

}  // namespace

void CompareUnsignedWordsRange(const void* values, size_t n, int word_bytes,
                               uint64_t lo, uint64_t hi, uint8_t* sel_out) {
  // lo <= x <= hi  <=>  (x - lo) <= (hi - lo) in modular unsigned
  // arithmetic, but the SIMD tier below works directly on the raw values
  // with two fused masks per vector for clarity; the scalar path uses the
  // direct comparison.
  const bool avx2 = CurrentIsaTier() >= IsaTier::kAvx2;
  switch (word_bytes) {
    case 1: {
      const auto* v = static_cast<const uint8_t*>(values);
      if (avx2 && hi <= 0xFF) {
        // min/max clamp: x in range <=> max(min(x, hi), lo) == x is two
        // ops; equivalently clamp and compare.
        const __m256i vlo = _mm256_set1_epi8(static_cast<char>(lo));
        const __m256i vhi = _mm256_set1_epi8(static_cast<char>(hi));
        size_t i = 0;
        for (; i + 32 <= n; i += 32) {
          const __m256i x = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(v + i));
          const __m256i clamped =
              _mm256_max_epu8(_mm256_min_epu8(x, vhi), vlo);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel_out + i),
                              _mm256_cmpeq_epi8(clamped, x));
        }
        for (; i < n; ++i) {
          sel_out[i] =
              v[i] >= lo && v[i] <= hi ? kRowSelected : kRowRejected;
        }
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        sel_out[i] = v[i] >= lo && v[i] <= hi ? kRowSelected : kRowRejected;
      }
      return;
    }
    case 2: {
      const auto* v = static_cast<const uint16_t*>(values);
      if (avx2 && hi <= 0xFFFF) {
        const __m256i vlo = _mm256_set1_epi16(static_cast<short>(lo));
        const __m256i vhi = _mm256_set1_epi16(static_cast<short>(hi));
        size_t i = 0;
        for (; i + 32 <= n; i += 32) {
          __m256i m[2];
          for (int k = 0; k < 2; ++k) {
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(v + i + 16 * k));
            const __m256i clamped =
                _mm256_max_epu16(_mm256_min_epu16(x, vhi), vlo);
            m[k] = _mm256_cmpeq_epi16(clamped, x);
          }
          __m256i bytes = _mm256_packs_epi16(m[0], m[1]);
          bytes = _mm256_permute4x64_epi64(bytes, 0xD8);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel_out + i),
                              bytes);
        }
        for (; i < n; ++i) {
          sel_out[i] =
              v[i] >= lo && v[i] <= hi ? kRowSelected : kRowRejected;
        }
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        sel_out[i] = v[i] >= lo && v[i] <= hi ? kRowSelected : kRowRejected;
      }
      return;
    }
    case 4: {
      const auto* v = static_cast<const uint32_t*>(values);
      if (avx2 && hi <= 0xFFFFFFFFULL) {
        const __m256i vlo = _mm256_set1_epi32(static_cast<int>(lo));
        const __m256i vhi = _mm256_set1_epi32(static_cast<int>(hi));
        const __m256i fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        size_t i = 0;
        for (; i + 32 <= n; i += 32) {
          __m256i m[4];
          for (int k = 0; k < 4; ++k) {
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(v + i + 8 * k));
            const __m256i clamped =
                _mm256_max_epu32(_mm256_min_epu32(x, vhi), vlo);
            m[k] = _mm256_cmpeq_epi32(clamped, x);
          }
          const __m256i p01 = _mm256_packs_epi32(m[0], m[1]);
          const __m256i p23 = _mm256_packs_epi32(m[2], m[3]);
          __m256i bytes = _mm256_packs_epi16(p01, p23);
          bytes = _mm256_permutevar8x32_epi32(bytes, fix);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel_out + i),
                              bytes);
        }
        for (; i < n; ++i) {
          sel_out[i] =
              v[i] >= lo && v[i] <= hi ? kRowSelected : kRowRejected;
        }
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        sel_out[i] = v[i] >= lo && v[i] <= hi ? kRowSelected : kRowRejected;
      }
      return;
    }
    case 8: {
      const auto* v = static_cast<const uint64_t*>(values);
      for (size_t i = 0; i < n; ++i) {
        sel_out[i] = v[i] >= lo && v[i] <= hi ? kRowSelected : kRowRejected;
      }
      return;
    }
    default:
      BIPIE_DCHECK(false);
  }
}

void CompareUnsignedWords(const void* values, size_t n, int word_bytes,
                          CompareOp op, uint64_t literal, uint8_t* sel_out) {
  BIPIE_DCHECK(op != CompareOp::kBetween);
  const bool avx2 = CurrentIsaTier() >= IsaTier::kAvx2;
  switch (word_bytes) {
    case 1:
      if (avx2 && literal <= 0xFF) {
        CompareU8Avx2(static_cast<const uint8_t*>(values), n, op, literal,
                      sel_out);
      } else {
        CompareScalar(static_cast<const uint8_t*>(values), n, op, literal,
                      sel_out);
      }
      return;
    case 2:
      if (avx2 && literal <= 0xFFFF) {
        CompareU16Avx2(static_cast<const uint16_t*>(values), n, op, literal,
                       sel_out);
      } else {
        CompareScalar(static_cast<const uint16_t*>(values), n, op, literal,
                      sel_out);
      }
      return;
    case 4:
      if (avx2 && literal <= 0xFFFFFFFFULL) {
        CompareU32Avx2(static_cast<const uint32_t*>(values), n, op, literal,
                       sel_out);
      } else {
        CompareScalar(static_cast<const uint32_t*>(values), n, op, literal,
                      sel_out);
      }
      return;
    case 8:
      CompareScalar(static_cast<const uint64_t*>(values), n, op, literal,
                    sel_out);
      return;
    default:
      BIPIE_DCHECK(false);
  }
}

}  // namespace internal

namespace {

// Outcome of rebasing a literal into a column's unsigned offset domain.
enum class RebasedVerdict { kAllRows, kNoRows, kCompare };

RebasedVerdict RebaseLiteral(CompareOp op, int64_t literal, int64_t base,
                             int64_t max, uint64_t* rebased) {
  // Offsets span [0, max - base].
  if (literal < base) {
    switch (op) {
      case CompareOp::kLt:
      case CompareOp::kLe:
      case CompareOp::kEq:
        return RebasedVerdict::kNoRows;
      default:
        return RebasedVerdict::kAllRows;
    }
  }
  if (literal > max) {
    switch (op) {
      case CompareOp::kLt:
      case CompareOp::kLe:
        return RebasedVerdict::kAllRows;
      case CompareOp::kNe:
        return RebasedVerdict::kAllRows;
      default:
        return RebasedVerdict::kNoRows;
    }
  }
  *rebased = static_cast<uint64_t>(literal) - static_cast<uint64_t>(base);
  return RebasedVerdict::kCompare;
}

// Per-thread unpack scratch, registered with the tracker re-home list: it
// outlives any one query, so a query tracker scope exiting must be able to
// move its retained charge back to the process root.
AlignedBuffer& UnpackScratch() {
  thread_local AlignedBuffer scratch;
  thread_local const bool registered = [] {
    RegisterThreadScratchBuffer(&scratch);
    return true;
  }();
  (void)registered;
  return scratch;
}

}  // namespace

Status ColumnPredicate::Evaluate(const EncodedColumn& col, size_t start,
                                 size_t n, uint8_t* sel_out,
                                 bool use_byteslice_kernel) const {
  switch (col.encoding()) {
    case Encoding::kByteSliced: {
      const int w = col.bit_width();
      const int np = ByteSlicePlanes(w);
      if (op_ == CompareOp::kBetween) {
        // Intersect [literal_, literal2_] with the column domain, exactly
        // like the bit-packed path.
        if (literal2_ < col.meta().min || literal_ > col.meta().max ||
            literal_ > literal2_) {
          std::memset(sel_out, kRowRejected, n);
          return Status::OK();
        }
        if (literal_ <= col.meta().min && literal2_ >= col.meta().max) {
          std::memset(sel_out, kRowSelected, n);
          return Status::OK();
        }
        const int64_t lo_clamped = std::max(literal_, col.meta().min);
        const int64_t hi_clamped = std::min(literal2_, col.meta().max);
        const uint64_t lo_off = static_cast<uint64_t>(lo_clamped) -
                                static_cast<uint64_t>(col.base());
        const uint64_t hi_off = static_cast<uint64_t>(hi_clamped) -
                                static_cast<uint64_t>(col.base());
        if (use_byteslice_kernel) {
          // Plane kernels work on the stored planes directly: no scratch,
          // no decode.
          ByteSliceCompare(col.packed_data(), col.num_rows(), np, start, n,
                           CompareOp::kBetween, ByteSliceShift(lo_off, w),
                           ByteSliceShift(hi_off, w), sel_out);
          return Status::OK();
        }
        const int word = SmallestWordBytes(w);
        if (BIPIE_FAILPOINT("scan/byteslice_scratch_alloc") ||
            !UnpackScratch().TryResize(n * static_cast<size_t>(word))) {
          return Status::ResourceExhausted(
              "byteslice decode scratch allocation failed");
        }
        col.UnpackIds(start, n, UnpackScratch().data(), word);
        internal::CompareUnsignedWordsRange(UnpackScratch().data(), n, word,
                                            lo_off, hi_off, sel_out);
        return Status::OK();
      }
      uint64_t rebased = 0;
      switch (RebaseLiteral(op_, literal_, col.base(), col.meta().max,
                            &rebased)) {
        case RebasedVerdict::kAllRows:
          std::memset(sel_out, kRowSelected, n);
          return Status::OK();
        case RebasedVerdict::kNoRows:
          std::memset(sel_out, kRowRejected, n);
          return Status::OK();
        case RebasedVerdict::kCompare:
          break;
      }
      if (use_byteslice_kernel) {
        ByteSliceCompare(col.packed_data(), col.num_rows(), np, start, n,
                         op_, ByteSliceShift(rebased, w), 0, sel_out);
        return Status::OK();
      }
      const int word = SmallestWordBytes(w);
      if (BIPIE_FAILPOINT("scan/byteslice_scratch_alloc") ||
          !UnpackScratch().TryResize(n * static_cast<size_t>(word))) {
        return Status::ResourceExhausted(
            "byteslice decode scratch allocation failed");
      }
      col.UnpackIds(start, n, UnpackScratch().data(), word);
      internal::CompareUnsignedWords(UnpackScratch().data(), n, word, op_,
                                     rebased, sel_out);
      return Status::OK();
    }
    case Encoding::kBitPacked: {
      if (op_ == CompareOp::kBetween) {
        // Intersect [literal_, literal2_] with the column domain.
        if (literal2_ < col.meta().min || literal_ > col.meta().max ||
            literal_ > literal2_) {
          std::memset(sel_out, kRowRejected, n);
          return Status::OK();
        }
        if (literal_ <= col.meta().min && literal2_ >= col.meta().max) {
          std::memset(sel_out, kRowSelected, n);
          return Status::OK();
        }
        const int64_t lo_clamped = std::max(literal_, col.meta().min);
        const int64_t hi_clamped = std::min(literal2_, col.meta().max);
        const uint64_t lo_off = static_cast<uint64_t>(lo_clamped) -
                                static_cast<uint64_t>(col.base());
        const uint64_t hi_off = static_cast<uint64_t>(hi_clamped) -
                                static_cast<uint64_t>(col.base());
        const int word = SmallestWordBytes(col.bit_width());
        UnpackScratch().Resize(n * word);
        col.UnpackIds(start, n, UnpackScratch().data(), word);
        internal::CompareUnsignedWordsRange(UnpackScratch().data(), n, word,
                                            lo_off, hi_off, sel_out);
        return Status::OK();
      }
      uint64_t rebased = 0;
      switch (RebaseLiteral(op_, literal_, col.base(), col.meta().max,
                            &rebased)) {
        case RebasedVerdict::kAllRows:
          std::memset(sel_out, kRowSelected, n);
          return Status::OK();
        case RebasedVerdict::kNoRows:
          std::memset(sel_out, kRowRejected, n);
          return Status::OK();
        case RebasedVerdict::kCompare:
          break;
      }
      const int word = SmallestWordBytes(col.bit_width());
      UnpackScratch().Resize(n * word);
      col.UnpackIds(start, n, UnpackScratch().data(), word);
      internal::CompareUnsignedWords(UnpackScratch().data(), n, word, op_,
                                     rebased, sel_out);
      return Status::OK();
    }
    case Encoding::kDictionary: {
      // Verdict table over dictionary ids, rebuilt per evaluation window
      // (cheap relative to batch work: <= dictionary size byte writes).
      const size_t dict_size = col.id_bound();
      std::vector<uint8_t> verdict(dict_size);
      if (col.type() == ColumnType::kString) {
        const StringDictionary& dict = *col.string_dictionary();
        for (size_t id = 0; id < dict_size; ++id) {
          bool hit;
          const std::string& v = dict.value(static_cast<uint32_t>(id));
          const int cmp = v.compare(string_literal_);
          switch (op_) {
            case CompareOp::kEq: hit = cmp == 0; break;
            case CompareOp::kNe: hit = cmp != 0; break;
            case CompareOp::kLt: hit = cmp < 0; break;
            case CompareOp::kLe: hit = cmp <= 0; break;
            case CompareOp::kGt: hit = cmp > 0; break;
            case CompareOp::kGe: hit = cmp >= 0; break;
            case CompareOp::kBetween:
              return Status::NotSupported(
                  "BETWEEN on string columns is not supported");
          }
          verdict[id] = hit ? kRowSelected : kRowRejected;
        }
      } else {
        const IntDictionary& dict = *col.int_dictionary();
        for (size_t id = 0; id < dict_size; ++id) {
          verdict[id] = CompareInt64(dict.value(static_cast<uint32_t>(id)),
                                     op_, literal_, literal2_)
                            ? kRowSelected
                            : kRowRejected;
        }
      }
      const int word = SmallestWordBytes(col.bit_width());
      UnpackScratch().Resize(n * word);
      col.UnpackIds(start, n, UnpackScratch().data(), word);
      if (word == 1) {
        const uint8_t* ids = UnpackScratch().data();
        for (size_t i = 0; i < n; ++i) sel_out[i] = verdict[ids[i]];
      } else {
        BIPIE_DCHECK(word == 2);  // dictionaries are capped at 2^16 entries
        const uint16_t* ids = UnpackScratch().data_as<uint16_t>();
        for (size_t i = 0; i < n; ++i) sel_out[i] = verdict[ids[i]];
      }
      return Status::OK();
    }
    case Encoding::kDelta: {
      // Sequential representation: decode the window to int64, compare
      // directly in the logical domain.
      static thread_local std::vector<int64_t> decoded;
      decoded.resize(n);
      col.DecodeInt64(start, n, decoded.data());
      for (size_t i = 0; i < n; ++i) {
        sel_out[i] = CompareInt64(decoded[i], op_, literal_, literal2_)
                         ? kRowSelected
                         : kRowRejected;
      }
      return Status::OK();
    }
    case Encoding::kRle: {
      // One verdict per run; memset the covered stretch.
      size_t pos = 0;
      size_t covered = 0;
      for (const RleRun& run : col.runs()) {
        const size_t run_begin = pos;
        const size_t run_end = pos + run.count;
        pos = run_end;
        if (run_end <= start) continue;
        if (run_begin >= start + n) break;
        const size_t lo = run_begin < start ? start : run_begin;
        const size_t hi = run_end > start + n ? start + n : run_end;
        const bool hit = CompareInt64(static_cast<int64_t>(run.value), op_,
                                      literal_, literal2_);
        std::memset(sel_out + (lo - start),
                    hit ? kRowSelected : kRowRejected, hi - lo);
        covered += hi - lo;
      }
      BIPIE_DCHECK(covered == n);
      return Status::OK();
    }
  }
  return Status::Internal("unknown encoding");
}

bool ColumnPredicate::MatchesAllRows(const EncodedColumn& col) const {
  if (is_string_) return false;  // id-space metadata is not value-ordered
  const int64_t min = col.meta().min;
  const int64_t max = col.meta().max;
  switch (op_) {
    case CompareOp::kBetween:
      return min >= literal_ && max <= literal2_;
    case CompareOp::kEq:
      return min == max && min == literal_;
    case CompareOp::kLt:
      return max < literal_;
    case CompareOp::kLe:
      return max <= literal_;
    case CompareOp::kGt:
      return min > literal_;
    case CompareOp::kGe:
      return min >= literal_;
    case CompareOp::kNe:
      return literal_ < min || literal_ > max;
  }
  return false;
}

Status ColumnPredicate::EvaluateRuns(const EncodedColumn& col, size_t start,
                                     size_t n,
                                     std::vector<SelInterval>* out) const {
  if (col.encoding() != Encoding::kRle) {
    return Status::NotSupported("run verdicts require an RLE column");
  }
  if (is_string_) {
    return Status::NotSupported("run verdicts require an integer literal");
  }
  size_t pos = 0;
  for (const RleRun& run : col.runs()) {
    const size_t run_begin = pos;
    const size_t run_end = pos + run.count;
    pos = run_end;
    if (run_end <= start) continue;
    if (run_begin >= start + n) break;
    if (!CompareInt64(static_cast<int64_t>(run.value), op_, literal_,
                      literal2_)) {
      continue;
    }
    const size_t lo = run_begin < start ? start : run_begin;
    const size_t hi = run_end > start + n ? start + n : run_end;
    if (!out->empty() && out->back().start + out->back().len == lo) {
      out->back().len += hi - lo;  // adjacent selected runs merge
    } else {
      out->push_back({lo, hi - lo});
    }
  }
  return Status::OK();
}

bool ColumnPredicate::EliminatesSegment(const EncodedColumn& col) const {
  if (is_string_) return false;  // id-space metadata is not value-ordered
  const int64_t min = col.meta().min;
  const int64_t max = col.meta().max;
  switch (op_) {
    case CompareOp::kBetween:
      return literal2_ < min || literal_ > max || literal_ > literal2_;
    case CompareOp::kEq:
      return literal_ < min || literal_ > max;
    case CompareOp::kLt:
      return min >= literal_;
    case CompareOp::kLe:
      return min > literal_;
    case CompareOp::kGt:
      return max <= literal_;
    case CompareOp::kGe:
      return max < literal_;
    case CompareOp::kNe:
      return min == max && min == literal_;
  }
  return false;
}

}  // namespace bipie
