// TPC-H Query 1 over the bipie columnstore (§6.3).
//
//   SELECT l_returnflag, l_linestatus,
//          sum(l_quantity), sum(l_extendedprice),
//          sum(l_extendedprice * (1 - l_discount)),
//          sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)),
//          avg(l_quantity), avg(l_extendedprice), avg(l_discount),
//          count(*)
//   FROM lineitem
//   WHERE l_shipdate <= date '1998-12-01' - interval '90' day
//   GROUP BY l_returnflag, l_linestatus
//   ORDER BY l_returnflag, l_linestatus;
//
// Decimals are scaled integers: the (1 - l_discount) and (1 + l_tax)
// factors become (100 - discount_hundredths) and (100 + tax_hundredths),
// so disc_price sums carry scale 1e-4 and charge sums scale 1e-6.
#ifndef BIPIE_TPCH_Q1_H_
#define BIPIE_TPCH_Q1_H_

#include <string>

#include "core/scan.h"
#include "tpch/lineitem.h"

namespace bipie {

// Aggregate slot order in the Q1 QuerySpec.
enum Q1Aggregate : int {
  kQ1SumQty = 0,
  kQ1SumBasePrice = 1,
  kQ1SumDiscPrice = 2,
  kQ1SumCharge = 3,
  kQ1AvgQty = 4,
  kQ1AvgPrice = 5,
  kQ1AvgDisc = 6,
  kQ1Count = 7,
};

// Builds the Q1 query spec against a lineitem table created by
// MakeLineitemTable.
QuerySpec MakeQ1Query(const Table& lineitem);

// Runs Q1 through the BIPie scan (optionally with forced strategies).
Result<QueryResult> RunQ1(const Table& lineitem, ScanOptions options = {});

// Renders the result the way psql would print Q1 (decimal scaling applied).
std::string FormatQ1Result(const QueryResult& result);

}  // namespace bipie

#endif  // BIPIE_TPCH_Q1_H_
