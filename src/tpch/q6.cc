#include "tpch/q6.h"

namespace bipie {

QuerySpec MakeQ6Query(const Table& lineitem) {
  const int ext = lineitem.FindColumn("l_extendedprice");
  const int disc = lineitem.FindColumn("l_discount");
  BIPIE_DCHECK(ext >= 0 && disc >= 0);

  QuerySpec query;
  query.aggregates = {
      AggregateSpec::SumExpr(
          Expr::Mul(Expr::Column(ext), Expr::Column(disc))),
      AggregateSpec::Count(),
  };
  // Date range and BETWEEN use the fused range predicate: one decode pass
  // per column instead of two.
  query.filters.push_back(
      ColumnPredicate::Between("l_shipdate", kQ6DateLo, kQ6DateHi - 1));
  // BETWEEN 0.05 AND 0.07 in hundredths.
  query.filters.push_back(ColumnPredicate::Between("l_discount", 5, 7));
  // quantity < 24 units, stored in hundredths.
  query.filters.emplace_back("l_quantity", CompareOp::kLt, int64_t{2400});
  return query;
}

Result<QueryResult> RunQ6(const Table& lineitem, ScanOptions options) {
  return ExecuteQuery(lineitem, MakeQ6Query(lineitem), std::move(options));
}

double Q6RevenueDollars(const QueryResult& result) {
  if (result.rows.empty()) return 0.0;
  // extendedprice(1e-2) * discount(1e-2) -> 1e-4 dollars.
  return static_cast<double>(result.rows[0].sums[0]) / 1e4;
}

}  // namespace bipie
