#include "tpch/lineitem.h"

#include <string>
#include <vector>

#include "common/random.h"

namespace bipie {

Table MakeLineitemTable(const LineitemOptions& options) {
  Table table({
      {"l_quantity", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"l_extendedprice", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"l_discount", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"l_tax", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"l_returnflag", ColumnType::kString},
      {"l_linestatus", ColumnType::kString},
      {"l_shipdate", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"l_orderkey", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender appender(&table, options.segment_rows);
  Rng rng(options.seed);

  std::vector<int64_t> ints(8, 0);
  std::vector<std::string> strings(8);
  int64_t orderkey = 1;
  size_t lines_in_order = 0;
  size_t lines_total = 1 + rng.NextBounded(7);  // 1..7 lines per order

  for (size_t i = 0; i < options.num_rows; ++i) {
    if (lines_in_order == lines_total) {
      ++orderkey;
      lines_in_order = 0;
      lines_total = 1 + rng.NextBounded(7);
    }
    ++lines_in_order;

    const int64_t qty_units = rng.NextInRange(1, 50);
    const int64_t unit_price_cents = rng.NextInRange(90000, 209999);
    const int64_t shipdate = rng.NextInRange(kShipDateMin, kShipDateMax);

    // decimal(15,2) columns are stored as hundredths.
    ints[kColQuantity] = qty_units * 100;
    ints[kColExtendedPrice] = qty_units * unit_price_cents;
    ints[kColDiscount] = rng.NextInRange(0, 10);
    ints[kColTax] = rng.NextInRange(0, 8);
    ints[kColShipDate] = shipdate;
    ints[kColOrderKey] = orderkey;

    // TPC-H correlation: lines received by 1995-06-17 are returnable
    // (flag A or R); newer lines carry N. Line status flips from F to O at
    // the same date. Q1's four populated groups (A/F, N/F, N/O, R/F)
    // emerge from this rule, while the dictionaries make 3 x 2 = 6 groups
    // possible — exactly the §6.3 setup.
    const bool old_line = shipdate <= kStatusSwitchDate;
    if (old_line) {
      strings[kColReturnFlag] = rng.NextBernoulli(0.5) ? "A" : "R";
    } else {
      strings[kColReturnFlag] = "N";
    }
    // A thin band of F-status lines after the switch keeps the N/F group
    // populated, as in real TPC-H (receipt lags shipment).
    const bool status_f = shipdate <= kStatusSwitchDate + 60 &&
                          (old_line || rng.NextBernoulli(0.5));
    strings[kColLineStatus] = status_f ? "F" : "O";

    appender.AppendRow(ints, strings);
  }
  appender.Flush();
  return table;
}

}  // namespace bipie
