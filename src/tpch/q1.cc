#include "tpch/q1.h"

#include <cinttypes>
#include <cstdio>

namespace bipie {

QuerySpec MakeQ1Query(const Table& lineitem) {
  const int ext = lineitem.FindColumn("l_extendedprice");
  const int disc = lineitem.FindColumn("l_discount");
  const int tax = lineitem.FindColumn("l_tax");
  BIPIE_DCHECK(ext >= 0 && disc >= 0 && tax >= 0);

  // (1 - l_discount) -> (100 - disc) at scale 1e-2; similarly for tax.
  ExprPtr disc_price = Expr::Mul(
      Expr::Column(ext), Expr::Sub(Expr::Constant(100), Expr::Column(disc)));
  ExprPtr charge = Expr::Mul(
      disc_price, Expr::Add(Expr::Constant(100), Expr::Column(tax)));

  QuerySpec query;
  query.group_by = {"l_returnflag", "l_linestatus"};
  query.aggregates = {
      AggregateSpec::Sum("l_quantity"),
      AggregateSpec::Sum("l_extendedprice"),
      AggregateSpec::SumExpr(disc_price),
      AggregateSpec::SumExpr(charge),
      AggregateSpec::Avg("l_quantity"),
      AggregateSpec::Avg("l_extendedprice"),
      AggregateSpec::Avg("l_discount"),
      AggregateSpec::Count(),
  };
  query.filters.emplace_back("l_shipdate", CompareOp::kLe, kQ1CutoffDate);
  return query;
}

Result<QueryResult> RunQ1(const Table& lineitem, ScanOptions options) {
  return ExecuteQuery(lineitem, MakeQ1Query(lineitem), std::move(options));
}

std::string FormatQ1Result(const QueryResult& result) {
  std::string out;
  out +=
      "flag status |      sum_qty |   sum_base_price |   sum_disc_price |"
      "       sum_charge | avg_qty | avg_price | avg_disc |    count\n";
  char line[512];
  for (size_t r = 0; r < result.rows.size(); ++r) {
    const ResultRow& row = result.rows[r];
    // Scales: qty/price hundredths; disc_price 1e-4; charge 1e-6;
    // discount hundredths.
    const double sum_qty = static_cast<double>(row.sums[kQ1SumQty]) / 100.0;
    const double sum_base =
        static_cast<double>(row.sums[kQ1SumBasePrice]) / 100.0;
    const double sum_disc_price =
        static_cast<double>(row.sums[kQ1SumDiscPrice]) / 10000.0;
    const double sum_charge =
        static_cast<double>(row.sums[kQ1SumCharge]) / 1e6;
    const double cnt = static_cast<double>(row.count);
    std::snprintf(line, sizeof(line),
                  "%4s %6s | %12.2f | %16.2f | %16.2f | %16.2f | %7.2f | "
                  "%9.2f | %8.4f | %8" PRIu64 "\n",
                  row.group[0].string_value.c_str(),
                  row.group[1].string_value.c_str(), sum_qty, sum_base,
                  sum_disc_price, sum_charge,
                  cnt == 0 ? 0 : sum_qty / cnt,
                  cnt == 0 ? 0 : sum_base / cnt,
                  cnt == 0
                      ? 0
                      : static_cast<double>(row.sums[kQ1AvgDisc]) / cnt /
                            100.0,
                  row.count);
    out += line;
  }
  return out;
}

}  // namespace bipie
