// Deterministic TPC-H lineitem generator (Q1 columns).
//
// Substitutes dbgen with an in-repo generator preserving everything Query 1
// is sensitive to (§6.3):
//  * l_returnflag in {A, N, R} and l_linestatus in {O, F}, correlated with
//    l_shipdate as in TPC-H (flag = R/A for old lines, N for recent;
//    status = F before 1995-06-17, O after);
//  * l_shipdate uniform over ~7 years so the Q1 filter at
//    date '1998-12-01' - 90 days selects ~98% of rows;
//  * l_quantity in [1, 50];
//  * l_extendedprice derived from quantity and a price scale (stored as
//    cents, i.e. decimal(15,2) scaled by 100);
//  * l_discount in [0.00, 0.10] and l_tax in [0.00, 0.08] (scaled by 100).
//
// Decimals are fixed-point int64 throughout, mirroring the §2.2 integer
// assumption. Rows are generated in l_orderkey order, which Q1 does not
// exploit (the paper likewise sorts on l_orderkey so the group column order
// is arbitrary).
#ifndef BIPIE_TPCH_LINEITEM_H_
#define BIPIE_TPCH_LINEITEM_H_

#include <cstdint>

#include "storage/table.h"

namespace bipie {

// TPC-H dates as day numbers relative to 1992-01-01.
inline constexpr int64_t kShipDateMin = 0;      // 1992-01-02
inline constexpr int64_t kShipDateMax = 2526;   // 1998-12-01
// date '1998-12-01' - interval '90' day, as a day number.
inline constexpr int64_t kQ1CutoffDate = kShipDateMax - 90;
// l_linestatus switches from F to O at 1995-06-17.
inline constexpr int64_t kStatusSwitchDate = 1263;

struct LineitemOptions {
  // Rows per TPC-H scale factor is ~6,000,500 * SF; choose rows directly.
  size_t num_rows = 1 << 20;
  size_t segment_rows = kDefaultSegmentRows;
  uint64_t seed = 19920101;
};

// Column order of the generated table.
enum LineitemColumn : int {
  kColQuantity = 0,       // decimal(15,2) as cents... stored as units*100
  kColExtendedPrice = 1,  // cents
  kColDiscount = 2,       // hundredths (0..10)
  kColTax = 3,            // hundredths (0..8)
  kColReturnFlag = 4,     // string dictionary {A, N, R}
  kColLineStatus = 5,     // string dictionary {F, O}
  kColShipDate = 6,       // day number
  kColOrderKey = 7,       // int64
};

// Generates the table with columnstore encodings chosen automatically.
Table MakeLineitemTable(const LineitemOptions& options);

}  // namespace bipie

#endif  // BIPIE_TPCH_LINEITEM_H_
