// TPC-H Query 6 over the bipie columnstore.
//
//   SELECT sum(l_extendedprice * l_discount) AS revenue
//   FROM lineitem
//   WHERE l_shipdate >= date '1994-01-01'
//     AND l_shipdate < date '1995-01-01'
//     AND l_discount BETWEEN 0.05 AND 0.07
//     AND l_quantity < 24;
//
// Not in the paper's evaluation, but squarely inside the workload shape
// (§2.3): a single scan, a conjunctive range filter selecting ~2% of rows,
// one sum, no group-by. It is the natural counterpart to Q1 — where Q1's
// ~98% selectivity exercises special-group selection, Q6's ~2% exercises
// gather selection.
//
// Scales: extendedprice in cents, discount in hundredths, so revenue
// carries scale 1e-4 dollars.
#ifndef BIPIE_TPCH_Q6_H_
#define BIPIE_TPCH_Q6_H_

#include "core/scan.h"
#include "tpch/lineitem.h"

namespace bipie {

// Day numbers for 1994-01-01 and 1995-01-01 relative to 1992-01-01.
inline constexpr int64_t kQ6DateLo = 731;
inline constexpr int64_t kQ6DateHi = 1096;

QuerySpec MakeQ6Query(const Table& lineitem);

Result<QueryResult> RunQ6(const Table& lineitem, ScanOptions options = {});

// Revenue in dollars for a Q6 result.
double Q6RevenueDollars(const QueryResult& result);

}  // namespace bipie

#endif  // BIPIE_TPCH_Q6_H_
