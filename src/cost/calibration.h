// Host calibration for the cost model (DESIGN.md §17; ROADMAP item 2).
//
// Every admission constant the planner used to hard-code (the run-span
// floor, the byteslice selectivity ceiling, the gather crossover) is really
// a ratio between primitive throughputs: cycles/row to unpack a bit-packed
// stream at some width, cycles/row/plane for the byteslice kernels,
// cycles/span for run bookkeeping, and so on. A CalibrationProfile captures
// those primitives in one place, in the paper's unit (elapsed CPU cycles
// per input row), so the CostModel can derive the decisions instead of
// guessing them.
//
// Three sources, in increasing fidelity:
//
//  * BuiltinProfile() — deterministic constants tuned to reproduce the
//    hand-tuned heuristics' decision regions. This is the profile every
//    test, golden file and CI run sees: decisions derived from it are
//    machine-independent by construction.
//  * Calibrate()     — a ~50ms micro-benchmark pass over the real kernels
//    (BitUnpack, ByteSliceCompare, CompactValues, memcpy bandwidth, ...)
//    on the running host. Entries that cannot be measured sensibly fall
//    back to the builtin value; Calibrate never fails.
//  * LoadProfile()   — a previously saved profile. The file is untrusted
//    input: wrong magic, size, version or CRC32C, and non-finite or
//    non-positive entries all reject with a structured Status (never a
//    crash), so callers fall back to builtin or recalibrate.
//
// The process-wide ActiveProfile() defaults to BuiltinProfile();
// InstallProfileForProcess swaps it (startup / test setup only — not
// thread-safe with concurrent scans, like SetIsaTierForTesting).
#ifndef BIPIE_COST_CALIBRATION_H_
#define BIPIE_COST_CALIBRATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace bipie::cost {

// Bit widths are bucketed per 8 bits (1-8, 9-16, ..., 57-64): each bucket
// corresponds to one unpack word width / byteslice plane count, which is
// where the throughput steps actually are.
inline constexpr int kNumWidthBuckets = 8;

inline int WidthBucket(int bit_width) {
  const int b = (bit_width - 1) / 8;
  return b < 0 ? 0 : (b >= kNumWidthBuckets ? kNumWidthBuckets - 1 : b);
}

// Serialized image: magic | version | payload | CRC32C(magic..payload).
inline constexpr uint32_t kProfileMagic = 0x46435042;  // "BPCF" LE
inline constexpr uint32_t kProfileVersion = 1;

// Primitive throughputs, all in cycles per row unless stated otherwise.
struct CalibrationProfile {
  // Decoding one bit-packed value into the smallest word, per width bucket.
  double unpack_cycles[kNumWidthBuckets];
  // One predicate compare over unpacked words of the bucket's width.
  double compare_cycles[kNumWidthBuckets];
  // One byteslice plane step of the early-pruning compare kernels.
  double byteslice_plane_cycles;
  // Walking one RLE run (per run, not per row).
  double rle_run_cycles;
  // Materializing run verdicts / run values to per-row form, per row.
  double rle_expand_cycles;
  // Fetching one selected row by index (random access penalty included).
  double gather_row_cycles;
  // Physically compacting one input row through the selection vector.
  double compact_row_cycles;
  // Remapping one row through the special-group id space.
  double special_group_row_cycles;
  // Aggregation kernel costs per processed row per accumulator...
  double agg_scalar_cycles;
  double agg_inregister_cycles;
  // ...except sort-based (fixed bucket-partition cost per row plus a small
  // per-sum term) and multi-aggregate (horizontal: flat per row).
  double agg_sort_cycles;
  double agg_sort_per_sum_cycles;
  double agg_multi_cycles;
  double agg_checked_cycles;
  // Evaluating one arithmetic-expression aggregate input, per row.
  double expr_eval_cycles;
  // Run-pipeline bookkeeping per intersected (group, filter) span.
  double run_span_cycles;
  // Effective sequential memory bandwidth (bytes per cycle, not cycles):
  // the roofline ceiling for the advisor's bandwidth-bound encodings.
  double mem_bytes_per_cycle;
  // Provenance: IsaTier at measurement time; 0 when builtin/derived.
  uint32_t isa_tier = 0;
  // 1 when Calibrate() measured this host, 0 for the builtin constants.
  uint32_t calibrated = 0;
};

// The deterministic fallback profile. Tuned so the model's decision
// regions match the legacy heuristics where those were right: the 3-plane
// byteslice crossover sits at selectivity 0.8 (the old ceiling) and the
// run-span crossover at ~8 rows/span for a 50% filter (the old floor).
CalibrationProfile BuiltinProfile();

struct CalibrateOptions {
  // Rows per measurement; small enough to stay cache-resident for the
  // compute kernels, large enough to amortize timer overhead.
  size_t rows = size_t{1} << 16;
  // Repetitions per primitive; the minimum is kept (micro-benchmarks are
  // noisy upward, never downward).
  int repeats = 3;
};

// Measures the profile on the running host. Never fails: entries whose
// measurement comes back non-finite or absurd keep the builtin value.
CalibrationProfile Calibrate(const CalibrateOptions& options = {});

// --- persistence (the profile file is untrusted input) ----------------------

std::vector<uint8_t> SerializeProfile(const CalibrationProfile& profile);

// Rejections: kDataLoss (size/magic/CRC mismatch), kNotSupported (version
// mismatch — recalibrate), kInvalidArgument (non-finite/non-positive or
// out-of-range entries).
Result<CalibrationProfile> ParseProfile(const uint8_t* data, size_t n);

Status SaveProfile(const CalibrationProfile& profile, const std::string& path);
Result<CalibrationProfile> LoadProfile(const std::string& path);

// Load `path` if it parses cleanly; otherwise calibrate and rewrite the
// file (best-effort — a read-only path still returns the fresh profile).
// This is the "version mismatch -> recalibrate" entry point for tools.
CalibrationProfile LoadOrCalibrate(const std::string& path);

// --- process-wide active profile --------------------------------------------

// The profile model-mode admission consults. Defaults to BuiltinProfile()
// so decisions (and explain goldens) are machine-independent until a
// caller explicitly installs a measured profile.
const CalibrationProfile& ActiveProfile();

// Replaces the active profile, returning the previous one (so tests can
// restore it). Not thread-safe with concurrent scans.
CalibrationProfile InstallProfileForProcess(const CalibrationProfile& profile);

}  // namespace bipie::cost

#endif  // BIPIE_COST_CALIBRATION_H_
