#include "cost/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/cpu.h"
#include "common/crc32c.h"
#include "common/cycle_timer.h"
#include "common/random.h"
#include "encoding/bitpack.h"
#include "expr/predicate.h"
#include "vector/byteslice_scan.h"
#include "vector/compact.h"

namespace bipie::cost {

namespace {

// The builtin constants below are chosen so the model's derived decision
// boundaries land where the legacy heuristics put them (they encode the
// same hardware folklore, just as throughputs instead of thresholds):
//
//  * 3-plane byteslice vs decode-and-compare at width 17-24:
//    plane * (1 + 2s) = unpack + compare  =>  0.55(1+2s) = 1.05+0.38
//    crosses at s = 0.8 — exactly the old kByteSliceSelectivityCeiling.
//  * run pipeline vs row pipeline on RLE data at a 50% filter crosses at
//    ~8 rows/span — the old kMinRunSpanRows (and the crossover now moves
//    with selectivity, which the old constant got wrong; see strategy.cc).
constexpr double kBuiltinUnpack[kNumWidthBuckets] = {0.75, 0.90, 1.05, 1.20,
                                                     1.60, 1.85, 2.10, 2.40};
constexpr double kBuiltinCompare[kNumWidthBuckets] = {0.30, 0.33, 0.38, 0.42,
                                                      0.55, 0.60, 0.65, 0.70};

// Fixed serialization field count: 2 bucket tables + 15 scalars.
constexpr size_t kNumProfileDoubles = 2 * kNumWidthBuckets + 15;
constexpr size_t kPayloadBytes = kNumProfileDoubles * 8 + 2 * 4;
constexpr size_t kImageBytes = 4 + 4 + kPayloadBytes + 4;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

double ReadF64(const uint8_t* p) {
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<uint64_t>(p[i]) << (8 * i);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Flattened field order for serialization and validation. Append-only:
// reordering or resizing this list is a kProfileVersion bump.
void ForEachDouble(CalibrationProfile* p,
                   const std::function<void(double*)>& fn) {
  for (int i = 0; i < kNumWidthBuckets; ++i) fn(&p->unpack_cycles[i]);
  for (int i = 0; i < kNumWidthBuckets; ++i) fn(&p->compare_cycles[i]);
  fn(&p->byteslice_plane_cycles);
  fn(&p->rle_run_cycles);
  fn(&p->rle_expand_cycles);
  fn(&p->gather_row_cycles);
  fn(&p->compact_row_cycles);
  fn(&p->special_group_row_cycles);
  fn(&p->agg_scalar_cycles);
  fn(&p->agg_inregister_cycles);
  fn(&p->agg_sort_cycles);
  fn(&p->agg_sort_per_sum_cycles);
  fn(&p->agg_multi_cycles);
  fn(&p->agg_checked_cycles);
  fn(&p->expr_eval_cycles);
  fn(&p->run_span_cycles);
  fn(&p->mem_bytes_per_cycle);
}

// --- measurement helpers -----------------------------------------------------

template <typename Fn>
double MeasurePerUnit(size_t units, int repeats, const Fn& fn) {
  fn();  // warm-up: first-touch faults, caches, frequency ramp
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const uint64_t start = ReadCycleCounter();
    fn();
    const uint64_t stop = ReadCycleCounter();
    best = std::min(best, static_cast<double>(stop - start) /
                              static_cast<double>(units));
  }
  return best;
}

// Keeps a measurement only when it is a sane cycles-per-unit figure;
// otherwise the builtin value stands (a paused VM or a coarse TSC must
// degrade the profile to "builtin", never poison it).
double Sane(double measured, double fallback) {
  if (!std::isfinite(measured) || measured <= 0.0 || measured >= 1e6) {
    return fallback;
  }
  return measured;
}

volatile uint64_t g_sink;

}  // namespace

CalibrationProfile BuiltinProfile() {
  CalibrationProfile p;
  for (int i = 0; i < kNumWidthBuckets; ++i) {
    p.unpack_cycles[i] = kBuiltinUnpack[i];
    p.compare_cycles[i] = kBuiltinCompare[i];
  }
  p.byteslice_plane_cycles = 0.55;
  p.rle_run_cycles = 14.0;
  p.rle_expand_cycles = 0.20;
  p.gather_row_cycles = 2.00;
  p.compact_row_cycles = 0.50;
  p.special_group_row_cycles = 0.40;
  p.agg_scalar_cycles = 1.40;
  p.agg_inregister_cycles = 0.30;
  p.agg_sort_cycles = 1.20;
  p.agg_sort_per_sum_cycles = 0.15;
  p.agg_multi_cycles = 0.35;
  p.agg_checked_cycles = 2.00;
  p.expr_eval_cycles = 1.50;
  p.run_span_cycles = 14.0;
  p.mem_bytes_per_cycle = 8.0;
  p.isa_tier = 0;
  p.calibrated = 0;
  return p;
}

CalibrationProfile Calibrate(const CalibrateOptions& options) {
  CalibrationProfile p = BuiltinProfile();
  const size_t n = std::max<size_t>(options.rows, 1024);
  const int reps = std::max(options.repeats, 1);
  Rng rng(0xB1B1E5EED);

  // Unpack + compare per width bucket, over the real BitUnpack dispatch.
  const int widths[kNumWidthBuckets] = {7, 12, 20, 28, 36, 44, 52, 60};
  for (int b = 0; b < kNumWidthBuckets; ++b) {
    const int w = widths[b];
    const int word_bytes = b == 0 ? 1 : (b == 1 ? 2 : (b <= 3 ? 4 : 8));
    std::vector<uint64_t> values(n);
    const uint64_t mask = LowBitsMask(w);
    for (auto& v : values) v = rng.Next() & mask;
    AlignedBuffer packed(BitPackedBytes(n, w) + 16);
    BitPack(values.data(), n, w, packed.data());
    AlignedBuffer out(n * static_cast<size_t>(word_bytes) + 64);
    p.unpack_cycles[b] = Sane(
        MeasurePerUnit(n, reps,
                       [&] { BitUnpack(packed.data(), 0, n, w, out.data()); }),
        p.unpack_cycles[b]);

    AlignedBuffer sel(n + 64);
    const uint64_t lit = mask / 2;
    auto compare_loop = [&] {
      uint8_t* s = sel.data();
      switch (word_bytes) {
        case 1: {
          const auto* in = reinterpret_cast<const uint8_t*>(out.data());
          for (size_t i = 0; i < n; ++i) s[i] = in[i] < lit ? 0xFF : 0x00;
          break;
        }
        case 2: {
          const auto* in = reinterpret_cast<const uint16_t*>(out.data());
          for (size_t i = 0; i < n; ++i) s[i] = in[i] < lit ? 0xFF : 0x00;
          break;
        }
        case 4: {
          const auto* in = reinterpret_cast<const uint32_t*>(out.data());
          for (size_t i = 0; i < n; ++i) s[i] = in[i] < lit ? 0xFF : 0x00;
          break;
        }
        default: {
          const auto* in = reinterpret_cast<const uint64_t*>(out.data());
          for (size_t i = 0; i < n; ++i) s[i] = in[i] < lit ? 0xFF : 0x00;
          break;
        }
      }
      g_sink += s[0];
    };
    p.compare_cycles[b] = Sane(MeasurePerUnit(n, reps, compare_loop),
                               p.compare_cycles[b]);
  }

  {  // Byteslice: one-plane kLt over the dispatched kernel.
    AlignedBuffer plane(n + 64);
    for (size_t i = 0; i < n; ++i) {
      plane.data()[i] = static_cast<uint8_t>(rng.Next());
    }
    AlignedBuffer sel(n + 64);
    p.byteslice_plane_cycles =
        Sane(MeasurePerUnit(n, reps,
                            [&] {
                              ByteSliceCompare(plane.data(), n, 1, 0, n,
                                               CompareOp::kLt,
                                               uint64_t{0x80} << 56, 0,
                                               sel.data());
                            }),
             p.byteslice_plane_cycles);
  }

  {  // Gather: random-index fetch per selected row.
    std::vector<uint32_t> idx(n), vals(n);
    for (size_t i = 0; i < n; ++i) {
      idx[i] = static_cast<uint32_t>(rng.NextBounded(n));
      vals[i] = static_cast<uint32_t>(rng.Next());
    }
    p.gather_row_cycles = Sane(MeasurePerUnit(n, reps,
                                              [&] {
                                                uint64_t acc = 0;
                                                for (size_t i = 0; i < n; ++i) {
                                                  acc += vals[idx[i]];
                                                }
                                                g_sink += acc;
                                              }),
                               p.gather_row_cycles);
  }

  {  // Compaction through the real CompactValues at 50% selectivity.
    AlignedBuffer sel(n + 64);
    AlignedBuffer vals(n * 4 + 64);
    AlignedBuffer out(n * 4 + 64);
    for (size_t i = 0; i < n; ++i) {
      sel.data()[i] = rng.NextBernoulli(0.5) ? 0xFF : 0x00;
    }
    p.compact_row_cycles =
        Sane(MeasurePerUnit(n, reps,
                            [&] {
                              g_sink += CompactValues(sel.data(), vals.data(),
                                                      n, 4, out.data());
                            }),
             p.compact_row_cycles);
  }

  {  // Special-group remap proxy: one table lookup per row.
    std::vector<uint8_t> groups(n), remap(256), out(n);
    for (size_t i = 0; i < n; ++i) {
      groups[i] = static_cast<uint8_t>(rng.Next());
    }
    for (size_t i = 0; i < 256; ++i) remap[i] = static_cast<uint8_t>(i / 4);
    p.special_group_row_cycles =
        Sane(MeasurePerUnit(n, reps,
                            [&] {
                              for (size_t i = 0; i < n; ++i) {
                                out[i] = remap[groups[i]];
                              }
                              g_sink += out[0];
                            }),
             p.special_group_row_cycles);
  }

  {  // RLE: per-run walk, and per-row expansion of 8-row runs.
    struct Run {
      uint64_t value;
      uint32_t length;
    };
    const size_t num_runs = n / 8;
    std::vector<Run> runs(num_runs);
    for (auto& r : runs) {
      r.value = rng.Next() & 0xFFFF;
      r.length = 8;
    }
    p.rle_run_cycles = Sane(
        MeasurePerUnit(num_runs, reps,
                       [&] {
                         uint64_t acc = 0;
                         for (const auto& r : runs) {
                           acc += r.value * r.length;
                         }
                         g_sink += acc;
                       }),
        p.rle_run_cycles);
    std::vector<uint8_t> expanded(n);
    p.rle_expand_cycles = Sane(
        MeasurePerUnit(n, reps,
                       [&] {
                         size_t pos = 0;
                         for (const auto& r : runs) {
                           std::memset(expanded.data() + pos,
                                       static_cast<int>(r.value), r.length);
                           pos += r.length;
                         }
                         g_sink += expanded[0];
                       }),
        p.rle_expand_cycles);
    // Span bookkeeping: intersect + dispatch one (group, filter) span.
    p.run_span_cycles = Sane(
        MeasurePerUnit(num_runs, reps,
                       [&] {
                         uint64_t acc = 0;
                         size_t pos = 0;
                         for (const auto& r : runs) {
                           const size_t lo = pos;
                           const size_t hi = pos + r.length;
                           pos = hi;
                           acc += (hi - lo) * (r.value & 7);
                           acc ^= acc >> 3;
                         }
                         g_sink += acc;
                       }) *
            4.0,  // real span intersection touches two run cursors + state
        p.run_span_cycles);
  }

  {  // Aggregation kernel proxies (per processed row, one accumulator).
    std::vector<uint8_t> groups(n);
    std::vector<uint32_t> v1(n), v2(n);
    for (size_t i = 0; i < n; ++i) {
      groups[i] = static_cast<uint8_t>(rng.NextBounded(64));
      v1[i] = static_cast<uint32_t>(rng.Next());
      v2[i] = static_cast<uint32_t>(rng.Next());
    }
    uint64_t acc[256] = {0};
    p.agg_scalar_cycles = Sane(
        MeasurePerUnit(n, reps,
                       [&] {
                         for (size_t i = 0; i < n; ++i) {
                           acc[groups[i]] += v1[i];
                         }
                         g_sink += acc[0];
                       }),
        p.agg_scalar_cycles);
    p.agg_checked_cycles = Sane(
        MeasurePerUnit(n, reps,
                       [&] {
                         int64_t sum;
                         for (size_t i = 0; i < n; ++i) {
                           if (__builtin_add_overflow(
                                   static_cast<int64_t>(acc[groups[i]]),
                                   static_cast<int64_t>(v1[i]), &sum)) {
                             sum = 0;
                           }
                           acc[groups[i]] = static_cast<uint64_t>(sum);
                         }
                         g_sink += acc[0];
                       }),
        p.agg_checked_cycles);
    p.agg_inregister_cycles = Sane(
        MeasurePerUnit(n, reps,
                       [&] {
                         uint64_t lanes[8] = {0};
                         for (size_t i = 0; i < n; ++i) {
                           lanes[i & 7] += v1[i];
                         }
                         g_sink += lanes[0];
                       }),
        p.agg_inregister_cycles);
    p.agg_multi_cycles = Sane(
        MeasurePerUnit(n, reps,
                       [&] {
                         for (size_t i = 0; i < n; ++i) {
                           const size_t g = groups[i] * 2u;
                           acc[g] += v1[i];
                           acc[g + 1] += v2[i];
                         }
                         g_sink += acc[0];
                       }) /
            2.0,  // two sums updated per pass; the field is flat per row
        p.agg_multi_cycles);
    std::vector<uint32_t> buckets(n);
    uint32_t counts[64] = {0};
    p.agg_sort_cycles = Sane(
        MeasurePerUnit(n, reps,
                       [&] {
                         std::memset(counts, 0, sizeof(counts));
                         for (size_t i = 0; i < n; ++i) {
                           buckets[counts[groups[i]]++ & (n - 1)] =
                               static_cast<uint32_t>(i);
                         }
                         g_sink += buckets[0];
                       }),
        p.agg_sort_cycles);
    p.agg_sort_per_sum_cycles =
        Sane(p.agg_inregister_cycles * 0.5, p.agg_sort_per_sum_cycles);
    p.expr_eval_cycles = Sane(
        MeasurePerUnit(n, reps,
                       [&] {
                         for (size_t i = 0; i < n; ++i) {
                           v2[i] = v1[i] * 3u + v2[i];
                         }
                         g_sink += v2[0];
                       }) +
            p.unpack_cycles[kNumWidthBuckets - 1],
        p.expr_eval_cycles);
  }

  {  // Sequential memory bandwidth over a cache-exceeding copy.
    const size_t bytes = size_t{16} << 20;
    AlignedBuffer src(bytes), dst(bytes);
    std::memset(src.data(), 0x5A, bytes);
    const double cycles_per_byte = MeasurePerUnit(
        bytes, reps, [&] { std::memcpy(dst.data(), src.data(), bytes); });
    if (std::isfinite(cycles_per_byte) && cycles_per_byte > 0.0) {
      p.mem_bytes_per_cycle =
          Sane(1.0 / cycles_per_byte, p.mem_bytes_per_cycle);
    }
  }

  p.isa_tier = static_cast<uint32_t>(CurrentIsaTier());
  p.calibrated = 1;
  return p;
}

// --- persistence -------------------------------------------------------------

std::vector<uint8_t> SerializeProfile(const CalibrationProfile& profile) {
  std::vector<uint8_t> out;
  out.reserve(kImageBytes);
  AppendU32(&out, kProfileMagic);
  AppendU32(&out, kProfileVersion);
  CalibrationProfile copy = profile;
  ForEachDouble(&copy, [&out](double* d) { AppendF64(&out, *d); });
  AppendU32(&out, profile.isa_tier);
  AppendU32(&out, profile.calibrated);
  AppendU32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Result<CalibrationProfile> ParseProfile(const uint8_t* data, size_t n) {
  if (n != kImageBytes) {
    return Status::DataLoss("calibration profile: size " + std::to_string(n) +
                            " != expected " + std::to_string(kImageBytes));
  }
  if (ReadU32(data) != kProfileMagic) {
    return Status::DataLoss("calibration profile: bad magic");
  }
  const uint32_t stored_crc = ReadU32(data + n - 4);
  if (Crc32c(data, n - 4) != stored_crc) {
    return Status::DataLoss("calibration profile: checksum mismatch");
  }
  const uint32_t version = ReadU32(data + 4);
  if (version != kProfileVersion) {
    return Status::NotSupported(
        "calibration profile: version " + std::to_string(version) +
        " (expected " + std::to_string(kProfileVersion) + "); recalibrate");
  }
  CalibrationProfile p;
  const uint8_t* cursor = data + 8;
  Status invalid = Status::OK();
  ForEachDouble(&p, [&cursor, &invalid](double* d) {
    *d = ReadF64(cursor);
    cursor += 8;
    if (!std::isfinite(*d) || *d <= 0.0 || *d >= 1e6) {
      invalid = Status::InvalidArgument(
          "calibration profile: entry out of range");
    }
  });
  BIPIE_RETURN_NOT_OK(invalid);
  p.isa_tier = ReadU32(cursor);
  p.calibrated = ReadU32(cursor + 4);
  if (p.isa_tier > 2 || p.calibrated > 1) {
    return Status::InvalidArgument("calibration profile: bad provenance");
  }
  return p;
}

Status SaveProfile(const CalibrationProfile& profile,
                   const std::string& path) {
  const std::vector<uint8_t> image = SerializeProfile(profile);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  const bool ok = std::fwrite(image.data(), 1, image.size(), f) ==
                  image.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

Result<CalibrationProfile> LoadProfile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open: " + path);
  }
  // Bound the read against the known image size before allocating; a
  // profile file of any other length is rejected as untrustworthy.
  std::vector<uint8_t> image(kImageBytes + 1);
  const size_t got = std::fread(image.data(), 1, image.size(), f);
  std::fclose(f);
  return ParseProfile(image.data(), got);
}

CalibrationProfile LoadOrCalibrate(const std::string& path) {
  Result<CalibrationProfile> loaded = LoadProfile(path);
  if (loaded.ok()) return loaded.value();
  const CalibrationProfile fresh = Calibrate();
  SaveProfile(fresh, path);  // best-effort rewrite; fresh profile wins anyway
  return fresh;
}

// --- process-wide active profile --------------------------------------------

namespace {
CalibrationProfile& MutableActiveProfile() {
  static CalibrationProfile profile = BuiltinProfile();
  return profile;
}
}  // namespace

const CalibrationProfile& ActiveProfile() { return MutableActiveProfile(); }

CalibrationProfile InstallProfileForProcess(
    const CalibrationProfile& profile) {
  CalibrationProfile previous = MutableActiveProfile();
  MutableActiveProfile() = profile;
  return previous;
}

}  // namespace bipie::cost
