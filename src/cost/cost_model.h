// Roofline cost model over calibrated primitive throughputs (DESIGN.md §17).
//
// Predicts cycles per segment row for every candidate plan of one segment —
// selection strategy × aggregation strategy × byteslice on/off — from the
// same metadata AggregateProcessor::Bind already gathers, plus a
// CalibrationProfile (cost/calibration.h). The pipeline laws, with s the
// unified selectivity estimate, G the group-column decode cost, D the
// aggregate-input decode cost and K(X) the strategy-X kernel cost (all
// cycles/row):
//
//   filter        F = Σ per-predicate min(decode+compare, plane kernels)
//   gather        F + s·(G + gather_row + D + K)      (touch selected only)
//   compact       F + G + compact_row + s·(D + K)     (decode all, compact)
//   special-group F + G + special_row + D + K         (aggregate every row)
//   sort-based    F + s·(G + D + sort_row + sums·per_sum)  (selection folds
//                                                     into the bucket sort)
//   run pipeline  span_cycles·spans/rows + run aggregate laws
//
// and per-predicate byteslice cost = plane·(1 + (planes−1)·s): the early
// exit touches later planes only for still-undecided lanes, for which the
// selectivity estimate is the only proxy metadata offers (the same proxy
// the legacy ceiling used, now dimensioned as a cost).
//
// Everything here is pure arithmetic on the profile — no timing, no ISA
// dispatch — so decisions under the builtin profile are machine-independent
// and golden-testable. Ties break toward the lower AggregationStrategy
// enum value (strict-less argmin in declaration order).
#ifndef BIPIE_COST_COST_MODEL_H_
#define BIPIE_COST_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "core/strategy.h"
#include "cost/calibration.h"
#include "storage/types.h"

namespace bipie::cost {

// Scalar summary of one segment's shape, filled by Bind (or by tests
// directly). All *_cpr fields are cycles per segment row.
struct SegmentCostInputs {
  size_t rows = 0;
  // Unified selectivity: product of per-predicate estimates (the byteslice
  // loop's EstimatePredicateSelectivity, now consulted for every path).
  double selectivity = 1.0;
  bool filtered = false;
  // Filter evaluation, decode-then-compare path, summed over predicates.
  double filter_decode_cpr = 0.0;
  // Filter evaluation with plane kernels on the byteslice-capable
  // predicates (others keep their decode cost). < 0: no byteslice filter.
  double filter_byteslice_cpr = -1.0;
  bool byteslice_capable = false;
  // Group-by column decode (RLE expansion / id unpack), per row.
  double group_decode_cpr = 0.0;
  // Aggregate-input decode per processed row (post-selection).
  double agg_decode_cpr = 0.0;
  int num_sums = 0;
  // Feasibility gates mirrored from Bind's checks.
  bool in_register_feasible = false;
  bool multi_fits = false;
  bool sort_feasible = false;
  bool checked_feasible = true;
  // Run pipeline: capability plus its span structure and aggregate cost.
  bool run_capable = false;
  size_t run_spans = 1;
  double run_agg_cpr = 0.0;
  bool special_group_available = false;
};

// Predicted costs for one segment. total_cpr is comparable across entries:
// each is the full pipeline (filter + selection + aggregation) under that
// aggregation strategy with its best selection strategy.
struct SegmentCosts {
  double total_cpr[kNumAggregationStrategies] = {-1.0, -1.0, -1.0,
                                                 -1.0, -1.0, -1.0};
  // Selection overhead component per strategy (gather/compact/special) at
  // the estimated selectivity; -1 when no selection applies.
  double selection_cpr[3] = {-1.0, -1.0, -1.0};
  AggregationStrategy chosen = AggregationStrategy::kScalar;
  SelectionStrategy predicted_selection = SelectionStrategy::kGather;
  // Gather stops winning above this selectivity (bisected on the laws).
  double gather_crossover = 0.0;
  // Plane kernels beat decode-and-compare for this segment's filters.
  bool use_byteslice = false;
  // Filter term actually used inside total_cpr.
  double filter_cpr = 0.0;
};

class CostModel {
 public:
  explicit CostModel(const CalibrationProfile& profile) : p_(profile) {}

  const CalibrationProfile& profile() const { return p_; }

  // --- primitive laws --------------------------------------------------------

  // Decode one value of the given encoding to scan-ready form, per row.
  // `runs` sizes the per-run terms of kRle (ignored elsewhere).
  double DecodeCyclesPerRow(Encoding encoding, int bit_width, size_t rows,
                            size_t runs) const;
  double UnpackCyclesPerRow(int bit_width) const;
  double CompareCyclesPerRow(int bit_width) const;
  // Expected plane-kernel cost of one predicate on a `planes`-plane column
  // at estimated selectivity s.
  double ByteSliceFilterCyclesPerRow(int planes, double selectivity) const;
  // Aggregation kernel cost per processed row (decode excluded).
  double AggregationKernelCyclesPerRow(AggregationStrategy strategy,
                                       int num_sums) const;

  // --- advisor law (storage/column_builder) ---------------------------------

  // Roofline scan throughput of one encoding candidate: the greater of its
  // decode compute cost and its memory-bandwidth floor.
  double ScanCyclesPerRow(Encoding encoding, int bit_width, size_t rows,
                          size_t runs, size_t encoded_bytes) const;

  // --- segment scoring -------------------------------------------------------

  SegmentCosts ScoreSegment(const SegmentCostInputs& in) const;

 private:
  // Full row-pipeline cost under one aggregation strategy, selection folded.
  double RowPipelineCpr(const SegmentCostInputs& in, double filter_cpr,
                        AggregationStrategy strategy,
                        SelectionStrategy* best_selection) const;

  const CalibrationProfile& p_;
};

}  // namespace bipie::cost

#endif  // BIPIE_COST_COST_MODEL_H_
