#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "encoding/byteslice.h"

namespace bipie::cost {

namespace {

double RunsPerRow(size_t rows, size_t runs) {
  if (rows == 0) return 0.0;
  return static_cast<double>(std::max<size_t>(runs, 1)) /
         static_cast<double>(rows);
}

}  // namespace

double CostModel::UnpackCyclesPerRow(int bit_width) const {
  return p_.unpack_cycles[WidthBucket(bit_width)];
}

double CostModel::CompareCyclesPerRow(int bit_width) const {
  return p_.compare_cycles[WidthBucket(bit_width)];
}

double CostModel::DecodeCyclesPerRow(Encoding encoding, int bit_width,
                                     size_t rows, size_t runs) const {
  switch (encoding) {
    case Encoding::kBitPacked:
      return UnpackCyclesPerRow(bit_width);
    case Encoding::kDictionary:
      // Unpack the ids, then one table lookup per row (modelled by the
      // special-group remap primitive: it is the same indexed byte fetch).
      return UnpackCyclesPerRow(bit_width) + p_.special_group_row_cycles;
    case Encoding::kRle:
      return p_.rle_run_cycles * RunsPerRow(rows, runs) +
             p_.rle_expand_cycles;
    case Encoding::kDelta:
      // Sequential prefix reconstruction: unpack the deltas plus the carry
      // chain (serial adds cost about one expanded write per row).
      return UnpackCyclesPerRow(bit_width) + p_.rle_expand_cycles;
    case Encoding::kByteSliced:
      // Assembling full words reads every plane.
      return p_.byteslice_plane_cycles * ByteSlicePlanes(bit_width);
  }
  return UnpackCyclesPerRow(bit_width);
}

double CostModel::ByteSliceFilterCyclesPerRow(int planes,
                                              double selectivity) const {
  const double s = std::clamp(selectivity, 0.0, 1.0);
  const int np = std::max(planes, 1);
  // Plane 0 is always read; the early exit revisits lanes still undecided,
  // for which s is the metadata proxy (see header).
  return p_.byteslice_plane_cycles * (1.0 + (np - 1) * s);
}

double CostModel::AggregationKernelCyclesPerRow(AggregationStrategy strategy,
                                                int num_sums) const {
  // COUNT-only plans still update one accumulator per row.
  const double accumulators = static_cast<double>(std::max(num_sums, 1));
  switch (strategy) {
    case AggregationStrategy::kScalar:
      return accumulators * p_.agg_scalar_cycles;
    case AggregationStrategy::kInRegister:
      return accumulators * p_.agg_inregister_cycles;
    case AggregationStrategy::kSortBased:
      return p_.agg_sort_cycles + num_sums * p_.agg_sort_per_sum_cycles;
    case AggregationStrategy::kMultiAggregate:
      // Horizontal SIMD: one expanded-row update regardless of sum count.
      return p_.agg_multi_cycles;
    case AggregationStrategy::kCheckedScalar:
      return accumulators * p_.agg_checked_cycles;
    case AggregationStrategy::kRunBased:
      return 0.0;  // run path costs are span-structured, not per-row
  }
  return accumulators * p_.agg_scalar_cycles;
}

double CostModel::ScanCyclesPerRow(Encoding encoding, int bit_width,
                                   size_t rows, size_t runs,
                                   size_t encoded_bytes) const {
  const double compute = DecodeCyclesPerRow(encoding, bit_width, rows, runs);
  const double bytes_per_row =
      rows == 0 ? 0.0
                : static_cast<double>(encoded_bytes) / static_cast<double>(rows);
  const double bandwidth_floor = bytes_per_row / p_.mem_bytes_per_cycle;
  return std::max(compute, bandwidth_floor);
}

double CostModel::RowPipelineCpr(const SegmentCostInputs& in,
                                 double filter_cpr,
                                 AggregationStrategy strategy,
                                 SelectionStrategy* best_selection) const {
  const double s = std::clamp(in.selectivity, 0.0, 1.0);
  const double kernel = AggregationKernelCyclesPerRow(strategy, in.num_sums);
  const double downstream = in.agg_decode_cpr + kernel;
  if (best_selection != nullptr) *best_selection = SelectionStrategy::kGather;
  if (!in.filtered) {
    return in.group_decode_cpr + downstream;
  }
  if (strategy == AggregationStrategy::kSortBased) {
    // The bucket sort partitions selected rows directly off the selection
    // vector: no separate selection operator runs.
    return filter_cpr + s * (in.group_decode_cpr + downstream);
  }
  const double gather =
      s * (in.group_decode_cpr + p_.gather_row_cycles + downstream);
  const double compact =
      in.group_decode_cpr + p_.compact_row_cycles + s * downstream;
  const double special =
      in.group_decode_cpr + p_.special_group_row_cycles + downstream;
  double best = gather;
  SelectionStrategy pick = SelectionStrategy::kGather;
  if (in.special_group_available && special < best) {
    best = special;
    pick = SelectionStrategy::kSpecialGroup;
  }
  if (compact < best) {
    best = compact;
    pick = SelectionStrategy::kCompact;
  }
  if (best_selection != nullptr) *best_selection = pick;
  return filter_cpr + best;
}

SegmentCosts CostModel::ScoreSegment(const SegmentCostInputs& in) const {
  SegmentCosts out;
  const double s = std::clamp(in.selectivity, 0.0, 1.0);

  // Filter path: plane kernels vs decode-and-compare, whichever the model
  // predicts cheaper (callers can still force either via overrides).
  out.filter_cpr = std::max(in.filter_decode_cpr, 0.0);
  if (in.byteslice_capable && in.filter_byteslice_cpr >= 0.0 &&
      in.filter_byteslice_cpr < in.filter_decode_cpr) {
    out.use_byteslice = true;
    out.filter_cpr = in.filter_byteslice_cpr;
  }

  // Selection overhead components (for explain; the totals below fold the
  // full downstream interaction in).
  if (in.filtered) {
    out.selection_cpr[static_cast<int>(SelectionStrategy::kGather)] =
        s * (in.group_decode_cpr + p_.gather_row_cycles);
    out.selection_cpr[static_cast<int>(SelectionStrategy::kCompact)] =
        in.group_decode_cpr + p_.compact_row_cycles;
    out.selection_cpr[static_cast<int>(SelectionStrategy::kSpecialGroup)] =
        in.special_group_available
            ? in.group_decode_cpr + p_.special_group_row_cycles
            : -1.0;
  }

  // Row-pipeline totals per feasible aggregation strategy.
  const bool feasible[kNumAggregationStrategies] = {
      /*kScalar=*/true,
      /*kInRegister=*/in.in_register_feasible,
      /*kSortBased=*/in.sort_feasible,
      /*kMultiAggregate=*/in.multi_fits,
      /*kCheckedScalar=*/in.checked_feasible,
      /*kRunBased=*/in.run_capable,
  };
  SelectionStrategy chosen_selection = SelectionStrategy::kGather;
  double best = -1.0;
  for (int i = 0; i < kNumAggregationStrategies; ++i) {
    if (!feasible[i]) continue;
    const auto strategy = static_cast<AggregationStrategy>(i);
    double total;
    SelectionStrategy sel = SelectionStrategy::kGather;
    if (strategy == AggregationStrategy::kRunBased) {
      const double spans_per_row =
          in.rows == 0 ? 1.0
                       : static_cast<double>(std::max<size_t>(in.run_spans, 1)) /
                             static_cast<double>(in.rows);
      total = p_.run_span_cycles * spans_per_row + in.run_agg_cpr;
    } else {
      total = RowPipelineCpr(in, out.filter_cpr, strategy, &sel);
    }
    out.total_cpr[i] = total;
    // Strict less-than: ties keep the earlier enum value, deterministically.
    if (best < 0.0 || total < best) {
      best = total;
      out.chosen = strategy;
      chosen_selection = sel;
    }
  }
  out.predicted_selection = in.filtered ? chosen_selection
                                        : SelectionStrategy::kGather;

  // Gather crossover under the chosen strategy's downstream cost: the
  // smallest selectivity where gather stops beating the cheaper of compact
  // and special-group. gather(s) grows faster in s than either rival, so
  // the boundary is unique and bisectable.
  {
    const AggregationStrategy agg_for_sel =
        out.chosen == AggregationStrategy::kRunBased
            ? AggregationStrategy::kScalar
            : out.chosen;
    const double kernel =
        AggregationKernelCyclesPerRow(agg_for_sel, in.num_sums);
    const double downstream = in.agg_decode_cpr + kernel;
    const double g = in.group_decode_cpr;
    auto gather_wins = [&](double sel) {
      const double gather = sel * (g + p_.gather_row_cycles + downstream);
      const double compact =
          g + p_.compact_row_cycles + sel * downstream;
      const double special = in.special_group_available
                                 ? g + p_.special_group_row_cycles + downstream
                                 : compact;
      return gather <= std::min(compact, special);
    };
    double lo = 0.0, hi = 1.0;
    if (gather_wins(1.0)) {
      lo = 1.0;
    } else {
      for (int iter = 0; iter < 32; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (gather_wins(mid) ? lo : hi) = mid;
      }
    }
    out.gather_crossover = lo;
  }
  return out;
}

}  // namespace bipie::cost
