// Row-at-a-time hash aggregation baseline.
//
// Stands in for the classical engine design BIPie is compared against
// (§5, "The Group ID Mapper replaces the hash table lookup step in a
// classical implementation of aggregation"): per batch it decodes the
// needed columns to logical int64 arrays, then walks rows one at a time —
// hash the group key, probe an open-addressing table, update the count and
// every sum. No SIMD, no encoded-domain processing, no operator
// specialization; everything else (storage, expressions, filters) is
// shared, so benchmark deltas isolate the paper's contribution.
#ifndef BIPIE_BASELINE_HASH_AGG_H_
#define BIPIE_BASELINE_HASH_AGG_H_

#include "common/status.h"
#include "core/query.h"
#include "exec/query_context.h"
#include "storage/table.h"

namespace bipie {

// `context` (nullable) supplies cancellation and memory governance: the
// engine checks cancellation per batch, binds the context's MemoryTracker
// around execution and accounts its hash-table growth against it, so a
// limit breach returns kResourceExhausted — the fallback inherits the
// specialized scan's complete-or-error contract.
Result<QueryResult> ExecuteQueryHashAgg(const Table& table,
                                        const QuerySpec& query,
                                        QueryContext* context = nullptr);

}  // namespace bipie

#endif  // BIPIE_BASELINE_HASH_AGG_H_
