#include "baseline/scalar_engine.h"

#include <algorithm>
#include <map>
#include <vector>

namespace bipie {

namespace {

// Decoded view of a segment column: logical int64s, plus the string
// dictionary when the column is a string (logical values are then ids).
struct DecodedColumn {
  std::vector<int64_t> values;
  const StringDictionary* strings = nullptr;
};

GroupValue MakeGroupValue(const DecodedColumn& col, int64_t logical) {
  GroupValue v;
  if (col.strings != nullptr) {
    v.is_string = true;
    v.string_value = col.strings->value(static_cast<uint32_t>(logical));
  } else {
    v.int_value = logical;
  }
  return v;
}

}  // namespace

Result<QueryResult> ExecuteQueryNaive(const Table& table,
                                      const QuerySpec& query) {
  // Resolve column indices.
  std::vector<int> group_cols;
  for (const std::string& name : query.group_by) {
    const int idx = table.FindColumn(name);
    if (idx < 0) return Status::InvalidArgument("unknown column: " + name);
    group_cols.push_back(idx);
  }
  std::vector<int> filter_cols;
  for (const ColumnPredicate& pred : query.filters) {
    const int idx = table.FindColumn(pred.column_name());
    if (idx < 0) {
      return Status::InvalidArgument("unknown column: " + pred.column_name());
    }
    filter_cols.push_back(idx);
  }

  std::map<std::vector<GroupValue>, ResultRow> merged;
  const size_t num_specs = query.aggregates.size();

  for (size_t s = 0; s < table.num_segments(); ++s) {
    const Segment& segment = table.segment(s);
    const size_t n = segment.num_rows();
    if (n == 0) continue;

    // Decode every column once (naive by design).
    std::vector<DecodedColumn> cols(table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      cols[c].values.resize(n);
      segment.column(c).DecodeInt64(0, n, cols[c].values.data());
      cols[c].strings = segment.column(c).string_dictionary();
    }
    std::vector<const int64_t*> col_ptrs(table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      col_ptrs[c] = cols[c].values.data();
    }

    // Pre-evaluate expression aggregates over the full segment.
    std::vector<std::vector<int64_t>> expr_values(num_specs);
    for (size_t a = 0; a < num_specs; ++a) {
      if (query.aggregates[a].kind == AggregateSpec::Kind::kSumExpr) {
        expr_values[a].resize(n);
        query.aggregates[a].expr->Evaluate(col_ptrs.data(), n,
                                           expr_values[a].data());
      }
    }
    std::vector<int> agg_cols(num_specs, -1);
    for (size_t a = 0; a < num_specs; ++a) {
      const AggregateSpec& spec = query.aggregates[a];
      if (spec.kind == AggregateSpec::Kind::kSum ||
          spec.kind == AggregateSpec::Kind::kAvg ||
          spec.kind == AggregateSpec::Kind::kMin ||
          spec.kind == AggregateSpec::Kind::kMax) {
        agg_cols[a] = table.FindColumn(spec.column);
        if (agg_cols[a] < 0) {
          return Status::InvalidArgument("unknown column: " + spec.column);
        }
      }
    }

    const uint8_t* alive = segment.alive_bytes();
    for (size_t i = 0; i < n; ++i) {
      if (alive != nullptr && alive[i] == 0) continue;
      bool pass = true;
      for (size_t f = 0; f < query.filters.size(); ++f) {
        const ColumnPredicate& pred = query.filters[f];
        const DecodedColumn& fc = cols[filter_cols[f]];
        if (fc.strings != nullptr) {
          // Evaluate string predicates through the encoded-domain path for
          // one row (rare in the naive engine's usage). The slack covers
          // Evaluate's SIMD write allowance.
          uint8_t verdict[40] = {0};
          Status st = pred.Evaluate(segment.column(filter_cols[f]), i, 1,
                                    verdict);
          if (!st.ok()) return st;
          pass = verdict[0] != 0;
        } else {
          pass = CompareInt64(fc.values[i], pred.op(), pred.literal(),
                              pred.literal2());
        }
        if (!pass) break;
      }
      if (!pass) continue;

      std::vector<GroupValue> key;
      for (int gc : group_cols) {
        key.push_back(MakeGroupValue(cols[gc], cols[gc].values[i]));
      }
      ResultRow& row = merged[key];
      const bool fresh = row.sums.empty();
      if (fresh) {
        row.group = key;
        row.sums.assign(num_specs, 0);
      }
      ++row.count;
      for (size_t a = 0; a < num_specs; ++a) {
        switch (query.aggregates[a].kind) {
          case AggregateSpec::Kind::kCount:
            break;
          case AggregateSpec::Kind::kSum:
          case AggregateSpec::Kind::kAvg:
            row.sums[a] += cols[agg_cols[a]].values[i];
            break;
          case AggregateSpec::Kind::kSumExpr:
            row.sums[a] += expr_values[a][i];
            break;
          case AggregateSpec::Kind::kMin:
            row.sums[a] = fresh ? cols[agg_cols[a]].values[i]
                                : std::min(row.sums[a],
                                           cols[agg_cols[a]].values[i]);
            break;
          case AggregateSpec::Kind::kMax:
            row.sums[a] = fresh ? cols[agg_cols[a]].values[i]
                                : std::max(row.sums[a],
                                           cols[agg_cols[a]].values[i]);
            break;
        }
      }
    }
  }

  QueryResult result;
  result.group_column_names = query.group_by;
  for (auto& [key, row] : merged) {
    for (size_t a = 0; a < num_specs; ++a) {
      if (query.aggregates[a].kind == AggregateSpec::Kind::kCount) {
        row.sums[a] = static_cast<int64_t>(row.count);
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace bipie
